"""Workloads: the 22 TPC-H queries and random query generators."""

from .generator import (
    JOIN_SHAPES,
    GeneratorConfig,
    generate_workload,
    generated_task,
    random_catalog,
    random_query,
)
from .tpch_queries import TPCH_QUERY_NAMES, build_tpch_queries, tpch_query

__all__ = [
    "GeneratorConfig",
    "JOIN_SHAPES",
    "TPCH_QUERY_NAMES",
    "build_tpch_queries",
    "generate_workload",
    "generated_task",
    "random_catalog",
    "random_query",
    "tpch_query",
]
