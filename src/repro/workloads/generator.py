"""Random workload generation for tests and benchmarks.

Generates synthetic catalogs and random SPJ queries with chain, star or
clique join graphs — the shapes the parametric-query-optimization
literature studies.  Property-based tests use these to exercise the
enumerator and the geometric framework on inputs far from TPC-H.
"""

from __future__ import annotations

import numpy as np

from ..catalog.schema import Column, Index, Schema, Table
from ..catalog.statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    IndexStats,
    TableStats,
)
from ..optimizer.query import JoinPredicate, LocalPredicate, QuerySpec, TableRef

__all__ = ["random_catalog", "random_query", "JOIN_SHAPES"]

JOIN_SHAPES = ("chain", "star", "clique")


def random_catalog(
    rng: np.random.Generator,
    n_tables: int = 4,
    min_rows: int = 1_000,
    max_rows: int = 5_000_000,
) -> Catalog:
    """A synthetic catalog of ``n_tables`` tables T0..Tn-1.

    Every table gets a key column ``K`` (distinct = rows, clustered
    PK index), a foreign-ish column ``F`` (indexed, unclustered) and a
    filter column ``V`` (no index).
    """
    if n_tables < 1:
        raise ValueError("need at least one table")
    schema = Schema()
    stats = CatalogStats()
    for i in range(n_tables):
        name = f"T{i}"
        width = int(rng.integers(40, 240))
        table = Table(
            name,
            (
                Column("K", "integer", 4),
                Column("F", "integer", 4),
                Column("V", "integer", 4),
            ),
            primary_key=("K",),
        )
        schema.add_table(table)
        rows = int(rng.integers(min_rows, max_rows))
        distinct_f = max(1, rows // int(rng.integers(2, 50)))
        stats.tables[name] = TableStats(
            row_count=rows,
            row_width=width,
            columns={
                "K": ColumnStats(n_distinct=rows),
                "F": ColumnStats(n_distinct=distinct_f),
                "V": ColumnStats(n_distinct=max(1, rows // 100)),
            },
        )
        pk_index = Index(f"{name}_PK", name, ("K",), clustered=True,
                         unique=True)
        fk_index = Index(f"{name}_F", name, ("F",))
        schema.add_index(pk_index)
        schema.add_index(fk_index)
        stats.indexes[pk_index.name] = IndexStats.derive(
            rows, key_width=4, cluster_ratio=1.0
        )
        stats.indexes[fk_index.name] = IndexStats.derive(
            rows, key_width=4, cluster_ratio=0.0
        )
    return Catalog(schema, stats)


def _shape_edges(shape: str, n: int) -> list[tuple[int, int]]:
    if shape == "chain":
        return [(i, i + 1) for i in range(n - 1)]
    if shape == "star":
        return [(0, i) for i in range(1, n)]
    if shape == "clique":
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    raise ValueError(f"unknown join shape {shape!r}; pick from {JOIN_SHAPES}")


def random_query(
    rng: np.random.Generator,
    catalog: Catalog,
    shape: str = "chain",
    with_predicates: bool = True,
    with_grouping: bool = False,
) -> QuerySpec:
    """A random SPJ query over all tables of a :func:`random_catalog`.

    Joins follow the requested ``shape``; edges connect key to
    foreign-ish columns so index nested loops are viable.  Local
    predicates get log-uniform selectivities in [1e-4, 1].
    """
    names = list(catalog.table_names())
    n = len(names)
    refs = tuple(TableRef(f"A{i}", names[i]) for i in range(n))
    joins = []
    for a, b in _shape_edges(shape, n):
        joins.append(
            JoinPredicate(f"A{a}", "K", f"A{b}", "F")
        )
    predicates = []
    if with_predicates:
        for i in range(n):
            if rng.random() < 0.6:
                selectivity = float(10 ** rng.uniform(-4, 0))
                column = "V" if rng.random() < 0.5 else "F"
                sargable = column if rng.random() < 0.7 else None
                predicates.append(
                    LocalPredicate(f"A{i}", selectivity, sargable)
                )
    group_by = ()
    if with_grouping and n >= 1:
        group_by = ((f"A{n - 1}", "F"),)
    return QuerySpec(
        name=f"random-{shape}-{n}",
        tables=refs,
        joins=tuple(joins),
        predicates=tuple(predicates),
        group_by=group_by,
    )
