"""Random workload generation for tests, benchmarks and the census.

Generates synthetic catalogs and random SPJ queries with chain, star or
clique join graphs — the shapes the parametric-query-optimization
literature studies.  Property-based tests use these to exercise the
enumerator and the geometric framework on inputs far from TPC-H, and
the generated census (``repro census --generated N``) streams millions
of them through the candidate-set machinery.

Determinism contract: every draw consumed from the ``rng`` happens in
a *fixed, unconditional order* — never inside a data-dependent branch
and never driven by dict iteration — so the query produced by a given
``(seed, index)`` is bit-identical across Python versions, platforms
and ``PYTHONHASHSEED`` values.  :func:`generated_task` derives one
independent generator per task index via
:class:`numpy.random.SeedSequence` spawn keys, so any subset of the
stream can be regenerated in any worker without coordination.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..catalog.schema import Column, Index, Schema, Table
from ..catalog.statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    IndexStats,
    TableStats,
)
from ..optimizer.query import (
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
)

__all__ = [
    "GeneratorConfig",
    "JOIN_SHAPES",
    "generated_task",
    "generate_workload",
    "random_catalog",
    "random_query",
]

JOIN_SHAPES = ("chain", "star", "clique")


def random_catalog(
    rng: np.random.Generator,
    n_tables: int = 4,
    min_rows: int = 1_000,
    max_rows: int = 5_000_000,
    fk_index_prob: float = 1.0,
) -> Catalog:
    """A synthetic catalog of ``n_tables`` tables T0..Tn-1.

    Every table gets a key column ``K`` (distinct = rows, clustered
    PK index), a foreign-ish column ``F`` (unclustered index with
    probability ``fk_index_prob`` — index-availability mixes make the
    access-path choice non-trivial) and a filter column ``V`` (no
    index).  All draws are unconditional, so the rng stream position
    after this call depends only on ``n_tables``.
    """
    if n_tables < 1:
        raise ValueError("need at least one table")
    schema = Schema()
    stats = CatalogStats()
    for i in range(n_tables):
        name = f"T{i}"
        # Fixed draw order per table: width, rows, distinct divisor,
        # fk-index coin — independent of whether the index is kept.
        width = int(rng.integers(40, 240))
        rows = int(rng.integers(min_rows, max_rows))
        distinct_f = max(1, rows // int(rng.integers(2, 50)))
        with_fk_index = bool(rng.random() < fk_index_prob)
        table = Table(
            name,
            (
                Column("K", "integer", 4),
                Column("F", "integer", 4),
                Column("V", "integer", 4),
            ),
            primary_key=("K",),
        )
        schema.add_table(table)
        stats.tables[name] = TableStats(
            row_count=rows,
            row_width=width,
            columns={
                "K": ColumnStats(n_distinct=rows),
                "F": ColumnStats(n_distinct=distinct_f),
                "V": ColumnStats(n_distinct=max(1, rows // 100)),
            },
        )
        pk_index = Index(f"{name}_PK", name, ("K",), clustered=True,
                         unique=True)
        schema.add_index(pk_index)
        stats.indexes[pk_index.name] = IndexStats.derive(
            rows, key_width=4, cluster_ratio=1.0
        )
        if with_fk_index:
            fk_index = Index(f"{name}_F", name, ("F",))
            schema.add_index(fk_index)
            stats.indexes[fk_index.name] = IndexStats.derive(
                rows, key_width=4, cluster_ratio=0.0
            )
    return Catalog(schema, stats)


def _shape_edges(shape: str, n: int) -> list[tuple[int, int]]:
    if shape == "chain":
        return [(i, i + 1) for i in range(n - 1)]
    if shape == "star":
        return [(0, i) for i in range(1, n)]
    if shape == "clique":
        return [(i, j) for i in range(n) for j in range(i + 1, n)]
    raise ValueError(f"unknown join shape {shape!r}; pick from {JOIN_SHAPES}")


def random_query(
    rng: np.random.Generator,
    catalog: Catalog,
    shape: str = "chain",
    with_predicates: bool = True,
    with_grouping: bool = False,
    predicate_prob: float = 0.6,
    min_selectivity: float = 1e-4,
) -> QuerySpec:
    """A random SPJ query over all tables of a :func:`random_catalog`.

    Joins follow the requested ``shape``; edges connect key to
    foreign-ish columns so index nested loops are viable.  Local
    predicates get log-uniform selectivities in
    ``[min_selectivity, 1]``.

    Per table, four values are drawn from ``rng`` in a fixed order
    (keep-coin, selectivity, column-coin, sargable-coin) whether or
    not the predicate is kept — branch outcomes never shift the
    stream, so the draw order is platform-stable by construction.
    """
    names = list(catalog.table_names())
    n = len(names)
    refs = tuple(TableRef(f"A{i}", names[i]) for i in range(n))
    joins = []
    for a, b in _shape_edges(shape, n):
        joins.append(
            JoinPredicate(f"A{a}", "K", f"A{b}", "F")
        )
    predicates = []
    if with_predicates:
        log_min = float(np.log10(min_selectivity))
        for i in range(n):
            keep = bool(rng.random() < predicate_prob)
            selectivity = float(10 ** rng.uniform(log_min, 0))
            column = "V" if rng.random() < 0.5 else "F"
            sargable = column if rng.random() < 0.7 else None
            if keep:
                predicates.append(
                    LocalPredicate(f"A{i}", selectivity, sargable)
                )
    group_by = ()
    if with_grouping and n >= 1:
        group_by = ((f"A{n - 1}", "F"),)
    return QuerySpec(
        name=f"random-{shape}-{n}",
        tables=refs,
        joins=tuple(joins),
        predicates=tuple(predicates),
        group_by=group_by,
    )


@dataclass(frozen=True)
class GeneratorConfig:
    """Mixture knobs of the streaming SPJ generator (picklable).

    The defaults target the generated census: mostly small joins
    (candidate-set computation is superlinear in table count), a mix
    of join shapes, log-uniform selectivities and occasional missing
    foreign-key indexes so access-path choices differ across the
    cost space.
    """

    min_tables: int = 2
    max_tables: int = 4
    #: Sampling weights per join shape, same order as ``JOIN_SHAPES``.
    shape_weights: tuple[float, ...] = (0.5, 0.3, 0.2)
    predicate_prob: float = 0.6
    min_selectivity: float = 1e-4
    #: Probability a table's foreign-ish column keeps its index.
    fk_index_prob: float = 0.8
    grouping_prob: float = 0.2
    min_rows: int = 1_000
    max_rows: int = 5_000_000

    def validate(self) -> None:
        if not 1 <= self.min_tables <= self.max_tables:
            raise ValueError(
                "need 1 <= min_tables <= max_tables, got "
                f"{self.min_tables}..{self.max_tables}"
            )
        if len(self.shape_weights) != len(JOIN_SHAPES):
            raise ValueError(
                f"shape_weights needs {len(JOIN_SHAPES)} entries "
                f"(one per {'/'.join(JOIN_SHAPES)})"
            )
        if not all(w >= 0 for w in self.shape_weights) or not sum(
            self.shape_weights
        ):
            raise ValueError("shape_weights must be non-negative, "
                             "with a positive sum")


def generated_task(
    seed: int, index: int, config: GeneratorConfig | None = None
) -> tuple[Catalog, QuerySpec]:
    """Catalog and query number ``index`` of the seeded stream.

    One independent, platform-stable rng per task —
    ``default_rng(SeedSequence(seed, spawn_key=(index,)))`` — so any
    worker can regenerate any subset of the stream with nothing but
    ``(seed, index)``: the census ships *integers* to workers, never
    query objects.
    """
    config = config or GeneratorConfig()
    config.validate()
    rng = np.random.default_rng(
        np.random.SeedSequence(seed, spawn_key=(index,))
    )
    n_tables = int(
        rng.integers(config.min_tables, config.max_tables + 1)
    )
    weights = np.asarray(config.shape_weights, dtype=float)
    shape = JOIN_SHAPES[
        int(rng.choice(len(JOIN_SHAPES), p=weights / weights.sum()))
    ]
    with_grouping = bool(rng.random() < config.grouping_prob)
    catalog = random_catalog(
        rng,
        n_tables=n_tables,
        min_rows=config.min_rows,
        max_rows=config.max_rows,
        fk_index_prob=config.fk_index_prob,
    )
    query = random_query(
        rng,
        catalog,
        shape=shape,
        with_grouping=with_grouping,
        predicate_prob=config.predicate_prob,
        min_selectivity=config.min_selectivity,
    )
    query = QuerySpec(
        name=f"G{index}",
        tables=query.tables,
        joins=query.joins,
        predicates=query.predicates,
        group_by=query.group_by,
    )
    return catalog, query


def generate_workload(
    seed: int, n: int, config: GeneratorConfig | None = None
):
    """Lazily yield ``(catalog, query)`` pairs 0..n-1 of the stream."""
    for index in range(n):
        yield generated_task(seed, index, config)
