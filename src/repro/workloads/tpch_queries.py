"""The 22 TPC-H queries as optimizer specs (Section 7.4).

Each query is encoded as the join graph, local-predicate selectivities
and output clauses that determine plan choice.  Selectivities are
derived from the TPC-H specification's data-generation rules using the
default substitution parameters of the validation run; each builder's
docstring records the derivation.

Encoding conventions (documented substitutions):

* **Subquery flattening.**  The optimizer substrate plans
  select-project-join blocks.  Scalar/EXISTS subqueries are flattened
  into the main join graph when they join new tables (Q20, Q21), or
  folded into a residual filter selectivity when they only restrict an
  existing table (Q2's min-cost supplier, Q17's avg-quantity, Q18's
  HAVING, Q22's anti-join).  The flattened shape preserves which
  tables/indexes a plan must touch, which is what the storage
  sensitivity analysis depends on.
* **Outer joins** (Q13) are planned as inner joins — join-order and
  access-path economics are identical for our purposes.
* **Semi-join cardinalities** that the independence assumption cannot
  express get explicit edge selectivities, computed from the catalog's
  row counts so they stay correct at any scale factor.
* Dates: O_ORDERDATE spans 2406 days, L_SHIPDATE 2526,
  L_RECEIPTDATE 2554; a range of ``d`` days has selectivity
  ``d / span``.

``build_tpch_queries(catalog)`` returns all 22 in order; individual
builders are exposed for targeted tests.
"""

from __future__ import annotations

from ..catalog.statistics import Catalog
from ..optimizer.query import JoinPredicate, LocalPredicate, QuerySpec, TableRef

__all__ = ["build_tpch_queries", "tpch_query", "TPCH_QUERY_NAMES"]

TPCH_QUERY_NAMES = tuple(f"Q{i}" for i in range(1, 23))

# Day spans of the date columns (dbgen generation rules).
_ORDERDATE_SPAN = 2406
_SHIPDATE_SPAN = 2526
_RECEIPTDATE_SPAN = 2554


def _q1(catalog: Catalog) -> QuerySpec:
    """Pricing summary report.

    Single-table scan of LINEITEM.  ``l_shipdate <= date '1998-12-01' -
    90 days`` keeps all but the last ~92 shipping days:
    (2526-92)/2526 ~= 0.964.  Groups on (returnflag, linestatus): 6
    combinations.
    """
    return QuerySpec(
        name="Q1",
        tables=(TableRef("L", "LINEITEM"),),
        predicates=(
            LocalPredicate(
                "L",
                (_SHIPDATE_SPAN - 92) / _SHIPDATE_SPAN,
                "L_SHIPDATE",
                "l_shipdate <= '1998-12-01' - 90 days",
            ),
        ),
        group_by=(("L", "L_RETURNFLAG"), ("L", "L_LINESTATUS")),
        order_by=(("L", "L_RETURNFLAG"), ("L", "L_LINESTATUS")),
        description="Pricing summary report",
    )


def _q2(catalog: Catalog) -> QuerySpec:
    """Minimum cost supplier.

    PART-PARTSUPP-SUPPLIER-NATION-REGION.  p_size = 15: 1/50
    (sargable).  p_type LIKE '%BRASS': matches the last of the 5 Type3
    words, 1/5, residual (suffix match).  r_name = 'EUROPE': 1/5.  The
    correlated min-supplycost subquery keeps on average 1 of the 4
    suppliers per part: residual 0.25 on PARTSUPP.
    """
    return QuerySpec(
        name="Q2",
        tables=(
            TableRef("P", "PART"),
            TableRef("PS", "PARTSUPP"),
            TableRef("S", "SUPPLIER"),
            TableRef("N", "NATION"),
            TableRef("R", "REGION"),
        ),
        joins=(
            JoinPredicate("P", "P_PARTKEY", "PS", "PS_PARTKEY"),
            JoinPredicate("S", "S_SUPPKEY", "PS", "PS_SUPPKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
            JoinPredicate("N", "N_REGIONKEY", "R", "R_REGIONKEY"),
        ),
        predicates=(
            LocalPredicate("P", 1 / 50, "P_SIZE", "p_size = 15"),
            LocalPredicate("P", 1 / 5, None, "p_type LIKE '%BRASS'"),
            LocalPredicate("R", 1 / 5, "R_NAME", "r_name = 'EUROPE'"),
            LocalPredicate("PS", 0.25, None, "min supplycost (flattened)"),
        ),
        order_by=(("S", "S_ACCTBAL"),),
        description="Minimum cost supplier",
    )


def _q3(catalog: Catalog) -> QuerySpec:
    """Shipping priority.

    CUSTOMER-ORDERS-LINEITEM.  c_mktsegment = 'BUILDING': 1/5.
    o_orderdate < '1995-03-15': ~day 1169 of 2406 -> 0.486 (sargable,
    O_OD index).  l_shipdate > '1995-03-15': ~(2526-1168)/2526 -> 0.538
    (sargable, L_SD index).
    """
    return QuerySpec(
        name="Q3",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
        ),
        predicates=(
            LocalPredicate(
                "C", 1 / 5, "C_MKTSEGMENT", "c_mktsegment = 'BUILDING'"
            ),
            LocalPredicate(
                "O", 1169 / _ORDERDATE_SPAN, "O_ORDERDATE",
                "o_orderdate < '1995-03-15'",
            ),
            LocalPredicate(
                "L",
                (_SHIPDATE_SPAN - 1168) / _SHIPDATE_SPAN,
                "L_SHIPDATE",
                "l_shipdate > '1995-03-15'",
            ),
        ),
        group_by=(("L", "L_ORDERKEY"), ("O", "O_ORDERDATE")),
        order_by=(("O", "O_ORDERDATE"),),
        description="Shipping priority",
    )


def _q4(catalog: Catalog) -> QuerySpec:
    """Order priority checking.

    ORDERS semi-join LINEITEM (EXISTS), flattened to an inner join.
    o_orderdate in a quarter: 92/2406 = 0.038 (sargable, O_OD).
    l_commitdate < l_receiptdate holds for ~63% of lineitems
    (dbgen generates receipt 1..30 days after ship, commit -90..+90
    around ship) — residual.
    """
    return QuerySpec(
        name="Q4",
        tables=(TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        predicates=(
            LocalPredicate(
                "O", 92 / _ORDERDATE_SPAN, "O_ORDERDATE",
                "o_orderdate in [1993-07-01, +3 months)",
            ),
            LocalPredicate(
                "L", 0.63, None, "l_commitdate < l_receiptdate"
            ),
        ),
        group_by=(("O", "O_ORDERPRIORITY"),),
        order_by=(("O", "O_ORDERPRIORITY"),),
        description="Order priority checking",
    )


def _q5(catalog: Catalog) -> QuerySpec:
    """Local supplier volume.

    Six tables with a cyclic join graph (the customer and supplier
    nation must coincide: c_nationkey = s_nationkey).  r_name = 'ASIA':
    1/5.  o_orderdate in one year: 365/2406 = 0.152 (sargable, O_OD).
    """
    return QuerySpec(
        name="Q5",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
            TableRef("S", "SUPPLIER"),
            TableRef("N", "NATION"),
            TableRef("R", "REGION"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("L", "L_ORDERKEY", "O", "O_ORDERKEY"),
            JoinPredicate("L", "L_SUPPKEY", "S", "S_SUPPKEY"),
            JoinPredicate("C", "C_NATIONKEY", "S", "S_NATIONKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
            JoinPredicate("N", "N_REGIONKEY", "R", "R_REGIONKEY"),
        ),
        predicates=(
            LocalPredicate("R", 1 / 5, "R_NAME", "r_name = 'ASIA'"),
            LocalPredicate(
                "O", 365 / _ORDERDATE_SPAN, "O_ORDERDATE",
                "o_orderdate in one year",
            ),
        ),
        group_by=(("N", "N_NAME"),),
        order_by=(("N", "N_NAME"),),
        description="Local supplier volume",
    )


def _q6(catalog: Catalog) -> QuerySpec:
    """Forecasting revenue change.

    Single-table LINEITEM aggregate.  shipdate in one year: 365/2526 =
    0.144 (sargable, L_SD).  discount within +-0.01 of 0.06: 3 of the
    11 values = 0.273.  quantity < 24: 23/50 = 0.46.
    """
    return QuerySpec(
        name="Q6",
        tables=(TableRef("L", "LINEITEM"),),
        predicates=(
            LocalPredicate(
                "L", 365 / _SHIPDATE_SPAN, "L_SHIPDATE",
                "l_shipdate in one year",
            ),
            LocalPredicate(
                "L", 3 / 11, None, "l_discount between 0.05 and 0.07"
            ),
            LocalPredicate("L", 23 / 50, None, "l_quantity < 24"),
        ),
        description="Forecasting revenue change",
    )


def _q7(catalog: Catalog) -> QuerySpec:
    """Volume shipping.

    Two NATION aliases (supplier vs customer nation).  l_shipdate in
    1995-1996: 730/2526 = 0.289 (sargable, L_SD).  The nation-pair
    disjunction ((FR,DE) or (DE,FR)): 2/25 per alias with a joint 0.5
    residual correction on N2.
    """
    return QuerySpec(
        name="Q7",
        tables=(
            TableRef("S", "SUPPLIER"),
            TableRef("L", "LINEITEM"),
            TableRef("O", "ORDERS"),
            TableRef("C", "CUSTOMER"),
            TableRef("N1", "NATION"),
            TableRef("N2", "NATION"),
        ),
        joins=(
            JoinPredicate("S", "S_SUPPKEY", "L", "L_SUPPKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N1", "N_NATIONKEY"),
            JoinPredicate("C", "C_NATIONKEY", "N2", "N_NATIONKEY"),
        ),
        predicates=(
            LocalPredicate(
                "L", 730 / _SHIPDATE_SPAN, "L_SHIPDATE",
                "l_shipdate in 1995..1996",
            ),
            LocalPredicate("N1", 2 / 25, "N_NAME", "n1 in (FR, DE)"),
            LocalPredicate("N2", 2 / 25, "N_NAME", "n2 in (FR, DE)"),
            LocalPredicate("N2", 0.5, None, "nation pair correlation"),
        ),
        group_by=(("N1", "N_NAME"), ("N2", "N_NAME")),
        order_by=(("N1", "N_NAME"),),
        description="Volume shipping",
    )


def _q8(catalog: Catalog) -> QuerySpec:
    """National market share — the largest join graph (8 aliases).

    p_type exact match: 1/150 (sargable).  r_name = 'AMERICA': 1/5.
    o_orderdate in 1995..1996: 731/2406 = 0.304 (sargable, O_OD).
    """
    return QuerySpec(
        name="Q8",
        tables=(
            TableRef("P", "PART"),
            TableRef("S", "SUPPLIER"),
            TableRef("L", "LINEITEM"),
            TableRef("O", "ORDERS"),
            TableRef("C", "CUSTOMER"),
            TableRef("N1", "NATION"),
            TableRef("N2", "NATION"),
            TableRef("R", "REGION"),
        ),
        joins=(
            JoinPredicate("P", "P_PARTKEY", "L", "L_PARTKEY"),
            JoinPredicate("S", "S_SUPPKEY", "L", "L_SUPPKEY"),
            JoinPredicate("L", "L_ORDERKEY", "O", "O_ORDERKEY"),
            JoinPredicate("O", "O_CUSTKEY", "C", "C_CUSTKEY"),
            JoinPredicate("C", "C_NATIONKEY", "N1", "N_NATIONKEY"),
            JoinPredicate("N1", "N_REGIONKEY", "R", "R_REGIONKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N2", "N_NATIONKEY"),
        ),
        predicates=(
            LocalPredicate(
                "P", 1 / 150, "P_TYPE", "p_type = 'ECONOMY ANODIZED STEEL'"
            ),
            LocalPredicate("R", 1 / 5, "R_NAME", "r_name = 'AMERICA'"),
            LocalPredicate(
                "O", 731 / _ORDERDATE_SPAN, "O_ORDERDATE",
                "o_orderdate in 1995..1996",
            ),
        ),
        group_by=(("O", "O_ORDERDATE"),),
        order_by=(("O", "O_ORDERDATE"),),
        description="National market share",
    )


def _q9(catalog: Catalog) -> QuerySpec:
    """Product type profit measure.

    PARTSUPP joins LINEITEM on BOTH partkey and suppkey; the second
    edge carries the conditional selectivity 0.25 (each part has 4
    suppliers, so given the partkeys match, suppkeys match 1 in 4) —
    the plain independence product would underestimate by ~400x.
    p_name LIKE '%green%': the name holds 5 of 92 color words -> 0.054
    (residual: not a prefix match).
    """
    return QuerySpec(
        name="Q9",
        tables=(
            TableRef("P", "PART"),
            TableRef("S", "SUPPLIER"),
            TableRef("L", "LINEITEM"),
            TableRef("PS", "PARTSUPP"),
            TableRef("O", "ORDERS"),
            TableRef("N", "NATION"),
        ),
        joins=(
            JoinPredicate("P", "P_PARTKEY", "L", "L_PARTKEY"),
            JoinPredicate("S", "S_SUPPKEY", "L", "L_SUPPKEY"),
            JoinPredicate("PS", "PS_PARTKEY", "L", "L_PARTKEY"),
            JoinPredicate(
                "PS", "PS_SUPPKEY", "L", "L_SUPPKEY", selectivity=0.25
            ),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
        ),
        predicates=(
            LocalPredicate("P", 5 / 92, None, "p_name LIKE '%green%'"),
        ),
        group_by=(("N", "N_NAME"), ("O", "O_ORDERDATE")),
        order_by=(("N", "N_NAME"),),
        description="Product type profit measure",
    )


def _q10(catalog: Catalog) -> QuerySpec:
    """Returned item reporting.

    o_orderdate in a quarter: 92/2406 = 0.038 (sargable, O_OD).
    l_returnflag = 'R': dbgen marks ~24.7% of lineitems returned.
    Groups per customer -> large aggregation.
    """
    return QuerySpec(
        name="Q10",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
            TableRef("N", "NATION"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("L", "L_ORDERKEY", "O", "O_ORDERKEY"),
            JoinPredicate("C", "C_NATIONKEY", "N", "N_NATIONKEY"),
        ),
        predicates=(
            LocalPredicate(
                "O", 92 / _ORDERDATE_SPAN, "O_ORDERDATE",
                "o_orderdate in one quarter",
            ),
            LocalPredicate("L", 0.2466, None, "l_returnflag = 'R'"),
        ),
        group_by=(("C", "C_CUSTKEY"), ("N", "N_NAME")),
        order_by=(("C", "C_ACCTBAL"),),
        description="Returned item reporting",
    )


def _q11(catalog: Catalog) -> QuerySpec:
    """Important stock identification (one of the paper's callouts:
    its Figure 6 curve bends when a complementary alternative takes
    over around delta ~= 100).

    PARTSUPP-SUPPLIER-NATION; n_name = 'GERMANY': 1/25.  Groups per
    partkey.  The value-threshold subquery repeats the same join and is
    folded away.
    """
    return QuerySpec(
        name="Q11",
        tables=(
            TableRef("PS", "PARTSUPP"),
            TableRef("S", "SUPPLIER"),
            TableRef("N", "NATION"),
        ),
        joins=(
            JoinPredicate("PS", "PS_SUPPKEY", "S", "S_SUPPKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
        ),
        predicates=(
            LocalPredicate("N", 1 / 25, "N_NAME", "n_name = 'GERMANY'"),
        ),
        group_by=(("PS", "PS_PARTKEY"),),
        order_by=(("PS", "PS_SUPPLYCOST"),),
        description="Important stock identification",
    )


def _q12(catalog: Catalog) -> QuerySpec:
    """Shipping modes and order priority.

    l_shipmode in 2 of 7 modes: 0.286 (residual — IN list).
    l_receiptdate in one year: 365/2554 = 0.143 (sargable column, but
    no index on receiptdate exists).  The two date-order conditions
    (commit < receipt, ship < commit) jointly hold for ~30% of rows.
    """
    return QuerySpec(
        name="Q12",
        tables=(TableRef("O", "ORDERS"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),),
        predicates=(
            LocalPredicate("L", 2 / 7, None, "l_shipmode in (MAIL, SHIP)"),
            LocalPredicate(
                "L", 365 / _RECEIPTDATE_SPAN, "L_RECEIPTDATE",
                "l_receiptdate in one year",
            ),
            LocalPredicate(
                "L", 0.30, None, "commit < receipt and ship < commit"
            ),
        ),
        group_by=(("L", "L_SHIPMODE"),),
        order_by=(("L", "L_SHIPMODE"),),
        description="Shipping modes and order priority",
    )


def _q13(catalog: Catalog) -> QuerySpec:
    """Customer distribution.

    CUSTOMER LEFT OUTER JOIN ORDERS, planned as an inner join (the
    access-path economics are identical).  o_comment NOT LIKE
    '%special%requests%' keeps ~98.5% of orders (residual).  Groups
    per customer.
    """
    return QuerySpec(
        name="Q13",
        tables=(TableRef("C", "CUSTOMER"), TableRef("O", "ORDERS")),
        joins=(JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),),
        predicates=(
            LocalPredicate(
                "O", 0.9852, None, "o_comment NOT LIKE '%special%requests%'"
            ),
        ),
        group_by=(("C", "C_CUSTKEY"),),
        order_by=(("C", "C_CUSTKEY"),),
        description="Customer distribution",
    )


def _q14(catalog: Catalog) -> QuerySpec:
    """Promotion effect.

    LINEITEM-PART with a one-month shipdate window: 30/2526 = 0.0119
    (sargable, L_SD — a prime index-driven plan).  Single-row
    aggregate, no grouping.
    """
    return QuerySpec(
        name="Q14",
        tables=(TableRef("L", "LINEITEM"), TableRef("P", "PART")),
        joins=(JoinPredicate("L", "L_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(
            LocalPredicate(
                "L", 30 / _SHIPDATE_SPAN, "L_SHIPDATE",
                "l_shipdate in one month",
            ),
        ),
        description="Promotion effect",
    )


def _q15(catalog: Catalog) -> QuerySpec:
    """Top supplier (revenue view flattened into the main block).

    SUPPLIER joins the lineitem revenue aggregation; l_shipdate in one
    quarter: 92/2526 = 0.036 (sargable, L_SD).  Groups per supplier.
    """
    return QuerySpec(
        name="Q15",
        tables=(TableRef("S", "SUPPLIER"), TableRef("L", "LINEITEM")),
        joins=(JoinPredicate("S", "S_SUPPKEY", "L", "L_SUPPKEY"),),
        predicates=(
            LocalPredicate(
                "L", 92 / _SHIPDATE_SPAN, "L_SHIPDATE",
                "l_shipdate in one quarter",
            ),
        ),
        group_by=(("S", "S_SUPPKEY"),),
        order_by=(("S", "S_SUPPKEY"),),
        description="Top supplier",
    )


def _q16(catalog: Catalog) -> QuerySpec:
    """Parts/supplier relationship (a paper callout like Q11: its
    Figure 6 curve bends, and its Figure 7 curve tails off at ~1000).

    p_brand <> 'Brand#45': 24/25.  p_type NOT LIKE 'MEDIUM POLISHED%':
    145/150.  p_size IN (8 of 50 values): 0.16 (sargable, P_SIZE).
    The NOT-IN complaint-supplier subquery excludes a handful of
    suppliers and is folded away.  Groups on (brand, type, size).
    """
    return QuerySpec(
        name="Q16",
        tables=(TableRef("PS", "PARTSUPP"), TableRef("P", "PART")),
        joins=(JoinPredicate("PS", "PS_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(
            LocalPredicate("P", 24 / 25, None, "p_brand <> 'Brand#45'"),
            LocalPredicate(
                "P", 145 / 150, None, "p_type NOT LIKE 'MEDIUM POLISHED%'"
            ),
            LocalPredicate("P", 8 / 50, "P_SIZE", "p_size in (8 values)"),
        ),
        group_by=(("P", "P_BRAND"), ("P", "P_TYPE"), ("P", "P_SIZE")),
        order_by=(("P", "P_BRAND"),),
        description="Parts/supplier relationship",
    )


def _q17(catalog: Catalog) -> QuerySpec:
    """Small-quantity-order revenue.

    p_brand = 'Brand#23': 1/25 (sargable).  p_container = 'MED BOX':
    1/40 (residual).  The avg-quantity correlated subquery keeps rows
    with l_quantity below 20% of the per-part average (~5 of 50
    values): 0.1 residual on LINEITEM.
    """
    return QuerySpec(
        name="Q17",
        tables=(TableRef("L", "LINEITEM"), TableRef("P", "PART")),
        joins=(JoinPredicate("L", "L_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(
            LocalPredicate("P", 1 / 25, "P_BRAND", "p_brand = 'Brand#23'"),
            LocalPredicate("P", 1 / 40, None, "p_container = 'MED BOX'"),
            LocalPredicate(
                "L", 0.1, None, "l_quantity < 0.2 * avg (flattened)"
            ),
        ),
        description="Small-quantity-order revenue",
    )


def _q18(catalog: Catalog) -> QuerySpec:
    """Large volume customer.

    The HAVING sum(l_quantity) > 300 subquery keeps only orders whose
    total quantity exceeds 300 (at most ~7 lines x 50 qty = 350):
    roughly 1 order in 25,000 -> residual 4e-5 on ORDERS.  Groups per
    qualifying order.
    """
    return QuerySpec(
        name="Q18",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
        ),
        predicates=(
            LocalPredicate(
                "O", 4e-5, None, "sum(l_quantity) > 300 (flattened HAVING)"
            ),
        ),
        group_by=(("O", "O_ORDERKEY"), ("C", "C_CUSTKEY")),
        order_by=(("O", "O_TOTALPRICE"),),
        description="Large volume customer",
    )


def _q19(catalog: Catalog) -> QuerySpec:
    """Discounted revenue (a paper callout: the LINEITEM-PART join
    method flips between hash join and index nested loops with the
    relative cost of sequential vs random I/O, Section 8.1.1).

    A disjunction of three brand/container/quantity/size conjunctions.
    On PART: 3 branches x (brand 1/25 x containers 4/40 x sizes ~0.9)
    ~= 0.011, residual (OR is not sargable here).  On LINEITEM:
    shipmode in (AIR, AIR REG) 2/7 x instruct 'DELIVER IN PERSON' 1/4
    x quantity windows ~0.4 ~= 0.029, residual.
    """
    return QuerySpec(
        name="Q19",
        tables=(TableRef("L", "LINEITEM"), TableRef("P", "PART")),
        joins=(JoinPredicate("L", "L_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(
            LocalPredicate(
                "P", 0.011, None, "brand/container/size disjunction"
            ),
            LocalPredicate(
                "L", 0.029, None, "shipmode/instruct/quantity disjunction"
            ),
        ),
        description="Discounted revenue",
    )


def _q20(catalog: Catalog) -> QuerySpec:
    """Potential part promotion (the paper's most sensitive query:
    nearly an order of magnitude worse than the rest in Figure 6,
    driven by the PART-PARTSUPP join method and the PARTSUPP index).

    Flattened nesting: SUPPLIER-NATION gate, PARTSUPP filtered through
    PART (p_name LIKE 'forest%': first of 92 words -> 1/92, a prefix
    match, sargable on P_NAME) and through LINEITEM (availqty vs half
    the year's shipments; l_shipdate in one year: 365/2526, sargable
    L_SD).  The LINEITEM-PARTSUPP edge pair carries the 0.25
    conditional suppkey selectivity as in Q9.
    """
    return QuerySpec(
        name="Q20",
        tables=(
            TableRef("S", "SUPPLIER"),
            TableRef("N", "NATION"),
            TableRef("PS", "PARTSUPP"),
            TableRef("P", "PART"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
            JoinPredicate("PS", "PS_SUPPKEY", "S", "S_SUPPKEY"),
            JoinPredicate("PS", "PS_PARTKEY", "P", "P_PARTKEY"),
            JoinPredicate("L", "L_PARTKEY", "PS", "PS_PARTKEY"),
            JoinPredicate(
                "L", "L_SUPPKEY", "PS", "PS_SUPPKEY", selectivity=0.25
            ),
        ),
        predicates=(
            LocalPredicate("N", 1 / 25, "N_NAME", "n_name = 'CANADA'"),
            LocalPredicate(
                "P", 1 / 92, "P_NAME", "p_name LIKE 'forest%'"
            ),
            LocalPredicate(
                "L", 365 / _SHIPDATE_SPAN, "L_SHIPDATE",
                "l_shipdate in one year",
            ),
        ),
        order_by=(("S", "S_NAME"),),
        description="Potential part promotion",
    )


def _q21(catalog: Catalog) -> QuerySpec:
    """Suppliers who kept orders waiting.

    Self-join on LINEITEM: L2 is the EXISTS alias (another supplier on
    the same order).  The explicit edge selectivity models the
    semi-join: an L1 row finds a qualifying L2 row with probability
    ~0.75, so sel = 0.75 / |LINEITEM| (computed from the catalog so it
    holds at any scale factor).  o_orderstatus = 'F': ~48.6%.
    n_name: 1/25.  l1.receiptdate > l1.commitdate: ~0.5 residual.
    The NOT EXISTS (L3) branch only tightens the same access pattern
    and is folded away.
    """
    lineitem_rows = catalog.row_count("LINEITEM")
    semi_selectivity = min(1.0, 0.75 / lineitem_rows)
    return QuerySpec(
        name="Q21",
        tables=(
            TableRef("S", "SUPPLIER"),
            TableRef("L1", "LINEITEM"),
            TableRef("O", "ORDERS"),
            TableRef("N", "NATION"),
            TableRef("L2", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("S", "S_SUPPKEY", "L1", "L_SUPPKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L1", "L_ORDERKEY"),
            JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
            JoinPredicate(
                "L1",
                "L_ORDERKEY",
                "L2",
                "L_ORDERKEY",
                selectivity=semi_selectivity,
            ),
        ),
        predicates=(
            LocalPredicate("O", 0.486, None, "o_orderstatus = 'F'"),
            LocalPredicate("N", 1 / 25, "N_NAME", "n_name = 'SAUDI ARABIA'"),
            LocalPredicate(
                "L1", 0.5, None, "l1.receiptdate > l1.commitdate"
            ),
        ),
        group_by=(("S", "S_NAME"),),
        order_by=(("S", "S_NAME"),),
        description="Suppliers who kept orders waiting",
    )


def _q22(catalog: Catalog) -> QuerySpec:
    """Global sales opportunity.

    CUSTOMER anti-join ORDERS (NOT EXISTS), modelled as a join whose
    edge selectivity yields the customers-without-orders cardinality:
    1/3 of customers have no orders, so sel = |C|/3 / (|C| x |O|) =
    1 / (3 |O|) (catalog-derived).  Phone country code in 7 of 25:
    0.28 residual.  acctbal above the positive average: ~0.45
    residual.  Groups per country code (7).
    """
    orders_rows = catalog.row_count("ORDERS")
    anti_selectivity = min(1.0, 1.0 / (3.0 * orders_rows))
    return QuerySpec(
        name="Q22",
        tables=(TableRef("C", "CUSTOMER"), TableRef("O", "ORDERS")),
        joins=(
            JoinPredicate(
                "C",
                "C_CUSTKEY",
                "O",
                "O_CUSTKEY",
                selectivity=anti_selectivity,
            ),
        ),
        predicates=(
            LocalPredicate("C", 7 / 25, None, "phone country code in 7"),
            LocalPredicate("C", 0.45, None, "acctbal above positive avg"),
        ),
        group_by=(("C", "C_PHONE"),),
        order_by=(("C", "C_PHONE"),),
        description="Global sales opportunity",
    )


_BUILDERS = {
    "Q1": _q1, "Q2": _q2, "Q3": _q3, "Q4": _q4, "Q5": _q5, "Q6": _q6,
    "Q7": _q7, "Q8": _q8, "Q9": _q9, "Q10": _q10, "Q11": _q11,
    "Q12": _q12, "Q13": _q13, "Q14": _q14, "Q15": _q15, "Q16": _q16,
    "Q17": _q17, "Q18": _q18, "Q19": _q19, "Q20": _q20, "Q21": _q21,
    "Q22": _q22,
}


def tpch_query(name: str, catalog: Catalog) -> QuerySpec:
    """Build one TPC-H query spec (``name`` like ``"Q5"``)."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise KeyError(
            f"unknown TPC-H query {name!r}; expected Q1..Q22"
        ) from None
    return builder(catalog)


def build_tpch_queries(catalog: Catalog) -> dict[str, QuerySpec]:
    """All 22 TPC-H queries, keyed ``Q1``..``Q22`` in order."""
    return {name: _BUILDERS[name](catalog) for name in TPCH_QUERY_NAMES}
