"""Optimizer statistics: cardinalities, widths, index shapes.

These are the numbers a ``RUNSTATS``-style utility would produce and
``db2look`` would export — exactly the artefact the paper transplanted
from IBM's published 100 GB TPC-H run into an empty test database
(Section 7.2).  Our TPC-H statistics are derived analytically from the
dbgen specification instead (see :mod:`repro.catalog.tpch`), which is
equivalent for the optimizer since dbgen data is deterministic.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Mapping

from .schema import Index, Schema, Table

__all__ = [
    "ColumnStats",
    "TableStats",
    "IndexStats",
    "CatalogStats",
    "Catalog",
    "DEFAULT_PAGE_SIZE",
]

#: Default page size in bytes (DB2 used 4 KB pages in the FDR run).
DEFAULT_PAGE_SIZE = 4096

#: Page fill factor for data pages.
DATA_FILL = 0.96

#: Page fill factor for index leaf pages.
INDEX_FILL = 0.70

#: Bytes per index entry beyond the key itself (RID + overhead).
RID_WIDTH = 8


@dataclass(frozen=True)
class ColumnStats:
    """Per-column statistics (COLCARD analogue)."""

    n_distinct: float
    null_fraction: float = 0.0

    def __post_init__(self) -> None:
        if self.n_distinct < 1:
            raise ValueError("n_distinct must be >= 1")
        if not 0.0 <= self.null_fraction <= 1.0:
            raise ValueError("null_fraction must be in [0, 1]")


@dataclass(frozen=True)
class TableStats:
    """Per-table statistics (CARD / NPAGES analogue)."""

    row_count: int
    row_width: int
    page_size: int = DEFAULT_PAGE_SIZE
    columns: Mapping[str, ColumnStats] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.row_count < 0:
            raise ValueError("row_count must be >= 0")
        if self.row_width <= 0:
            raise ValueError("row_width must be positive")

    @property
    def rows_per_page(self) -> int:
        usable = self.page_size * DATA_FILL
        return max(1, int(usable // self.row_width))

    @property
    def n_pages(self) -> int:
        if self.row_count == 0:
            return 1
        return math.ceil(self.row_count / self.rows_per_page)

    def column(self, name: str) -> ColumnStats:
        try:
            return self.columns[name]
        except KeyError:
            raise KeyError(f"no statistics for column {name!r}") from None


@dataclass(frozen=True)
class IndexStats:
    """Per-index statistics (NLEAF / NLEVELS / CLUSTERRATIO analogue).

    ``cluster_ratio`` in [0, 1]: fraction of fetches through the index
    that hit the next physical data page rather than a random one.  A
    clustered index has ratio ~1; a fully unclustered one ~0.
    """

    leaf_pages: int
    levels: int
    key_width: int
    cluster_ratio: float

    def __post_init__(self) -> None:
        if self.leaf_pages < 1:
            raise ValueError("leaf_pages must be >= 1")
        if self.levels < 1:
            raise ValueError("levels must be >= 1")
        if not 0.0 <= self.cluster_ratio <= 1.0:
            raise ValueError("cluster_ratio must be in [0, 1]")

    @classmethod
    def derive(
        cls,
        row_count: int,
        key_width: int,
        cluster_ratio: float,
        page_size: int = DEFAULT_PAGE_SIZE,
    ) -> "IndexStats":
        """Derive B-tree shape from row count and key width.

        Leaf pages hold ``fill * page / (key + RID)`` entries; internal
        fanout uses the same entry width.  Levels count the non-leaf
        height plus the leaf level (minimum 1).
        """
        entry_width = key_width + RID_WIDTH
        entries_per_leaf = max(2, int(page_size * INDEX_FILL // entry_width))
        leaf_pages = max(1, math.ceil(max(row_count, 1) / entries_per_leaf))
        fanout = max(2, int(page_size * INDEX_FILL // entry_width))
        levels = 1
        pages = leaf_pages
        while pages > 1:
            pages = math.ceil(pages / fanout)
            levels += 1
        return cls(
            leaf_pages=leaf_pages,
            levels=levels,
            key_width=key_width,
            cluster_ratio=cluster_ratio,
        )


@dataclass
class CatalogStats:
    """All statistics for a schema."""

    tables: dict[str, TableStats] = field(default_factory=dict)
    indexes: dict[str, IndexStats] = field(default_factory=dict)


class Catalog:
    """A schema plus its statistics — what the optimizer consumes."""

    def __init__(self, schema: Schema, stats: CatalogStats) -> None:
        for name in schema.tables:
            if name not in stats.tables:
                raise ValueError(f"missing statistics for table {name}")
        for name in schema.indexes:
            if name not in stats.indexes:
                raise ValueError(f"missing statistics for index {name}")
        self._schema = schema
        self._stats = stats

    @property
    def schema(self) -> Schema:
        return self._schema

    # ------------------------------------------------------------------
    # Table accessors
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        return self._schema.table(name)

    def table_stats(self, name: str) -> TableStats:
        self._schema.table(name)
        return self._stats.tables[name]

    def row_count(self, table: str) -> int:
        return self.table_stats(table).row_count

    def n_pages(self, table: str) -> int:
        return self.table_stats(table).n_pages

    def column_stats(self, table: str, column: str) -> ColumnStats:
        return self.table_stats(table).column(column)

    def table_names(self) -> tuple[str, ...]:
        return tuple(self._schema.tables)

    # ------------------------------------------------------------------
    # Index accessors
    # ------------------------------------------------------------------
    def index(self, name: str) -> Index:
        return self._schema.index(name)

    def index_stats(self, name: str) -> IndexStats:
        self._schema.index(name)
        return self._stats.indexes[name]

    def indexes_on(self, table: str) -> tuple[Index, ...]:
        return self._schema.indexes_on(table)

    def indexes_with_leading_column(
        self, table: str, column: str
    ) -> tuple[Index, ...]:
        return self._schema.indexes_with_leading_column(table, column)

    def clustered_index(self, table: str) -> Index | None:
        for index in self.indexes_on(table):
            if index.clustered:
                return index
        return None

    # ------------------------------------------------------------------
    # Derived quantities
    # ------------------------------------------------------------------
    def distinct_values(self, table: str, column: str) -> float:
        """COLCARD with a safe default of the table cardinality."""
        stats = self.table_stats(table)
        try:
            return stats.column(column).n_distinct
        except KeyError:
            return float(max(stats.row_count, 1))
