"""Database schema and statistics substrate.

Provides the structural objects (:class:`Table`, :class:`Index`,
:class:`Schema`), their statistics (:class:`TableStats`,
:class:`IndexStats`, :class:`Catalog`), and an analytic TPC-H catalog
builder (:func:`build_tpch_catalog`) replicating the statistics of the
paper's 100 GB benchmark database.
"""

from .schema import Column, Index, Schema, Table
from .statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    DEFAULT_PAGE_SIZE,
    IndexStats,
    TableStats,
)
from .tpch import (
    TPCH_TABLE_NAMES,
    build_tpch_catalog,
    tpch_row_count,
    tpch_schema,
)

__all__ = [
    "Catalog",
    "CatalogStats",
    "Column",
    "ColumnStats",
    "DEFAULT_PAGE_SIZE",
    "Index",
    "IndexStats",
    "Schema",
    "Table",
    "TableStats",
    "TPCH_TABLE_NAMES",
    "build_tpch_catalog",
    "tpch_row_count",
    "tpch_schema",
]
