"""Relational schema objects: tables, columns, indexes.

The optimizer never touches data — like the paper's setup, where IBM's
published statistics were transplanted into an *empty* database — so the
schema layer carries only structure (names, types, widths, keys) while
:mod:`repro.catalog.statistics` carries the numbers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

__all__ = ["Column", "Table", "Index", "Schema"]

#: Recognised column type tags (affects only default widths / docs).
COLUMN_TYPES = frozenset(
    {"integer", "bigint", "decimal", "char", "varchar", "date"}
)


@dataclass(frozen=True)
class Column:
    """One table column.

    ``width`` is the average stored width in bytes, used to derive page
    counts and index sizes.
    """

    name: str
    type: str
    width: int

    def __post_init__(self) -> None:
        if self.type not in COLUMN_TYPES:
            raise ValueError(f"unknown column type {self.type!r}")
        if self.width <= 0:
            raise ValueError("column width must be positive")


@dataclass(frozen=True)
class Table:
    """A base table definition."""

    name: str
    columns: tuple[Column, ...]
    primary_key: tuple[str, ...] = ()

    def __post_init__(self) -> None:
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column in table {self.name}")
        for key_col in self.primary_key:
            if key_col not in names:
                raise ValueError(
                    f"primary key column {key_col!r} not in {self.name}"
                )

    @property
    def column_names(self) -> tuple[str, ...]:
        return tuple(c.name for c in self.columns)

    def column(self, name: str) -> Column:
        for col in self.columns:
            if col.name == name:
                return col
        raise KeyError(f"no column {name!r} in table {self.name}")

    @property
    def row_width(self) -> int:
        """Average row width in bytes (sum of column widths)."""
        return sum(c.width for c in self.columns)


@dataclass(frozen=True)
class Index:
    """A B-tree index definition.

    ``clustered`` marks the index whose key order matches the physical
    row order (at most one per table); it drives the cost difference
    between clustered and unclustered range scans, the heart of the
    "access path complementary" plans of Section 5.6.
    """

    name: str
    table: str
    key_columns: tuple[str, ...]
    clustered: bool = False
    unique: bool = False

    def __post_init__(self) -> None:
        if not self.key_columns:
            raise ValueError("index must have at least one key column")
        if len(set(self.key_columns)) != len(self.key_columns):
            raise ValueError(f"duplicate key column in index {self.name}")

    @property
    def leading_column(self) -> str:
        return self.key_columns[0]


@dataclass
class Schema:
    """A set of tables and indexes with consistency checks."""

    tables: dict[str, Table] = field(default_factory=dict)
    indexes: dict[str, Index] = field(default_factory=dict)

    def add_table(self, table: Table) -> None:
        if table.name in self.tables:
            raise ValueError(f"table {table.name} already defined")
        self.tables[table.name] = table

    def add_index(self, index: Index) -> None:
        if index.name in self.indexes:
            raise ValueError(f"index {index.name} already defined")
        table = self.tables.get(index.table)
        if table is None:
            raise ValueError(
                f"index {index.name} references unknown table {index.table}"
            )
        for key_col in index.key_columns:
            table.column(key_col)  # raises KeyError if missing
        if index.clustered:
            for other in self.indexes_on(index.table):
                if other.clustered:
                    raise ValueError(
                        f"table {index.table} already has a clustered index"
                    )
        self.indexes[index.name] = index

    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            raise KeyError(f"unknown table {name!r}") from None

    def index(self, name: str) -> Index:
        try:
            return self.indexes[name]
        except KeyError:
            raise KeyError(f"unknown index {name!r}") from None

    def indexes_on(self, table: str) -> tuple[Index, ...]:
        return tuple(
            index for index in self.indexes.values() if index.table == table
        )

    def indexes_with_leading_column(
        self, table: str, column: str
    ) -> tuple[Index, ...]:
        """Indexes on ``table`` whose leading key is ``column``.

        These are the indexes usable for a sargable predicate or an
        index-probe join on that column.
        """
        return tuple(
            index
            for index in self.indexes_on(table)
            if index.leading_column == column
        )

    @classmethod
    def from_tables(
        cls,
        tables: Iterable[Table],
        indexes: Iterable[Index] = (),
    ) -> "Schema":
        schema = cls()
        for table in tables:
            schema.add_table(table)
        for index in indexes:
            schema.add_index(index)
        return schema
