"""Analytic TPC-H catalog at any scale factor (Section 7.2 substitute).

The paper transplanted statistics from IBM's published 100 GB TPC-H run
(the x350 Full Disclosure Report) into an empty database.  We do not
have that dump, but dbgen data is fully deterministic, so every
statistic RUNSTATS would compute is a closed-form function of the scale
factor.  This module derives them:

* row counts per the TPC-H specification (section 4.2.5 of the spec);
  LINEITEM's slightly irregular count is taken from the published
  values at the standard scale factors and scaled linearly elsewhere;
* average row widths from the column data types;
* column cardinalities from the dbgen value-generation rules (e.g.
  ``l_shipdate`` spans 2526 distinct days, ``p_type`` has 150 values);
* the index set used in IBM's benchmark run: primary keys on every
  table plus the foreign-key and date indexes the FDR lists (our set
  follows the FDR's shape; exact names differ).

Index clustering follows dbgen load order: LINEITEM and ORDERS arrive
in orderkey order, PARTSUPP in partkey order, and the other tables in
primary-key order, so each primary-key index is clustered and the
secondary indexes are unclustered.
"""

from __future__ import annotations

from .schema import Column, Index, Schema, Table
from .statistics import (
    Catalog,
    CatalogStats,
    ColumnStats,
    DEFAULT_PAGE_SIZE,
    IndexStats,
    TableStats,
)

__all__ = [
    "TPCH_TABLE_NAMES",
    "tpch_schema",
    "tpch_row_count",
    "build_tpch_catalog",
]

TPCH_TABLE_NAMES = (
    "REGION",
    "NATION",
    "SUPPLIER",
    "CUSTOMER",
    "PART",
    "PARTSUPP",
    "ORDERS",
    "LINEITEM",
)

#: Published LINEITEM row counts at standard scale factors (dbgen is
#: deterministic; these are the exact values).
_LINEITEM_ROWS = {
    1: 6_001_215,
    10: 59_986_052,
    30: 179_998_372,
    100: 600_037_902,
    300: 1_799_989_091,
    1000: 5_999_989_709,
}

#: Distinct shipping-related date spans (days) from the dbgen rules.
_N_SHIPDATE = 2_526
_N_COMMITDATE = 2_466
_N_RECEIPTDATE = 2_554
_N_ORDERDATE = 2_406


def tpch_row_count(table: str, scale_factor: float) -> int:
    """Row count of a TPC-H table at the given scale factor."""
    sf = float(scale_factor)
    if sf <= 0:
        raise ValueError("scale factor must be positive")
    fixed = {"REGION": 5, "NATION": 25}
    if table in fixed:
        return fixed[table]
    linear = {
        "SUPPLIER": 10_000,
        "CUSTOMER": 150_000,
        "PART": 200_000,
        "PARTSUPP": 800_000,
        "ORDERS": 1_500_000,
    }
    if table in linear:
        return max(1, round(linear[table] * sf))
    if table == "LINEITEM":
        exact = _LINEITEM_ROWS.get(int(sf)) if sf == int(sf) else None
        if exact is not None:
            return exact
        return max(1, round(6_000_000 * sf))
    raise KeyError(f"unknown TPC-H table {table!r}")


def _columns(*specs: tuple[str, str, int]) -> tuple[Column, ...]:
    return tuple(Column(name, type_, width) for name, type_, width in specs)


def tpch_schema() -> Schema:
    """The TPC-H schema with the FDR-style index set."""
    tables = [
        Table(
            "REGION",
            _columns(
                ("R_REGIONKEY", "integer", 4),
                ("R_NAME", "char", 25),
                ("R_COMMENT", "varchar", 95),
            ),
            primary_key=("R_REGIONKEY",),
        ),
        Table(
            "NATION",
            _columns(
                ("N_NATIONKEY", "integer", 4),
                ("N_NAME", "char", 25),
                ("N_REGIONKEY", "integer", 4),
                ("N_COMMENT", "varchar", 95),
            ),
            primary_key=("N_NATIONKEY",),
        ),
        Table(
            "SUPPLIER",
            _columns(
                ("S_SUPPKEY", "integer", 4),
                ("S_NAME", "char", 25),
                ("S_ADDRESS", "varchar", 25),
                ("S_NATIONKEY", "integer", 4),
                ("S_PHONE", "char", 15),
                ("S_ACCTBAL", "decimal", 8),
                ("S_COMMENT", "varchar", 63),
            ),
            primary_key=("S_SUPPKEY",),
        ),
        Table(
            "CUSTOMER",
            _columns(
                ("C_CUSTKEY", "integer", 4),
                ("C_NAME", "varchar", 18),
                ("C_ADDRESS", "varchar", 25),
                ("C_NATIONKEY", "integer", 4),
                ("C_PHONE", "char", 15),
                ("C_ACCTBAL", "decimal", 8),
                ("C_MKTSEGMENT", "char", 10),
                ("C_COMMENT", "varchar", 73),
            ),
            primary_key=("C_CUSTKEY",),
        ),
        Table(
            "PART",
            _columns(
                ("P_PARTKEY", "integer", 4),
                ("P_NAME", "varchar", 33),
                ("P_MFGR", "char", 25),
                ("P_BRAND", "char", 10),
                ("P_TYPE", "varchar", 21),
                ("P_SIZE", "integer", 4),
                ("P_CONTAINER", "char", 10),
                ("P_RETAILPRICE", "decimal", 8),
                ("P_COMMENT", "varchar", 14),
            ),
            primary_key=("P_PARTKEY",),
        ),
        Table(
            "PARTSUPP",
            _columns(
                ("PS_PARTKEY", "integer", 4),
                ("PS_SUPPKEY", "integer", 4),
                ("PS_AVAILQTY", "integer", 4),
                ("PS_SUPPLYCOST", "decimal", 8),
                ("PS_COMMENT", "varchar", 124),
            ),
            primary_key=("PS_PARTKEY", "PS_SUPPKEY"),
        ),
        Table(
            "ORDERS",
            _columns(
                ("O_ORDERKEY", "integer", 4),
                ("O_CUSTKEY", "integer", 4),
                ("O_ORDERSTATUS", "char", 1),
                ("O_TOTALPRICE", "decimal", 8),
                ("O_ORDERDATE", "date", 4),
                ("O_ORDERPRIORITY", "char", 15),
                ("O_CLERK", "char", 15),
                ("O_SHIPPRIORITY", "integer", 4),
                ("O_COMMENT", "varchar", 49),
            ),
            primary_key=("O_ORDERKEY",),
        ),
        Table(
            "LINEITEM",
            _columns(
                ("L_ORDERKEY", "integer", 4),
                ("L_PARTKEY", "integer", 4),
                ("L_SUPPKEY", "integer", 4),
                ("L_LINENUMBER", "integer", 4),
                ("L_QUANTITY", "decimal", 8),
                ("L_EXTENDEDPRICE", "decimal", 8),
                ("L_DISCOUNT", "decimal", 8),
                ("L_TAX", "decimal", 8),
                ("L_RETURNFLAG", "char", 1),
                ("L_LINESTATUS", "char", 1),
                ("L_SHIPDATE", "date", 4),
                ("L_COMMITDATE", "date", 4),
                ("L_RECEIPTDATE", "date", 4),
                ("L_SHIPINSTRUCT", "char", 25),
                ("L_SHIPMODE", "char", 10),
                ("L_COMMENT", "varchar", 27),
            ),
            primary_key=("L_ORDERKEY", "L_LINENUMBER"),
        ),
    ]
    indexes = [
        # Primary keys (clustered: dbgen load order).
        Index("R_PK", "REGION", ("R_REGIONKEY",), clustered=True, unique=True),
        Index("N_PK", "NATION", ("N_NATIONKEY",), clustered=True, unique=True),
        Index("S_PK", "SUPPLIER", ("S_SUPPKEY",), clustered=True, unique=True),
        Index("C_PK", "CUSTOMER", ("C_CUSTKEY",), clustered=True, unique=True),
        Index("P_PK", "PART", ("P_PARTKEY",), clustered=True, unique=True),
        Index(
            "PS_PK",
            "PARTSUPP",
            ("PS_PARTKEY", "PS_SUPPKEY"),
            clustered=True,
            unique=True,
        ),
        Index("O_PK", "ORDERS", ("O_ORDERKEY",), clustered=True, unique=True),
        Index(
            "L_PK",
            "LINEITEM",
            ("L_ORDERKEY", "L_LINENUMBER"),
            clustered=True,
            unique=True,
        ),
        # Foreign-key and date indexes (FDR-style secondary indexes).
        Index("S_NK", "SUPPLIER", ("S_NATIONKEY",)),
        Index("C_NK", "CUSTOMER", ("C_NATIONKEY",)),
        Index("PS_SK", "PARTSUPP", ("PS_SUPPKEY",)),
        Index("O_CK", "ORDERS", ("O_CUSTKEY",)),
        Index("O_OD", "ORDERS", ("O_ORDERDATE",)),
        Index("L_PK_SK", "LINEITEM", ("L_PARTKEY", "L_SUPPKEY")),
        Index("L_SK", "LINEITEM", ("L_SUPPKEY",)),
        Index("L_SD", "LINEITEM", ("L_SHIPDATE",)),
        Index("L_OK", "LINEITEM", ("L_ORDERKEY",)),
    ]
    return Schema.from_tables(tables, indexes)


def _column_cardinalities(sf: float) -> dict[str, dict[str, float]]:
    """COLCARD per table/column from the dbgen generation rules."""
    orders = tpch_row_count("ORDERS", sf)
    lineitem = tpch_row_count("LINEITEM", sf)
    part = tpch_row_count("PART", sf)
    supplier = tpch_row_count("SUPPLIER", sf)
    customer = tpch_row_count("CUSTOMER", sf)
    partsupp = tpch_row_count("PARTSUPP", sf)
    # dbgen gives orders to only 2/3 of customers.
    customers_with_orders = max(1.0, customer * 2.0 / 3.0)
    return {
        "REGION": {"R_REGIONKEY": 5, "R_NAME": 5},
        "NATION": {
            "N_NATIONKEY": 25,
            "N_NAME": 25,
            "N_REGIONKEY": 5,
        },
        "SUPPLIER": {
            "S_SUPPKEY": supplier,
            "S_NAME": supplier,
            "S_NATIONKEY": 25,
            "S_ACCTBAL": min(supplier, 999_999),
        },
        "CUSTOMER": {
            "C_CUSTKEY": customer,
            "C_NAME": customer,
            "C_NATIONKEY": 25,
            "C_MKTSEGMENT": 5,
            "C_ACCTBAL": min(customer, 1_099_999),
        },
        "PART": {
            "P_PARTKEY": part,
            "P_NAME": part,
            "P_MFGR": 5,
            "P_BRAND": 25,
            "P_TYPE": 150,
            "P_SIZE": 50,
            "P_CONTAINER": 40,
            "P_RETAILPRICE": min(part, 120_000),
        },
        "PARTSUPP": {
            "PS_PARTKEY": part,
            "PS_SUPPKEY": supplier,
            "PS_AVAILQTY": 9_999,
            "PS_SUPPLYCOST": min(partsupp, 99_901),
        },
        "ORDERS": {
            "O_ORDERKEY": orders,
            "O_CUSTKEY": customers_with_orders,
            "O_ORDERSTATUS": 3,
            "O_TOTALPRICE": min(orders, 25_000_000),
            "O_ORDERDATE": _N_ORDERDATE,
            "O_ORDERPRIORITY": 5,
            "O_CLERK": max(1.0, sf * 1_000),
            "O_SHIPPRIORITY": 1,
        },
        "LINEITEM": {
            "L_ORDERKEY": orders,
            "L_PARTKEY": part,
            "L_SUPPKEY": supplier,
            "L_LINENUMBER": 7,
            "L_QUANTITY": 50,
            "L_EXTENDEDPRICE": min(lineitem, 3_800_000),
            "L_DISCOUNT": 11,
            "L_TAX": 9,
            "L_RETURNFLAG": 3,
            "L_LINESTATUS": 2,
            "L_SHIPDATE": _N_SHIPDATE,
            "L_COMMITDATE": _N_COMMITDATE,
            "L_RECEIPTDATE": _N_RECEIPTDATE,
            "L_SHIPINSTRUCT": 4,
            "L_SHIPMODE": 7,
        },
    }


def build_tpch_catalog(
    scale_factor: float = 100.0,
    page_size: int = DEFAULT_PAGE_SIZE,
) -> Catalog:
    """Build the full TPC-H catalog at ``scale_factor``.

    The default of 100 matches the paper's 100 GB database.
    """
    schema = tpch_schema()
    cardinalities = _column_cardinalities(scale_factor)
    stats = CatalogStats()
    for name, table in schema.tables.items():
        row_count = tpch_row_count(name, scale_factor)
        columns = {
            column: ColumnStats(n_distinct=min(distinct, max(row_count, 1)))
            for column, distinct in cardinalities.get(name, {}).items()
        }
        stats.tables[name] = TableStats(
            row_count=row_count,
            row_width=table.row_width,
            page_size=page_size,
            columns=columns,
        )
    clustered_keys = {
        index.table: index.key_columns
        for index in schema.indexes.values()
        if index.clustered
    }
    for name, index in schema.indexes.items():
        table = schema.table(index.table)
        key_width = sum(table.column(c).width for c in index.key_columns)
        # An index whose key is a prefix of the physical (clustered)
        # order is effectively clustered too: e.g. L_OK on (L_ORDERKEY)
        # follows the same order as the (L_ORDERKEY, L_LINENUMBER) PK.
        physical = clustered_keys.get(index.table, ())
        correlated = index.key_columns == physical[: len(index.key_columns)]
        stats.indexes[name] = IndexStats.derive(
            row_count=tpch_row_count(index.table, scale_factor),
            key_width=key_width,
            cluster_ratio=1.0 if (index.clustered or correlated) else 0.0,
            page_size=page_size,
        )
    return Catalog(schema, stats)
