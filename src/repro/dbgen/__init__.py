"""Miniature deterministic TPC-H data generator."""

from .generator import TPCHData, generate_tpch

__all__ = ["TPCHData", "generate_tpch"]
