"""Miniature deterministic TPC-H data generator.

Generates columnar TPC-H data at small scale factors for the executor
validation experiments (the paper never executes queries — dbgen data
here exists to check that the optimizer's usage vectors track I/O a
real execution would incur).

The generator follows dbgen's structural rules — cardinalities per
:func:`repro.catalog.tpch.tpch_row_count`, four suppliers per part,
1–7 lineitems per order, orders for two-thirds of customers, the
documented date spans — with simplified value distributions (uniform
where dbgen uses mild skew).  Dates are integer day offsets from
1992-01-01.  Everything is seeded and reproducible.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..catalog.tpch import tpch_row_count

__all__ = ["TPCHData", "generate_tpch"]

#: Day-offset spans matching the catalog's distinct counts.
ORDERDATE_SPAN = 2406
SHIPDATE_OFFSET_MAX = 121
RECEIPT_OFFSET_MAX = 30


@dataclass
class TPCHData:
    """Columnar TPC-H data: ``tables[table][column] -> np.ndarray``."""

    scale_factor: float
    tables: dict[str, dict[str, np.ndarray]] = field(default_factory=dict)

    def row_count(self, table: str) -> int:
        columns = self.tables[table]
        first = next(iter(columns.values()))
        return len(first)

    def column(self, table: str, column: str) -> np.ndarray:
        return self.tables[table][column]


def generate_tpch(
    scale_factor: float = 0.01, seed: int = 0
) -> TPCHData:
    """Generate the eight TPC-H tables at ``scale_factor``.

    Intended for small scale factors (<= 0.1); memory grows linearly at
    roughly 10 MB per 0.01 of scale.
    """
    rng = np.random.default_rng(seed)
    data = TPCHData(scale_factor=scale_factor)

    n_supplier = tpch_row_count("SUPPLIER", scale_factor)
    n_customer = tpch_row_count("CUSTOMER", scale_factor)
    n_part = tpch_row_count("PART", scale_factor)
    n_orders = tpch_row_count("ORDERS", scale_factor)

    data.tables["REGION"] = {
        "R_REGIONKEY": np.arange(5),
        "R_NAME": np.arange(5),
    }
    data.tables["NATION"] = {
        "N_NATIONKEY": np.arange(25),
        "N_NAME": np.arange(25),
        "N_REGIONKEY": np.arange(25) % 5,
    }
    data.tables["SUPPLIER"] = {
        "S_SUPPKEY": np.arange(1, n_supplier + 1),
        "S_NATIONKEY": rng.integers(0, 25, n_supplier),
        "S_ACCTBAL": rng.uniform(-999.99, 9999.99, n_supplier),
    }
    data.tables["CUSTOMER"] = {
        "C_CUSTKEY": np.arange(1, n_customer + 1),
        "C_NATIONKEY": rng.integers(0, 25, n_customer),
        "C_MKTSEGMENT": rng.integers(0, 5, n_customer),
        "C_ACCTBAL": rng.uniform(-999.99, 9999.99, n_customer),
    }
    data.tables["PART"] = {
        "P_PARTKEY": np.arange(1, n_part + 1),
        "P_BRAND": rng.integers(0, 25, n_part),
        "P_TYPE": rng.integers(0, 150, n_part),
        "P_SIZE": rng.integers(1, 51, n_part),
        "P_CONTAINER": rng.integers(0, 40, n_part),
    }

    # PARTSUPP: exactly four suppliers per part (dbgen's rule), spread
    # deterministically over the supplier space.
    part_keys = np.repeat(np.arange(1, n_part + 1), 4)
    offsets = np.tile(np.arange(4), n_part)
    supp_keys = (
        (part_keys + offsets * (n_supplier // 4 + 1)) % n_supplier
    ) + 1
    data.tables["PARTSUPP"] = {
        "PS_PARTKEY": part_keys,
        "PS_SUPPKEY": supp_keys,
        "PS_AVAILQTY": rng.integers(1, 10_000, len(part_keys)),
        "PS_SUPPLYCOST": rng.uniform(1.0, 1000.0, len(part_keys)),
    }

    # ORDERS: only two-thirds of customers place orders.
    customers_with_orders = np.arange(1, n_customer + 1)
    customers_with_orders = customers_with_orders[
        customers_with_orders % 3 != 0
    ]
    order_dates = rng.integers(0, ORDERDATE_SPAN, n_orders)
    data.tables["ORDERS"] = {
        "O_ORDERKEY": np.arange(1, n_orders + 1),
        "O_CUSTKEY": rng.choice(customers_with_orders, n_orders),
        "O_ORDERDATE": order_dates,
        "O_ORDERPRIORITY": rng.integers(0, 5, n_orders),
        "O_ORDERSTATUS": rng.integers(0, 3, n_orders),
    }

    # LINEITEM: 1-7 lines per order; dates derived from the order date.
    lines_per_order = rng.integers(1, 8, n_orders)
    l_orderkey = np.repeat(
        data.tables["ORDERS"]["O_ORDERKEY"], lines_per_order
    )
    n_lineitem = len(l_orderkey)
    l_partkey = rng.integers(1, n_part + 1, n_lineitem)
    # Each lineitem's supplier is one of its part's four suppliers.
    supplier_slot = rng.integers(0, 4, n_lineitem)
    l_suppkey = (
        (l_partkey + supplier_slot * (n_supplier // 4 + 1)) % n_supplier
    ) + 1
    l_orderdate = np.repeat(order_dates, lines_per_order)
    l_shipdate = l_orderdate + rng.integers(
        1, SHIPDATE_OFFSET_MAX + 1, n_lineitem
    )
    l_receiptdate = l_shipdate + rng.integers(
        1, RECEIPT_OFFSET_MAX + 1, n_lineitem
    )
    l_commitdate = l_orderdate + rng.integers(30, 121, n_lineitem)
    data.tables["LINEITEM"] = {
        "L_ORDERKEY": l_orderkey,
        "L_LINENUMBER": np.concatenate(
            [np.arange(1, k + 1) for k in lines_per_order]
        ),
        "L_PARTKEY": l_partkey,
        "L_SUPPKEY": l_suppkey,
        "L_QUANTITY": rng.integers(1, 51, n_lineitem),
        "L_DISCOUNT": rng.integers(0, 11, n_lineitem) / 100.0,
        "L_EXTENDEDPRICE": rng.uniform(900.0, 105_000.0, n_lineitem),
        "L_SHIPDATE": l_shipdate,
        "L_COMMITDATE": l_commitdate,
        "L_RECEIPTDATE": l_receiptdate,
        "L_RETURNFLAG": rng.integers(0, 3, n_lineitem),
        "L_SHIPMODE": rng.integers(0, 7, n_lineitem),
    }
    return data
