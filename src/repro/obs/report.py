"""Human-readable rendering of run manifests (``repro report``).

One manifest renders into a provenance header, a per-phase wall/CPU
breakdown of the span tree, the metric snapshot, and a cache summary.
Two manifests render into a reproducibility diff: do the result digests
match, which metric totals moved, and how the timings compare — the
workflow for answering "why do these two runs differ?".
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from .manifest import _FIELDS_ADDED_IN

__all__ = ["render_manifest", "render_comparison"]

_INDENT = "  "

#: Span attrs written by ``--memprof``; rendered as table columns, not
#: inline attributes.
_MEM_ATTRS = ("mem_rss_kb", "mem_traced_peak_kb", "mem_traced_kb")


def _format_attrs(attrs: Mapping[str, Any]) -> str:
    if not attrs:
        return ""
    parts = ", ".join(
        f"{key}={value}" for key, value in sorted(attrs.items())
    )
    return f"  [{parts}]"


def _format_kb(value: Any) -> str:
    if not isinstance(value, (int, float)):
        return "-"
    if value >= 1024:
        return f"{value / 1024:.1f}MB"
    return f"{value:.0f}KB"


def _has_memprof(trace: Any) -> bool:
    stack = list(trace or ())
    while stack:
        node = stack.pop()
        attrs = node.get("attrs") or {}
        if any(key in attrs for key in _MEM_ATTRS):
            return True
        stack.extend(node.get("children") or ())
    return False


def _span_lines(
    node: Mapping[str, Any],
    depth: int,
    lines: list[str],
    memprof: bool = False,
) -> None:
    label = _INDENT * depth + str(node.get("name", "?"))
    attrs = dict(node.get("attrs") or {})
    columns = (
        f"{label:<44} {node.get('wall_seconds', 0.0):9.3f}s "
        f"{node.get('cpu_seconds', 0.0):9.3f}s"
    )
    if memprof:
        rss = attrs.pop("mem_rss_kb", None)
        peak = attrs.pop("mem_traced_peak_kb", None)
        attrs.pop("mem_traced_kb", None)
        columns += f" {_format_kb(rss):>9} {_format_kb(peak):>9}"
    lines.append(columns + _format_attrs(attrs))
    for child in node.get("children") or ():
        _span_lines(child, depth + 1, lines, memprof)


def _cache_summary(counters: Mapping[str, Any]) -> "str | None":
    hits = counters.get("plancache.hits", 0)
    misses = counters.get("plancache.misses", 0)
    corrupt = counters.get("plancache.corrupt", 0)
    if not (hits or misses or corrupt):
        return None
    total = hits + misses
    rate = 100.0 * hits / total if total else 0.0
    return (
        f"plan cache: {hits} hits, {misses} misses "
        f"({corrupt} corrupt) — {rate:.0f}% hit rate"
    )


def _planindex_summary(counters: Mapping[str, Any]) -> "str | None":
    probes = counters.get("planindex.probes", 0)
    if not probes:
        return None
    fallbacks = counters.get("planindex.exact_fallbacks", 0)
    pruned = counters.get("planindex.pruned", 0)
    visited = counters.get("planindex.leaf_visits", 0)
    scanned = pruned + visited
    prune_rate = 100.0 * pruned / scanned if scanned else 0.0
    summary = (
        f"plan index: {probes} lookups, {fallbacks} dense fallbacks "
        f"({100.0 * fallbacks / probes:.1f}%) — {prune_rate:.0f}% of "
        "candidate rows pruned"
    )
    reasons = [
        (reason, counters.get(
            f"planindex.exact_fallbacks.{reason}", 0
        ))
        for reason in ("near_tie", "invalid_probe", "weak_certificate")
    ]
    if any(count for _, count in reasons):
        summary += "\n" + _INDENT + "fallback reasons: " + ", ".join(
            f"{reason.replace('_', '-')} {count}"
            for reason, count in reasons
        )
    return summary


def render_manifest(manifest: Mapping[str, Any]) -> str:
    """One manifest as a phase/time/cache breakdown."""
    lines: list[str] = []
    created = manifest.get("created_unix")
    when = (
        time.strftime("%Y-%m-%d %H:%M:%S UTC", time.gmtime(created))
        if isinstance(created, (int, float)) else "?"
    )
    timing = manifest.get("timing") or {}
    lines.append(
        f"run: repro {manifest.get('command', '?')}  ({when})"
    )
    lines.append(
        f"version {manifest.get('package_version', '?')}  "
        f"git {str(manifest.get('git_sha') or 'unknown')[:12]}  "
        f"schema v{manifest.get('schema_version', '?')}"
    )
    environment = manifest.get("environment") or {}
    if environment:
        lines.append(
            f"python {environment.get('python', '?')} on "
            f"{environment.get('platform', '?')}  "
            f"numpy {environment.get('numpy', '?')}"
        )
    lines.append(
        f"total: {timing.get('wall_seconds', 0.0):.3f}s wall, "
        f"{timing.get('cpu_seconds', 0.0):.3f}s cpu"
    )
    catalog_sha = manifest.get("catalog_digest")
    if catalog_sha:
        lines.append(f"catalog digest: {catalog_sha[:16]}…")
    seeds = manifest.get("seeds") or {}
    if seeds:
        lines.append(
            "seeds: " + ", ".join(
                f"{name}={value}"
                for name, value in sorted(seeds.items())
            )
        )

    digests = manifest.get("result_digests") or {}
    if digests:
        lines.append("")
        lines.append("result digests:")
        for name, value in sorted(digests.items()):
            lines.append(f"  {name:<20} {value}")

    tasks = manifest.get("tasks") or {}
    if tasks.get("planned"):
        lines.append("")
        summary = (
            f"tasks: {tasks.get('completed', 0)}/"
            f"{tasks.get('planned', 0)} completed"
        )
        if tasks.get("resumed"):
            summary += f", {tasks['resumed']} resumed from journal"
        if tasks.get("retried"):
            summary += f", {tasks['retried']} retries"
        failed = tasks.get("failed") or []
        if failed:
            summary += f", {len(failed)} FAILED (run has holes)"
        lines.append(summary)
        for entry in failed:
            lines.append(
                f"  FAILED {entry.get('label', '?'):<24} "
                f"after {entry.get('attempts', '?')} attempt(s): "
                f"{entry.get('error', '?')}"
            )

    trace = manifest.get("trace")
    lines.append("")
    if trace:
        memprof = _has_memprof(trace)
        header = f"{'phase':<44} {'wall':>10} {'cpu':>10}"
        if memprof:
            header += f" {'rss':>9} {'py-peak':>9}"
        lines.append(header)
        lines.append("-" * len(header))
        for node in trace:
            _span_lines(node, 0, lines, memprof)
    else:
        lines.append("phases: (no trace recorded — rerun with --trace)")

    metrics = manifest.get("metrics") or {}
    counters = metrics.get("counters") or {}
    gauges = metrics.get("gauges") or {}
    histograms = metrics.get("histograms") or {}
    if not (counters or gauges or histograms):
        lines.append("")
        lines.append("metrics: (none recorded)")
    else:
        lines.append("")
        lines.append("metrics:")
        for name, value in sorted(counters.items()):
            lines.append(f"  {name:<36} {value:>14,}")
        for name, value in sorted(gauges.items()):
            lines.append(f"  {name:<36} {value:>14}")
        for name, state in sorted(histograms.items()):
            count = state.get("count", 0)
            mean = (
                state.get("sum", 0.0) / count if count else 0.0
            )
            lines.append(
                f"  {name:<36} n={count} mean={mean:.3g} "
                f"min={state.get('min')} max={state.get('max')}"
            )
    summary = _cache_summary(counters)
    if summary:
        lines.append("")
        lines.append(summary)
    index_summary = _planindex_summary(counters)
    if index_summary:
        lines.append("")
        lines.append(index_summary)
    _profile_lines(manifest.get("profile"), lines)
    _timeseries_lines(manifest.get("timeseries"), lines)
    _decisions_lines(manifest.get("decisions"), lines)
    return "\n".join(lines)


def _profile_lines(
    profile: "Mapping[str, Any] | None", lines: list[str]
) -> None:
    """The ``--profile`` hot-function table of a manifest."""
    if not profile:
        return
    lines.append("")
    lines.append(
        f"profile: {profile.get('samples', 0)} samples at "
        f"{profile.get('hz', '?')} Hz over "
        f"{profile.get('duration_seconds', 0.0):.2f}s "
        f"({profile.get('distinct_stacks', 0)} distinct stacks)"
    )
    top = profile.get("top") or []
    if not top:
        return
    header = f"{'hot function':<56} {'total':>7} {'self':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for entry in top:
        lines.append(
            f"{str(entry.get('frame', '?')):<56} "
            f"{entry.get('total_samples', 0):>7} "
            f"{entry.get('self_samples', 0):>7}"
        )


def _timeseries_lines(
    timeseries: "Mapping[str, Any] | None", lines: list[str]
) -> None:
    """The ``--timeseries`` counter-track summary of a manifest."""
    if not timeseries:
        return
    lines.append("")
    lines.append(
        f"timeseries: {timeseries.get('samples', 0)} samples every "
        f"{timeseries.get('interval_seconds', 0.0):.2f}s over "
        f"{timeseries.get('duration_seconds', 0.0):.2f}s"
    )
    counters = timeseries.get("counters") or {}
    if not counters:
        return
    header = (
        f"{'counter track':<44} {'first':>10} {'last':>10} "
        f"{'peak':>10}"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for name, track in sorted(counters.items()):
        lines.append(
            f"{name:<44} {track.get('first', 0):>10,} "
            f"{track.get('last', 0):>10,} {track.get('peak', 0):>10,}"
        )


def _decade_label(key: str) -> str:
    """A decade-bucket key rendered as a magnitude (``"-3"`` → 1e-3)."""
    if key == "tie":
        return "tie"
    try:
        return f"1e{int(key)}"
    except (TypeError, ValueError):
        return str(key)


def _decade_sort_key(key: str) -> "tuple[int, float]":
    if key == "tie":
        return (0, 0.0)
    try:
        return (1, float(key))
    except (TypeError, ValueError):
        return (2, 0.0)


def _decisions_lines(
    decisions: "Mapping[str, Any] | None", lines: list[str]
) -> None:
    """The ``--decisions`` fragility table of a manifest."""
    if not decisions:
        return
    lines.append("")
    lines.append(
        f"decisions: {decisions.get('probes', 0)} probes observed, "
        f"{decisions.get('sampled', 0)} sampled "
        f"(bottom-{decisions.get('sample_k', 0)} by hash), "
        f"{decisions.get('near_plane', 0)} within "
        f"{decisions.get('epsilon', 0.0):g} of a switchover plane"
    )
    paths = decisions.get("paths") or {}
    if paths:
        lines.append(
            _INDENT + "lookup paths: " + ", ".join(
                f"{path} {count}"
                for path, count in sorted(paths.items())
            )
        )
    reasons = decisions.get("fallback_reasons") or {}
    if any(reasons.values()):
        order = ("near_tie", "invalid_probe", "weak_certificate")
        ordered = [r for r in order if r in reasons] + sorted(
            set(reasons) - set(order)
        )
        lines.append(
            _INDENT + "fallback reasons: " + ", ".join(
                f"{reason.replace('_', '-')} {reasons[reason]}"
                for reason in ordered
            )
        )
    contexts = decisions.get("contexts") or {}
    if contexts:
        lines.append("")
        header = (
            f"{'fragility by context':<34} {'probes':>8} "
            f"{'near-plane':>10} {'wrong':>12} {'margin-mean':>11}"
        )
        lines.append(header)
        lines.append("-" * len(header))
        for name, ctx in sorted(contexts.items()):
            margin = ctx.get("margin") or {}
            count = margin.get("count", 0)
            mean = (
                f"{margin.get('sum', 0.0) / count:.3g}"
                if count else "-"
            )
            with_ref = ctx.get("with_reference", 0)
            wrong = (
                f"{ctx.get('wrong', 0)}/{with_ref}"
                if with_ref else "-"
            )
            lines.append(
                f"{name:<34} {ctx.get('probes', 0):>8} "
                f"{ctx.get('near_plane', 0):>10} {wrong:>12} "
                f"{mean:>11}"
            )
    # Wrong-choice fraction by margin decade, merged across contexts
    # (column 0 counts all probes landing in the decade, column 1 the
    # ones where the stale reference plan differed from the winner).
    merged: dict[str, list[int]] = {}
    for ctx in contexts.values():
        for decade, pair in (ctx.get("decades") or {}).items():
            bucket = merged.setdefault(decade, [0, 0])
            bucket[0] += int(pair[0])
            bucket[1] += int(pair[1])
    if any(total for total, _ in merged.values()):
        lines.append("")
        lines.append("wrong-choice fraction by margin decade:")
        for decade in sorted(merged, key=_decade_sort_key):
            total, wrong_count = merged[decade]
            if not total:
                continue
            lines.append(
                f"{_INDENT}{_decade_label(decade):<8} "
                f"{wrong_count}/{total} "
                f"({100.0 * wrong_count / total:.1f}%)"
            )


def _top_level_walls(
    manifest: Mapping[str, Any]
) -> dict[str, float]:
    walls: dict[str, float] = {}
    for node in manifest.get("trace") or ():
        name = str(node.get("name", "?"))
        walls[name] = walls.get(name, 0.0) + float(
            node.get("wall_seconds", 0.0)
        )
    return walls


def _schema_notes(
    first: Mapping[str, Any], second: Mapping[str, Any]
) -> list[str]:
    """Notes for nullable blocks one manifest's schema predates.

    Diffing a v4 manifest (which may carry a ``decisions`` block)
    against a v2 one must say the block *cannot exist* on the older
    side rather than silently treating it as "not recorded".
    """
    notes: list[str] = []
    for added_in, fields in sorted(_FIELDS_ADDED_IN.items()):
        for field in sorted(fields):
            for older, newer in ((first, second), (second, first)):
                version = older.get("schema_version")
                if not isinstance(version, int) or version >= added_in:
                    continue
                if newer.get(field) is None:
                    continue
                notes.append(
                    f"note: {field} block absent in older schema "
                    f"(v{version} predates v{added_in}) — "
                    "not compared"
                )
    return notes


def render_comparison(
    first: Mapping[str, Any], second: Mapping[str, Any]
) -> str:
    """Diff two manifests: digests, metric totals, timings."""
    lines: list[str] = []
    lines.append(
        f"comparing: repro {first.get('command', '?')} "
        f"vs repro {second.get('command', '?')}"
    )

    digests_a = first.get("result_digests") or {}
    digests_b = second.get("result_digests") or {}
    names = sorted(set(digests_a) | set(digests_b))
    identical = bool(names) and all(
        digests_a.get(name) == digests_b.get(name) for name in names
    )
    lines.append("")
    if not names:
        lines.append("result digests: none recorded")
    elif identical:
        lines.append(
            f"result digests: IDENTICAL ({len(names)} artefacts) — "
            "the runs reproduce bit-exactly"
        )
    else:
        lines.append("result digests: DIFFER")
        for name in names:
            status = (
                "match" if digests_a.get(name) == digests_b.get(name)
                else "MISMATCH"
            )
            lines.append(f"  {name:<20} {status}")
    failed_a = len((first.get("tasks") or {}).get("failed") or [])
    failed_b = len((second.get("tasks") or {}).get("failed") or [])
    if failed_a or failed_b:
        lines.append(
            f"note: runs have skipped-task holes "
            f"({failed_a} vs {failed_b}) — digests cover only the "
            "tasks that completed"
        )

    for note in _schema_notes(first, second):
        lines.append(note)

    counters_a = (first.get("metrics") or {}).get("counters") or {}
    counters_b = (second.get("metrics") or {}).get("counters") or {}
    moved = [
        name
        for name in sorted(set(counters_a) | set(counters_b))
        if counters_a.get(name, 0) != counters_b.get(name, 0)
    ]
    lines.append("")
    if not moved:
        lines.append("metric totals: identical")
    else:
        lines.append("metric totals that differ:")
        for name in moved:
            lines.append(
                f"  {name:<36} {counters_a.get(name, 0):>12,} -> "
                f"{counters_b.get(name, 0):>12,}"
            )

    timing_a = (first.get("timing") or {}).get("wall_seconds", 0.0)
    timing_b = (second.get("timing") or {}).get("wall_seconds", 0.0)
    lines.append("")
    lines.append(
        f"wall time: {timing_a:.3f}s vs {timing_b:.3f}s"
        + (
            f"  ({timing_a / timing_b:.2f}x)"
            if timing_b else ""
        )
    )
    walls_a = _top_level_walls(first)
    walls_b = _top_level_walls(second)
    for name in sorted(set(walls_a) | set(walls_b)):
        lines.append(
            f"  {name:<36} {walls_a.get(name, 0.0):9.3f}s vs "
            f"{walls_b.get(name, 0.0):9.3f}s"
        )
    return "\n".join(lines)
