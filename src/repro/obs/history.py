"""Append-only perf history + the multi-run trend gate.

``repro bench --compare`` answers "did *this* run regress against
*that* baseline?" — a pairwise question that misses slow drift (five
consecutive +10% PRs never trip a 15% pairwise gate) and single-run
noise (one unlucky baseline poisons every later comparison).  This
module keeps the whole trajectory instead:

* **the store** — ``benchmarks/history.jsonl`` (or
  ``$REPRO_HISTORY_DIR/history.jsonl``), one JSON object per line,
  append-only.  Entries are tiny: a series key, a value in seconds,
  and provenance (git SHA, catalog digest, source file, timestamp).
  Every benchmark session appends automatically through the pytest
  plugin (``benchmarks/conftest.py``); BENCH records and run
  manifests can be ingested after the fact with
  ``repro bench RECORD --append-history`` /
  ``repro report MANIFEST --append-history``.
* **series** — one per measured quantity: ``bench:<module>/<test>``
  for benchmark medians, ``manifest:<command>/<phase>`` for top-level
  span timings and ``manifest:<command>/total`` for whole-run wall
  time.
* **the gate** — :func:`detect_trends` judges the newest point of each
  series against the *median of the preceding window* with a MAD
  band: robust to one-off noise (the median ignores it), sensitive to
  real shifts (a 2x jump clears any sane band).  A change-point flag
  marks shifts sustained over the latest two points — the signature
  of an actual regression rather than a noisy sample.  ``repro bench
  trend`` renders the verdict and exits non-zero on regressions.
"""

from __future__ import annotations

import json
import logging
import math
import os
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "HISTORY_SCHEMA_VERSION",
    "SeriesTrend",
    "TrendReport",
    "append_history",
    "bench_history_entries",
    "default_history_path",
    "detect_trends",
    "load_history",
    "manifest_history_entries",
    "render_trend_report",
    "validate_history_entry",
]

logger = logging.getLogger(__name__)

HISTORY_SCHEMA_VERSION = 1

#: Entry schema: field -> allowed instance types.
_FIELDS: dict[str, tuple] = {
    "history_schema_version": (int,),
    "series": (str,),
    "value_seconds": (int, float),
    "created_unix": (int, float),
    "git_sha": (str, type(None)),
    "catalog_digest": (str, type(None)),
    "source": (str, type(None)),
}

#: Default trend window: the newest point is judged against the median
#: of up to this many preceding points.
DEFAULT_WINDOW = 5

#: MAD multiplier of the regression band (scaled to sigma-equivalent).
DEFAULT_MAD_K = 4.0

#: Relative band floor: a series flatter than its own noise still
#: needs this much relative movement before it flags — absorbs timer
#: jitter on near-constant series where the MAD collapses to ~0.
DEFAULT_REL_FLOOR = 0.25

#: MAD -> sigma-equivalent scale for normally distributed noise.
_MAD_SIGMA = 1.4826


def default_history_path() -> Path:
    """``$REPRO_HISTORY_DIR/history.jsonl``, else the repo store."""
    root = os.environ.get("REPRO_HISTORY_DIR")
    if root:
        return Path(root) / "history.jsonl"
    return Path("benchmarks") / "history.jsonl"


def _entry(
    series: str,
    value_seconds: float,
    created_unix: "float | None",
    git_sha: "str | None",
    catalog_digest: "str | None",
    source: "str | None",
) -> dict[str, Any]:
    return {
        "history_schema_version": HISTORY_SCHEMA_VERSION,
        "series": series,
        "value_seconds": float(value_seconds),
        "created_unix": (
            float(created_unix) if created_unix is not None
            else time.time()
        ),
        "git_sha": git_sha,
        "catalog_digest": catalog_digest,
        "source": source,
    }


def validate_history_entry(data: Any) -> list[str]:
    """All schema violations in one entry (empty list == valid)."""
    if not isinstance(data, dict):
        return ["history entry must be a JSON object"]
    errors = []
    for field, types in _FIELDS.items():
        if field not in data:
            errors.append(f"missing field: {field}")
        elif not isinstance(data[field], types):
            errors.append(
                f"field {field}: expected "
                f"{'/'.join(t.__name__ for t in types)}, got "
                f"{type(data[field]).__name__}"
            )
    for field in data:
        if field not in _FIELDS:
            errors.append(f"unknown field: {field}")
    return errors


# ----------------------------------------------------------------------
# Ingestion: BENCH records and run manifests -> entries
# ----------------------------------------------------------------------
def bench_history_entries(
    record: Mapping[str, Any], source: "str | None" = None
) -> list[dict[str, Any]]:
    """One ``bench:<module>/<test>`` entry per test median."""
    module = str(record.get("benchmark", "?"))
    entries = []
    for test, stats in sorted((record.get("results") or {}).items()):
        median = (
            stats.get("median_seconds")
            if isinstance(stats, Mapping) else None
        )
        if not isinstance(median, (int, float)):
            continue
        entries.append(_entry(
            series=f"bench:{module}/{test}",
            value_seconds=median,
            created_unix=record.get("created_unix"),
            git_sha=record.get("git_sha"),
            catalog_digest=record.get("catalog_digest"),
            source=source,
        ))
    return entries


def manifest_history_entries(
    manifest: Mapping[str, Any], source: "str | None" = None
) -> list[dict[str, Any]]:
    """Whole-run wall time plus one entry per top-level span phase."""
    command = str(manifest.get("command", "?"))
    created = manifest.get("created_unix")
    git_sha = manifest.get("git_sha")
    catalog = manifest.get("catalog_digest")
    entries = []
    timing = manifest.get("timing") or {}
    wall = timing.get("wall_seconds")
    if isinstance(wall, (int, float)):
        entries.append(_entry(
            series=f"manifest:{command}/total",
            value_seconds=wall,
            created_unix=created,
            git_sha=git_sha,
            catalog_digest=catalog,
            source=source,
        ))
    phases: dict[str, float] = {}
    for node in manifest.get("trace") or ():
        for child in node.get("children") or ():
            name = str(child.get("name", "?"))
            phases[name] = phases.get(name, 0.0) + float(
                child.get("wall_seconds", 0.0)
            )
    for name, seconds in sorted(phases.items()):
        entries.append(_entry(
            series=f"manifest:{command}/{name}",
            value_seconds=seconds,
            created_unix=created,
            git_sha=git_sha,
            catalog_digest=catalog,
            source=source,
        ))
    return entries


# ----------------------------------------------------------------------
# The store
# ----------------------------------------------------------------------
def append_history(
    entries: Iterable[Mapping[str, Any]],
    path: "str | os.PathLike | None" = None,
) -> Path:
    """Append entries to the JSONL store (created if missing)."""
    target = Path(path) if path is not None else default_history_path()
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = []
    for entry in entries:
        errors = validate_history_entry(dict(entry))
        if errors:
            raise ValueError(
                "invalid history entry: " + "; ".join(errors)
            )
        lines.append(json.dumps(entry, sort_keys=True))
    if lines:
        with open(target, "a") as handle:
            handle.write("\n".join(lines) + "\n")
    return target


def load_history(
    path: "str | os.PathLike | None" = None,
) -> list[dict[str, Any]]:
    """All valid entries of the store, in file order.

    Corrupt or schema-invalid lines are skipped with a WARNING — an
    append-only file shared across tools must degrade, not explode.
    A missing store reads as empty.
    """
    target = Path(path) if path is not None else default_history_path()
    try:
        text = target.read_text()
    except OSError:
        return []
    entries = []
    for number, line in enumerate(text.splitlines(), start=1):
        if not line.strip():
            continue
        try:
            data = json.loads(line)
        except ValueError:
            logger.warning(
                "%s:%d: skipping unparseable history line",
                target, number,
            )
            continue
        errors = validate_history_entry(data)
        if errors:
            logger.warning(
                "%s:%d: skipping invalid history entry (%s)",
                target, number, "; ".join(errors),
            )
            continue
        entries.append(data)
    return entries


# ----------------------------------------------------------------------
# Trend detection
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SeriesTrend:
    """The newest point of one series judged against its history."""

    series: str
    #: Total recorded points for the series.
    count: int
    #: Median of the preceding window (None when count < 3).
    baseline_median: "float | None"
    #: Sigma-equivalent MAD of the preceding window.
    mad: "float | None"
    latest: float
    #: latest / baseline_median (None when not judged).
    ratio: "float | None"
    #: ``regression`` / ``improvement`` / ``ok`` / ``insufficient``.
    status: str
    #: True when the latest two points both sit beyond the band — a
    #: sustained shift, not a one-sample spike.
    changepoint: bool


@dataclass(frozen=True)
class TrendReport:
    """The trend verdict over every series of a history store."""

    window: int
    mad_k: float
    rel_floor: float
    series: tuple[SeriesTrend, ...]

    @property
    def regressions(self) -> tuple[SeriesTrend, ...]:
        return tuple(
            s for s in self.series if s.status == "regression"
        )

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median(values: "list[float]") -> float:
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return 0.5 * (ordered[mid - 1] + ordered[mid])


def _judge_series(
    series: str,
    values: "list[float]",
    window: int,
    mad_k: float,
    rel_floor: float,
) -> SeriesTrend:
    count = len(values)
    latest = values[-1]
    if count < 3:
        return SeriesTrend(
            series=series, count=count, baseline_median=None,
            mad=None, latest=latest, ratio=None,
            status="insufficient", changepoint=False,
        )
    # Judge the newest point against the window that precedes it.
    baseline = values[:-1][-window:]
    med = _median(baseline)
    mad = _MAD_SIGMA * _median(
        [abs(value - med) for value in baseline]
    )
    if med <= 0.0 or not math.isfinite(med):
        return SeriesTrend(
            series=series, count=count, baseline_median=med,
            mad=mad, latest=latest, ratio=None, status="ok",
            changepoint=False,
        )
    band = max(mad_k * mad, rel_floor * med)

    def beyond(value: float) -> bool:
        return value > med + band

    if beyond(latest):
        status = "regression"
    elif latest < med - band:
        status = "improvement"
    else:
        status = "ok"
    changepoint = (
        status != "ok"
        and count >= 4
        and (
            beyond(values[-2])
            if status == "regression"
            else values[-2] < med - band
        )
    )
    return SeriesTrend(
        series=series, count=count, baseline_median=med, mad=mad,
        latest=latest, ratio=latest / med, status=status,
        changepoint=changepoint,
    )


def detect_trends(
    entries: Iterable[Mapping[str, Any]],
    window: int = DEFAULT_WINDOW,
    mad_k: float = DEFAULT_MAD_K,
    rel_floor: float = DEFAULT_REL_FLOOR,
    series_filter: "str | None" = None,
) -> TrendReport:
    """Judge every series' newest point against its recent history.

    ``window`` bounds how many preceding points the baseline median
    sees; ``mad_k`` scales the MAD band, ``rel_floor`` is the minimum
    relative movement that can ever flag (noise absorber for flat
    series).  ``series_filter`` keeps only series containing the
    substring.  Entries are taken in append order per series (the
    store is append-only, so file order is time order); ties in
    ``created_unix`` therefore stay stable.
    """
    if window < 2:
        raise ValueError("window must be >= 2")
    grouped: dict[str, list[float]] = {}
    for entry in entries:
        series = str(entry["series"])
        if series_filter and series_filter not in series:
            continue
        grouped.setdefault(series, []).append(
            float(entry["value_seconds"])
        )
    return TrendReport(
        window=window,
        mad_k=mad_k,
        rel_floor=rel_floor,
        series=tuple(
            _judge_series(series, values, window, mad_k, rel_floor)
            for series, values in sorted(grouped.items())
        ),
    )


def _format_seconds(value: "float | None") -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.3f}s"


def render_trend_report(report: TrendReport) -> str:
    """The trend verdict as a per-series table plus a verdict line."""
    lines = [
        f"bench trend: {len(report.series)} series  "
        f"(window {report.window}, MAD k={report.mad_k:g}, "
        f"floor {report.rel_floor:.0%})"
    ]
    header = (
        f"{'series':<52} {'n':>3} {'median':>10} {'latest':>10} "
        f"{'ratio':>7}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for trend in report.series:
        ratio = (
            f"{trend.ratio:.2f}x" if trend.ratio is not None else "-"
        )
        status = trend.status.upper()
        if trend.changepoint:
            status += " (change-point)"
        lines.append(
            f"{trend.series:<52} {trend.count:>3} "
            f"{_format_seconds(trend.baseline_median):>10} "
            f"{_format_seconds(trend.latest):>10} "
            f"{ratio:>7}  {status}"
        )
    lines.append("")
    judged = [s for s in report.series if s.status != "insufficient"]
    if not judged:
        lines.append(
            "verdict: INSUFFICIENT DATA — every series has fewer "
            "than 3 points; append more runs"
        )
    elif report.ok:
        lines.append(
            f"verdict: OK — no series regressed beyond its MAD band "
            f"({len(judged)} judged, "
            f"{len(report.series) - len(judged)} with too little "
            "history)"
        )
    else:
        worst = max(
            report.regressions,
            key=lambda s: s.ratio if s.ratio is not None else 0.0,
        )
        lines.append(
            f"verdict: REGRESSION — {len(report.regressions)} "
            f"series beyond their MAD band (worst: {worst.series} "
            f"at {worst.ratio:.2f}x median)"
        )
    return "\n".join(lines)
