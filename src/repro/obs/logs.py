"""Stdlib logging configuration for the ``repro`` package.

Library modules log through module-level ``logging.getLogger(__name__)``
loggers (all under the ``repro`` namespace) and never print.  The CLI
calls :func:`configure_logging` once per invocation with the
``--log-level`` flag; embedding code can call it directly or attach its
own handlers to the ``repro`` logger instead.

Without configuration, Python's last-resort handler still surfaces
WARNING and above on stderr — so a corrupt cache entry is visible even
from a bare ``import repro`` session.
"""

from __future__ import annotations

import logging

__all__ = ["LOG_LEVELS", "configure_logging", "configured_log_level"]

LOG_LEVELS = {
    "debug": logging.DEBUG,
    "info": logging.INFO,
    "warning": logging.WARNING,
    "error": logging.ERROR,
}

_configured: "str | None" = None
_handler: "logging.Handler | None" = None


def configure_logging(level: str = "warning") -> None:
    """Point the ``repro`` logger at stderr at the given level.

    Idempotent: repeated calls adjust the level of the one handler this
    module owns instead of stacking handlers.
    """
    global _configured, _handler
    name = (level or "warning").lower()
    if name not in LOG_LEVELS:
        raise ValueError(
            f"unknown log level {level!r}; choose from "
            f"{', '.join(LOG_LEVELS)}"
        )
    logger = logging.getLogger("repro")
    if _handler is None:
        _handler = logging.StreamHandler()
        _handler.setFormatter(
            logging.Formatter("%(levelname)s %(name)s: %(message)s")
        )
        logger.addHandler(_handler)
    logger.setLevel(LOG_LEVELS[name])
    _configured = name


def configured_log_level() -> "str | None":
    """The last level passed to :func:`configure_logging`, if any.

    Worker processes use this to mirror the parent's verbosity.
    """
    return _configured
