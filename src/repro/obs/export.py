"""Chrome/Perfetto Trace Event export of manifest span trees.

The run manifest stores the span tree as nested dicts with *durations*
only (``wall_seconds`` per node) — good for diffing, invisible to
trace viewers.  :func:`trace_events` converts that tree into the Trace
Event JSON format (an array of complete events with ``ph``/``ts``/
``dur``/``pid``/``tid``), loadable in ``ui.perfetto.dev`` or
``chrome://tracing``, so a 20-minute census becomes a zoomable
flame-ish timeline instead of a wall of numbers.

Because the manifest carries no start timestamps, the exporter lays
spans out deterministically: every span starts where its previous
sibling ended (the first child at its parent's start), which preserves
exact durations and nesting and approximates concurrency as
sequential — faithful for serial runs, conservative for parallel ones.

Track mapping: the main process renders on ``tid 0``; every per-task
span (the engine's ``parallel.task`` spans, which is what ``--jobs N``
workers graft their sub-trees under) gets its own track id derived
from its task index, so worker sub-trees land on visually distinct
rows.  Metadata events name the process and every track.
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Any, Iterable, Mapping

__all__ = [
    "MAIN_TRACK",
    "trace_events",
    "event_names",
    "span_names",
    "validate_trace_events",
    "write_trace_events",
]

#: The track id of spans outside any per-task sub-tree.
MAIN_TRACK = 0

#: Microseconds per second (trace-event timestamps are in us).
_US = 1_000_000.0


def _is_task_span(node: Mapping[str, Any]) -> bool:
    """Spans that open one engine task (and receive worker grafts)."""
    name = str(node.get("name", ""))
    attrs = node.get("attrs") or {}
    return name.endswith(".task") and isinstance(
        attrs.get("index"), int
    )


def _emit(
    node: Mapping[str, Any],
    start_us: float,
    pid: int,
    tid: int,
    events: list[dict[str, Any]],
    tracks: dict[int, str],
) -> None:
    duration_us = float(node.get("wall_seconds", 0.0)) * _US
    if _is_task_span(node):
        tid = 1 + int((node.get("attrs") or {})["index"])
        tracks.setdefault(
            tid, f"task {(node.get('attrs') or {})['index']}"
        )
    args = {
        str(key): value
        for key, value in (node.get("attrs") or {}).items()
    }
    args["cpu_seconds"] = node.get("cpu_seconds", 0.0)
    events.append({
        "name": str(node.get("name", "?")),
        "cat": "span",
        "ph": "X",
        "ts": start_us,
        "dur": duration_us,
        "pid": pid,
        "tid": tid,
        "args": args,
    })
    cursor = start_us
    for child in node.get("children") or ():
        _emit(child, cursor, pid, tid, events, tracks)
        cursor += float(child.get("wall_seconds", 0.0)) * _US


def trace_events(
    trace: "Iterable[Mapping[str, Any]] | None", pid: int = 1
) -> list[dict[str, Any]]:
    """A manifest span tree as a Trace Event array.

    Returns complete (``ph="X"``) events — one per span, durations in
    microseconds — followed by the metadata (``ph="M"``) events naming
    the process and tracks.  An empty or missing tree yields just the
    process metadata.
    """
    events: list[dict[str, Any]] = []
    tracks: dict[int, str] = {MAIN_TRACK: "main"}
    cursor = 0.0
    for node in trace or ():
        _emit(node, cursor, pid, MAIN_TRACK, events, tracks)
        cursor += float(node.get("wall_seconds", 0.0)) * _US
    metadata: list[dict[str, Any]] = [{
        "name": "process_name",
        "ph": "M",
        "pid": pid,
        "tid": MAIN_TRACK,
        "args": {"name": "repro"},
    }]
    for tid, label in sorted(tracks.items()):
        metadata.append({
            "name": "thread_name",
            "ph": "M",
            "pid": pid,
            "tid": tid,
            "args": {"name": label},
        })
    return events + metadata


def event_names(events: Iterable[Mapping[str, Any]]) -> set[str]:
    """The distinct span names in an event array (metadata excluded)."""
    return {
        str(event.get("name"))
        for event in events
        if event.get("ph") == "X"
    }


def span_names(trace: "Iterable[Mapping[str, Any]] | None") -> set[str]:
    """The distinct span names in a manifest span tree."""
    names: set[str] = set()
    stack = list(trace or ())
    while stack:
        node = stack.pop()
        names.add(str(node.get("name", "?")))
        stack.extend(node.get("children") or ())
    return names


def validate_trace_events(data: Any) -> list[str]:
    """Trace Event format violations (empty list == valid)."""
    if not isinstance(data, list):
        return ["trace must be a JSON array of events"]
    errors: list[str] = []
    for position, event in enumerate(data):
        where = f"events[{position}]"
        if not isinstance(event, dict):
            errors.append(f"{where}: must be an object")
            continue
        phase = event.get("ph")
        if phase not in ("X", "M", "C", "i"):
            errors.append(f"{where}: ph must be 'X', 'M', 'C' or 'i'")
            continue
        if not isinstance(event.get("name"), str):
            errors.append(f"{where}: name must be a string")
        for field in ("pid", "tid"):
            if not isinstance(event.get(field), int):
                errors.append(f"{where}: {field} must be an integer")
        if phase == "X":
            for field in ("ts", "dur"):
                if not isinstance(event.get(field), (int, float)):
                    errors.append(
                        f"{where}: {field} must be a number"
                    )
        elif phase == "C":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{where}: ts must be a number")
            if not isinstance(event.get("args"), dict):
                errors.append(f"{where}: args must be an object")
        elif phase == "i":
            if not isinstance(event.get("ts"), (int, float)):
                errors.append(f"{where}: ts must be a number")
    return errors


def write_trace_events(
    trace: "Iterable[Mapping[str, Any]] | None",
    path: "str | os.PathLike",
    pid: int = 1,
    counter_tracks: (
        "Mapping[str, list[tuple[float, Any]]] | None"
    ) = None,
    instant_events: (
        "Iterable[Mapping[str, Any]] | None"
    ) = None,
) -> Path:
    """Convert a span tree and write the event array as JSON.

    ``counter_tracks`` (from ``--timeseries``, see
    :meth:`repro.obs.timeseries.TimeseriesRecorder.counter_tracks`)
    appends one counter track per metric to the same file, so the
    curves render under the span timeline.  ``instant_events``
    (ready-made ``ph="i"`` events, e.g. from
    :func:`repro.obs.decisions.decision_instant_events`) are appended
    verbatim.
    """
    from .timeseries import counter_track_events

    events = trace_events(trace, pid=pid)
    events.extend(counter_track_events(counter_tracks, pid=pid))
    if instant_events is not None:
        events.extend(dict(event) for event in instant_events)
    target = Path(path)
    target.write_text(json.dumps(events) + "\n")
    return target
