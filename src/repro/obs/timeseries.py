"""Metric time series: periodic counter snapshots over one run.

The metrics registry (:mod:`repro.obs.metrics`) reports one *final*
total per counter — enough to compare two runs, useless for seeing how
a run unfolded (did the plan cache warm up early? did the plan index
fall back in a burst or steadily?).  ``--timeseries`` fixes that: a
background daemon thread samples every counter at a fixed interval,
turning ``planindex.*`` / ``plancache.*`` / ``engine.*`` totals into
curves over the run.

The recorded points surface in two places:

* the Chrome-trace export (``--trace-out``) gains one *counter track*
  per metric (Trace Event ``ph: "C"`` events), rendered by Perfetto as
  stacked area charts under the span timeline;
* the run manifest gains a ``timeseries`` summary (first/last/peak per
  counter plus sample bookkeeping), rendered by ``repro report`` as a
  counter-track table.

Sampling runs only in the parent process.  ``--jobs N`` workers ship
their metric deltas back with each finished task (see
:mod:`repro.experiments.parallel`), so the parent registry — and
therefore the sampled curves — advances as tasks complete, which is
exactly the cross-run drift signal wanted; per-sample worker clocks
are not.

Off (the default) nothing exists: no thread, no hook in instrumented
code, zero allocation.
"""

from __future__ import annotations

import threading
import time
from typing import Any, Mapping

from .metrics import METRICS

__all__ = [
    "DEFAULT_INTERVAL_SECONDS",
    "TIMESERIES",
    "TimeseriesRecorder",
    "counter_track_events",
]

#: Default sampling interval (seconds) — fine enough to see cache
#: warm-up inside a multi-second sweep, coarse enough to stay free.
DEFAULT_INTERVAL_SECONDS = 0.25


class TimeseriesRecorder:
    """Background sampler of the process-global counter values.

    ``start(interval)`` spawns the daemon thread; ``stop()`` takes one
    final sample (so even sub-interval runs record their end state)
    and joins the thread.  Points are ``(t_seconds, {name: value})``
    tuples with ``t`` relative to ``start()``.
    """

    def __init__(self) -> None:
        self.interval = DEFAULT_INTERVAL_SECONDS
        self.enabled = False
        self._thread: "threading.Thread | None" = None
        self._stop: "threading.Event | None" = None
        self._lock = threading.Lock()
        self._points: list[tuple[float, dict[str, Any]]] = []
        self._t0 = 0.0

    @property
    def thread(self) -> "threading.Thread | None":
        """The live sampler thread, or None while stopped."""
        return self._thread

    def start(self, interval: "float | None" = None) -> None:
        """Begin sampling (restarts cleanly if already running)."""
        if interval is not None:
            if interval <= 0:
                raise ValueError(
                    f"timeseries interval must be positive, got "
                    f"{interval}"
                )
            self.interval = float(interval)
        if self._thread is not None and self._thread.is_alive():
            self.enabled = True
            return
        self._t0 = time.perf_counter()
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._run,
            name="repro-timeseries-sampler",
            daemon=True,
        )
        self.enabled = True
        self._thread.start()

    def stop(self) -> None:
        """Take a final sample and stop the sampler thread."""
        thread, stop = self._thread, self._stop
        self._thread = None
        self._stop = None
        self.enabled = False
        if stop is not None:
            stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        if self._t0:
            self.sample_now()

    def reset(self) -> None:
        """Drop all recorded points."""
        with self._lock:
            self._points.clear()
        self._t0 = time.perf_counter() if self.enabled else 0.0

    def _run(self) -> None:
        stop = self._stop
        while stop is not None and not stop.wait(self.interval):
            self.sample_now()

    def sample_now(self) -> None:
        """Record one ``(t, counters)`` point right now."""
        values = {
            name: counter.value
            for name, counter in METRICS._counters.items()
        }
        point = (time.perf_counter() - self._t0, values)
        with self._lock:
            self._points.append(point)

    # ------------------------------------------------------------------
    # Read side
    # ------------------------------------------------------------------
    def points(self) -> list[tuple[float, dict[str, Any]]]:
        with self._lock:
            return list(self._points)

    def counter_tracks(self) -> dict[str, list[tuple[float, Any]]]:
        """Per-counter ``[(t, value), ...]`` curves, name-sorted.

        A counter absent from an early sample (created later in the
        run) reads as 0 there, so every track spans the full run.
        """
        points = self.points()
        names = sorted({
            name for _, values in points for name in values
        })
        return {
            name: [
                (t, values.get(name, 0)) for t, values in points
            ]
            for name in names
        }

    def summary(self) -> "dict[str, Any] | None":
        """The manifest-ready ``timeseries`` block (None when empty)."""
        points = self.points()
        if not points:
            return None
        tracks = self.counter_tracks()
        return {
            "interval_seconds": self.interval,
            "samples": len(points),
            "duration_seconds": points[-1][0],
            "counters": {
                name: {
                    "first": track[0][1],
                    "last": track[-1][1],
                    "peak": max(value for _, value in track),
                }
                for name, track in tracks.items()
            },
        }


#: The process-global recorder ``--timeseries`` drives.
TIMESERIES = TimeseriesRecorder()

#: Microseconds per second (trace-event timestamps are in us).
_US = 1_000_000.0


def counter_track_events(
    tracks: "Mapping[str, list[tuple[float, Any]]] | None",
    pid: int = 1,
) -> list[dict[str, Any]]:
    """Counter curves as Trace Event ``ph="C"`` events.

    One event per (counter, sample): Perfetto and chrome://tracing
    render each named counter as its own track of stacked values under
    the span timeline.
    """
    events: list[dict[str, Any]] = []
    for name, track in (tracks or {}).items():
        for t, value in track:
            events.append({
                "name": name,
                "cat": "metric",
                "ph": "C",
                "ts": t * _US,
                "pid": pid,
                "tid": 0,
                "args": {"value": value},
            })
    return events
