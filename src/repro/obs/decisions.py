"""Decision provenance: what the optimizer chose, and by how much.

Every plan lookup is an ``argmin(C @ U.T)`` — and the quantities the
paper actually studies are the *by-products* of that argmin: the
runner-up, the relative margin between the two, and the distance from
the probe to the nearest switchover plane.  This module captures them.

``DECISIONS`` is a process-global :class:`DecisionLog`, off by default
and free when off (null-object pattern, same contract as
``trace.TRACER`` and ``progress.PROGRESS``): instrumented call sites
pay one attribute check.  When enabled (``--decisions``), batch lookup
sites hand over the already-materialized totals matrix and the log

* aggregates mergeable fragility statistics per context (margin
  decade-histograms, fraction of probes within ``epsilon`` of a plane,
  wrong-choice counts vs a reference plan, lookup-path counters), and
* keeps a deterministic bottom-k-by-hash sample of full explain
  records, keyed by ``(task, context, sequence)`` — *values never
  enter the key*, so serial, ``--jobs N``, and checkpoint→resume runs
  retain the identical sample.

State lives in per-task delta buffers (``begin_task``/``take_task``)
that ride the same worker merge channel as metrics and spans; the
parent folds deltas in task-index order, which makes the aggregates
bit-identical for any job count.

Geometry (see ``core/switching.py``): for winner ``w`` and rival ``j``
the switchover plane is ``(U_j - U_w) · C = 0``; the normalized
distance from probe ``C`` to that plane is
``(t_j - t_w) / (‖U_j - U_w‖ · ‖C‖)``, zero exactly on a tie.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Any, Iterable, Mapping

import numpy as np

from .metrics import Histogram

__all__ = [
    "DECISIONS",
    "DecisionLog",
    "decision_instant_events",
    "explain_probe",
    "margins_from_totals",
    "plane_distances",
    "validate_decision_records",
    "write_decision_records",
]

#: Relative plane distance below which a probe counts as "near" a plane.
DEFAULT_EPSILON = 1e-3
#: Default size of the bottom-k-by-hash record sample.
DEFAULT_SAMPLE_K = 64

#: Margin-decade bucket for exact ties (margin == 0 has no decade).
TIE_DECADE = "tie"


# ----------------------------------------------------------------------
# Margin / plane-distance extraction (vectorized, no second kernel pass)
# ----------------------------------------------------------------------
def margins_from_totals(totals: np.ndarray):
    """Per-row winner, winner/runner-up totals, and relative margins.

    ``margin = (runner_up - winner) / |winner|`` — always >= 0; rows
    whose candidate set has a single plan have no runner-up and get
    ``margin = inf``.  Ties (runner-up total equal to the winner's)
    get exactly ``0.0``.
    """
    totals = np.asarray(totals, dtype=float)
    with np.errstate(invalid="ignore"):
        winners = np.argmin(totals, axis=1)
    rows = np.arange(totals.shape[0])
    winner_totals = totals[rows, winners]
    if totals.shape[1] < 2:
        infinite = np.full(totals.shape[0], np.inf)
        return winners, winner_totals, infinite, infinite.copy()
    runner_totals = np.partition(totals, 1, axis=1)[:, 1]
    gaps = runner_totals - winner_totals
    scale = np.abs(winner_totals)
    # over="ignore": a denormal winner total overflows the quotient to
    # inf, which is exactly the "margin is effectively unbounded" case.
    with np.errstate(divide="ignore", invalid="ignore", over="ignore"):
        margins = np.where(
            gaps == 0.0,
            0.0,
            np.where(scale > 0.0, gaps / scale, np.inf),
        )
    return winners, winner_totals, runner_totals, margins


def plane_distances(
    matrix: np.ndarray,
    costs: np.ndarray,
    totals: np.ndarray,
    winners: np.ndarray,
    margins: np.ndarray,
) -> np.ndarray:
    """Normalized distance from each probe to its nearest switchover
    plane: ``min over rivals j of (t_j - t_w) / (‖U_j - U_w‖·‖C‖)``.

    Exactly ``0.0`` iff the probe lies on a plane (``margin == 0``);
    ``inf`` when the candidate set has a single distinct usage vector.
    Rivals are grouped by distinct winner so the whole batch costs one
    pass over the totals that the kernel already produced.
    """
    matrix = np.asarray(matrix, dtype=float)
    costs = np.asarray(costs, dtype=float)
    totals = np.asarray(totals, dtype=float)
    out = np.full(len(costs), np.inf)
    if len(costs) and matrix.shape[0] >= 2:
        cost_norms = np.linalg.norm(costs, axis=1)
        for winner in np.unique(winners):
            rows = np.flatnonzero(winners == winner)
            diffs = matrix - matrix[winner]
            norms = np.linalg.norm(diffs, axis=1)
            rivals = np.flatnonzero(norms > 0.0)
            if not rivals.size:
                continue
            gaps = (
                totals[np.ix_(rows, rivals)]
                - totals[rows, winner][:, None]
            )
            nearest = (gaps / norms[rivals]).min(axis=1)
            with np.errstate(divide="ignore", invalid="ignore"):
                out[rows] = np.where(
                    cost_norms[rows] > 0.0,
                    nearest / cost_norms[rows],
                    np.inf,
                )
        out = np.maximum(out, 0.0)
    return np.where(np.asarray(margins) == 0.0, 0.0, out)


def explain_probe(
    matrix: np.ndarray, cost: np.ndarray
) -> dict[str, Any]:
    """Full provenance of one dense lookup, bit-consistent with the
    batch path (totals are computed as ``C @ U.T``, same as the
    kernel).

    Returns winner/runner-up ids and totals, relative margin, nearest
    switchover plane (rival id + normalized distance), and the
    single-coordinate cost perturbations that cross that plane.
    """
    matrix = np.asarray(matrix, dtype=float)
    cost = np.asarray(cost, dtype=float).ravel()
    totals = (cost[None, :] @ matrix.T)[0]
    _, winner_totals, runner_totals, margins = margins_from_totals(
        totals[None, :]
    )
    order = np.argsort(totals, kind="stable")
    winner = int(order[0])
    margin = float(margins[0])
    result: dict[str, Any] = {
        "candidates": int(matrix.shape[0]),
        "winner": winner,
        "winner_total": float(winner_totals[0]),
        "runner_up": None,
        "runner_up_total": None,
        "margin": margin if np.isfinite(margin) else None,
        "plane_distance": None,
        "nearest_rival": None,
        "crossings": [],
    }
    if matrix.shape[0] < 2:
        return result
    result["runner_up"] = int(order[1])
    result["runner_up_total"] = float(runner_totals[0])

    diffs = matrix - matrix[winner]
    norms = np.linalg.norm(diffs, axis=1)
    rivals = np.flatnonzero(norms > 0.0)
    distance = plane_distances(
        matrix, cost[None, :], totals[None, :],
        np.array([winner]), margins,
    )[0]
    if np.isfinite(distance):
        result["plane_distance"] = float(distance)
    if not rivals.size:
        return result
    gaps = (totals[rivals] - totals[winner]) / norms[rivals]
    nearest = int(rivals[np.argmin(gaps)])
    result["nearest_rival"] = nearest

    # Which single-coordinate perturbation of C crosses that plane:
    # solve (U_j - U_w)·C' = 0 varying only coordinate k.
    diff = matrix[nearest] - matrix[winner]
    gap = float(totals[nearest] - totals[winner])
    crossings = []
    for axis in np.flatnonzero(diff != 0.0).tolist():
        delta = -gap / float(diff[axis])
        new_value = float(cost[axis]) + delta
        relative = delta / float(cost[axis]) if cost[axis] else None
        crossings.append({
            "coordinate": int(axis),
            "delta": delta,
            "new_value": new_value,
            "relative": relative,
            "feasible": new_value >= 0.0,
        })
    crossings.sort(
        key=lambda c: (
            c["relative"] is None,
            abs(c["relative"]) if c["relative"] is not None else 0.0,
        )
    )
    result["crossings"] = crossings
    return result


# ----------------------------------------------------------------------
# Deterministic bottom-k-by-hash sampling
# ----------------------------------------------------------------------
def _mix64(lanes: np.ndarray) -> np.ndarray:
    """Vectorized splitmix64 finalizer over uint64 lanes (wrapping
    arithmetic — platform-stable, no per-row hashlib cost)."""
    lanes = lanes + np.uint64(0x9E3779B97F4A7C15)
    lanes = (lanes ^ (lanes >> np.uint64(30))) * np.uint64(
        0xBF58476D1CE4E5B9
    )
    lanes = (lanes ^ (lanes >> np.uint64(27))) * np.uint64(
        0x94D049BB133111EB
    )
    return lanes ^ (lanes >> np.uint64(31))


def _context_base(seed: int, task: int, context: str) -> np.uint64:
    digest = hashlib.blake2b(
        f"{seed}|{task}|{context}".encode(), digest_size=8
    ).digest()
    return np.uint64(int.from_bytes(digest, "big"))


def _record_order(record: Mapping[str, Any]):
    return (
        record["sample_hash"], record["task"],
        record["context"], record["seq"],
    )


# ----------------------------------------------------------------------
# Mergeable per-context aggregates
# ----------------------------------------------------------------------
def _context_live() -> dict[str, Any]:
    return {
        "probes": 0,
        "with_reference": 0,
        "wrong": 0,
        "near_plane": 0,
        "margin": Histogram(),
        "paths": {},
        "decades": {},
    }


def _export_context(ctx: Mapping[str, Any]) -> dict[str, Any]:
    return {
        "probes": ctx["probes"],
        "with_reference": ctx["with_reference"],
        "wrong": ctx["wrong"],
        "near_plane": ctx["near_plane"],
        "margin": ctx["margin"].state(),
        "paths": dict(ctx["paths"]),
        "decades": {
            key: list(pair) for key, pair in ctx["decades"].items()
        },
    }


def _merge_context(
    live: dict[str, Any], exported: Mapping[str, Any]
) -> None:
    for key in ("probes", "with_reference", "wrong", "near_plane"):
        live[key] += int(exported.get(key, 0))
    live["margin"].merge_state(exported.get("margin") or {})
    for path, count in (exported.get("paths") or {}).items():
        live["paths"][path] = live["paths"].get(path, 0) + int(count)
    for decade, pair in (exported.get("decades") or {}).items():
        bucket = live["decades"].setdefault(decade, [0, 0])
        bucket[0] += int(pair[0])
        bucket[1] += int(pair[1])


class _NullScope:
    """Shared no-op context handed out while the log is disabled."""

    __slots__ = ()

    def __enter__(self) -> "_NullScope":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SCOPE = _NullScope()


class _Scope:
    """Context manager labelling observations with a query/scenario."""

    __slots__ = ("_log", "_context", "_previous")

    def __init__(self, log: "DecisionLog", context: str) -> None:
        self._log = log
        self._context = context
        self._previous = "run"

    def __enter__(self) -> "_Scope":
        self._previous = self._log._context
        self._log._context = self._context
        return self

    def __exit__(self, *exc: object) -> bool:
        self._log._context = self._previous
        return False


class DecisionLog:
    """Process-global decision-provenance collector.

    ``enabled`` gates everything: while False every method returns
    immediately and instrumentation left in hot paths costs a single
    attribute check (callers guard the totals hand-off on
    ``DECISIONS.enabled`` so nothing is materialized either).
    """

    def __init__(self) -> None:
        self.enabled = False
        self.sample_k = DEFAULT_SAMPLE_K
        self.epsilon = DEFAULT_EPSILON
        self.seed = 0
        self._context = "run"
        self._task_index = -1
        self._seq: dict[str, int] = {}
        self._main = self._empty_sink()
        self._sink = self._main

    @staticmethod
    def _empty_sink() -> dict[str, Any]:
        return {"contexts": {}, "records": []}

    # -- lifecycle -----------------------------------------------------
    def configure(
        self,
        sample_k: int = DEFAULT_SAMPLE_K,
        epsilon: float = DEFAULT_EPSILON,
        seed: int = 0,
    ) -> None:
        self.sample_k = max(int(sample_k), 0)
        self.epsilon = float(epsilon)
        self.seed = int(seed)

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded state; enabled flag and config are kept."""
        self._context = "run"
        self._task_index = -1
        self._seq = {}
        self._main = self._empty_sink()
        self._sink = self._main

    # -- context labelling --------------------------------------------
    def scoped(self, context: str):
        """Label observations made inside the ``with`` block."""
        if not self.enabled:
            return _NULL_SCOPE
        return _Scope(self, str(context))

    # -- per-task delta channel ---------------------------------------
    def begin_task(self, index: int) -> None:
        """Route observations into a fresh per-task delta buffer."""
        if not self.enabled:
            return
        self._task_index = int(index)
        self._seq = {}
        self._sink = self._empty_sink()

    def take_task(self) -> "dict[str, Any] | None":
        """Detach and return the current task delta (exported form)."""
        if not self.enabled:
            return None
        delta = self._sink
        self._sink = self._main
        self._task_index = -1
        self._seq = {}
        return {
            "contexts": {
                label: _export_context(ctx)
                for label, ctx in delta["contexts"].items()
            },
            "records": delta["records"],
        }

    # -- observation ---------------------------------------------------
    def observe_batch(
        self,
        matrix: np.ndarray,
        costs: np.ndarray,
        totals: np.ndarray,
        winners: "np.ndarray | None" = None,
        reference: "int | np.ndarray | None" = None,
        path: str = "dense",
        context: "str | None" = None,
    ) -> None:
        """Record one batch of lookups from its totals matrix.

        ``totals`` is the already-materialized ``C @ U.T`` product —
        margins and plane distances are extracted from it without a
        second kernel pass.  ``reference`` (scalar or per-row) marks
        the plan a non-drifted optimizer would pick, enabling
        wrong-choice accounting.
        """
        if not self.enabled:
            return
        totals = np.asarray(totals, dtype=float)
        if totals.ndim != 2 or not totals.size:
            return
        costs = np.asarray(costs, dtype=float)
        argmin, _, runner_totals, margins = margins_from_totals(totals)
        if winners is None:
            winners = argmin
        winners = np.asarray(winners)
        distances = plane_distances(
            matrix, costs, totals, winners, margins
        )
        reference_rows = None
        if reference is not None:
            reference_rows = np.broadcast_to(
                np.asarray(reference), winners.shape
            )
        label = self._context if context is None else str(context)
        self._aggregate(
            label, margins, distances, winners, reference_rows, path
        )
        self._sample(
            label, costs, totals, winners, margins, distances,
            reference_rows, path,
        )

    def observe_one(
        self,
        matrix: np.ndarray,
        cost: np.ndarray,
        totals: np.ndarray,
        winner: int,
        reference: "int | None" = None,
        path: str = "dense",
        context: "str | None" = None,
    ) -> None:
        """Single-probe convenience wrapper over a 1-D totals row."""
        if not self.enabled:
            return
        cost = np.asarray(cost, dtype=float).ravel()
        self.observe_batch(
            matrix,
            cost[None, :],
            np.asarray(totals, dtype=float).ravel()[None, :],
            winners=np.array([int(winner)]),
            reference=reference,
            path=path,
            context=context,
        )

    def _aggregate(
        self, label, margins, distances, winners, reference_rows, path
    ) -> None:
        ctx = self._sink["contexts"].setdefault(label, _context_live())
        count = int(margins.size)
        ctx["probes"] += count
        ctx["near_plane"] += int(
            np.count_nonzero(distances <= self.epsilon)
        )
        ctx["paths"][path] = ctx["paths"].get(path, 0) + count
        finite = np.isfinite(margins)
        ctx["margin"].observe_many(margins[finite])

        wrong_mask = None
        if reference_rows is not None:
            wrong_mask = winners != reference_rows
            ctx["with_reference"] += count
            ctx["wrong"] += int(np.count_nonzero(wrong_mask))

        positive = finite & (margins > 0.0)
        decades = ctx["decades"]

        def _bump(mask, column):
            if mask is None:
                return
            ties = int(np.count_nonzero(mask & finite & (margins <= 0.0)))
            if ties:
                decades.setdefault(TIE_DECADE, [0, 0])[column] += ties
            selected = margins[mask & positive]
            if not selected.size:
                return
            exponents = np.floor(np.log10(selected)).astype(int)
            for exponent, bucket_count in zip(
                *np.unique(exponents, return_counts=True)
            ):
                bucket = decades.setdefault(str(int(exponent)), [0, 0])
                bucket[column] += int(bucket_count)

        _bump(np.ones_like(finite), 0)
        _bump(wrong_mask, 1)

    def _sample(
        self, label, costs, totals, winners, margins, distances,
        reference_rows, path,
    ) -> None:
        if not self.sample_k:
            return
        count = len(winners)
        start = self._seq.get(label, 0)
        self._seq[label] = start + count
        base = _context_base(self.seed, self._task_index, label)
        lanes = _mix64(
            base ^ np.arange(start, start + count, dtype=np.uint64)
        )
        records = self._sink["records"]
        if len(records) >= self.sample_k:
            threshold = np.uint64(
                max(record["sample_hash"] for record in records)
            )
            rows = np.flatnonzero(lanes < threshold)
        else:
            rows = np.arange(count)
        if not rows.size:
            return
        for row in rows.tolist():
            row_totals = totals[row]
            order = np.argsort(row_totals, kind="stable")
            runner = int(order[1]) if order.size > 1 else None
            winner = int(winners[row])
            margin = float(margins[row])
            distance = float(distances[row])
            wrong = None
            reference = None
            if reference_rows is not None:
                reference = int(reference_rows[row])
                wrong = bool(winner != reference)
            records.append({
                "sample_hash": int(lanes[row]),
                "task": int(self._task_index),
                "context": label,
                "seq": start + row,
                "cost": [float(value) for value in costs[row]],
                "winner": winner,
                "winner_total": float(row_totals[winner]),
                "runner_up": runner,
                "runner_up_total": (
                    float(row_totals[runner])
                    if runner is not None else None
                ),
                "margin": margin if np.isfinite(margin) else None,
                "plane_distance": (
                    distance if np.isfinite(distance) else None
                ),
                "path": path,
                "reference": reference,
                "wrong": wrong,
            })
        records.sort(key=_record_order)
        del records[self.sample_k:]

    # -- merge / state -------------------------------------------------
    def merge(self, delta: "Mapping[str, Any] | None") -> None:
        """Fold an exported task delta (or snapshot state) in."""
        if not self.enabled or not delta:
            return
        main = self._main
        for label, exported in (delta.get("contexts") or {}).items():
            live = main["contexts"].setdefault(label, _context_live())
            _merge_context(live, exported)
        records = main["records"]
        records.extend(delta.get("records") or ())
        records.sort(key=_record_order)
        del records[self.sample_k:]

    def export_state(self) -> dict[str, Any]:
        """The merged main state as plain JSON-ready dicts (snapshot
        form; feed back through :meth:`load_state` or :meth:`merge`)."""
        return {
            "contexts": {
                label: _export_context(ctx)
                for label, ctx in self._main["contexts"].items()
            },
            "records": [dict(r) for r in self._main["records"]],
        }

    def load_state(self, state: "Mapping[str, Any] | None") -> None:
        """Replace the main state (checkpoint→resume restore)."""
        self._main = self._empty_sink()
        if self._task_index < 0:
            self._sink = self._main
        self.merge(state)

    # -- rendering -----------------------------------------------------
    def records(self) -> list[dict[str, Any]]:
        return [dict(r) for r in self._main["records"]]

    def summary(self) -> dict[str, Any]:
        """The manifest ``decisions`` block: run-level fragility totals
        plus per-context aggregates and the sampled records."""
        state = self.export_state()
        paths: dict[str, int] = {}
        totals = {"probes": 0, "with_reference": 0, "wrong": 0,
                  "near_plane": 0}
        for ctx in state["contexts"].values():
            for key in totals:
                totals[key] += int(ctx[key])
            for path, count in ctx["paths"].items():
                paths[path] = paths.get(path, 0) + int(count)
        return {
            "sample_k": self.sample_k,
            "epsilon": self.epsilon,
            "seed": self.seed,
            "probes": totals["probes"],
            "with_reference": totals["with_reference"],
            "wrong": totals["wrong"],
            "near_plane": totals["near_plane"],
            "sampled": len(state["records"]),
            "paths": dict(sorted(paths.items())),
            "contexts": dict(sorted(state["contexts"].items())),
            "records": state["records"],
        }


#: The process-global decision log all instrumentation writes to.
DECISIONS = DecisionLog()


# ----------------------------------------------------------------------
# Export / validation helpers
# ----------------------------------------------------------------------
def write_decision_records(
    records: Iterable[Mapping[str, Any]], path
) -> Path:
    """Write sampled explain records as JSONL (one decision per line,
    stable key order)."""
    target = Path(path)
    lines = [
        json.dumps(dict(record), sort_keys=True) for record in records
    ]
    target.write_text(
        "".join(line + "\n" for line in lines), encoding="utf-8"
    )
    return target


_RECORD_FIELDS: dict[str, tuple] = {
    "sample_hash": (int,),
    "task": (int,),
    "context": (str,),
    "seq": (int,),
    "cost": (list,),
    "winner": (int,),
    "winner_total": (int, float),
    "runner_up": (int, type(None)),
    "runner_up_total": (int, float, type(None)),
    "margin": (int, float, type(None)),
    "plane_distance": (int, float, type(None)),
    "path": (str,),
    "reference": (int, type(None)),
    "wrong": (bool, type(None)),
}


def validate_decision_records(records) -> list[str]:
    """Schema-check decision records (dicts or JSONL lines); returns a
    list of human-readable errors, empty when valid."""
    errors: list[str] = []
    for position, record in enumerate(records):
        if isinstance(record, (str, bytes)):
            try:
                record = json.loads(record)
            except ValueError:
                errors.append(f"records[{position}] is not valid JSON")
                continue
        if not isinstance(record, Mapping):
            errors.append(f"records[{position}] must be an object")
            continue
        for field, kinds in _RECORD_FIELDS.items():
            if field not in record:
                errors.append(
                    f"records[{position}] missing field: {field}"
                )
                continue
            value = record[field]
            if isinstance(value, bool) and bool not in kinds:
                errors.append(
                    f"records[{position}].{field} has wrong type"
                )
            elif not isinstance(value, kinds):
                errors.append(
                    f"records[{position}].{field} has wrong type"
                )
        for field in ("margin", "plane_distance"):
            value = record.get(field)
            if isinstance(value, (int, float)) and value < 0:
                errors.append(
                    f"records[{position}].{field} must be >= 0"
                )
        unknown = set(record) - set(_RECORD_FIELDS)
        for field in sorted(unknown):
            errors.append(
                f"records[{position}] unknown field: {field}"
            )
    return errors


def decision_instant_events(
    records: Iterable[Mapping[str, Any]], pid: int = 1, tid: int = 0
) -> list[dict[str, Any]]:
    """Sampled decisions as Chrome Trace Event instant events (ph "i").

    Timestamps are the deterministic sample positions, not wall-clock
    times, so decorated runs stay byte-reproducible.
    """
    return [
        {
            "name": f"decision:{record['context']}",
            "ph": "i",
            "ts": position,
            "pid": pid,
            "tid": tid,
            "s": "t",
            "args": {
                "winner": record["winner"],
                "runner_up": record["runner_up"],
                "margin": record["margin"],
                "plane_distance": record["plane_distance"],
                "path": record["path"],
                "seq": record["seq"],
            },
        }
        for position, record in enumerate(records)
    ]
