"""Machine-readable run manifests: reproducibility receipts.

Every CLI command writes a ``run-manifest.json`` capturing everything
needed to say whether two runs *should* have agreed and whether they
*did*:

* provenance — git SHA, package version, schema version, environment
  fingerprint (python / platform / numpy), creation time;
* inputs — the full CLI configuration, every RNG seed, and a SHA-256
  digest of the catalog statistics the run was computed against;
* outputs — SHA-256 digests of the rendered results (tables/CSV), so
  bit-exact reproduction is a string comparison;
* behaviour — the metrics snapshot (probe counts, cache hits, ...) and,
  with ``--trace``, the full span tree;
* resilience — per-task outcome accounting (``tasks``): planned,
  completed, resumed-from-journal and retried counts, plus the
  ``failed[]`` list of holes an ``--on-task-error skip`` run finished
  with.

Two runs of the same command reproduce iff their ``result_digests``
match; their ``metrics`` explain a divergence (different probe counts,
cache behaviour), and their ``trace`` shows where the time went.  The
schema is validated by :func:`validate_manifest` — strict on both
missing and unknown top-level fields, so any shape change must bump
``SCHEMA_VERSION`` (a golden-file test pins this).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import platform
import subprocess
import sys
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "SCHEMA_VERSION",
    "SUPPORTED_VERSIONS",
    "text_digest",
    "catalog_digest",
    "git_revision",
    "environment_fingerprint",
    "build_manifest",
    "empty_task_stats",
    "manifest_from_context",
    "write_manifest",
    "validate_manifest",
]

#: v2 added the ``tasks`` field (per-task outcome accounting: planned/
#: completed/resumed/retried counts plus the ``failed[]`` hole list).
#: v3 added the nullable ``profile`` (``--profile`` sampling summary:
#: hz, samples, hot-function table) and ``timeseries`` (``--timeseries``
#: counter-curve summary) fields.
#: v4 added the nullable ``decisions`` field (``--decisions`` fragility
#: block: margin histograms, near-plane fractions, sampled explain
#: records).
SCHEMA_VERSION = 4

#: Top-level manifest schema: field -> allowed instance types.
_FIELDS: dict[str, tuple] = {
    "schema_version": (int,),
    "package_version": (str,),
    "command": (str,),
    "config": (dict,),
    "git_sha": (str, type(None)),
    "created_unix": (int, float),
    "environment": (dict,),
    "seeds": (dict,),
    "catalog_digest": (str, type(None)),
    "result_digests": (dict,),
    "metrics": (dict,),
    "trace": (list, type(None)),
    "timing": (dict,),
    "tasks": (dict,),
    "profile": (dict, type(None)),
    "timeseries": (dict, type(None)),
    "decisions": (dict, type(None)),
}

#: Nullable blocks introduced after v2, by the version that added them.
#: Older manifests legitimately lack these fields; consumers (the
#: ``repro report`` diff) must treat absence as "older schema", not an
#: error.
_FIELDS_ADDED_IN = {
    3: ("profile", "timeseries"),
    4: ("decisions",),
}

#: Schema versions ``validate_manifest`` accepts (each against its own
#: field set, so v2/v3 receipts stay readable after the v4 bump).
SUPPORTED_VERSIONS = tuple(sorted({2, *_FIELDS_ADDED_IN}))


def _fields_for_version(version: int) -> dict[str, tuple]:
    fields = dict(_FIELDS)
    for added_in, names in _FIELDS_ADDED_IN.items():
        if version < added_in:
            for name in names:
                fields.pop(name, None)
    return fields

#: ``tasks`` sub-schema (counts plus the failure list).
_TASK_COUNTS = ("planned", "completed", "resumed", "retried")


def empty_task_stats() -> dict[str, Any]:
    """The ``tasks`` field of a run that fanned out no tasks."""
    return {
        "planned": 0,
        "completed": 0,
        "resumed": 0,
        "retried": 0,
        "failed": [],
    }


def text_digest(text: str) -> str:
    """SHA-256 of a rendered result (the reproducibility currency)."""
    return hashlib.sha256(text.encode()).hexdigest()


def catalog_digest(catalog: Any) -> str:
    """SHA-256 of the pickled catalog statistics."""
    return hashlib.sha256(pickle.dumps(catalog)).hexdigest()


def git_revision(cwd: "str | os.PathLike | None" = None) -> "str | None":
    """The repository HEAD SHA, or None outside a git checkout."""
    try:
        completed = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=cwd,
            capture_output=True,
            text=True,
            timeout=5,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    sha = completed.stdout.strip()
    return sha if completed.returncode == 0 and sha else None


def environment_fingerprint() -> dict[str, str]:
    """Enough platform detail to explain a timing (not a result) diff."""
    import numpy

    return {
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "numpy": numpy.__version__,
        "executable": sys.executable,
    }


def build_manifest(
    command: str,
    config: Mapping[str, Any],
    seeds: "Mapping[str, Any] | None" = None,
    catalog_sha: "str | None" = None,
    result_digests: "Mapping[str, str] | None" = None,
    metrics: "Mapping[str, Any] | None" = None,
    trace: "list | None" = None,
    wall_seconds: float = 0.0,
    cpu_seconds: float = 0.0,
    tasks: "Mapping[str, Any] | None" = None,
    profile: "Mapping[str, Any] | None" = None,
    timeseries: "Mapping[str, Any] | None" = None,
    decisions: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Assemble a schema-valid manifest dict for one finished run."""
    from .. import __version__

    return {
        "schema_version": SCHEMA_VERSION,
        "package_version": __version__,
        "command": command,
        "config": dict(config),
        "git_sha": git_revision(),
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "seeds": dict(seeds or {}),
        "catalog_digest": catalog_sha,
        "result_digests": dict(result_digests or {}),
        "metrics": dict(
            metrics
            or {"counters": {}, "gauges": {}, "histograms": {}}
        ),
        "trace": trace,
        "timing": {
            "wall_seconds": float(wall_seconds),
            "cpu_seconds": float(cpu_seconds),
        },
        "tasks": dict(tasks) if tasks else empty_task_stats(),
        "profile": dict(profile) if profile else None,
        "timeseries": dict(timeseries) if timeseries else None,
        "decisions": dict(decisions) if decisions else None,
    }


def manifest_from_context(
    command: str,
    config: Mapping[str, Any],
    ctx: Any,
    metrics: "Mapping[str, Any] | None" = None,
    trace: "list | None" = None,
    wall_seconds: float = 0.0,
    cpu_seconds: float = 0.0,
    profile: "Mapping[str, Any] | None" = None,
    timeseries: "Mapping[str, Any] | None" = None,
    decisions: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Assemble a manifest straight from a run context.

    ``ctx`` is duck-typed (so this module stays below the experiment
    layer): anything with ``seeds``, ``result_digests`` and
    ``catalog_sha`` attributes — normally a
    :class:`repro.experiments.engine.RunContext` — works; ``None``
    yields an empty-provenance manifest (commands that touch no
    catalog).
    """
    return build_manifest(
        command=command,
        config=config,
        seeds=getattr(ctx, "seeds", None),
        catalog_sha=getattr(ctx, "catalog_sha", None),
        result_digests=getattr(ctx, "result_digests", None),
        metrics=metrics,
        trace=trace,
        wall_seconds=wall_seconds,
        cpu_seconds=cpu_seconds,
        tasks=getattr(ctx, "task_stats", None),
        profile=profile,
        timeseries=timeseries,
        decisions=decisions,
    )


def write_manifest(
    manifest: Mapping[str, Any], path: "str | os.PathLike"
) -> Path:
    """Write a manifest as stable, sorted, human-diffable JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(manifest, indent=2, sort_keys=True) + "\n"
    )
    return target


def _validate_span(node: Any, where: str, errors: list[str]) -> None:
    if not isinstance(node, dict):
        errors.append(f"{where}: span must be an object")
        return
    if not isinstance(node.get("name"), str):
        errors.append(f"{where}: span name must be a string")
    for field in ("wall_seconds", "cpu_seconds"):
        if not isinstance(node.get(field), (int, float)):
            errors.append(f"{where}: span {field} must be a number")
    if not isinstance(node.get("attrs"), dict):
        errors.append(f"{where}: span attrs must be an object")
    children = node.get("children")
    if not isinstance(children, list):
        errors.append(f"{where}: span children must be a list")
        return
    for position, child in enumerate(children):
        _validate_span(child, f"{where}.children[{position}]", errors)


def validate_manifest(data: Any) -> list[str]:
    """All schema violations in ``data`` (empty list == valid)."""
    if not isinstance(data, dict):
        return ["manifest must be a JSON object"]
    errors: list[str] = []
    version = data.get("schema_version")
    if isinstance(version, int) and version in SUPPORTED_VERSIONS:
        fields = _fields_for_version(version)
    else:
        fields = _FIELDS
        if isinstance(version, int):
            errors.append(
                f"schema_version {version} not supported (accepted: "
                f"{', '.join(str(v) for v in SUPPORTED_VERSIONS)})"
            )
    for field, types in fields.items():
        if field not in data:
            errors.append(f"missing field: {field}")
        elif not isinstance(data[field], types):
            errors.append(
                f"field {field}: expected "
                f"{'/'.join(t.__name__ for t in types)}, got "
                f"{type(data[field]).__name__}"
            )
    for field in data:
        if field not in fields:
            errors.append(f"unknown field: {field}")
    metrics = data.get("metrics")
    if isinstance(metrics, dict):
        for section in ("counters", "gauges", "histograms"):
            if not isinstance(metrics.get(section), dict):
                errors.append(
                    f"metrics.{section} must be an object"
                )
    timing = data.get("timing")
    if isinstance(timing, dict):
        for field in ("wall_seconds", "cpu_seconds"):
            if not isinstance(timing.get(field), (int, float)):
                errors.append(f"timing.{field} must be a number")
    digests = data.get("result_digests")
    if isinstance(digests, dict):
        for name, value in digests.items():
            if not isinstance(value, str):
                errors.append(
                    f"result_digests.{name} must be a string"
                )
    tasks = data.get("tasks")
    if isinstance(tasks, dict):
        for field in _TASK_COUNTS:
            if not isinstance(tasks.get(field), int):
                errors.append(f"tasks.{field} must be an integer")
        failed = tasks.get("failed")
        if not isinstance(failed, list):
            errors.append("tasks.failed must be a list")
        else:
            for position, entry in enumerate(failed):
                if not isinstance(entry, dict):
                    errors.append(
                        f"tasks.failed[{position}] must be an object"
                    )
                    continue
                for field in ("label", "error"):
                    if not isinstance(entry.get(field), str):
                        errors.append(
                            f"tasks.failed[{position}].{field} "
                            "must be a string"
                        )
                if not isinstance(entry.get("attempts"), int):
                    errors.append(
                        f"tasks.failed[{position}].attempts "
                        "must be an integer"
                    )
    trace = data.get("trace")
    if isinstance(trace, list):
        for position, node in enumerate(trace):
            _validate_span(node, f"trace[{position}]", errors)
    profile = data.get("profile")
    if isinstance(profile, dict):
        for field in ("hz", "samples", "distinct_stacks"):
            if not isinstance(profile.get(field), int):
                errors.append(f"profile.{field} must be an integer")
        if not isinstance(profile.get("top"), list):
            errors.append("profile.top must be a list")
    timeseries = data.get("timeseries")
    if isinstance(timeseries, dict):
        if not isinstance(timeseries.get("samples"), int):
            errors.append("timeseries.samples must be an integer")
        if not isinstance(timeseries.get("counters"), dict):
            errors.append("timeseries.counters must be an object")
    decisions = data.get("decisions")
    if isinstance(decisions, dict):
        for field in ("sample_k", "probes", "near_plane", "sampled"):
            if not isinstance(decisions.get(field), int):
                errors.append(f"decisions.{field} must be an integer")
        if not isinstance(decisions.get("epsilon"), (int, float)):
            errors.append("decisions.epsilon must be a number")
        for field in ("paths", "contexts"):
            if not isinstance(decisions.get(field), dict):
                errors.append(f"decisions.{field} must be an object")
        if not isinstance(decisions.get("records"), list):
            errors.append("decisions.records must be a list")
    return errors
