"""Deterministic fault injection, retry policy and task timeouts.

A crashed or hung worker used to abort an entire figure/census sweep
and throw away every finished task.  Making the engine survivable
first requires making failure *testable*: this module provides a
seeded, fully deterministic fault-injection harness plus the policy
objects the executor consults when a task goes wrong.

* :class:`FaultPlan` — parsed from a spec string such as
  ``"kill:0.2,raise:0.1,hang:0.05"`` (CLI ``--inject-faults`` or the
  ``REPRO_FAULTS`` environment variable).  Every decision is a pure
  function of ``(seed, task_index, attempt)`` — no global RNG is ever
  touched — so a rerun with the same seed injects exactly the same
  faults, and a worker process reaches the same verdict as the parent
  would.
* :class:`RetryPolicy` — per-task retries with exponential backoff
  (jitter derived from the same seeded hash, so the retry *schedule*
  is reproducible too), an optional per-task timeout, and the
  ``on_error`` mode (``abort``/``retry``/``skip``) that decides what
  happens when attempts are exhausted.
* :func:`time_limit` — a SIGALRM-based deadline that raises
  :class:`TaskTimeout` inside the running task, so a hung task is
  interrupted instead of wedging its worker forever.

Everything here is stdlib-only: the obs layer stays at rank 0 of the
import DAG and any layer above may use it.
"""

from __future__ import annotations

import hashlib
import os
import signal
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "FAULT_KINDS",
    "ON_ERROR_MODES",
    "FaultSpecError",
    "InjectedFault",
    "TaskTimeout",
    "FaultPlan",
    "RetryPolicy",
    "apply_fault",
    "backoff_delay",
    "fault_roll",
    "time_limit",
]

#: The injectable failure modes, in cumulative-probability order.
FAULT_KINDS = ("raise", "hang", "kill")

#: What the executor does once a task's attempts are exhausted.
ON_ERROR_MODES = ("abort", "retry", "skip")

#: Exit status of a worker killed by an injected ``kill`` fault —
#: distinctive on purpose, so a post-mortem can tell an injected death
#: from a real one.
KILL_EXIT_CODE = 77


class FaultSpecError(ValueError):
    """A ``--inject-faults`` spec that does not parse."""


class InjectedFault(RuntimeError):
    """The error raised by an injected ``raise`` (or degraded) fault."""


class TaskTimeout(RuntimeError):
    """A task exceeded its ``--task-timeout`` deadline."""


def fault_roll(seed: int, salt: str, task_index: int, attempt: int) -> float:
    """A deterministic uniform draw in ``[0, 1)``.

    The single source of randomness for fault decisions and backoff
    jitter: a SHA-256 of ``seed:salt:task_index:attempt``.  Pure, so
    parent and worker processes agree without sharing RNG state.
    """
    material = f"{seed}:{salt}:{task_index}:{attempt}".encode()
    digest = hashlib.sha256(material).digest()
    return int.from_bytes(digest[:8], "big") / 2**64


@dataclass(frozen=True)
class FaultPlan:
    """A seeded schedule of injected failures.

    ``rates`` maps each fault kind to its per-attempt probability; the
    decision for one ``(task_index, attempt)`` pair never changes for
    a given seed.  ``hang_seconds`` bounds how long an injected hang
    sleeps — after that it surfaces as :class:`InjectedFault` rather
    than wedging an un-timed-out run forever.
    """

    rates: tuple[tuple[str, float], ...] = ()
    seed: int = 0
    hang_seconds: float = 3600.0

    @classmethod
    def parse(cls, spec: str, seed: int = 0) -> "FaultPlan":
        """Parse a spec such as ``"kill:0.2,raise:0.1,hang=30"``.

        Grammar: comma-separated entries, each either ``KIND:RATE``
        (``raise``/``hang``/``kill``, rate in ``[0, 1]``) or
        ``hang=SECONDS`` to bound injected hangs.  Kinds may appear at
        most once and the rates may sum to at most 1.
        """
        rates: dict[str, float] = {}
        hang_seconds = 3600.0
        for raw_entry in spec.split(","):
            entry = raw_entry.strip()
            if not entry:
                continue
            if entry.startswith("hang="):
                try:
                    hang_seconds = float(entry[len("hang="):])
                except ValueError:
                    raise FaultSpecError(
                        f"bad hang duration {entry!r}; expected "
                        "hang=SECONDS"
                    ) from None
                if hang_seconds <= 0:
                    raise FaultSpecError(
                        "hang duration must be positive"
                    )
                continue
            kind, sep, rate_text = entry.partition(":")
            kind = kind.strip()
            if not sep or kind not in FAULT_KINDS:
                raise FaultSpecError(
                    f"bad fault entry {entry!r}; expected KIND:RATE "
                    f"with KIND one of {', '.join(FAULT_KINDS)} "
                    "(or hang=SECONDS)"
                )
            if kind in rates:
                raise FaultSpecError(
                    f"fault kind {kind!r} given more than once"
                )
            try:
                rate = float(rate_text)
            except ValueError:
                raise FaultSpecError(
                    f"bad fault rate {rate_text!r} for {kind!r}; "
                    "expected a number in [0, 1]"
                ) from None
            if not 0.0 <= rate <= 1.0:
                raise FaultSpecError(
                    f"fault rate for {kind!r} must be in [0, 1], "
                    f"got {rate:g}"
                )
            rates[kind] = rate
        if sum(rates.values()) > 1.0 + 1e-9:
            raise FaultSpecError(
                f"fault rates sum to {sum(rates.values()):g} > 1"
            )
        ordered = tuple(
            (kind, rates[kind]) for kind in FAULT_KINDS if kind in rates
        )
        return cls(rates=ordered, seed=seed, hang_seconds=hang_seconds)

    def describe(self) -> str:
        """The canonical spec string (manifest/log form)."""
        parts = [f"{kind}:{rate:g}" for kind, rate in self.rates]
        if self.hang_seconds != 3600.0:
            parts.append(f"hang={self.hang_seconds:g}")
        return ",".join(parts)

    def decide(self, task_index: int, attempt: int) -> "str | None":
        """The fault (if any) for one execution of one task.

        Deterministic: the same ``(seed, task_index, attempt)`` always
        yields the same verdict, in any process.
        """
        if not self.rates:
            return None
        roll = fault_roll(self.seed, "fault", task_index, attempt)
        edge = 0.0
        for kind, rate in self.rates:
            edge += rate
            if roll < edge:
                return kind
        return None


def apply_fault(
    kind: str,
    hang_seconds: float = 3600.0,
    allow_kill: bool = True,
) -> None:
    """Carry out one injected fault.

    ``raise`` raises :class:`InjectedFault`; ``hang`` sleeps (an
    active :func:`time_limit` interrupts it with :class:`TaskTimeout`,
    otherwise it surfaces as :class:`InjectedFault` after
    ``hang_seconds``); ``kill`` hard-exits the process —  the worker
    dies without cleanup, exactly like a segfault or an OOM kill.
    With ``allow_kill=False`` (serial, in-process execution) a kill
    degrades to a raise, since killing the only process would take the
    whole run down rather than exercise recovery.
    """
    if kind == "raise":
        raise InjectedFault("injected task exception")
    if kind == "hang":
        time.sleep(hang_seconds)
        raise InjectedFault(
            f"injected hang expired after {hang_seconds:g}s"
        )
    if kind == "kill":
        if allow_kill:
            os._exit(KILL_EXIT_CODE)
        raise InjectedFault(
            "injected worker kill (degraded to an exception: task ran "
            "in-process)"
        )
    raise ValueError(f"unknown fault kind {kind!r}")


def backoff_delay(
    attempt: int,
    base: float = 0.05,
    cap: float = 30.0,
    seed: int = 0,
    task_index: int = 0,
) -> float:
    """Jittered exponential backoff before retry number ``attempt``.

    ``base * 2**(attempt-1)`` capped at ``cap``, scaled by a
    deterministic jitter factor in ``[0.5, 1.0)`` drawn from the
    seeded hash — so the whole retry schedule of a run is a pure
    function of its seed.
    """
    if attempt < 1:
        raise ValueError("attempt counts from 1")
    raw = min(float(cap), float(base) * (2.0 ** (attempt - 1)))
    jitter = 0.5 + 0.5 * fault_roll(seed, "backoff", task_index, attempt)
    return raw * jitter


@dataclass(frozen=True)
class RetryPolicy:
    """What the executor does when a task raises, hangs or dies.

    ``on_error`` semantics:

    * ``abort`` (default) — the first failure aborts the run
      immediately; ``retries`` is ignored.  The historical behaviour.
    * ``retry`` — re-run the task up to ``retries`` times with
      backoff; abort if it still fails.
    * ``skip`` — retry the same way, but a task that exhausts its
      attempts is recorded as failed and the sweep continues without
      it (the manifest lists the holes).

    ``task_timeout`` bounds one attempt's wall time; ``seed`` drives
    the deterministic backoff jitter.
    """

    on_error: str = "abort"
    retries: int = 2
    task_timeout: "float | None" = None
    backoff_base: float = 0.05
    backoff_cap: float = 30.0
    seed: int = 0

    def __post_init__(self) -> None:
        if self.on_error not in ON_ERROR_MODES:
            raise ValueError(
                f"unknown on_error mode {self.on_error!r}; choose "
                + ", ".join(ON_ERROR_MODES)
            )
        if self.retries < 0:
            raise ValueError("retries must be >= 0")
        if self.task_timeout is not None and self.task_timeout <= 0:
            raise ValueError("task_timeout must be positive")
        if self.backoff_base < 0 or self.backoff_cap < 0:
            raise ValueError("backoff must be >= 0")

    @property
    def max_attempts(self) -> int:
        """Total executions allowed per task (1 under ``abort``)."""
        return 1 if self.on_error == "abort" else self.retries + 1

    def delay(self, task_index: int, attempt: int) -> float:
        """Seconds to wait before retry number ``attempt`` of a task."""
        return backoff_delay(
            attempt,
            base=self.backoff_base,
            cap=self.backoff_cap,
            seed=self.seed,
            task_index=task_index,
        )


def _can_alarm() -> bool:
    return (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )


@contextmanager
def time_limit(seconds: "float | None") -> Iterator[None]:
    """Raise :class:`TaskTimeout` if the body runs past ``seconds``.

    Implemented with ``SIGALRM``/``setitimer``, so it interrupts pure
    sleeps and Python loops alike.  A no-op when ``seconds`` is None,
    on platforms without ``SIGALRM``, or off the main thread (worker
    processes run tasks on their main thread, so the limit is always
    armed where it matters).
    """
    if not seconds or seconds <= 0 or not _can_alarm():
        yield
        return

    def _on_alarm(signum: int, frame: object) -> None:
        raise TaskTimeout(f"task exceeded --task-timeout {seconds:g}s")

    previous = signal.signal(signal.SIGALRM, _on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)
