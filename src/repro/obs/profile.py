"""Sampling wall-clock profiler: collapsed stacks + speedscope export.

Span tracing (:mod:`repro.obs.trace`) answers *which stage* a run
spends its time in; this module answers *which functions*.  A
background daemon thread wakes ``hz`` times per second, walks the main
thread's Python stack via ``sys._current_frames()``, and folds it into
a counter of collapsed stacks — the classic flamegraph input.  When
tracing is on, each sample is additionally attributed to the innermost
open span by prepending a synthetic ``span:<name>`` root frame, so a
flamegraph groups hot functions under the pipeline phase that called
them.

Overhead is the whole design:

* **off** (the default) costs literally nothing — no thread exists, no
  hook runs in instrumented code, and the hot paths contain no
  profiler calls at all (the <3% tracing-off noise criterion of the
  discovery benchmark is untouched);
* **on**, each sample is one ``sys._current_frames()`` call plus a
  frame walk in a separate thread — a few microseconds at the default
  ~100 Hz, independent of how hot the profiled code is.

Profiles are *mergeable* exactly like the metrics registry: a state is
a plain dict of ``folded-stack -> sample count``, so ``--jobs N``
worker processes profile themselves and ship their state back with
each task result (see :mod:`repro.experiments.parallel`), and the
parent :meth:`~SamplingProfiler.merge`\\ s them into one profile — a
parallel run produces a single speedscope file covering every process.

Export formats:

* :func:`write_speedscope` — the speedscope JSON file format
  (https://www.speedscope.app), validated by
  :func:`validate_speedscope`;
* :func:`write_folded` — Brendan Gregg folded-stack text
  (``frame;frame;frame count`` per line), the input of every
  ``flamegraph.pl``-family tool.
"""

from __future__ import annotations

import os
import sys
import threading
import time
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "DEFAULT_HZ",
    "PROFILER",
    "SamplingProfiler",
    "build_speedscope",
    "folded_lines",
    "folded_path_for",
    "validate_speedscope",
    "write_folded",
    "write_speedscope",
]

#: Default sampling rate; prime, so periodic code does not alias.
DEFAULT_HZ = 101

#: Stack depth cap per sample (runaway recursion protection).
_MAX_DEPTH = 200

#: Separator of the folded-stack representation.
_SEP = ";"

#: The speedscope file-format schema URL stamped into exports.
_SPEEDSCOPE_SCHEMA = "https://www.speedscope.app/file-format-schema.json"


def _frame_label(code: Any) -> str:
    """A stable display label for one code object.

    Uses ``co_firstlineno`` (not the currently executing line) so the
    same function folds into the same frame regardless of where the
    sample landed inside it, and shortens the path to the part after
    the last ``repro`` package root when present.
    """
    filename = code.co_filename
    marker = f"{os.sep}repro{os.sep}"
    cut = filename.rfind(marker)
    if cut != -1:
        filename = "repro/" + filename[cut + len(marker):].replace(
            os.sep, "/"
        )
    else:
        filename = filename.rsplit(os.sep, 1)[-1]
    return f"{code.co_name} ({filename}:{code.co_firstlineno})"


class SamplingProfiler:
    """Background wall-clock stack sampler with mergeable state.

    ``enable(hz)`` spawns the sampler thread; ``disable()`` stops and
    joins it.  While disabled, no thread exists (``thread`` is None)
    and the object is inert.  The collected state — a dict of folded
    stacks to sample counts plus the sampling rate and accumulated
    sampling duration — is read with :meth:`snapshot` and folded into
    another profiler with :meth:`merge`.
    """

    def __init__(self) -> None:
        self.hz = DEFAULT_HZ
        self.enabled = False
        self._thread: "threading.Thread | None" = None
        self._stop: "threading.Event | None" = None
        self._lock = threading.Lock()
        self._stacks: dict[str, int] = {}
        self._duration = 0.0
        self._started_at: "float | None" = None
        #: Thread id whose stack is sampled (the process main thread).
        self._target_ident: "int | None" = None

    @property
    def thread(self) -> "threading.Thread | None":
        """The live sampler thread, or None while disabled."""
        return self._thread

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self, hz: "int | None" = None) -> None:
        """Start (or restart) the sampler thread at ``hz`` samples/s.

        Safe to call in a freshly forked worker: a stale thread object
        inherited from the parent is not alive there, so a new thread
        is started.
        """
        if hz is not None:
            if hz <= 0:
                raise ValueError(f"profile hz must be positive, got {hz}")
            self.hz = int(hz)
        if self._thread is not None and self._thread.is_alive():
            self.enabled = True
            return
        self._target_ident = threading.main_thread().ident
        self._stop = threading.Event()
        self._started_at = time.perf_counter()
        self._thread = threading.Thread(
            target=self._run,
            name="repro-profile-sampler",
            daemon=True,
        )
        self.enabled = True
        self._thread.start()

    def disable(self) -> None:
        """Stop the sampler thread (accumulated samples are kept)."""
        self.enabled = False
        thread, stop = self._thread, self._stop
        self._thread = None
        self._stop = None
        if stop is not None:
            stop.set()
        if thread is not None and thread.is_alive():
            thread.join(timeout=2.0)
        if self._started_at is not None:
            self._duration += time.perf_counter() - self._started_at
            self._started_at = None

    def reset(self) -> None:
        """Drop all accumulated samples (the thread state is kept)."""
        with self._lock:
            self._stacks.clear()
        self._duration = 0.0
        if self._started_at is not None:
            self._started_at = time.perf_counter()

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def _run(self) -> None:
        stop = self._stop
        interval = 1.0 / float(self.hz)
        while stop is not None and not stop.wait(interval):
            self._take_sample()

    def _take_sample(self) -> None:
        frame = sys._current_frames().get(self._target_ident)
        if frame is None:
            return
        labels: list[str] = []
        depth = 0
        while frame is not None and depth < _MAX_DEPTH:
            labels.append(_frame_label(frame.f_code))
            frame = frame.f_back
            depth += 1
        labels.reverse()
        # Attribute the sample to the innermost open span, if tracing.
        span_label = self._active_span_label()
        if span_label is not None:
            labels.insert(0, span_label)
        folded = _SEP.join(labels)
        with self._lock:
            self._stacks[folded] = self._stacks.get(folded, 0) + 1

    @staticmethod
    def _active_span_label() -> "str | None":
        from .trace import TRACER

        current = TRACER.current
        return f"span:{current.name}" if current is not None else None

    # ------------------------------------------------------------------
    # State: snapshot / merge
    # ------------------------------------------------------------------
    def snapshot(self) -> dict[str, Any]:
        """The profile as a plain, mergeable, picklable dict."""
        if self._started_at is not None:
            duration = (
                self._duration + time.perf_counter() - self._started_at
            )
        else:
            duration = self._duration
        with self._lock:
            stacks = dict(self._stacks)
        return {
            "hz": self.hz,
            "duration_seconds": duration,
            "stacks": stacks,
        }

    def merge(self, state: "Mapping[str, Any] | None") -> None:
        """Fold a worker's profile state in (sample counts add)."""
        if not state:
            return
        with self._lock:
            for folded, count in (state.get("stacks") or {}).items():
                self._stacks[folded] = (
                    self._stacks.get(folded, 0) + int(count)
                )
        self._duration += float(state.get("duration_seconds", 0.0))

    @property
    def sample_count(self) -> int:
        with self._lock:
            return sum(self._stacks.values())

    def summary(self, top: int = 15) -> "dict[str, Any] | None":
        """The manifest-ready profile summary (None when empty).

        ``top`` caps the hot-function table: frames ranked by *total*
        samples (self + descendants), with self-sample counts kept so
        ``repro report`` can render both columns.
        """
        state = self.snapshot()
        if not state["stacks"]:
            return None
        totals: dict[str, int] = {}
        selfs: dict[str, int] = {}
        for folded, count in state["stacks"].items():
            frames = folded.split(_SEP)
            selfs[frames[-1]] = selfs.get(frames[-1], 0) + count
            for frame in set(frames):
                totals[frame] = totals.get(frame, 0) + count
        ranked = sorted(
            totals.items(), key=lambda item: (-item[1], item[0])
        )
        return {
            "hz": state["hz"],
            "duration_seconds": state["duration_seconds"],
            "samples": sum(state["stacks"].values()),
            "distinct_stacks": len(state["stacks"]),
            "top": [
                {
                    "frame": frame,
                    "total_samples": total,
                    "self_samples": selfs.get(frame, 0),
                }
                for frame, total in ranked[:top]
                if not frame.startswith("span:")
            ],
        }


#: The process-global profiler (one sampler thread per process, max).
PROFILER = SamplingProfiler()


# ----------------------------------------------------------------------
# Export: speedscope JSON + folded-stack text
# ----------------------------------------------------------------------
def build_speedscope(
    state: Mapping[str, Any], name: str = "repro"
) -> dict[str, Any]:
    """A profile state as a speedscope ``sampled`` profile document."""
    stacks = state.get("stacks") or {}
    frame_index: dict[str, int] = {}
    frames: list[dict[str, Any]] = []
    samples: list[list[int]] = []
    weights: list[int] = []
    for folded in sorted(stacks):
        stack_indices = []
        for label in folded.split(_SEP):
            index = frame_index.get(label)
            if index is None:
                index = len(frames)
                frame_index[label] = index
                frames.append({"name": label})
            stack_indices.append(index)
        samples.append(stack_indices)
        weights.append(int(stacks[folded]))
    total = sum(weights)
    return {
        "$schema": _SPEEDSCOPE_SCHEMA,
        "name": name,
        "exporter": "repro.obs.profile",
        "activeProfileIndex": 0,
        "shared": {"frames": frames},
        "profiles": [{
            "type": "sampled",
            "name": (
                f"{name} ({state.get('hz', '?')} Hz, "
                f"{total} samples)"
            ),
            "unit": "none",
            "startValue": 0,
            "endValue": total,
            "samples": samples,
            "weights": weights,
        }],
    }


def validate_speedscope(data: Any) -> list[str]:
    """Speedscope file-format violations (empty list == valid)."""
    if not isinstance(data, dict):
        return ["speedscope document must be a JSON object"]
    errors: list[str] = []
    if data.get("$schema") != _SPEEDSCOPE_SCHEMA:
        errors.append(f"$schema must be {_SPEEDSCOPE_SCHEMA}")
    shared = data.get("shared")
    frames: list = []
    if not isinstance(shared, dict) or not isinstance(
        shared.get("frames"), list
    ):
        errors.append("shared.frames must be a list")
    else:
        frames = shared["frames"]
        for position, frame in enumerate(frames):
            if not isinstance(frame, dict) or not isinstance(
                frame.get("name"), str
            ):
                errors.append(
                    f"shared.frames[{position}].name must be a string"
                )
    profiles = data.get("profiles")
    if not isinstance(profiles, list) or not profiles:
        errors.append("profiles must be a non-empty list")
        return errors
    for position, profile in enumerate(profiles):
        where = f"profiles[{position}]"
        if not isinstance(profile, dict):
            errors.append(f"{where}: must be an object")
            continue
        if profile.get("type") != "sampled":
            errors.append(f"{where}.type must be 'sampled'")
        samples = profile.get("samples")
        weights = profile.get("weights")
        if not isinstance(samples, list) or not isinstance(
            weights, list
        ):
            errors.append(
                f"{where}: samples and weights must be lists"
            )
            continue
        if len(samples) != len(weights):
            errors.append(
                f"{where}: {len(samples)} samples vs "
                f"{len(weights)} weights"
            )
        for sample_pos, stack in enumerate(samples):
            if not isinstance(stack, list):
                errors.append(
                    f"{where}.samples[{sample_pos}] must be a list"
                )
                continue
            for index in stack:
                if not isinstance(index, int) or not (
                    0 <= index < len(frames)
                ):
                    errors.append(
                        f"{where}.samples[{sample_pos}]: frame index "
                        f"{index!r} out of range"
                    )
                    break
        if all(isinstance(w, (int, float)) for w in weights):
            total = sum(weights)
            if profile.get("endValue") != total:
                errors.append(
                    f"{where}.endValue must equal the weight sum "
                    f"({total})"
                )
    return errors


def folded_lines(state: Mapping[str, Any]) -> list[str]:
    """``frame;frame;frame count`` lines, sorted for stable diffs."""
    stacks = state.get("stacks") or {}
    return [
        f"{folded} {stacks[folded]}" for folded in sorted(stacks)
    ]


def write_speedscope(
    state: Mapping[str, Any],
    path: "str | os.PathLike",
    name: str = "repro",
) -> Path:
    """Write the speedscope JSON document for one profile state."""
    import json

    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(build_speedscope(state, name=name)) + "\n"
    )
    return target


def write_folded(
    state: Mapping[str, Any], path: "str | os.PathLike"
) -> Path:
    """Write the folded-stack text form of one profile state."""
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    lines = folded_lines(state)
    target.write_text("\n".join(lines) + ("\n" if lines else ""))
    return target


def folded_path_for(speedscope_path: "str | os.PathLike") -> Path:
    """The folded-text sibling of a speedscope output path.

    ``profile.speedscope.json -> profile.folded.txt`` and
    ``x.json -> x.folded.txt``; anything else just gains the suffix.
    """
    text = str(speedscope_path)
    for suffix in (".speedscope.json", ".json"):
        if text.endswith(suffix):
            return Path(text[: -len(suffix)] + ".folded.txt")
    return Path(text + ".folded.txt")
