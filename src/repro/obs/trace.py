"""Structured tracing: nested wall-clock/CPU spans with attributes.

The experiment pipeline is a chain of opaque numeric stages — candidate
enumeration, LP filtering, probe batches, Monte-Carlo sweeps — and the
only way to see where a run spends its time is to time the stages as a
tree.  :func:`span` is the single instrumentation point::

    with span("discovery.probe_batch", level=3, boxes=128) as sp:
        ...
        sp.set(settled=17)

Spans nest by lexical scope through a process-global :class:`Tracer`
(``TRACER``); the finished tree is exported as plain dicts for the run
manifest and can be *grafted* back under a live span — which is how
worker processes ship their sub-trees to the ``--jobs N`` parent so a
parallel run produces the same tree shape as a serial one.

Tracing is off by default and the disabled path allocates nothing: a
disabled tracer hands every ``span(...)`` call the same singleton no-op
context manager, so instrumentation left in hot code costs one method
call and no garbage.  Timing uses ``time.perf_counter`` (wall) and
``time.process_time`` (CPU of this process; a span that waits on worker
processes shows wall >> CPU, which is exactly the signal wanted).
"""

from __future__ import annotations

import time
from typing import Any, Mapping

from .memprof import MEMPROF

__all__ = ["Span", "Tracer", "TRACER", "span"]


class Span:
    """One timed node of a trace tree."""

    __slots__ = (
        "name", "attrs", "children",
        "wall_start", "wall_end", "cpu_start", "cpu_end",
    )

    def __init__(
        self, name: str, attrs: "Mapping[str, Any] | None" = None
    ) -> None:
        self.name = name
        self.attrs: dict[str, Any] = dict(attrs) if attrs else {}
        self.children: list[Span] = []
        self.wall_start = 0.0
        self.wall_end = 0.0
        self.cpu_start = 0.0
        self.cpu_end = 0.0

    def set(self, **attrs: Any) -> None:
        """Attach attributes to the span (probe counts, cache keys...)."""
        self.attrs.update(attrs)

    @property
    def wall_seconds(self) -> float:
        return max(self.wall_end - self.wall_start, 0.0)

    @property
    def cpu_seconds(self) -> float:
        return max(self.cpu_end - self.cpu_start, 0.0)

    def to_dict(self) -> dict[str, Any]:
        """Manifest form: name, attrs, durations, children."""
        return {
            "name": self.name,
            "attrs": dict(self.attrs),
            "wall_seconds": self.wall_seconds,
            "cpu_seconds": self.cpu_seconds,
            "children": [child.to_dict() for child in self.children],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, Any]) -> "Span":
        """Rebuild a span (tree) from its :meth:`to_dict` form."""
        node = cls(str(data["name"]), data.get("attrs") or {})
        node.wall_end = float(data.get("wall_seconds", 0.0))
        node.cpu_end = float(data.get("cpu_seconds", 0.0))
        node.children = [
            cls.from_dict(child) for child in data.get("children", ())
        ]
        return node


class _NullSpan:
    """Shared no-op stand-in handed out while tracing is disabled."""

    __slots__ = ()

    def set(self, **attrs: Any) -> None:
        return None

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class _SpanHandle:
    """Context manager that opens/closes one span on a tracer."""

    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", node: Span) -> None:
        self._tracer = tracer
        self._span = node

    def __enter__(self) -> Span:
        tracer = self._tracer
        node = self._span
        stack = tracer._stack
        parent = stack[-1] if stack else None
        (parent.children if parent is not None
         else tracer.roots).append(node)
        stack.append(node)
        node.cpu_start = time.process_time()
        node.wall_start = time.perf_counter()
        return node

    def __exit__(self, *exc: object) -> bool:
        node = self._span
        node.wall_end = time.perf_counter()
        node.cpu_end = time.process_time()
        if MEMPROF.enabled:
            node.attrs.update(MEMPROF.sample())
        stack = self._tracer._stack
        if stack and stack[-1] is node:
            stack.pop()
        return False


class Tracer:
    """Process-global span collector.

    ``enabled`` gates everything: while False, :meth:`span` returns a
    shared null context manager and no :class:`Span` is ever allocated.
    """

    def __init__(self) -> None:
        self.enabled = False
        self.roots: list[Span] = []
        self._stack: list[Span] = []

    def enable(self) -> None:
        self.enabled = True

    def disable(self) -> None:
        self.enabled = False

    def reset(self) -> None:
        """Drop all recorded spans; the enabled flag is kept."""
        self.roots = []
        self._stack = []

    def span(self, name: str, **attrs: Any):
        """Context manager timing one named stage (yields the span)."""
        if not self.enabled:
            return _NULL_SPAN
        return _SpanHandle(self, Span(name, attrs))

    @property
    def current(self) -> "Span | None":
        """The innermost open span, if any."""
        return self._stack[-1] if self._stack else None

    def export(self) -> list[dict[str, Any]]:
        """The finished tree(s) as manifest-ready dicts."""
        return [node.to_dict() for node in self.roots]

    def graft(self, exported: "list[dict[str, Any]] | None") -> None:
        """Attach exported span dicts under the current span.

        This is how ``--jobs N`` workers contribute their sub-trees:
        the worker exports, the parent grafts, and the combined tree is
        indistinguishable in shape from a serial run.
        """
        if not self.enabled or not exported:
            return
        target = (
            self._stack[-1].children if self._stack else self.roots
        )
        for data in exported:
            target.append(Span.from_dict(data))


#: The process-global tracer every ``span(...)`` call goes through.
TRACER = Tracer()


def span(name: str, **attrs: Any):
    """``TRACER.span(...)`` — the module-level instrumentation point."""
    return TRACER.span(name, **attrs)
