"""Live progress for long sweeps: rate + ETA on stderr, TTY-aware.

A 20-minute ``--jobs 8`` census used to give zero feedback until it
finished.  The experiment engine now publishes task-completion events
to the process-global :data:`PROGRESS` reporter, which renders a
single self-overwriting stderr line::

    fig6 [split] 14/66 tasks · 3.2 tasks/s · eta 16s

The reporter is a null object unless it is *active*: in ``auto`` mode
it renders only when stderr is a TTY **and** the configured log level
is below WARNING (progress is chatter; ``--log-level info`` opts in),
``on`` forces rendering even into pipes (one line per refresh, for CI
logs), ``off`` silences it unconditionally.  When inactive,
:meth:`ProgressReporter.start` hands back a shared no-op task, so the
disabled path costs one method call per completed task and allocates
nothing — the same contract as :func:`repro.obs.trace.span`.

Updates are throttled (~10 Hz on a TTY, 1 Hz piped) so sub-second
tasks never flood the terminal; the final state always renders, then
the line is cleared (TTY) so real output is never interleaved with a
stale meter.
"""

from __future__ import annotations

import logging
import sys
import time
from typing import Any, TextIO

__all__ = [
    "ProgressReporter",
    "ProgressTask",
    "PROGRESS",
]

#: Minimum seconds between repaints: interactive vs line-per-update.
_TTY_INTERVAL = 0.1
_PIPE_INTERVAL = 1.0


def _format_eta(seconds: float) -> str:
    if seconds < 0 or seconds != seconds:  # negative or NaN
        return "?"
    if seconds < 60:
        return f"{seconds:.0f}s"
    minutes, rest = divmod(int(seconds), 60)
    if minutes < 60:
        return f"{minutes}m{rest:02d}s"
    hours, minutes = divmod(minutes, 60)
    return f"{hours}h{minutes:02d}m"


class _NullTask:
    """Shared no-op task handed out while progress is inactive."""

    __slots__ = ()

    def advance(self, n: int = 1) -> None:
        return None

    def finish(self) -> None:
        return None


_NULL_TASK = _NullTask()


class ProgressTask:
    """One live meter: ``label done/total tasks · rate · eta``.

    ``total=None`` means the task count is unknown (a lazy
    ``plan_tasks`` source): the meter renders ``done tasks · rate``
    with no denominator and no ETA.
    """

    __slots__ = (
        "label", "total", "done", "_stream", "_tty", "_started",
        "_last_render", "_interval", "_last_width",
    )

    def __init__(
        self,
        label: str,
        total: "int | None",
        stream: TextIO,
        tty: bool,
    ) -> None:
        self.label = label
        self.total = None if total is None else max(int(total), 0)
        self.done = 0
        self._stream = stream
        self._tty = tty
        self._started = time.perf_counter()
        self._last_render = 0.0
        self._interval = _TTY_INTERVAL if tty else _PIPE_INTERVAL
        self._last_width = 0
        self._render(force=True)

    def advance(self, n: int = 1) -> None:
        """Mark ``n`` tasks complete and repaint (throttled)."""
        self.done += n
        self._render(
            force=self.total is not None and self.done >= self.total
        )

    def render_line(self) -> str:
        """The current meter text (also used by tests)."""
        elapsed = time.perf_counter() - self._started
        rate = self.done / elapsed if elapsed > 0 else 0.0
        if self.total is None:
            return (
                f"{self.label} {self.done} tasks "
                f"· {rate:.1f} tasks/s"
            )
        if self.done and rate > 0:
            eta = _format_eta((self.total - self.done) / rate)
        else:
            eta = "?"
        return (
            f"{self.label} {self.done}/{self.total} tasks "
            f"· {rate:.1f} tasks/s · eta {eta}"
        )

    def _render(self, force: bool = False) -> None:
        now = time.perf_counter()
        if not force and now - self._last_render < self._interval:
            return
        self._last_render = now
        line = self.render_line()
        if self._tty:
            pad = " " * max(self._last_width - len(line), 0)
            self._stream.write(f"\r{line}{pad}")
        else:
            self._stream.write(line + "\n")
        self._last_width = len(line)
        self._stream.flush()

    def finish(self) -> None:
        """Render the final state, then clear the meter line (TTY)."""
        self._render(force=True)
        if self._tty:
            self._stream.write("\r" + " " * self._last_width + "\r")
            self._stream.flush()


class ProgressReporter:
    """Process-global factory deciding whether meters render at all.

    ``configure`` is called once per CLI invocation with the
    ``--progress``/``--no-progress`` mode and the ``--log-level``;
    :meth:`start` then returns either a live :class:`ProgressTask` or
    the shared null task.
    """

    def __init__(self) -> None:
        self.mode = "auto"
        self.log_level = "warning"
        self._stream: "TextIO | None" = None

    def configure(
        self,
        mode: str = "auto",
        log_level: "str | None" = None,
        stream: "TextIO | None" = None,
    ) -> None:
        if mode not in ("auto", "on", "off"):
            raise ValueError(
                f"unknown progress mode {mode!r}; "
                "choose auto, on or off"
            )
        self.mode = mode
        if log_level is not None:
            self.log_level = log_level
        self._stream = stream

    @property
    def stream(self) -> TextIO:
        return self._stream if self._stream is not None else sys.stderr

    def active(self) -> bool:
        """Whether a started task would actually render."""
        if self.mode == "off":
            return False
        if self.mode == "on":
            return True
        from .logs import LOG_LEVELS

        level = LOG_LEVELS.get(self.log_level, logging.WARNING)
        if level >= logging.WARNING:
            return False
        stream = self.stream
        isatty = getattr(stream, "isatty", None)
        return bool(isatty and isatty())

    def start(self, label: str, total: "int | None") -> Any:
        """A live meter when active, the shared no-op otherwise.

        ``total=None`` starts an unknown-total meter (no ETA).
        """
        if (total is not None and total <= 0) or not self.active():
            return _NULL_TASK
        stream = self.stream
        isatty = getattr(stream, "isatty", None)
        return ProgressTask(
            label, total, stream, tty=bool(isatty and isatty())
        )


#: The process-global reporter the experiment engine publishes to.
PROGRESS = ProgressReporter()
