"""Per-phase memory profiling: tracemalloc + RSS sampled at span exits.

``--memprof`` answers "where does the memory go?" the same way
``--trace`` answers it for time: when enabled, every closing span
(:func:`repro.obs.trace.span`) is stamped with a sample from the
process-global :data:`MEMPROF` profiler —

* ``mem_traced_kb`` — Python-level bytes currently allocated
  (``tracemalloc.get_traced_memory()[0]``),
* ``mem_traced_peak_kb`` — the tracemalloc high-water mark so far,
* ``mem_rss_kb`` — the OS resident set size (``/proc/self/statm`` on
  Linux, ``ru_maxrss`` peak-RSS fallback elsewhere)

— so ``repro report`` can render a per-phase memory column next to the
wall/CPU times.  Samples are boundary snapshots, not per-span deltas:
the peak is monotone across the run (nested spans never reset it, so a
parent's reading always covers its children).

Disabled is the default and costs one attribute check per closing span
— and only when tracing is already on, so the hot path with everything
off is untouched.  Enabling starts ``tracemalloc`` (itself the
dominant overhead — allocation tracking roughly doubles allocation
cost), which is exactly why this is an opt-in flag and not part of
``--trace``.
"""

from __future__ import annotations

import os
import tracemalloc
from typing import Any

__all__ = ["MemoryProfiler", "MEMPROF", "rss_kb"]

_PAGE_KB = os.sysconf("SC_PAGE_SIZE") / 1024.0 if hasattr(
    os, "sysconf"
) else 4.0


def rss_kb() -> "float | None":
    """Current resident set size in KiB (best effort, None if unknown)."""
    try:
        with open("/proc/self/statm") as handle:
            pages = int(handle.read().split()[1])
        return pages * _PAGE_KB
    except (OSError, ValueError, IndexError):
        pass
    try:
        import resource

        usage = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss
        # Linux reports KiB, macOS bytes; normalise the latter.
        return usage / 1024.0 if usage > 1 << 30 else float(usage)
    except Exception:
        return None


class MemoryProfiler:
    """Opt-in sampler stamping span attrs with memory readings."""

    def __init__(self) -> None:
        self.enabled = False
        self._started_tracemalloc = False

    def enable(self) -> None:
        """Start sampling (and tracemalloc, if not already running)."""
        if not tracemalloc.is_tracing():
            tracemalloc.start()
            self._started_tracemalloc = True
        self.enabled = True

    def disable(self) -> None:
        """Stop sampling; stops tracemalloc only if this object started it."""
        self.enabled = False
        if self._started_tracemalloc and tracemalloc.is_tracing():
            tracemalloc.stop()
        self._started_tracemalloc = False

    def sample(self) -> dict[str, Any]:
        """One boundary snapshot, in KiB, as span-attr-ready floats."""
        traced, peak = (
            tracemalloc.get_traced_memory()
            if tracemalloc.is_tracing()
            else (0, 0)
        )
        sampled: dict[str, Any] = {
            "mem_traced_kb": round(traced / 1024.0, 1),
            "mem_traced_peak_kb": round(peak / 1024.0, 1),
        }
        resident = rss_kb()
        if resident is not None:
            sampled["mem_rss_kb"] = round(resident, 1)
        return sampled


#: The process-global profiler ``span()`` exits consult.
MEMPROF = MemoryProfiler()
