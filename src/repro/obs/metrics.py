"""A process-mergeable metrics registry: counters, gauges, histograms.

Instrumented code gets or creates metrics by name on the process-global
``METRICS`` registry::

    METRICS.counter("plancache.hits").inc()
    METRICS.histogram("expected.gtc").observe_many(gtcs)

Everything is designed around *merging*: a worker process resets its
registry, runs one task, snapshots, and ships the snapshot (plain JSON
dicts) back to the ``--jobs N`` parent, which :meth:`~MetricsRegistry.merge`\\ s
it — counters and histograms add, gauges overwrite in arrival order.
Because the serial path writes to the parent registry directly and the
parallel path merges per-task deltas, metric totals are identical for
any ``--jobs`` value (pinned in ``tests/experiments/test_parallel_obs.py``).

Histograms keep exact ``count/sum/min/max`` plus per-decade bucket
counts (bucket = ``floor(log10(value))``), which is mergeable without
coordination and is the right resolution for the quantities tracked
here — regret ratios and probe counts spanning many orders of
magnitude.
"""

from __future__ import annotations

import threading
from typing import Any, Iterable, Mapping

import numpy as np

__all__ = ["Counter", "Gauge", "Histogram", "MetricsRegistry", "METRICS"]


class Counter:
    """A monotonically increasing count."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "int | float" = 0

    def inc(self, amount: "int | float" = 1) -> None:
        self.value += amount


class Gauge:
    """A last-write-wins scalar (None until first set)."""

    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value: "float | None" = None

    def set(self, value: float) -> None:
        self.value = float(value)


class Histogram:
    """Exact count/sum/min/max plus per-decade bucket counts."""

    __slots__ = ("count", "total", "minimum", "maximum", "decades",
                 "nonpositive")

    def __init__(self) -> None:
        self.count = 0
        self.total = 0.0
        self.minimum: "float | None" = None
        self.maximum: "float | None" = None
        #: decade exponent -> count of values in [10^e, 10^(e+1)).
        self.decades: dict[int, int] = {}
        #: values <= 0 have no decade; counted separately.
        self.nonpositive = 0

    def observe(self, value: float) -> None:
        self.observe_many((value,))

    def observe_many(self, values: Iterable[float]) -> None:
        array = np.asarray(
            values if isinstance(values, np.ndarray) else list(values),
            dtype=float,
        ).ravel()
        if not array.size:
            return
        self.count += int(array.size)
        self.total += float(array.sum())
        low = float(array.min())
        high = float(array.max())
        self.minimum = low if self.minimum is None else min(
            self.minimum, low
        )
        self.maximum = high if self.maximum is None else max(
            self.maximum, high
        )
        positive = array[array > 0.0]
        self.nonpositive += int(array.size - positive.size)
        if positive.size:
            exponents = np.floor(np.log10(positive)).astype(int)
            for exponent, bucket_count in zip(
                *np.unique(exponents, return_counts=True)
            ):
                key = int(exponent)
                self.decades[key] = (
                    self.decades.get(key, 0) + int(bucket_count)
                )

    @property
    def mean(self) -> "float | None":
        return self.total / self.count if self.count else None

    def state(self) -> dict[str, Any]:
        return {
            "count": self.count,
            "sum": self.total,
            "min": self.minimum,
            "max": self.maximum,
            "decades": {
                str(exponent): count
                for exponent, count in sorted(self.decades.items())
            },
            "nonpositive": self.nonpositive,
        }

    def merge_state(self, state: Mapping[str, Any]) -> None:
        self.count += int(state.get("count", 0))
        self.total += float(state.get("sum", 0.0))
        for bound, pick in (("min", min), ("max", max)):
            other = state.get(bound)
            if other is None:
                continue
            mine = self.minimum if bound == "min" else self.maximum
            merged = float(other) if mine is None else pick(
                mine, float(other)
            )
            if bound == "min":
                self.minimum = merged
            else:
                self.maximum = merged
        for key, count in (state.get("decades") or {}).items():
            exponent = int(key)
            self.decades[exponent] = (
                self.decades.get(exponent, 0) + int(count)
            )
        self.nonpositive += int(state.get("nonpositive", 0))


class MetricsRegistry:
    """Named counters/gauges/histograms with snapshot/merge/reset.

    Creation is guarded by a lock so concurrent threads get the same
    object for the same name; increments on the returned objects are
    plain attribute updates (cheap, GIL-atomic).
    """

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._counters: dict[str, Counter] = {}
        self._gauges: dict[str, Gauge] = {}
        self._histograms: dict[str, Histogram] = {}

    def _get(self, table: dict, name: str, factory):
        found = table.get(name)
        if found is None:
            with self._lock:
                found = table.setdefault(name, factory())
        return found

    def counter(self, name: str) -> Counter:
        return self._get(self._counters, name, Counter)

    def gauge(self, name: str) -> Gauge:
        return self._get(self._gauges, name, Gauge)

    def histogram(self, name: str) -> Histogram:
        return self._get(self._histograms, name, Histogram)

    def counter_value(self, name: str) -> "int | float":
        """Current value of a counter (0 if it was never touched)."""
        found = self._counters.get(name)
        return found.value if found is not None else 0

    def snapshot(self) -> dict[str, Any]:
        """The whole registry as plain JSON-ready dicts."""
        return {
            "counters": {
                name: counter.value
                for name, counter in sorted(self._counters.items())
            },
            "gauges": {
                name: gauge.value
                for name, gauge in sorted(self._gauges.items())
            },
            "histograms": {
                name: histogram.state()
                for name, histogram in sorted(self._histograms.items())
            },
        }

    def merge(self, snapshot: Mapping[str, Any]) -> None:
        """Fold a worker snapshot in: add counts, overwrite gauges."""
        for name, value in (snapshot.get("counters") or {}).items():
            self.counter(name).inc(value)
        for name, value in (snapshot.get("gauges") or {}).items():
            if value is not None:
                self.gauge(name).set(value)
        for name, state in (snapshot.get("histograms") or {}).items():
            self.histogram(name).merge_state(state)

    def reset(self) -> None:
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()


#: The process-global registry all instrumentation writes to.
METRICS = MetricsRegistry()
