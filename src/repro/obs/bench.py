"""Benchmark telemetry: schema-versioned BENCH records + regression gate.

Every benchmark module under ``benchmarks/`` emits one machine-readable
``BENCH_<name>.json`` record through the shared pytest plugin
(``benchmarks/conftest.py``), which feeds a :class:`BenchRecorder`:
per-test timing statistics (median/IQR/rounds and friends from
pytest-benchmark), provenance (git SHA, package version, environment
fingerprint, catalog digest), the metrics snapshot accumulated while
the benchmarks ran, and free-form per-module ``extras`` (probe rates,
speedups).  The record is the unit of performance history: CI archives
one per benchmark per run, and ``repro bench --compare`` diffs two of
them and exits non-zero when a median regresses beyond a threshold —
the closed loop that keeps "fast" an enforced property instead of a
hope.

The schema is strict and versioned exactly like the run manifest:
:func:`validate_bench_record` rejects missing *and* unknown top-level
fields, so any shape change must bump ``BENCH_SCHEMA_VERSION``.
"""

from __future__ import annotations

import json
import os
import time
import warnings
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Mapping

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "RESULT_FIELDS",
    "BenchDelta",
    "BenchComparison",
    "BenchRecorder",
    "build_bench_record",
    "validate_bench_record",
    "load_bench_record",
    "write_bench_record",
    "compare_bench_records",
    "render_bench_record",
    "render_bench_comparison",
]

BENCH_SCHEMA_VERSION = 1

#: Default relative median slowdown treated as a regression (15%).
DEFAULT_THRESHOLD = 0.15

#: Top-level record schema: field -> allowed instance types.
_FIELDS: dict[str, tuple] = {
    "bench_schema_version": (int,),
    "benchmark": (str,),
    "package_version": (str,),
    "git_sha": (str, type(None)),
    "created_unix": (int, float),
    "environment": (dict,),
    "catalog_digest": (str, type(None)),
    "metrics": (dict,),
    "results": (dict,),
    "extras": (dict,),
}

#: Per-test timing statistics, all in seconds except ``rounds``.
RESULT_FIELDS = (
    "median_seconds",
    "iqr_seconds",
    "rounds",
    "mean_seconds",
    "min_seconds",
    "max_seconds",
)


def build_bench_record(
    benchmark: str,
    results: Mapping[str, Mapping[str, Any]],
    extras: "Mapping[str, Any] | None" = None,
    catalog_sha: "str | None" = None,
    metrics: "Mapping[str, Any] | None" = None,
) -> dict[str, Any]:
    """Assemble a schema-valid BENCH record for one benchmark module."""
    from .manifest import environment_fingerprint, git_revision
    from .. import __version__

    return {
        "bench_schema_version": BENCH_SCHEMA_VERSION,
        "benchmark": benchmark,
        "package_version": __version__,
        "git_sha": git_revision(),
        "created_unix": time.time(),
        "environment": environment_fingerprint(),
        "catalog_digest": catalog_sha,
        "metrics": dict(
            metrics
            or {"counters": {}, "gauges": {}, "histograms": {}}
        ),
        "results": {
            name: dict(stats) for name, stats in sorted(results.items())
        },
        "extras": dict(extras or {}),
    }


def validate_bench_record(data: Any) -> list[str]:
    """All schema violations in ``data`` (empty list == valid)."""
    if not isinstance(data, dict):
        return ["bench record must be a JSON object"]
    errors: list[str] = []
    for field, types in _FIELDS.items():
        if field not in data:
            errors.append(f"missing field: {field}")
        elif not isinstance(data[field], types):
            errors.append(
                f"field {field}: expected "
                f"{'/'.join(t.__name__ for t in types)}, got "
                f"{type(data[field]).__name__}"
            )
    for field in data:
        if field not in _FIELDS:
            errors.append(f"unknown field: {field}")
    if isinstance(data.get("bench_schema_version"), int):
        if data["bench_schema_version"] != BENCH_SCHEMA_VERSION:
            errors.append(
                f"bench_schema_version {data['bench_schema_version']} "
                f"!= supported {BENCH_SCHEMA_VERSION}"
            )
    results = data.get("results")
    if isinstance(results, dict):
        for name, stats in results.items():
            if not isinstance(stats, dict):
                errors.append(f"results.{name} must be an object")
                continue
            for field in RESULT_FIELDS:
                if not isinstance(stats.get(field), (int, float)):
                    errors.append(
                        f"results.{name}.{field} must be a number"
                    )
    return errors


def write_bench_record(
    record: Mapping[str, Any], path: "str | os.PathLike"
) -> Path:
    """Write a record as stable, sorted, human-diffable JSON."""
    target = Path(path)
    target.write_text(
        json.dumps(record, indent=2, sort_keys=True) + "\n"
    )
    return target


def load_bench_record(path: "str | os.PathLike") -> dict[str, Any]:
    """Read and validate one record; raises ``ValueError`` if invalid."""
    try:
        with open(path) as handle:
            data = json.load(handle)
    except (OSError, ValueError) as exc:
        raise ValueError(f"cannot read bench record {path}: {exc}")
    errors = validate_bench_record(data)
    if errors:
        raise ValueError(
            f"invalid bench record {path}: " + "; ".join(errors)
        )
    return data


# ----------------------------------------------------------------------
# Comparison (the regression gate)
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BenchDelta:
    """One test's median movement between two records."""

    name: str
    baseline_median: "float | None"
    current_median: "float | None"
    #: current/baseline; None when either side is missing.
    ratio: "float | None"
    #: ``regression`` / ``improvement`` / ``ok`` / ``added`` / ``removed``.
    status: str


@dataclass(frozen=True)
class BenchComparison:
    """A full diff of two BENCH records."""

    benchmark: str
    threshold: float
    deltas: tuple[BenchDelta, ...]
    #: Provenance of both sides, so an archived verdict names exactly
    #: which commits and catalogs it compared.
    baseline_git_sha: "str | None" = None
    current_git_sha: "str | None" = None
    baseline_catalog_digest: "str | None" = None
    current_catalog_digest: "str | None" = None

    @property
    def regressions(self) -> tuple[BenchDelta, ...]:
        return tuple(
            d for d in self.deltas if d.status == "regression"
        )

    @property
    def ok(self) -> bool:
        return not self.regressions


def _median_of(stats: Any) -> "float | None":
    """The median of one test's stats blob, or None if unusable.

    Defensive on purpose: a baseline may come from an older schema, a
    hand-edited file or a different branch, and a missing median must
    degrade to "cannot compare" rather than a KeyError.
    """
    if not isinstance(stats, Mapping):
        return None
    value = stats.get("median_seconds")
    return float(value) if isinstance(value, (int, float)) else None


def compare_bench_records(
    baseline: Mapping[str, Any],
    current: Mapping[str, Any],
    threshold: float = DEFAULT_THRESHOLD,
) -> BenchComparison:
    """Diff two records: medians per test, flagged beyond ``threshold``.

    A test regresses when its current median exceeds the baseline
    median by more than ``threshold`` (relative, default 15%); it is an
    improvement when it is faster by the same margin.  Records whose
    test sets differ compare cleanly: tests present on only one side
    are reported as the symmetric difference (``added``/``removed``)
    but never gate.
    """
    if threshold < 0:
        raise ValueError("threshold must be >= 0")
    base_results = baseline.get("results") or {}
    curr_results = current.get("results") or {}
    deltas = []
    for name in sorted(set(base_results) | set(curr_results)):
        base = base_results.get(name)
        curr = curr_results.get(name)
        if base is None:
            deltas.append(BenchDelta(
                name, None, _median_of(curr), None, "added"
            ))
            continue
        if curr is None:
            deltas.append(BenchDelta(
                name, _median_of(base), None, None, "removed"
            ))
            continue
        base_median = _median_of(base)
        curr_median = _median_of(curr)
        ratio = (
            curr_median / base_median
            if base_median and curr_median is not None
            else None
        )
        if ratio is None:
            status = "ok"
        elif ratio > 1.0 + threshold:
            status = "regression"
        elif ratio < 1.0 - threshold:
            status = "improvement"
        else:
            status = "ok"
        deltas.append(BenchDelta(
            name, base_median, curr_median, ratio, status
        ))
    return BenchComparison(
        benchmark=str(current.get("benchmark", "?")),
        threshold=float(threshold),
        deltas=tuple(deltas),
        baseline_git_sha=baseline.get("git_sha"),
        current_git_sha=current.get("git_sha"),
        baseline_catalog_digest=baseline.get("catalog_digest"),
        current_catalog_digest=current.get("catalog_digest"),
    )


def _format_seconds(value: "float | None") -> str:
    if value is None:
        return "-"
    if value < 1e-3:
        return f"{value * 1e6:.1f}us"
    if value < 1.0:
        return f"{value * 1e3:.1f}ms"
    return f"{value:.3f}s"


def render_bench_record(record: Mapping[str, Any]) -> str:
    """One record as a human-readable timing table."""
    lines = [
        f"benchmark: {record.get('benchmark', '?')}  "
        f"(schema v{record.get('bench_schema_version', '?')}, "
        f"git {str(record.get('git_sha') or 'unknown')[:12]})"
    ]
    results = record.get("results") or {}
    if not results:
        lines.append("results: (none recorded)")
        return "\n".join(lines)
    header = f"{'test':<52} {'median':>10} {'iqr':>10} {'rounds':>7}"
    lines.append(header)
    lines.append("-" * len(header))
    for name, stats in sorted(results.items()):
        lines.append(
            f"{name:<52} "
            f"{_format_seconds(stats.get('median_seconds')):>10} "
            f"{_format_seconds(stats.get('iqr_seconds')):>10} "
            f"{stats.get('rounds', 0):>7}"
        )
    extras = record.get("extras") or {}
    if extras:
        lines.append("extras: " + ", ".join(sorted(extras)))
    return "\n".join(lines)


def render_bench_comparison(comparison: BenchComparison) -> str:
    """A comparison as a verdict line plus a per-test delta table."""
    lines = [
        f"bench compare: {comparison.benchmark}  "
        f"(threshold {comparison.threshold:.0%})"
    ]
    header = (
        f"{'test':<52} {'baseline':>10} {'current':>10} "
        f"{'ratio':>7}  status"
    )
    lines.append(header)
    lines.append("-" * len(header))
    for delta in comparison.deltas:
        ratio = f"{delta.ratio:.2f}x" if delta.ratio is not None else "-"
        lines.append(
            f"{delta.name:<52} "
            f"{_format_seconds(delta.baseline_median):>10} "
            f"{_format_seconds(delta.current_median):>10} "
            f"{ratio:>7}  {delta.status.upper()}"
        )
    added = [d.name for d in comparison.deltas if d.status == "added"]
    removed = [
        d.name for d in comparison.deltas if d.status == "removed"
    ]
    if added or removed:
        lines.append("")
        lines.append(
            f"test sets differ: {len(added)} only in current, "
            f"{len(removed)} only in baseline (never gate)"
        )
        for name in added:
            lines.append(f"  + {name}")
        for name in removed:
            lines.append(f"  - {name}")
    lines.append("")
    provenance = _comparison_provenance(comparison)
    if comparison.ok:
        lines.append(
            f"verdict: OK — no test regressed beyond "
            f"{comparison.threshold:.0%}  [{provenance}]"
        )
    else:
        worst = max(
            comparison.regressions,
            key=lambda d: d.ratio if d.ratio is not None else 0.0,
        )
        lines.append(
            f"verdict: REGRESSION — "
            f"{len(comparison.regressions)} test(s) slower than "
            f"{comparison.threshold:.0%} (worst: {worst.name} at "
            f"{worst.ratio:.2f}x)  [{provenance}]"
        )
    return "\n".join(lines)


def _comparison_provenance(comparison: BenchComparison) -> str:
    """``git a->b, catalog c->d`` naming exactly what was compared."""

    def short(value: "str | None") -> str:
        return value[:12] if value else "unknown"

    return (
        f"git {short(comparison.baseline_git_sha)} -> "
        f"{short(comparison.current_git_sha)}, catalog "
        f"{short(comparison.baseline_catalog_digest)} -> "
        f"{short(comparison.current_catalog_digest)}"
    )


# ----------------------------------------------------------------------
# The session recorder behind the benchmarks/conftest.py plugin
# ----------------------------------------------------------------------
class BenchRecorder:
    """Collects per-test timing stats and flushes BENCH records.

    The pytest plugin feeds one :meth:`record` call per benchmark test
    (grouped by module) plus optional :meth:`add_extra` context; at
    session end :meth:`flush` writes one ``BENCH_<group>.json`` per
    group into ``out_dir`` (default: ``$REPRO_BENCH_DIR`` or the
    working directory), stamping each with the metrics snapshot
    accumulated while the benchmarks ran.

    ``legacy_env`` maps a group name to a deprecated environment
    variable that, when set, overrides that group's output path — the
    ``BENCH_JSON`` escape hatch the blackbox-batch benchmark shipped
    with before the shared plugin existed.  Using it warns.
    """

    def __init__(
        self,
        out_dir: "str | os.PathLike | None" = None,
        legacy_env: "Mapping[str, str] | None" = None,
    ) -> None:
        self.out_dir = out_dir
        self.legacy_env = dict(legacy_env or {})
        self.catalog_sha: "str | None" = None
        self._results: dict[str, dict[str, dict[str, Any]]] = {}
        self._extras: dict[str, dict[str, Any]] = {}

    def record(
        self, group: str, test: str, stats: Mapping[str, Any]
    ) -> None:
        """Register one test's timing statistics under its group."""
        missing = [f for f in RESULT_FIELDS if f not in stats]
        if missing:
            raise ValueError(
                f"bench stats for {test} missing {', '.join(missing)}"
            )
        self._results.setdefault(group, {})[test] = {
            field: stats[field] for field in RESULT_FIELDS
        }

    def add_extra(self, group: str, key: str, value: Any) -> None:
        """Attach free-form context to a group's record."""
        self._extras.setdefault(group, {})[key] = value

    def _path_for(self, group: str) -> Path:
        env_var = self.legacy_env.get(group)
        if env_var:
            legacy = os.environ.get(env_var)
            if legacy:
                warnings.warn(
                    f"{env_var} is deprecated; the benchmark plugin "
                    f"writes BENCH_{group}.json automatically "
                    "(set REPRO_BENCH_DIR to move all records)",
                    DeprecationWarning,
                    stacklevel=2,
                )
                return Path(legacy)
        root = self.out_dir or os.environ.get("REPRO_BENCH_DIR") or "."
        return Path(root) / f"BENCH_{group}.json"

    def flush(self) -> list[Path]:
        """Write one BENCH record per recorded group; returns paths."""
        from .metrics import METRICS

        written = []
        metrics = METRICS.snapshot() if self._results else None
        for group, results in sorted(self._results.items()):
            record = build_bench_record(
                benchmark=group,
                results=results,
                extras=self._extras.get(group),
                catalog_sha=self.catalog_sha,
                metrics=metrics,
            )
            path = self._path_for(group)
            path.parent.mkdir(parents=True, exist_ok=True)
            written.append(write_bench_record(record, path))
        self._results.clear()
        self._extras.clear()
        return written
