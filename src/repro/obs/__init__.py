"""Observability: tracing, metrics, run manifests, logging, reports.

A zero-dependency instrumentation spine for the experiment pipeline:

* :mod:`repro.obs.trace` — nested wall/CPU spans (``span("name")``),
  off by default with a no-allocation disabled path;
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and decade histograms whose snapshots merge across ``--jobs``
  worker processes;
* :mod:`repro.obs.manifest` — machine-readable ``run-manifest.json``
  reproducibility receipts (git SHA, config, seeds, catalog digest,
  span tree, metric snapshot, result digests) plus schema validation;
* :mod:`repro.obs.report` — rendering a manifest (or a diff of two)
  into the ``repro report`` breakdown;
* :mod:`repro.obs.logs` — stdlib logging wiring for ``--log-level``.
"""

from .logs import LOG_LEVELS, configure_logging, configured_log_level
from .manifest import (
    SCHEMA_VERSION,
    build_manifest,
    catalog_digest,
    environment_fingerprint,
    git_revision,
    manifest_from_context,
    text_digest,
    validate_manifest,
    write_manifest,
)
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .report import render_comparison, render_manifest
from .trace import TRACER, Span, Tracer, span

__all__ = [
    "LOG_LEVELS",
    "METRICS",
    "SCHEMA_VERSION",
    "TRACER",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "Span",
    "Tracer",
    "build_manifest",
    "catalog_digest",
    "configure_logging",
    "configured_log_level",
    "environment_fingerprint",
    "git_revision",
    "manifest_from_context",
    "render_comparison",
    "render_manifest",
    "span",
    "text_digest",
    "validate_manifest",
    "write_manifest",
]
