"""Observability: tracing, metrics, manifests, bench telemetry, reports.

A zero-dependency instrumentation spine for the experiment pipeline:

* :mod:`repro.obs.trace` — nested wall/CPU spans (``span("name")``),
  off by default with a no-allocation disabled path;
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and decade histograms whose snapshots merge across ``--jobs``
  worker processes;
* :mod:`repro.obs.manifest` — machine-readable ``run-manifest.json``
  reproducibility receipts (git SHA, config, seeds, catalog digest,
  span tree, metric snapshot, result digests) plus schema validation;
* :mod:`repro.obs.bench` — schema-versioned ``BENCH_<name>.json``
  benchmark records and the ``repro bench --compare`` regression gate;
* :mod:`repro.obs.export` — Chrome/Perfetto Trace Event export of
  manifest span trees (``--trace-out``, ``report --export-trace``);
* :mod:`repro.obs.progress` — the TTY-aware live progress meter the
  engine publishes task completions to;
* :mod:`repro.obs.memprof` — opt-in tracemalloc/RSS sampling at span
  boundaries (``--memprof``);
* :mod:`repro.obs.faults` — deterministic fault injection
  (``--inject-faults``), the retry/timeout/on-error policy objects and
  the SIGALRM task deadline the resilient executor runs under;
* :mod:`repro.obs.report` — rendering a manifest (or a diff of two)
  into the ``repro report`` breakdown;
* :mod:`repro.obs.logs` — stdlib logging wiring for ``--log-level``;
* :mod:`repro.obs.profile` — the sampling wall-clock profiler behind
  ``--profile`` (folded stacks, speedscope + flamegraph export,
  mergeable across ``--jobs`` workers);
* :mod:`repro.obs.timeseries` — periodic metric-registry snapshots
  (``--timeseries``) rendered as counter tracks in the trace export
  and a counter-curve summary in the manifest;
* :mod:`repro.obs.history` — the append-only perf-history store and
  the ``repro bench trend`` multi-run regression gate;
* :mod:`repro.obs.decisions` — the ``--decisions`` decision-provenance
  log: per-lookup explain records (winner, runner-up, margin, distance
  to the nearest switchover plane) under deterministic bottom-k
  sampling, mergeable fragility aggregates, and the ``repro explain``
  single-probe provenance helpers.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    BenchDelta,
    BenchRecorder,
    build_bench_record,
    compare_bench_records,
    load_bench_record,
    render_bench_comparison,
    render_bench_record,
    validate_bench_record,
    write_bench_record,
)
from .decisions import (
    DECISIONS,
    DecisionLog,
    decision_instant_events,
    explain_probe,
    margins_from_totals,
    plane_distances,
    validate_decision_records,
    write_decision_records,
)
from .faults import (
    FAULT_KINDS,
    ON_ERROR_MODES,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    RetryPolicy,
    TaskTimeout,
    apply_fault,
    backoff_delay,
    fault_roll,
    time_limit,
)
from .export import (
    event_names,
    span_names,
    trace_events,
    validate_trace_events,
    write_trace_events,
)
from .history import (
    HISTORY_SCHEMA_VERSION,
    SeriesTrend,
    TrendReport,
    append_history,
    bench_history_entries,
    default_history_path,
    detect_trends,
    load_history,
    manifest_history_entries,
    render_trend_report,
    validate_history_entry,
)
from .logs import LOG_LEVELS, configure_logging, configured_log_level
from .manifest import (
    SCHEMA_VERSION,
    build_manifest,
    catalog_digest,
    empty_task_stats,
    environment_fingerprint,
    git_revision,
    manifest_from_context,
    text_digest,
    validate_manifest,
    write_manifest,
)
from .memprof import MEMPROF, MemoryProfiler, rss_kb
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .profile import (
    PROFILER,
    SamplingProfiler,
    build_speedscope,
    folded_lines,
    folded_path_for,
    validate_speedscope,
    write_folded,
    write_speedscope,
)
from .progress import PROGRESS, ProgressReporter, ProgressTask
from .report import render_comparison, render_manifest
from .timeseries import (
    TIMESERIES,
    TimeseriesRecorder,
    counter_track_events,
)
from .trace import TRACER, Span, Tracer, span

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "DECISIONS",
    "FAULT_KINDS",
    "HISTORY_SCHEMA_VERSION",
    "LOG_LEVELS",
    "MEMPROF",
    "METRICS",
    "ON_ERROR_MODES",
    "PROFILER",
    "PROGRESS",
    "SCHEMA_VERSION",
    "TIMESERIES",
    "TRACER",
    "BenchComparison",
    "BenchDelta",
    "BenchRecorder",
    "Counter",
    "DecisionLog",
    "FaultPlan",
    "FaultSpecError",
    "Gauge",
    "Histogram",
    "InjectedFault",
    "MemoryProfiler",
    "MetricsRegistry",
    "ProgressReporter",
    "ProgressTask",
    "RetryPolicy",
    "SamplingProfiler",
    "SeriesTrend",
    "Span",
    "TaskTimeout",
    "TimeseriesRecorder",
    "Tracer",
    "TrendReport",
    "append_history",
    "apply_fault",
    "backoff_delay",
    "bench_history_entries",
    "build_bench_record",
    "build_manifest",
    "build_speedscope",
    "catalog_digest",
    "compare_bench_records",
    "configure_logging",
    "configured_log_level",
    "counter_track_events",
    "decision_instant_events",
    "default_history_path",
    "detect_trends",
    "explain_probe",
    "empty_task_stats",
    "environment_fingerprint",
    "fault_roll",
    "event_names",
    "folded_lines",
    "folded_path_for",
    "git_revision",
    "load_bench_record",
    "load_history",
    "manifest_from_context",
    "manifest_history_entries",
    "margins_from_totals",
    "plane_distances",
    "render_bench_comparison",
    "render_bench_record",
    "render_comparison",
    "render_manifest",
    "render_trend_report",
    "rss_kb",
    "span",
    "span_names",
    "text_digest",
    "time_limit",
    "trace_events",
    "validate_bench_record",
    "validate_decision_records",
    "validate_history_entry",
    "validate_manifest",
    "validate_speedscope",
    "validate_trace_events",
    "write_bench_record",
    "write_decision_records",
    "write_folded",
    "write_manifest",
    "write_speedscope",
    "write_trace_events",
]
