"""Observability: tracing, metrics, manifests, bench telemetry, reports.

A zero-dependency instrumentation spine for the experiment pipeline:

* :mod:`repro.obs.trace` — nested wall/CPU spans (``span("name")``),
  off by default with a no-allocation disabled path;
* :mod:`repro.obs.metrics` — a process-global registry of counters,
  gauges and decade histograms whose snapshots merge across ``--jobs``
  worker processes;
* :mod:`repro.obs.manifest` — machine-readable ``run-manifest.json``
  reproducibility receipts (git SHA, config, seeds, catalog digest,
  span tree, metric snapshot, result digests) plus schema validation;
* :mod:`repro.obs.bench` — schema-versioned ``BENCH_<name>.json``
  benchmark records and the ``repro bench --compare`` regression gate;
* :mod:`repro.obs.export` — Chrome/Perfetto Trace Event export of
  manifest span trees (``--trace-out``, ``report --export-trace``);
* :mod:`repro.obs.progress` — the TTY-aware live progress meter the
  engine publishes task completions to;
* :mod:`repro.obs.memprof` — opt-in tracemalloc/RSS sampling at span
  boundaries (``--memprof``);
* :mod:`repro.obs.faults` — deterministic fault injection
  (``--inject-faults``), the retry/timeout/on-error policy objects and
  the SIGALRM task deadline the resilient executor runs under;
* :mod:`repro.obs.report` — rendering a manifest (or a diff of two)
  into the ``repro report`` breakdown;
* :mod:`repro.obs.logs` — stdlib logging wiring for ``--log-level``.
"""

from .bench import (
    BENCH_SCHEMA_VERSION,
    BenchComparison,
    BenchDelta,
    BenchRecorder,
    build_bench_record,
    compare_bench_records,
    load_bench_record,
    render_bench_comparison,
    render_bench_record,
    validate_bench_record,
    write_bench_record,
)
from .faults import (
    FAULT_KINDS,
    ON_ERROR_MODES,
    FaultPlan,
    FaultSpecError,
    InjectedFault,
    RetryPolicy,
    TaskTimeout,
    apply_fault,
    backoff_delay,
    fault_roll,
    time_limit,
)
from .export import (
    event_names,
    span_names,
    trace_events,
    validate_trace_events,
    write_trace_events,
)
from .logs import LOG_LEVELS, configure_logging, configured_log_level
from .manifest import (
    SCHEMA_VERSION,
    build_manifest,
    catalog_digest,
    empty_task_stats,
    environment_fingerprint,
    git_revision,
    manifest_from_context,
    text_digest,
    validate_manifest,
    write_manifest,
)
from .memprof import MEMPROF, MemoryProfiler, rss_kb
from .metrics import METRICS, Counter, Gauge, Histogram, MetricsRegistry
from .progress import PROGRESS, ProgressReporter, ProgressTask
from .report import render_comparison, render_manifest
from .trace import TRACER, Span, Tracer, span

__all__ = [
    "BENCH_SCHEMA_VERSION",
    "FAULT_KINDS",
    "LOG_LEVELS",
    "MEMPROF",
    "METRICS",
    "ON_ERROR_MODES",
    "PROGRESS",
    "SCHEMA_VERSION",
    "TRACER",
    "BenchComparison",
    "BenchDelta",
    "BenchRecorder",
    "Counter",
    "FaultPlan",
    "FaultSpecError",
    "Gauge",
    "Histogram",
    "InjectedFault",
    "MemoryProfiler",
    "MetricsRegistry",
    "ProgressReporter",
    "ProgressTask",
    "RetryPolicy",
    "Span",
    "TaskTimeout",
    "Tracer",
    "apply_fault",
    "backoff_delay",
    "build_bench_record",
    "build_manifest",
    "catalog_digest",
    "compare_bench_records",
    "configure_logging",
    "configured_log_level",
    "empty_task_stats",
    "environment_fingerprint",
    "fault_roll",
    "event_names",
    "git_revision",
    "load_bench_record",
    "manifest_from_context",
    "render_bench_comparison",
    "render_bench_record",
    "render_comparison",
    "render_manifest",
    "rss_kb",
    "span",
    "span_names",
    "text_digest",
    "time_limit",
    "trace_events",
    "validate_bench_record",
    "validate_manifest",
    "validate_trace_events",
    "write_bench_record",
    "write_manifest",
    "write_trace_events",
]
