"""A small SQL subset front-end for the optimizer.

Select-project-join statements with conjunctive WHERE clauses are
parsed and lowered to :class:`~repro.optimizer.query.QuerySpec`, with
System-R default selectivities refined by catalog statistics.
"""

from .lexer import SqlLexError, Token, tokenize
from .parser import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    Like,
    SelectStatement,
    SqlParseError,
    TableItem,
    parse_sql,
)
from .translate import SqlTranslationError, sql_to_query, translate

__all__ = [
    "Between",
    "ColumnRef",
    "Comparison",
    "InList",
    "Like",
    "SelectStatement",
    "SqlLexError",
    "SqlParseError",
    "SqlTranslationError",
    "TableItem",
    "Token",
    "parse_sql",
    "sql_to_query",
    "tokenize",
    "translate",
]
