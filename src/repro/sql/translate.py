"""Lower parsed SQL to an optimizer :class:`QuerySpec`.

Column references are resolved against the catalog (unqualified names
are matched to the unique table that has the column).  Selectivities
follow the classic System-R defaults, refined with catalog distinct
counts where available:

=================  ==========================================
predicate          selectivity
=================  ==========================================
``col = lit``      ``1 / V(col)``
``col <> lit``     ``1 - 1/V(col)``
range (``< >``)    1/3
``BETWEEN``        1/4
``IN (k items)``   ``min(k / V(col), 1/2)``
``LIKE 'abc%'``    1/10 (sargable prefix)
``LIKE '%abc%'``   1/10 (residual)
``NOT`` variants   complement of the positive form
=================  ==========================================

Equality comparisons between columns of two different aliases become
join edges; all other predicates become local predicates.  Sargability:
equality/range/BETWEEN/prefix-LIKE predicates are sargable on their
column; IN lists, non-prefix LIKEs and all NOT forms are residual.
"""

from __future__ import annotations

from ..catalog.statistics import Catalog
from ..optimizer.query import JoinPredicate, LocalPredicate, QuerySpec, TableRef
from .parser import (
    Between,
    ColumnRef,
    Comparison,
    InList,
    Like,
    SelectStatement,
    parse_sql,
)

__all__ = ["SqlTranslationError", "translate", "sql_to_query"]

_RANGE_SELECTIVITY = 1.0 / 3.0
_BETWEEN_SELECTIVITY = 1.0 / 4.0
_LIKE_SELECTIVITY = 1.0 / 10.0


class SqlTranslationError(ValueError):
    """Raised when a parsed statement cannot be resolved/lowered."""


class _Resolver:
    """Resolves column references to (alias, table, column)."""

    def __init__(self, statement: SelectStatement, catalog: Catalog) -> None:
        self._catalog = catalog
        self._alias_to_table: dict[str, str] = {}
        for item in statement.tables:
            if item.alias in self._alias_to_table:
                raise SqlTranslationError(
                    f"duplicate alias {item.alias!r}"
                )
            try:
                catalog.table(item.table)
            except KeyError:
                raise SqlTranslationError(
                    f"unknown table {item.table!r}"
                ) from None
            self._alias_to_table[item.alias] = item.table

    @property
    def aliases(self) -> dict[str, str]:
        return dict(self._alias_to_table)

    def resolve(self, ref: ColumnRef) -> tuple[str, str, str]:
        """Return ``(alias, table, column)`` for a reference."""
        if ref.qualifier is not None:
            table = self._alias_to_table.get(ref.qualifier)
            if table is None:
                raise SqlTranslationError(
                    f"unknown alias {ref.qualifier!r} in {ref}"
                )
            self._require_column(table, ref.column)
            return ref.qualifier, table, ref.column
        owners = [
            (alias, table)
            for alias, table in self._alias_to_table.items()
            if self._has_column(table, ref.column)
        ]
        if not owners:
            raise SqlTranslationError(f"unknown column {ref.column!r}")
        if len(owners) > 1:
            raise SqlTranslationError(
                f"ambiguous column {ref.column!r} "
                f"(candidates: {[o[0] for o in owners]})"
            )
        alias, table = owners[0]
        return alias, table, ref.column

    def _has_column(self, table: str, column: str) -> bool:
        try:
            self._catalog.table(table).column(column)
            return True
        except KeyError:
            return False

    def _require_column(self, table: str, column: str) -> None:
        if not self._has_column(table, column):
            raise SqlTranslationError(
                f"table {table} has no column {column!r}"
            )


def _equality_selectivity(catalog: Catalog, table: str, column: str) -> float:
    distinct = catalog.distinct_values(table, column)
    return 1.0 / max(distinct, 1.0)


def translate(statement: SelectStatement, catalog: Catalog,
              name: str = "sql") -> QuerySpec:
    """Lower a parsed statement to a :class:`QuerySpec`."""
    resolver = _Resolver(statement, catalog)
    joins: list[JoinPredicate] = []
    locals_: list[LocalPredicate] = []

    for predicate in statement.predicates:
        if isinstance(predicate, Comparison):
            left_alias, left_table, left_column = resolver.resolve(
                predicate.left
            )
            if isinstance(predicate.right, ColumnRef):
                right_alias, right_table, right_column = resolver.resolve(
                    predicate.right
                )
                if predicate.op == "=" and left_alias != right_alias:
                    joins.append(
                        JoinPredicate(
                            left_alias, left_column,
                            right_alias, right_column,
                        )
                    )
                    continue
                # Same-alias or non-equality column comparison:
                # residual with the System-R default.
                locals_.append(
                    LocalPredicate(
                        left_alias, _RANGE_SELECTIVITY, None,
                        f"{predicate.left} {predicate.op} {predicate.right}",
                    )
                )
                continue
            if predicate.op == "=":
                selectivity = _equality_selectivity(
                    catalog, left_table, left_column
                )
                column: str | None = left_column
            elif predicate.op in ("<>", "!="):
                selectivity = 1.0 - _equality_selectivity(
                    catalog, left_table, left_column
                )
                column = None
            else:
                selectivity = _RANGE_SELECTIVITY
                column = left_column
            locals_.append(
                LocalPredicate(
                    left_alias, min(max(selectivity, 1e-12), 1.0), column,
                    f"{predicate.left} {predicate.op} {predicate.right!r}",
                )
            )
        elif isinstance(predicate, Between):
            alias, __, column = resolver.resolve(predicate.column)
            selectivity = _BETWEEN_SELECTIVITY
            if predicate.negated:
                selectivity = 1.0 - selectivity
            locals_.append(
                LocalPredicate(
                    alias, selectivity,
                    None if predicate.negated else column,
                    f"{predicate.column} BETWEEN ...",
                )
            )
        elif isinstance(predicate, InList):
            alias, table, column = resolver.resolve(predicate.column)
            base = min(
                0.5,
                len(predicate.values)
                * _equality_selectivity(catalog, table, column),
            )
            selectivity = (1.0 - base) if predicate.negated else base
            locals_.append(
                LocalPredicate(
                    alias, min(max(selectivity, 1e-12), 1.0), None,
                    f"{predicate.column} IN ({len(predicate.values)} values)",
                )
            )
        elif isinstance(predicate, Like):
            alias, __, column = resolver.resolve(predicate.column)
            selectivity = _LIKE_SELECTIVITY
            sargable = predicate.is_prefix and not predicate.negated
            if predicate.negated:
                selectivity = 1.0 - selectivity
            locals_.append(
                LocalPredicate(
                    alias, selectivity,
                    column if sargable else None,
                    f"{predicate.column} LIKE {predicate.pattern!r}",
                )
            )
        else:  # pragma: no cover - parser produces only these types
            raise SqlTranslationError(
                f"unsupported predicate {predicate!r}"
            )

    def _clause(refs) -> tuple[tuple[str, str], ...]:
        resolved = []
        for ref in refs:
            alias, __, column = resolver.resolve(ref)
            resolved.append((alias, column))
        return tuple(resolved)

    tables = tuple(
        TableRef(alias, table)
        for alias, table in resolver.aliases.items()
    )
    return QuerySpec(
        name=name,
        tables=tables,
        joins=tuple(joins),
        predicates=tuple(locals_),
        group_by=_clause(statement.group_by),
        order_by=_clause(statement.order_by),
        description="translated from SQL",
    )


def sql_to_query(text: str, catalog: Catalog, name: str = "sql") -> QuerySpec:
    """Parse and translate in one step."""
    return translate(parse_sql(text), catalog, name=name)
