"""Recursive-descent parser for the SPJ SQL subset.

Grammar (conjunctive WHERE only — the subset whose plan choice the
paper's framework covers)::

    query     := SELECT select FROM tables [WHERE conj]
                 [GROUP BY cols] [ORDER BY cols]
    select    := '*' | item (',' item)*
    item      := colref | IDENT '(' (colref | '*') ')'     -- aggregate
    tables    := table (joined | ',' table)*
    joined    := [INNER] JOIN table ON pred (AND pred)*
    table     := IDENT [[AS] IDENT]
    conj      := pred (AND pred)*
    pred      := colref op (literal | colref)
               | colref [NOT] BETWEEN literal AND literal
               | colref [NOT] IN '(' literal (',' literal)* ')'
               | colref [NOT] LIKE string
    colref    := IDENT ['.' IDENT]

Produces a plain AST (:class:`SelectStatement`) that
:mod:`repro.sql.translate` lowers to a
:class:`~repro.optimizer.query.QuerySpec`.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .lexer import SqlLexError, Token, tokenize

__all__ = [
    "SqlParseError",
    "ColumnRef",
    "Comparison",
    "Between",
    "InList",
    "Like",
    "TableItem",
    "SelectStatement",
    "parse_sql",
]


class SqlParseError(ValueError):
    """Raised when the statement does not match the subset grammar."""


@dataclass(frozen=True)
class ColumnRef:
    qualifier: str | None
    column: str

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        if self.qualifier:
            return f"{self.qualifier}.{self.column}"
        return self.column


@dataclass(frozen=True)
class Comparison:
    left: ColumnRef
    op: str
    right: "ColumnRef | str | float"

    @property
    def is_join(self) -> bool:
        return self.op == "=" and isinstance(self.right, ColumnRef)


@dataclass(frozen=True)
class Between:
    column: ColumnRef
    low: "str | float"
    high: "str | float"
    negated: bool = False


@dataclass(frozen=True)
class InList:
    column: ColumnRef
    values: tuple
    negated: bool = False


@dataclass(frozen=True)
class Like:
    column: ColumnRef
    pattern: str
    negated: bool = False

    @property
    def is_prefix(self) -> bool:
        """True for ``'abc%'``-style patterns (index-friendly)."""
        return not self.pattern.startswith("%") and self.pattern.endswith(
            "%"
        )


@dataclass(frozen=True)
class TableItem:
    table: str
    alias: str


@dataclass
class SelectStatement:
    select: list = field(default_factory=list)
    tables: list[TableItem] = field(default_factory=list)
    predicates: list = field(default_factory=list)
    group_by: list[ColumnRef] = field(default_factory=list)
    order_by: list[ColumnRef] = field(default_factory=list)


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._index = 0
        self._pending_predicates: list = []  # from JOIN ... ON clauses

    # Token plumbing ----------------------------------------------------
    def _peek(self) -> Token:
        return self._tokens[self._index]

    def _advance(self) -> Token:
        token = self._tokens[self._index]
        self._index += 1
        return token

    def _expect(self, kind: str, value: str | None = None) -> Token:
        token = self._peek()
        if not token.matches(kind, value):
            wanted = value or kind
            raise SqlParseError(
                f"expected {wanted} at position {token.position}, "
                f"got {token.value!r}"
            )
        return self._advance()

    def _accept(self, kind: str, value: str | None = None) -> Token | None:
        if self._peek().matches(kind, value):
            return self._advance()
        return None

    # Grammar -----------------------------------------------------------
    def parse(self) -> SelectStatement:
        statement = SelectStatement()
        self._expect("keyword", "SELECT")
        statement.select = self._select_list()
        self._expect("keyword", "FROM")
        statement.tables = self._table_list()
        statement.predicates = list(self._pending_predicates)
        if self._accept("keyword", "WHERE"):
            statement.predicates.extend(self._conjunction())
        if self._accept("keyword", "GROUP"):
            self._expect("keyword", "BY")
            statement.group_by = self._column_list()
        if self._accept("keyword", "ORDER"):
            self._expect("keyword", "BY")
            statement.order_by = self._column_list(allow_direction=True)
        self._expect("eof")
        return statement

    def _select_list(self) -> list:
        if self._accept("punct", "*"):
            return ["*"]
        items = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self):
        name = self._expect("ident")
        if self._accept("punct", "("):
            if not self._accept("punct", "*"):
                self._column_ref_from(self._expect("ident"))
            self._expect("punct", ")")
            return f"{name.value}(...)"
        return self._column_ref_from(name)

    def _table_list(self) -> list[TableItem]:
        items = [self._table_item()]
        while True:
            if self._accept("punct", ","):
                items.append(self._table_item())
                continue
            if self._peek().matches("keyword", "INNER") or self._peek(
            ).matches("keyword", "JOIN"):
                self._accept("keyword", "INNER")
                self._expect("keyword", "JOIN")
                items.append(self._table_item())
                self._expect("keyword", "ON")
                # ON predicates join the WHERE conjunction; the
                # translator sorts join edges from local filters.
                self._pending_predicates.append(self._predicate())
                while self._accept("keyword", "AND"):
                    self._pending_predicates.append(self._predicate())
                continue
            return items

    def _table_item(self) -> TableItem:
        table = self._expect("ident").value
        self._accept("keyword", "AS")
        alias_token = self._accept("ident")
        alias = alias_token.value if alias_token else table
        return TableItem(table=table, alias=alias)

    def _conjunction(self) -> list:
        predicates = [self._predicate()]
        while self._accept("keyword", "AND"):
            predicates.append(self._predicate())
        return predicates

    def _column_ref_from(self, first: Token) -> ColumnRef:
        if self._accept("punct", "."):
            column = self._expect("ident")
            return ColumnRef(qualifier=first.value, column=column.value)
        return ColumnRef(qualifier=None, column=first.value)

    def _column_ref(self) -> ColumnRef:
        return self._column_ref_from(self._expect("ident"))

    def _literal(self):
        token = self._peek()
        if token.kind == "number":
            self._advance()
            return float(token.value)
        if token.kind == "string":
            self._advance()
            return token.value
        raise SqlParseError(
            f"expected a literal at position {token.position}, "
            f"got {token.value!r}"
        )

    def _predicate(self):
        column = self._column_ref()
        negated = bool(self._accept("keyword", "NOT"))
        if self._accept("keyword", "BETWEEN"):
            low = self._literal()
            self._expect("keyword", "AND")
            high = self._literal()
            return Between(column, low, high, negated)
        if self._accept("keyword", "IN"):
            self._expect("punct", "(")
            values = [self._literal()]
            while self._accept("punct", ","):
                values.append(self._literal())
            self._expect("punct", ")")
            return InList(column, tuple(values), negated)
        if self._accept("keyword", "LIKE"):
            pattern = self._expect("string").value
            return Like(column, pattern, negated)
        if negated:
            raise SqlParseError(
                "NOT is only supported before BETWEEN/IN/LIKE"
            )
        op = self._expect("op").value
        right_token = self._peek()
        if right_token.kind == "ident":
            right = self._column_ref()
            return Comparison(column, op, right)
        return Comparison(column, op, self._literal())

    def _column_list(self, allow_direction: bool = False) -> list[ColumnRef]:
        columns = [self._column_ref()]
        if allow_direction:
            self._accept("keyword", "ASC") or self._accept("keyword", "DESC")
        while self._accept("punct", ","):
            columns.append(self._column_ref())
            if allow_direction:
                self._accept("keyword", "ASC") or self._accept(
                    "keyword", "DESC"
                )
        return columns


def parse_sql(text: str) -> SelectStatement:
    """Parse one SELECT statement of the subset grammar."""
    try:
        tokens = tokenize(text)
    except SqlLexError as error:
        raise SqlParseError(str(error)) from error
    return _Parser(tokens).parse()
