"""Tokenizer for the SPJ SQL subset.

Token kinds: ``keyword`` (case-insensitive SQL words), ``ident``,
``number``, ``string`` (single-quoted, ``''`` escapes), ``op``
(comparison operators), ``punct`` (``( ) , . *``) and a synthetic
``eof``.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["Token", "SqlLexError", "tokenize", "KEYWORDS"]

KEYWORDS = frozenset(
    {
        "SELECT", "FROM", "WHERE", "GROUP", "ORDER", "BY", "AND",
        "AS", "BETWEEN", "IN", "LIKE", "NOT", "ASC", "DESC",
        "JOIN", "INNER", "ON",
    }
)

_OPERATORS = ("<=", ">=", "<>", "!=", "=", "<", ">")
_PUNCT = "(),.*"


class SqlLexError(ValueError):
    """Raised for characters the lexer cannot tokenize."""


@dataclass(frozen=True)
class Token:
    kind: str
    value: str
    position: int

    def matches(self, kind: str, value: str | None = None) -> bool:
        if self.kind != kind:
            return False
        return value is None or self.value == value


def tokenize(text: str) -> list[Token]:
    """Tokenize ``text``; always ends with an ``eof`` token."""
    tokens: list[Token] = []
    index = 0
    length = len(text)
    while index < length:
        char = text[index]
        if char.isspace():
            index += 1
            continue
        if char == "'":
            end = index + 1
            chunks = []
            while True:
                if end >= length:
                    raise SqlLexError(
                        f"unterminated string literal at {index}"
                    )
                if text[end] == "'":
                    if end + 1 < length and text[end + 1] == "'":
                        chunks.append("'")
                        end += 2
                        continue
                    break
                chunks.append(text[end])
                end += 1
            tokens.append(Token("string", "".join(chunks), index))
            index = end + 1
            continue
        if char.isdigit() or (
            char == "." and index + 1 < length and text[index + 1].isdigit()
        ):
            end = index
            seen_dot = False
            while end < length and (
                text[end].isdigit() or (text[end] == "." and not seen_dot)
            ):
                if text[end] == ".":
                    # A dot not followed by a digit is punctuation
                    # (qualified names like T.C after a number never
                    # occur, but be strict anyway).
                    if end + 1 >= length or not text[end + 1].isdigit():
                        break
                    seen_dot = True
                end += 1
            tokens.append(Token("number", text[index:end], index))
            index = end
            continue
        if char.isalpha() or char == "_":
            end = index
            while end < length and (
                text[end].isalnum() or text[end] in "_#"
            ):
                end += 1
            word = text[index:end]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("keyword", upper, index))
            else:
                tokens.append(Token("ident", word.upper(), index))
            index = end
            continue
        for operator in _OPERATORS:
            if text.startswith(operator, index):
                tokens.append(Token("op", operator, index))
                index += len(operator)
                break
        else:
            if char in _PUNCT:
                tokens.append(Token("punct", char, index))
                index += 1
            else:
                raise SqlLexError(
                    f"unexpected character {char!r} at position {index}"
                )
    tokens.append(Token("eof", "", length))
    return tokens
