"""repro — reproduction of Reiss & Kanungo, SIGMOD 2003.

"A Characterization of the Sensitivity of Query Optimization to Storage
Access Cost Parameters."

Package layout
--------------
``repro.core``
    The paper's contribution: the vector-space cost framework,
    switchover-plane geometry, candidate optimal plans, regions of
    influence, the delta**2 / constant error bounds, and the black-box
    extraction algorithms (least-squares usage estimation, candidate
    plan discovery, worst-case sweeps).
``repro.catalog``
    Database schema and statistics substrate, including an analytic
    TPC-H catalog at any scale factor.
``repro.storage``
    Storage devices (seek + transfer cost model), layouts mapping
    database objects to devices, and an event-level disk simulator.
``repro.optimizer``
    A from-scratch Selinger-style cost-based optimizer with a strictly
    linear additive cost model — the stand-in for the commercial
    optimizer characterised in the paper.
``repro.workloads``
    The 22 TPC-H queries as structured specs, plus random workload
    generators.
``repro.sql``
    A small SQL subset parser producing optimizer query specs.
``repro.experiments``
    Runners that regenerate every figure and analysis of the paper's
    evaluation section.
``repro.dbgen`` / ``repro.executor``
    A miniature TPC-H data generator and an iterator-model executor
    with I/O accounting, used to validate the optimizer's cost model.
``repro.obs``
    Zero-dependency observability: structured tracing, a
    process-mergeable metrics registry, machine-readable run
    manifests, and logging wiring.
"""

__version__ = "1.0.0"

from . import catalog, core, experiments, obs, optimizer, storage, workloads

__all__ = [
    "catalog",
    "core",
    "experiments",
    "obs",
    "optimizer",
    "storage",
    "workloads",
    "__version__",
]
