"""Command-line interface to the experiment harness.

Run via ``python -m repro <command>``:

* ``figure {shared,split,colocated}`` — regenerate Figure 5/6/7;
* ``census {shared,split,colocated}`` — the Section 8.2 analysis;
* ``robustness {shared,split,colocated}`` — per-parameter switch
  thresholds (which storage parameters to monitor);
* ``expected {shared,split,colocated}`` — Monte-Carlo expected regret
  under random cost drift;
* ``diagram QUERY X_DEVICE Y_DEVICE`` — an ASCII plan diagram over two
  device-cost axes;
* ``params`` — the Section 7.3 system parameter table;
* ``validate QUERY`` — black-box estimation + discovery validation;
* ``report MANIFEST [MANIFEST]`` — render a run manifest into a
  phase/time/cache breakdown, or diff two manifests.

Every command accepts ``--scale`` (TPC-H scale factor, default 100)
and ``--queries Q1,Q5,...`` to restrict the workload.  Commands that
compute candidate plan sets cache them on disk under ``.repro-cache``
(or ``$REPRO_CACHE_DIR`` / ``--cache-dir``); ``--no-cache`` disables
the cache.  The sweep commands (``figure``, ``expected``,
``validate``) additionally take ``--jobs N`` to spread queries over
worker processes.

Observability: every experiment command writes a ``run-manifest.json``
(``--manifest PATH`` to move it, ``--no-manifest`` to skip) capturing
git SHA, configuration, RNG seeds, a catalog digest, SHA-256 digests of
the rendered results, and a metrics snapshot; ``--trace`` additionally
records the span tree, ``--metrics-out PATH`` dumps the raw metrics,
and ``--log-level debug`` surfaces the library's loggers.  Cached runs
end with a one-line cache summary on stderr.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from typing import Any, Sequence

from .catalog import build_tpch_catalog
from .obs import (
    METRICS,
    TRACER,
    build_manifest,
    catalog_digest,
    configure_logging,
    render_comparison,
    render_manifest,
    span,
    text_digest,
    validate_manifest,
    write_manifest,
)
from .workloads import build_tpch_queries

__all__ = ["main", "build_parser"]

#: Per-invocation context the commands feed the manifest from:
#: ``catalog_digest``, ``result_digests``, ``seeds``.
_RUN: dict[str, Any] = {}


def _record_digest(name: str, text: str) -> None:
    """Register one rendered result for the run manifest."""
    _RUN.setdefault("result_digests", {})[name] = text_digest(text)


def _record_seeds(**seeds: Any) -> None:
    _RUN.setdefault("seeds", {}).update(seeds)


def _workload(args):
    catalog = build_tpch_catalog(args.scale)
    _RUN["catalog_digest"] = catalog_digest(catalog)
    queries = build_tpch_queries(catalog)
    if args.queries:
        wanted = [name.strip().upper() for name in args.queries.split(",")]
        unknown = [name for name in wanted if name not in queries]
        if unknown:
            raise SystemExit(f"unknown queries: {', '.join(unknown)}")
        queries = {name: queries[name] for name in wanted}
    return catalog, queries


def _cache_from_args(args):
    """The candidate-set disk cache the flags ask for (or None)."""
    from .optimizer.plancache import PlanCache

    if getattr(args, "no_cache", False):
        return None
    return PlanCache(getattr(args, "cache_dir", None))


def _cmd_figure(args) -> int:
    from .experiments import (
        DEFAULT_DELTAS,
        figure_to_csv,
        format_figure_chart,
        format_figure_summary,
        format_figure_table,
        run_figure,
    )

    catalog, queries = _workload(args)
    deltas = DEFAULT_DELTAS
    if args.deltas:
        deltas = tuple(float(d) for d in args.deltas.split(","))
    result = run_figure(
        args.scenario, catalog=catalog, queries=queries, deltas=deltas,
        jobs=args.jobs, cache=_cache_from_args(args),
    )
    _record_digest("figure_csv", figure_to_csv(result))
    if args.csv:
        print(figure_to_csv(result), end="")
        return 0
    print(format_figure_table(result))
    print()
    print(format_figure_summary(result))
    if args.chart:
        print()
        print(format_figure_chart(result, args.chart.split(",")))
    return 0


def _cmd_census(args) -> int:
    from .experiments import format_census_table, run_usage_analysis

    catalog, queries = _workload(args)
    result = run_usage_analysis(
        args.scenario, catalog=catalog, queries=queries,
        cache=_cache_from_args(args),
    )
    table = format_census_table(result)
    _record_digest("census_table", table)
    print(table)
    return 0


def _cmd_robustness(args) -> int:
    from .experiments import format_robustness_table, run_robustness

    catalog, queries = _workload(args)
    rows = run_robustness(
        args.scenario, catalog=catalog, queries=queries,
        cache=_cache_from_args(args),
    )
    table = format_robustness_table(rows)
    _record_digest("robustness_table", table)
    print(table)
    return 0


def _cmd_expected(args) -> int:
    from .experiments import format_expected_table, run_expected_regret

    catalog, queries = _workload(args)
    _record_seeds(monte_carlo=0)
    rows = run_expected_regret(
        args.scenario, catalog=catalog, queries=queries,
        delta=args.delta, n_samples=args.samples,
        jobs=args.jobs, cache=_cache_from_args(args),
    )
    table = format_expected_table(rows)
    _record_digest("expected_table", table)
    print(table)
    return 0


def _cmd_diagram(args) -> int:
    from .core.diagram import plan_diagram
    from .experiments import scenario
    from .optimizer import DEFAULT_PARAMETERS
    from .optimizer.plancache import cached_candidate_plans

    catalog, queries = _workload(args)
    name = args.query.upper()
    if name not in queries:
        raise SystemExit(f"unknown query {args.query!r}")
    query = queries[name]
    config = scenario(args.scenario)
    layout = config.layout_for(query)
    region = config.region(layout, args.delta)
    candidates = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cache=_cache_from_args(args), scenario_key=config.key,
    )
    groups = {g.name: g for g in config.groups_for(layout)}
    for axis in (args.x_device, args.y_device):
        if axis not in groups:
            raise SystemExit(
                f"unknown device {axis!r}; available: "
                f"{', '.join(sorted(groups))}"
            )
    diagram = plan_diagram(
        candidates.usages,
        layout.center_costs(),
        groups[args.x_device],
        groups[args.y_device],
        delta=args.delta,
        resolution=args.resolution,
        signatures=candidates.signatures,
    )
    rendered = diagram.render()
    _record_digest("diagram", rendered)
    print(rendered)
    return 0


def _cmd_params(args) -> int:
    from .experiments import format_parameter_table
    from .optimizer.config import DEFAULT_PARAMETERS

    table = format_parameter_table(DEFAULT_PARAMETERS.as_db2_table())
    _record_digest("params_table", table)
    print(table)
    return 0


def _cmd_validate(args) -> int:
    from .experiments import run_validation

    catalog, queries = _workload(args)
    wanted = [name.strip().upper() for name in args.query.split(",")]
    unknown = [name for name in wanted if name not in queries]
    if unknown:
        raise SystemExit(f"unknown queries: {', '.join(unknown)}")
    _record_seeds(estimation=0, discovery=0)
    results = run_validation(
        [queries[name] for name in wanted],
        catalog,
        args.scenario,
        delta=args.delta,
        jobs=args.jobs,
        cache=_cache_from_args(args),
    )
    lines = []
    for name, (estimation, discovery) in zip(wanted, results):
        if len(wanted) > 1:
            lines.append(f"{name}:")
        lines.append(
            f"estimation: {len(estimation.prediction_errors)} plans, "
            f"worst prediction error "
            f"{estimation.worst_prediction_error * 100:.4f}% "
            f"(paper criterion < 1%: "
            f"{'PASS' if estimation.meets_paper_criterion else 'FAIL'})"
        )
        lines.append(
            f"discovery:  {len(discovery.found_signatures)}/"
            f"{len(discovery.true_signatures)} candidate plans found "
            f"(recall {discovery.recall:.2f}, "
            f"spurious {len(discovery.spurious)}, "
            f"{discovery.optimizer_calls} optimizer calls)"
        )
    report = "\n".join(lines)
    _record_digest("validation_report", report)
    print(report)
    return 0


def _cmd_report(args) -> int:
    manifests = []
    for path in args.manifests:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read manifest {path}: {exc}")
        errors = validate_manifest(data)
        if errors:
            print(
                f"{path}: invalid manifest:", file=sys.stderr
            )
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 1
        manifests.append(data)
    if len(manifests) == 1:
        print(render_manifest(manifests[0]))
    else:
        print(render_comparison(manifests[0], manifests[1]))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Sensitivity of query optimization to storage access "
            "cost parameters (SIGMOD 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def common(p, scenario_positional=True):
        if scenario_positional:
            p.add_argument(
                "scenario", choices=("shared", "split", "colocated")
            )
        p.add_argument("--scale", type=float, default=100.0)
        p.add_argument(
            "--queries", default="",
            help="comma-separated subset, e.g. Q3,Q14,Q20",
        )
        cache_flags(p)
        obs_flags(p)

    def cache_flags(p):
        p.add_argument(
            "--cache-dir", default=None,
            help="candidate-set cache directory (default: "
                 "$REPRO_CACHE_DIR or .repro-cache)",
        )
        p.add_argument(
            "--no-cache", action="store_true",
            help="recompute candidate sets; do not read or write the "
                 "disk cache",
        )

    def obs_flags(p):
        p.add_argument(
            "--trace", action="store_true",
            help="record a wall/CPU span tree of the run into the "
                 "manifest",
        )
        p.add_argument(
            "--log-level", default="warning",
            choices=("debug", "info", "warning", "error"),
            help="stderr logging level for the repro loggers "
                 "(default warning)",
        )
        p.add_argument(
            "--metrics-out", default=None, metavar="PATH",
            help="also dump the raw metrics snapshot as JSON",
        )
        p.add_argument(
            "--manifest", default="run-manifest.json", metavar="PATH",
            help="where to write the machine-readable run manifest "
                 "(default run-manifest.json)",
        )
        p.add_argument(
            "--no-manifest", action="store_true",
            help="do not write a run manifest",
        )

    def jobs_flag(p):
        p.add_argument(
            "--jobs", type=int, default=1,
            help="worker processes for the per-query sweep (default 1; "
                 "results are identical for any value)",
        )

    p_figure = sub.add_parser(
        "figure", help="regenerate Figure 5/6/7 worst-case curves"
    )
    common(p_figure)
    p_figure.add_argument("--deltas", default="",
                          help="comma-separated error levels")
    p_figure.add_argument("--csv", action="store_true")
    p_figure.add_argument(
        "--chart", default="",
        help="also draw an ASCII chart of these queries, e.g. Q3,Q20",
    )
    jobs_flag(p_figure)
    p_figure.set_defaults(func=_cmd_figure)

    p_census = sub.add_parser(
        "census", help="Section 8.2 complementarity census"
    )
    common(p_census)
    p_census.set_defaults(func=_cmd_census)

    p_robust = sub.add_parser(
        "robustness", help="per-parameter plan-switch thresholds"
    )
    common(p_robust)
    p_robust.set_defaults(func=_cmd_robustness)

    p_expected = sub.add_parser(
        "expected", help="Monte-Carlo expected regret under random drift"
    )
    common(p_expected)
    p_expected.add_argument("--delta", type=float, default=100.0)
    p_expected.add_argument("--samples", type=int, default=2000)
    jobs_flag(p_expected)
    p_expected.set_defaults(func=_cmd_expected)

    p_diagram = sub.add_parser(
        "diagram", help="ASCII plan diagram over two device axes"
    )
    p_diagram.add_argument("query")
    p_diagram.add_argument("x_device")
    p_diagram.add_argument("y_device")
    p_diagram.add_argument(
        "--scenario", default="split",
        choices=("shared", "split", "colocated"),
    )
    p_diagram.add_argument("--delta", type=float, default=100.0)
    p_diagram.add_argument("--resolution", type=int, default=32)
    p_diagram.add_argument("--scale", type=float, default=100.0)
    p_diagram.add_argument("--queries", default="")
    cache_flags(p_diagram)
    obs_flags(p_diagram)
    p_diagram.set_defaults(func=_cmd_diagram)

    p_params = sub.add_parser(
        "params", help="the Section 7.3 system parameter table"
    )
    obs_flags(p_params)
    p_params.set_defaults(func=_cmd_params)

    p_validate = sub.add_parser(
        "validate", help="black-box estimation/discovery validation"
    )
    p_validate.add_argument(
        "query", help="query name, or a comma-separated list, e.g. Q3,Q14"
    )
    p_validate.add_argument(
        "--scenario", default="shared",
        choices=("shared", "split", "colocated"),
    )
    p_validate.add_argument("--delta", type=float, default=100.0)
    p_validate.add_argument("--scale", type=float, default=100.0)
    p_validate.add_argument("--queries", default="")
    cache_flags(p_validate)
    obs_flags(p_validate)
    jobs_flag(p_validate)
    p_validate.set_defaults(func=_cmd_validate)

    p_report = sub.add_parser(
        "report",
        help="render a run manifest (one arg) or diff two manifests",
    )
    p_report.add_argument(
        "manifests", nargs="+", metavar="MANIFEST",
        help="path(s) to run-manifest.json files (one or two)",
    )
    p_report.set_defaults(func=_cmd_report)
    return parser


def _serializable_config(args) -> dict[str, Any]:
    """The parsed CLI namespace, minus the non-JSON machinery."""
    config = dict(vars(args))
    config.pop("func", None)
    return config


def _finish_run(args, wall_seconds: float, cpu_seconds: float) -> None:
    """Write the manifest/metrics artefacts and the cache summary."""
    snapshot = METRICS.snapshot()
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if getattr(args, "manifest", None) and not getattr(
        args, "no_manifest", False
    ):
        manifest = build_manifest(
            command=args.command,
            config=_serializable_config(args),
            seeds=_RUN.get("seeds"),
            catalog_sha=_RUN.get("catalog_digest"),
            result_digests=_RUN.get("result_digests"),
            metrics=snapshot,
            trace=TRACER.export() if TRACER.enabled else None,
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
        )
        write_manifest(manifest, args.manifest)
    counters = snapshot["counters"]
    lookups = (
        counters.get("plancache.hits", 0)
        + counters.get("plancache.misses", 0)
    )
    if lookups and not getattr(args, "no_cache", False):
        from .optimizer.plancache import default_cache_dir

        cache_dir = getattr(args, "cache_dir", None) or \
            default_cache_dir()
        print(
            f"cache: {counters.get('plancache.hits', 0)} hits, "
            f"{counters.get('plancache.misses', 0)} misses "
            f"({counters.get('plancache.corrupt', 0)} corrupt) "
            f"under {cache_dir}",
            file=sys.stderr,
        )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    TRACER.reset()
    TRACER.enabled = bool(getattr(args, "trace", False))
    METRICS.reset()
    _RUN.clear()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    with span(f"cli.{args.command}"):
        code = args.func(args)
    wall_seconds = time.perf_counter() - wall_start
    cpu_seconds = time.process_time() - cpu_start
    if args.command != "report":
        _finish_run(args, wall_seconds, cpu_seconds)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
