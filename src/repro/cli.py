"""Command-line interface to the experiment harness.

Run via ``python -m repro <command>``:

* ``figure {shared,split,colocated}`` — regenerate Figure 5/6/7;
* ``census {shared,split,colocated}`` — the Section 8.2 analysis;
* ``robustness {shared,split,colocated}`` — per-parameter switch
  thresholds (which storage parameters to monitor);
* ``expected {shared,split,colocated}`` — Monte-Carlo expected regret
  under random cost drift;
* ``diagram QUERY X_DEVICE Y_DEVICE`` — an ASCII plan diagram over two
  device-cost axes;
* ``explain QUERY`` (or ``--generated SEED:INDEX``) — one decision's
  full provenance: candidate count, winner vs runner-up totals,
  relative margin, the nearest switchover plane and which
  single-coordinate cost perturbation crosses it;
* ``params`` — the Section 7.3 system parameter table;
* ``validate QUERY`` — black-box estimation + discovery validation;
* ``report MANIFEST [MANIFEST]`` — render a run manifest into a
  phase/time/cache breakdown, diff two manifests, or export the span
  tree as a Perfetto/Chrome trace (``--export-trace out.json``);
* ``bench BENCH_JSON`` — render a benchmark telemetry record, or gate
  on regressions against a baseline (``--compare BASELINE.json``,
  threshold 15% by default; exits 1 on regression);
* ``serve`` — the long-running online decision server
  (``POST /v1/decide``): micro-batched, coalescing, warm shared
  candidate-set store, ``/healthz`` + ``/metrics``, graceful SIGTERM
  drain;
* ``loadgen`` — a seeded closed-loop load generator against the
  server (``--qps``/``--duration``), emitting a schema-versioned
  ``BENCH_serve.json`` latency record and optionally digest-verifying
  every response against the offline explain kernel
  (``--verify-offline``);
* ``bench trend`` — judge every series of the append-only perf-history
  store (``benchmarks/history.jsonl`` / ``$REPRO_HISTORY_DIR``)
  against its own recent history: median-of-last-N with MAD bands and
  a change-point flag, exits 1 on a sustained regression.  Records and
  manifests are fed in with ``--append-history`` (benchmark sessions
  append automatically).

The experiment subcommands (``figure``, ``census``, ``robustness``,
``expected``, ``validate``) are generated from the experiment registry
(:mod:`repro.experiments.engine`): each registered
:class:`~repro.experiments.engine.ExperimentSpec` contributes one
subparser carrying its own flags plus the shared ones — a scenario
(``shared``/``split``/``colocated``, or the aliases
``fig5``/``fig6``/``fig7``, positionally or via ``--scenario``),
``--scale`` (TPC-H scale factor, default 100), ``--queries Q1,Q5,...``
to restrict the workload, ``--jobs N`` to spread tasks over worker
processes, and the cache/observability flags below.  Commands that
compute candidate plan sets cache them on disk under ``.repro-cache``
(or ``$REPRO_CACHE_DIR`` / ``--cache-dir``); ``--no-cache`` disables
the cache.

Observability: every experiment command writes a ``run-manifest.json``
(``--manifest PATH`` to move it, ``--no-manifest`` to skip) capturing
git SHA, configuration, RNG seeds, a catalog digest, SHA-256 digests of
the rendered results, and a metrics snapshot — all assembled from the
run's :class:`~repro.experiments.engine.RunContext`; ``--trace``
additionally records the span tree, ``--trace-out PATH`` also exports
it in Trace Event format for ``ui.perfetto.dev``, ``--memprof``
samples tracemalloc/RSS at every span boundary, ``--profile`` samples
the Python stack ~101 times/s (``--profile-hz``) and writes a
speedscope JSON + folded-stack flamegraph input (``--profile-out``;
merged across ``--jobs`` workers, summarised as a hot-function table
in the manifest), ``--timeseries`` snapshots every metric counter
periodically (counter tracks in ``--trace-out``, counter curves in
the manifest), ``--decisions`` records decision provenance (margin
decade-histograms, near-plane fractions, a deterministic bottom-k
sample of explain records — ``--decisions-sample K`` sizes it,
``--decisions-out PATH`` exports it as JSONL, and sampled decisions
additionally land in ``--trace-out`` as instant events),
``--metrics-out PATH`` dumps the raw metrics, and
``--log-level debug`` surfaces the library's loggers.  Long sweeps
render a live progress meter on stderr
when it is a TTY and the log level is below WARNING (force with
``--progress``, silence with ``--no-progress``).  Cached runs end with
a one-line cache summary on stderr.

Resilience: every experiment command takes ``--retries``,
``--task-timeout`` and ``--on-task-error {abort,retry,skip}`` to
survive failing/hanging tasks (retry with seeded, jittered exponential
backoff; ``skip`` finishes the sweep with holes recorded in the
manifest's ``tasks.failed``), ``--checkpoint`` to journal finished
tasks into a content-addressed run directory and ``--resume [RUN_ID]``
to pick an interrupted run back up re-executing only unfinished tasks,
plus ``--inject-faults SPEC`` (or ``$REPRO_FAULTS``) to deterministically
inject raise/hang/kill faults for testing — all keyed by ``--seed``.

Usage errors (unknown query or scenario names, unknown devices, bad
fault specs, a ``--resume`` id that does not match the configuration)
exit with status 2 and a one-line message listing the valid choices.
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from typing import Any, NoReturn, Sequence

from .experiments.engine import (
    ExperimentSpec,
    ResumeMismatchError,
    RunContext,
    UnknownQueryError,
    all_experiments,
    run_experiment,
)
from .experiments.scenarios import (
    SCENARIO_ALIASES,
    SCENARIO_KEYS,
    UnknownScenarioError,
    resolve_scenario_key,
)
from .obs import (
    DECISIONS,
    MEMPROF,
    METRICS,
    ON_ERROR_MODES,
    PROFILER,
    PROGRESS,
    TIMESERIES,
    TRACER,
    FaultPlan,
    FaultSpecError,
    RetryPolicy,
    append_history,
    bench_history_entries,
    compare_bench_records,
    configure_logging,
    decision_instant_events,
    default_history_path,
    detect_trends,
    explain_probe,
    folded_path_for,
    load_bench_record,
    load_history,
    manifest_from_context,
    manifest_history_entries,
    render_bench_comparison,
    render_bench_record,
    render_comparison,
    render_manifest,
    render_trend_report,
    span,
    validate_manifest,
    write_decision_records,
    write_folded,
    write_manifest,
    write_speedscope,
    write_trace_events,
)

__all__ = ["main", "build_parser"]


class _Run:
    """Holder handing the command's RunContext to the epilogue."""

    ctx: "RunContext | None" = None


def _usage_error(message: str) -> NoReturn:
    """One-line usage failure: message on stderr, exit status 2."""
    print(f"error: {message}", file=sys.stderr)
    raise SystemExit(2)


def _resilience_from_args(
    args: argparse.Namespace,
) -> "tuple[RetryPolicy | None, FaultPlan | None]":
    """The retry policy and fault plan the parsed flags describe.

    ``--inject-faults`` falls back to the ``REPRO_FAULTS`` environment
    variable, so CI (and chaos experiments) can inject faults without
    touching every command line.  Bad specs and bad policy values are
    usage errors (exit 2).
    """
    seed = getattr(args, "seed", 0)
    try:
        policy = RetryPolicy(
            on_error=getattr(args, "on_task_error", "abort"),
            retries=getattr(args, "retries", 2),
            task_timeout=getattr(args, "task_timeout", None),
            seed=seed,
        )
    except ValueError as exc:
        _usage_error(str(exc))
    spec = getattr(args, "inject_faults", None)
    if spec is None:
        spec = os.environ.get("REPRO_FAULTS") or None
    faults = None
    if spec:
        try:
            faults = FaultPlan.parse(spec, seed=seed)
        except FaultSpecError as exc:
            _usage_error(str(exc))
    return policy, faults


def _context_from_args(args: argparse.Namespace) -> RunContext:
    """The RunContext the parsed flags describe (catalog stays lazy)."""
    from .optimizer.plancache import PlanCache

    cache = None
    if not getattr(args, "no_cache", False):
        cache = PlanCache(getattr(args, "cache_dir", None))
    policy, faults = _resilience_from_args(args)
    return RunContext(
        scale=getattr(args, "scale", 100.0),
        query_filter=getattr(args, "queries", "") or (),
        cache=cache,
        jobs=getattr(args, "jobs", 1),
        seed=getattr(args, "seed", 0),
        policy=policy,
        faults=faults,
        checkpoint=getattr(args, "checkpoint", False),
        resume=getattr(args, "resume", None),
    )


def _resolve_scenario(
    args: argparse.Namespace, spec: "ExperimentSpec | None" = None
) -> str:
    raw = getattr(args, "scenario_opt", None)
    if raw is None:
        raw = getattr(args, "scenario_arg", None)
    if raw is None and spec is not None:
        raw = spec.scenario_default_for(args)
    if raw is None:
        _usage_error(
            "missing scenario; valid choices: "
            + ", ".join(SCENARIO_KEYS + tuple(SCENARIO_ALIASES))
        )
    try:
        return resolve_scenario_key(raw)
    except UnknownScenarioError as exc:
        _usage_error(str(exc))


def _run_spec_command(args: argparse.Namespace, run: _Run) -> int:
    """The one command body behind every registered experiment."""
    spec: ExperimentSpec = args.spec
    if spec.uses_scenario:
        args.scenario = _resolve_scenario(args, spec)
    ctx = _context_from_args(args)
    run.ctx = ctx
    params = spec.params_from_args(args)
    try:
        result = run_experiment(spec, params, ctx)
    except (ResumeMismatchError, UnknownQueryError) as exc:
        _usage_error(str(exc))
    sys.stdout.write(spec.render(ctx, params, result))
    return 0


def _cmd_diagram(args: argparse.Namespace, run: _Run) -> int:
    from .core.diagram import plan_diagram
    from .experiments import scenario
    from .optimizer.plancache import cached_candidate_plans

    args.scenario = _resolve_scenario(args)
    ctx = _context_from_args(args)
    run.ctx = ctx
    try:
        selected = ctx.select([args.query])
    except UnknownQueryError as exc:
        _usage_error(str(exc))
    (query,) = selected.values()
    config = scenario(args.scenario)
    layout = config.layout_for(query)
    region = config.region(layout, args.delta)
    candidates = cached_candidate_plans(
        query, ctx.catalog, ctx.params, layout, region,
        cache=ctx.cache, scenario_key=config.key,
    )
    groups = {g.name: g for g in config.groups_for(layout)}
    for axis in (args.x_device, args.y_device):
        if axis not in groups:
            _usage_error(
                f"unknown device {axis!r}; valid choices: "
                f"{', '.join(sorted(groups))}"
            )
    diagram = plan_diagram(
        candidates.usages,
        layout.center_costs(),
        groups[args.x_device],
        groups[args.y_device],
        delta=args.delta,
        resolution=args.resolution,
        signatures=candidates.signatures,
    )
    rendered = diagram.render()
    ctx.record_digest("diagram", rendered)
    print(rendered)
    return 0


def _render_explain(
    query_name: str,
    scenario_key: str,
    names,
    cost,
    signatures,
    info: dict,
    cascade: "dict | None",
) -> str:
    """One decision's provenance as the ``repro explain`` transcript."""
    lines = [f"decision provenance: {query_name} [{scenario_key}]"]
    lines.append(
        "cost vector: "
        + ", ".join(
            f"{name}={float(value):.6g}"
            for name, value in zip(names, cost)
        )
    )
    lines.append(f"candidates: {info['candidates']} plan(s)")
    winner = info["winner"]
    lines.append(
        f"winner:    plan {winner} {signatures[winner]} "
        f"(total {info['winner_total']:.6g})"
    )
    if info["runner_up"] is None:
        lines.append("runner-up: none (single candidate plan)")
    else:
        runner = info["runner_up"]
        lines.append(
            f"runner-up: plan {runner} {signatures[runner]} "
            f"(total {info['runner_up_total']:.6g})"
        )
    if info["margin"] is not None:
        lines.append(f"margin:    {info['margin']:.6g} (relative)")
    if (
        info["plane_distance"] is not None
        and info["nearest_rival"] is not None
    ):
        lines.append(
            f"nearest switchover plane: vs plan "
            f"{info['nearest_rival']} at normalized distance "
            f"{info['plane_distance']:.6g}"
        )
    if cascade is not None:
        lines.append(
            f"lookup path: {cascade['path']} "
            f"(reason {cascade['reason']}; "
            f"{cascade['plans_scanned']} of {cascade['n_plans']} "
            f"plans scanned, {cascade['groups_pruned']} of "
            f"{cascade['groups']} groups pruned)"
        )
    else:
        lines.append("lookup path: dense (plan index inactive)")
    if info["crossings"]:
        lines.append(
            "single-coordinate cost perturbations crossing the plane:"
        )
        for crossing in info["crossings"]:
            name = names[crossing["coordinate"]]
            relative = (
                f"{crossing['relative']:+.3%}"
                if crossing["relative"] is not None else "n/a"
            )
            feasible = (
                "" if crossing["feasible"]
                else "  [infeasible: crosses zero]"
            )
            lines.append(
                f"  {name}: {crossing['delta']:+.6g} ({relative}) "
                f"-> {crossing['new_value']:.6g}{feasible}"
            )
    return "\n".join(lines)


def _cmd_explain(args: argparse.Namespace, run: _Run) -> int:
    """``repro explain``: full provenance of one plan decision."""
    import numpy as np

    from .experiments import scenario
    from .optimizer.plancache import cached_candidate_plans

    generated = getattr(args, "generated", None)
    if (
        getattr(args, "scenario_opt", None) is None
        and getattr(args, "scenario_arg", None) is None
    ):
        # Mirror the census defaults: generated queries live in the
        # colocated scenario, named queries default to split.
        args.scenario_opt = "colocated" if generated else "split"
    args.scenario = _resolve_scenario(args)
    ctx = _context_from_args(args)
    run.ctx = ctx
    if generated:
        if args.query is not None:
            _usage_error(
                "give either QUERY or --generated SEED:INDEX, not both"
            )
        from .workloads.generator import generated_task

        seed_text, sep, index_text = generated.partition(":")
        try:
            if not sep:
                raise ValueError(generated)
            gen_seed = int(seed_text)
            gen_index = int(index_text)
        except ValueError:
            _usage_error(
                "--generated takes SEED:INDEX (two integers), "
                "e.g. 0:17"
            )
        if gen_index < 0:
            _usage_error("--generated INDEX must be >= 0")
        catalog, query = generated_task(gen_seed, gen_index)
        cell_cap = 16
        cache = None
        scenario_key_for_cache = None
    elif args.query is None:
        _usage_error("missing QUERY (or --generated SEED:INDEX)")
    else:
        try:
            selected = ctx.select([args.query])
        except UnknownQueryError as exc:
            _usage_error(str(exc))
        (query,) = selected.values()
        catalog = ctx.catalog
        cell_cap = 64
        cache = ctx.cache
        scenario_key_for_cache = args.scenario
    config = scenario(args.scenario)
    layout = config.layout_for(query)
    region = config.region(layout, args.delta)
    candidates = cached_candidate_plans(
        query, catalog, ctx.params, layout, region,
        cell_cap=cell_cap, cache=cache,
        scenario_key=scenario_key_for_cache,
    )
    center = layout.center_costs()
    space = center.space
    if getattr(args, "cost_vector", None):
        parts = args.cost_vector.split(",")
        if len(parts) != space.dimension:
            _usage_error(
                f"--cost-vector needs {space.dimension} components "
                f"({', '.join(space.names)}), got {len(parts)}"
            )
        try:
            values = [float(part) for part in parts]
        except ValueError:
            _usage_error("--cost-vector components must be numbers")
        if any(value <= 0 for value in values):
            _usage_error("--cost-vector components must be > 0")
        cost = np.asarray(values, dtype=float)
    else:
        cost = center.values
    info = explain_probe(candidates.usage_matrix, cost)
    plan_index = candidates.plan_index()
    cascade = (
        plan_index.explain(cost) if plan_index.active else None
    )
    rendered = _render_explain(
        getattr(query, "name", str(query)), args.scenario,
        space.names, cost, candidates.signatures, info, cascade,
    )
    ctx.record_digest("explain", rendered)
    print(rendered)
    return 0


def _cmd_params(args: argparse.Namespace, run: _Run) -> int:
    from .experiments import format_parameter_table
    from .optimizer.config import DEFAULT_PARAMETERS

    ctx = _context_from_args(args)
    run.ctx = ctx
    table = format_parameter_table(DEFAULT_PARAMETERS.as_db2_table())
    ctx.record_digest("params_table", table)
    print(table)
    return 0


def _cmd_report(args: argparse.Namespace, run: _Run) -> int:
    manifests = []
    for path in args.manifests:
        try:
            with open(path) as handle:
                data = json.load(handle)
        except (OSError, ValueError) as exc:
            raise SystemExit(f"cannot read manifest {path}: {exc}")
        errors = validate_manifest(data)
        if errors:
            print(
                f"{path}: invalid manifest:", file=sys.stderr
            )
            for error in errors:
                print(f"  {error}", file=sys.stderr)
            return 1
        manifests.append(data)
    export_path = getattr(args, "export_trace", None)
    if export_path:
        if len(manifests) != 1:
            _usage_error(
                "--export-trace takes exactly one manifest"
            )
        trace = manifests[0].get("trace")
        if not trace:
            print(
                f"{args.manifests[0]}: no span tree recorded — rerun "
                "the command with --trace",
                file=sys.stderr,
            )
            return 1
        target = write_trace_events(trace, export_path)
        events = json.loads(target.read_text())
        print(
            f"wrote {sum(1 for e in events if e.get('ph') == 'X')} "
            f"trace events to {target} "
            "(load in ui.perfetto.dev or chrome://tracing)"
        )
        return 0
    if getattr(args, "append_history", False):
        if len(manifests) != 1:
            _usage_error("--append-history takes exactly one manifest")
        entries = manifest_history_entries(
            manifests[0], source=str(args.manifests[0])
        )
        target = append_history(entries, getattr(args, "history", None))
        print(
            f"history: appended {len(entries)} series point(s) to "
            f"{target}",
            file=sys.stderr,
        )
    if len(manifests) == 1:
        print(render_manifest(manifests[0]))
    else:
        print(render_comparison(manifests[0], manifests[1]))
    return 0


def _bench_trend(args: argparse.Namespace) -> int:
    """``repro bench trend``: the multi-run history regression gate."""
    history_path = getattr(args, "history", None) or \
        default_history_path()
    entries = load_history(history_path)
    if not entries:
        _usage_error(
            f"no history at {history_path} — append records with "
            "`repro bench RECORD --append-history` (or run the "
            "benchmarks, which append automatically)"
        )
    try:
        report = detect_trends(
            entries,
            window=args.window,
            mad_k=args.mad_k,
            rel_floor=args.rel_floor,
            series_filter=args.series or None,
        )
    except ValueError as exc:
        _usage_error(str(exc))
    if not report.series:
        _usage_error(
            f"history at {history_path} has no series matching "
            f"{args.series!r}"
        )
    print(render_trend_report(report))
    if report.ok:
        return 0
    if args.advisory:
        print(
            "advisory mode: regressions reported but not gating",
            file=sys.stderr,
        )
        return 0
    return 1


def _cmd_bench(args: argparse.Namespace, run: _Run) -> int:
    if args.record == "trend":
        return _bench_trend(args)
    try:
        current = load_bench_record(args.record)
    except ValueError as exc:
        _usage_error(str(exc))
    if getattr(args, "append_history", False):
        entries = bench_history_entries(
            current, source=str(args.record)
        )
        target = append_history(entries, getattr(args, "history", None))
        print(
            f"history: appended {len(entries)} series point(s) to "
            f"{target}",
            file=sys.stderr,
        )
    if not args.compare:
        print(render_bench_record(current))
        return 0
    try:
        baseline = load_bench_record(args.compare)
    except ValueError as exc:
        _usage_error(str(exc))
    comparison = compare_bench_records(
        baseline, current, threshold=args.threshold
    )
    print(render_bench_comparison(comparison))
    if comparison.ok:
        return 0
    if args.advisory:
        print(
            "advisory mode: regressions reported but not gating",
            file=sys.stderr,
        )
        return 0
    return 1


def _parse_query_list(raw: "str | None") -> tuple[str, ...]:
    return tuple(
        name.strip() for name in (raw or "").split(",") if name.strip()
    )


def _plan_cache_from_args(args: argparse.Namespace):
    """The PlanCache the cache flags describe (None with --no-cache).

    Shared by ``serve`` and ``loadgen`` so the online commands honour
    ``$REPRO_CACHE_DIR`` / ``--cache-dir`` / ``--no-cache`` exactly
    like the offline experiment subcommands.
    """
    from .optimizer.plancache import PlanCache

    if getattr(args, "no_cache", False):
        return None
    return PlanCache(getattr(args, "cache_dir", None))


def _cmd_serve(args: argparse.Namespace, run: _Run) -> int:
    """``repro serve``: the long-running online decision server."""
    from .serve import RequestError
    from .serve.server import run_server
    from .serve.store import CandidateStore

    if args.port < 0:
        _usage_error("--port must be >= 0 (0 = ephemeral)")
    if args.workers < 1:
        _usage_error("--workers must be >= 1")
    if args.batch_window <= 0:
        _usage_error("--batch-window must be > 0 seconds")
    if args.max_batch < 1:
        _usage_error("--max-batch must be >= 1")
    if args.quant_digits < 1:
        _usage_error("--quant-digits must be >= 1")
    try:
        warm_scenario = resolve_scenario_key(args.warm_scenario)
    except UnknownScenarioError as exc:
        _usage_error(str(exc))
    warm = _parse_query_list(args.warm)
    cache = _plan_cache_from_args(args)

    def store_factory() -> CandidateStore:
        return CandidateStore(
            scale=args.scale,
            delta=args.delta,
            cache=cache,
            catalog_path=args.catalog,
        )

    try:
        return run_server(
            host=args.host,
            port=args.port,
            store_factory=store_factory,
            warm=warm,
            warm_scenario=warm_scenario,
            window=args.batch_window,
            max_batch=args.max_batch,
            quant_digits=args.quant_digits,
            reload_interval=(
                args.reload_interval if args.catalog else 0.0
            ),
            workers=args.workers,
        )
    except RequestError as exc:
        _usage_error(str(exc))


def _cmd_loadgen(args: argparse.Namespace, run: _Run) -> int:
    """``repro loadgen``: the seeded closed-loop latency benchmark."""
    from urllib.parse import urlsplit

    from .serve import RequestError
    from .serve.loadgen import run_loadgen
    from .serve.server import ServeApp
    from .serve.store import CandidateStore

    if args.qps <= 0:
        _usage_error("--qps must be > 0")
    if args.connections < 1:
        _usage_error("--connections must be >= 1")
    if args.quant_digits < 1:
        _usage_error("--quant-digits must be >= 1")
    count = args.requests
    if count is None:
        count = int(round(args.qps * args.duration))
    if count < 1:
        _usage_error(
            "--requests (or --qps * --duration) must be >= 1"
        )
    try:
        scenario_key = resolve_scenario_key(args.scenario_opt)
    except UnknownScenarioError as exc:
        _usage_error(str(exc))
    queries = _parse_query_list(args.queries)
    if not queries:
        _usage_error("--queries must name at least one query")

    host = port = None
    app = None
    store = CandidateStore(
        scale=args.scale,
        delta=args.delta,
        cache=_plan_cache_from_args(args),
    )
    if args.self_serve or not args.url:
        app = ServeApp(
            store,
            window=args.batch_window,
            max_batch=args.max_batch,
            quant_digits=args.quant_digits,
            reload_interval=0.0,
        )
    else:
        parts = urlsplit(args.url)
        if not parts.hostname or not parts.port:
            _usage_error(
                "--url must look like http://HOST:PORT "
                f"(got {args.url!r})"
            )
        host, port = parts.hostname, parts.port
    try:
        return run_loadgen(
            store=store,
            queries=queries,
            scenario_key=scenario_key,
            qps=args.qps,
            count=count,
            seed=args.seed,
            connections=min(args.connections, count),
            quant_digits=args.quant_digits,
            warmup=args.warmup,
            host=host,
            port=port,
            self_serve_app=app,
            bench_out=args.bench_out or None,
            verify=args.verify_offline,
            p99_gate=args.p99_gate,
            append_to_history=not args.no_history,
        )
    except RequestError as exc:
        _usage_error(str(exc))


def _workload_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument("--scale", type=float, default=100.0)
    p.add_argument(
        "--queries", default="",
        help="comma-separated subset, e.g. Q3,Q14,Q20",
    )


def _cache_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--cache-dir", default=None,
        help="candidate-set cache directory (default: "
             "$REPRO_CACHE_DIR or .repro-cache)",
    )
    p.add_argument(
        "--no-cache", action="store_true",
        help="recompute candidate sets; do not read or write the "
             "disk cache",
    )
    p.add_argument(
        "--no-plan-index", action="store_true",
        help="disable the sublinear plan-location index and answer "
             "every lookup with the dense argmin kernel (also "
             "$REPRO_NO_PLAN_INDEX=1); results are identical either "
             "way",
    )


def _obs_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", action="store_true",
        help="record a wall/CPU span tree of the run into the "
             "manifest",
    )
    p.add_argument(
        "--trace-out", default=None, metavar="PATH",
        help="also export the span tree as a Chrome/Perfetto Trace "
             "Event file (implies --trace)",
    )
    p.add_argument(
        "--memprof", action="store_true",
        help="sample tracemalloc peak and RSS at every span boundary "
             "and store them as span attrs (implies --trace)",
    )
    p.add_argument(
        "--profile", action="store_true",
        help="sample the run with the wall-clock stack profiler and "
             "write a speedscope JSON + folded-stack flamegraph input "
             "(merged across --jobs workers)",
    )
    p.add_argument(
        "--profile-out", default=None, metavar="PATH",
        help="where to write the speedscope profile (default "
             "profile.speedscope.json; a .folded.txt sibling is "
             "written next to it; implies --profile)",
    )
    p.add_argument(
        "--profile-hz", type=int, default=None, metavar="HZ",
        help="profiler sampling rate in samples/s (default 101)",
    )
    p.add_argument(
        "--decisions", action="store_true",
        help="record decision provenance: winner/runner-up margins, "
             "switchover-plane distances and lookup paths per plan "
             "lookup, aggregated into a fragility block in the "
             "manifest plus a deterministic bottom-k sample of full "
             "explain records (identical for any --jobs value)",
    )
    p.add_argument(
        "--decisions-sample", type=int, default=None, metavar="K",
        help="how many sampled explain records the decision log "
             "keeps (bottom-k by hash; default 64; implies "
             "--decisions)",
    )
    p.add_argument(
        "--decisions-out", default=None, metavar="PATH",
        help="also export the sampled explain records as JSONL "
             "(implies --decisions)",
    )
    p.add_argument(
        "--timeseries", action="store_true",
        help="periodically snapshot every metric counter so the "
             "manifest (and --trace-out) record curves over the run "
             "instead of one final number",
    )
    p.add_argument(
        "--timeseries-interval", type=float, default=None,
        metavar="SECONDS",
        help="metric sampling interval for --timeseries "
             "(default 0.25s)",
    )
    p.add_argument(
        "--progress", dest="progress", action="store_const",
        const="on", default="auto",
        help="force the live progress meter on (default: auto — "
             "TTY stderr with --log-level below warning)",
    )
    p.add_argument(
        "--no-progress", dest="progress", action="store_const",
        const="off",
        help="force the live progress meter off",
    )
    p.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="stderr logging level for the repro loggers "
             "(default warning)",
    )
    p.add_argument(
        "--metrics-out", default=None, metavar="PATH",
        help="also dump the raw metrics snapshot as JSON",
    )
    p.add_argument(
        "--manifest", default="run-manifest.json", metavar="PATH",
        help="where to write the machine-readable run manifest "
             "(default run-manifest.json)",
    )
    p.add_argument(
        "--no-manifest", action="store_true",
        help="do not write a run manifest",
    )


def _resilience_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--retries", type=int, default=2, metavar="N",
        help="extra attempts per failed task under --on-task-error "
             "retry/skip (default 2; ignored under abort)",
    )
    p.add_argument(
        "--task-timeout", type=float, default=None, metavar="SECONDS",
        help="per-attempt wall-clock limit; a task past it is "
             "interrupted (and its worker respawned if it is wedged)",
    )
    p.add_argument(
        "--on-task-error", default="abort", choices=ON_ERROR_MODES,
        help="what a failed task does to the run: abort the sweep "
             "(default), retry with backoff then abort, or retry "
             "then skip — finishing with holes listed in the "
             "manifest",
    )
    p.add_argument(
        "--inject-faults", default=None, metavar="SPEC",
        help="deterministic fault injection, e.g. "
             "'kill:0.2,raise:0.1,hang:0.05,hang=30' "
             "(KIND:RATE entries; hang=SECONDS bounds hangs; "
             "falls back to $REPRO_FAULTS)",
    )
    p.add_argument(
        "--seed", type=int, default=0,
        help="run seed driving fault injection and backoff jitter "
             "(default 0)",
    )
    p.add_argument(
        "--checkpoint", action="store_true",
        help="journal each finished task to a content-addressed run "
             "directory so the run can be resumed",
    )
    p.add_argument(
        "--resume", nargs="?", const="auto", default=None,
        metavar="RUN_ID",
        help="resume a checkpointed run, skipping journaled tasks; "
             "with no RUN_ID the run id is recomputed from the "
             "configuration (an explicit id must match it)",
    )


def _jobs_flag(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes for the per-query sweep (default 1; "
             "results are identical for any value)",
    )


def _scenario_arguments(
    p: argparse.ArgumentParser, spec: "ExperimentSpec | None" = None
) -> None:
    positional = spec is None or spec.scenario_positional
    required = spec is not None and spec.scenario_default is None
    if positional:
        p.add_argument(
            "scenario_arg", nargs="?", default=None, metavar="scenario",
            help="storage scenario: shared/split/colocated "
                 "(or fig5/fig6/fig7)"
                 + ("" if required else " [optional]"),
        )
    p.add_argument(
        "--scenario", dest="scenario_opt", default=None, metavar="KEY",
        help="storage scenario: shared/split/colocated or "
             "fig5/fig6/fig7"
             + (
                 ""
                 if spec is None or spec.scenario_default is None
                 else f" (default {spec.scenario_default})"
             ),
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Sensitivity of query optimization to storage access "
            "cost parameters (SIGMOD 2003 reproduction)"
        ),
    )
    sub = parser.add_subparsers(dest="command", required=True)

    # One subcommand per registered experiment spec.
    for spec in all_experiments():
        p = sub.add_parser(spec.name, help=spec.help)
        spec.add_arguments(p)
        if spec.uses_scenario:
            _scenario_arguments(p, spec)
        _workload_flags(p)
        _cache_flags(p)
        _obs_flags(p)
        _jobs_flag(p)
        _resilience_flags(p)
        p.set_defaults(func=_run_spec_command, spec=spec)

    p_diagram = sub.add_parser(
        "diagram", help="ASCII plan diagram over two device axes"
    )
    p_diagram.add_argument("query")
    p_diagram.add_argument("x_device")
    p_diagram.add_argument("y_device")
    p_diagram.add_argument(
        "--scenario", dest="scenario_opt", default="split", metavar="KEY",
        help="storage scenario: shared/split/colocated or "
             "fig5/fig6/fig7 (default split)",
    )
    p_diagram.add_argument("--delta", type=float, default=100.0)
    p_diagram.add_argument("--resolution", type=int, default=32)
    _workload_flags(p_diagram)
    _cache_flags(p_diagram)
    _obs_flags(p_diagram)
    p_diagram.set_defaults(func=_cmd_diagram)

    p_explain = sub.add_parser(
        "explain",
        help="full provenance of one plan decision: winner vs "
             "runner-up, margin, nearest switchover plane and the "
             "cost perturbations that cross it",
    )
    p_explain.add_argument(
        "query", nargs="?", default=None, metavar="QUERY",
        help="TPC-H query name, e.g. Q5 (or use --generated)",
    )
    p_explain.add_argument(
        "--generated", default=None, metavar="SEED:INDEX",
        help="explain a generated-census query instead of a TPC-H "
             "one (regenerated deterministically from the census "
             "seed and stream index)",
    )
    p_explain.add_argument(
        "--cost-vector", default=None, metavar="C1,C2,...",
        help="probe cost vector, one positive value per resource "
             "(default: the scenario's center costs)",
    )
    p_explain.add_argument(
        "--scenario", dest="scenario_opt", default=None, metavar="KEY",
        help="storage scenario: shared/split/colocated or "
             "fig5/fig6/fig7 (default split; colocated with "
             "--generated)",
    )
    p_explain.add_argument(
        "--delta", type=float, default=100.0,
        help="feasible-region half-width the candidate set is "
             "computed over (default 100)",
    )
    _workload_flags(p_explain)
    _cache_flags(p_explain)
    _obs_flags(p_explain)
    p_explain.set_defaults(func=_cmd_explain)

    p_params = sub.add_parser(
        "params", help="the Section 7.3 system parameter table"
    )
    _obs_flags(p_params)
    p_params.set_defaults(func=_cmd_params)

    p_report = sub.add_parser(
        "report",
        help="render a run manifest (one arg) or diff two manifests",
    )
    p_report.add_argument(
        "manifests", nargs="+", metavar="MANIFEST",
        help="path(s) to run-manifest.json files (one or two)",
    )
    p_report.add_argument(
        "--export-trace", default=None, metavar="PATH",
        help="convert the manifest's span tree to a Chrome/Perfetto "
             "Trace Event file instead of rendering it",
    )
    p_report.add_argument(
        "--append-history", action="store_true",
        help="also append the manifest's wall time and top-level "
             "phase timings to the perf-history store",
    )
    p_report.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-history store to append to (default "
             "$REPRO_HISTORY_DIR/history.jsonl or "
             "benchmarks/history.jsonl)",
    )
    p_report.set_defaults(func=_cmd_report)

    p_bench = sub.add_parser(
        "bench",
        help="render or regression-gate benchmark telemetry records",
    )
    p_bench.add_argument(
        "record", metavar="BENCH_JSON",
        help="path to a BENCH_<name>.json record emitted by the "
             "benchmark plugin, or the literal word 'trend' to judge "
             "the perf-history store instead",
    )
    p_bench.add_argument(
        "--compare", default=None, metavar="BASELINE",
        help="baseline record to diff against; exits 1 when a median "
             "regresses beyond the threshold",
    )
    p_bench.add_argument(
        "--threshold", type=float, default=0.15,
        help="relative median slowdown treated as a regression "
             "(default 0.15 = 15%%)",
    )
    p_bench.add_argument(
        "--advisory", action="store_true",
        help="report regressions but always exit 0 (CI advisory mode)",
    )
    p_bench.add_argument(
        "--append-history", action="store_true",
        help="also append the record's per-test medians to the "
             "perf-history store",
    )
    p_bench.add_argument(
        "--history", default=None, metavar="PATH",
        help="perf-history store to read/append (default "
             "$REPRO_HISTORY_DIR/history.jsonl or "
             "benchmarks/history.jsonl)",
    )
    p_bench.add_argument(
        "--window", type=int, default=5, metavar="N",
        help="trend mode: judge the newest point of each series "
             "against the median of up to N preceding points "
             "(default 5)",
    )
    p_bench.add_argument(
        "--mad-k", type=float, default=4.0, metavar="K",
        help="trend mode: MAD-band multiplier; a point beyond "
             "median + K*MAD flags (default 4.0)",
    )
    p_bench.add_argument(
        "--rel-floor", type=float, default=0.25, metavar="F",
        help="trend mode: minimum relative movement that can flag, "
             "so flat series absorb timer jitter (default 0.25)",
    )
    p_bench.add_argument(
        "--series", default=None, metavar="SUBSTR",
        help="trend mode: only judge series whose name contains "
             "SUBSTR",
    )
    p_bench.set_defaults(func=_cmd_bench)

    p_serve = sub.add_parser(
        "serve",
        help="long-running online decision server: POST /v1/decide "
             "answers winner/runner-up, margin and switchover-plane "
             "distance, micro-batched and bit-identical to offline "
             "`repro explain`",
    )
    p_serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default 127.0.0.1)",
    )
    p_serve.add_argument(
        "--port", type=int, default=8787,
        help="bind port; 0 picks an ephemeral port, printed on "
             "stderr (default 8787)",
    )
    p_serve.add_argument(
        "--delta", type=float, default=100.0,
        help="feasible-region half-width candidate sets are computed "
             "over (default 100, matching `repro explain`)",
    )
    p_serve.add_argument(
        "--batch-window", type=float, default=0.002,
        metavar="SECONDS",
        help="micro-batch flush tick (default 0.002s)",
    )
    p_serve.add_argument(
        "--max-batch", type=int, default=1024,
        help="unique probes per dgemm call; a larger tick splits "
             "(default 1024)",
    )
    p_serve.add_argument(
        "--quant-digits", type=int, default=9,
        help="significant digits incoming cost vectors are quantized "
             "(and coalesced) to (default 9)",
    )
    p_serve.add_argument(
        "--warm", default=None, metavar="Q1,Q5,...",
        help="candidate sets to pre-build before accepting traffic",
    )
    p_serve.add_argument(
        "--warm-scenario", default="split", metavar="KEY",
        help="scenario the --warm sets are built for (default split)",
    )
    p_serve.add_argument(
        "--catalog", default=None, metavar="PATH",
        help="pickled catalog to serve from; polled for digest "
             "changes and hot-reloaded (default: TPC-H at --scale)",
    )
    p_serve.add_argument(
        "--reload-interval", type=float, default=5.0,
        metavar="SECONDS",
        help="catalog digest poll interval with --catalog "
             "(default 5s)",
    )
    p_serve.add_argument(
        "--workers", type=int, default=1,
        help="pre-forked server processes sharing the listening "
             "socket and one on-disk plan cache (default 1)",
    )
    p_serve.add_argument("--scale", type=float, default=100.0)
    p_serve.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="stderr logging level (default warning)",
    )
    _cache_flags(p_serve)
    p_serve.set_defaults(func=_cmd_serve)

    p_loadgen = sub.add_parser(
        "loadgen",
        help="seeded closed-loop load generator against the decision "
             "server; emits a BENCH_serve.json latency record and "
             "can digest-verify every response against the offline "
             "explain kernel",
    )
    p_loadgen.add_argument(
        "--url", default=None, metavar="http://HOST:PORT",
        help="server to drive; omitted (or --self-serve) runs an "
             "in-process server on an ephemeral port",
    )
    p_loadgen.add_argument(
        "--qps", type=float, default=200.0,
        help="target request rate (default 200)",
    )
    p_loadgen.add_argument(
        "--duration", type=float, default=5.0, metavar="SECONDS",
        help="run length; requests = qps * duration (default 5s)",
    )
    p_loadgen.add_argument(
        "--requests", type=int, default=None, metavar="N",
        help="exact request count (overrides --duration)",
    )
    p_loadgen.add_argument(
        "--seed", type=int, default=0,
        help="RNG seed for the probe stream; one seed -> one "
             "byte-identical request sequence (default 0)",
    )
    p_loadgen.add_argument(
        "--queries", default="Q1,Q6,Q14",
        help="comma-separated queries to probe, round-robined "
             "(default Q1,Q6,Q14)",
    )
    p_loadgen.add_argument(
        "--scenario", dest="scenario_opt", default="split",
        metavar="KEY",
        help="storage scenario for every probe (default split)",
    )
    p_loadgen.add_argument("--scale", type=float, default=100.0)
    p_loadgen.add_argument(
        "--delta", type=float, default=100.0,
        help="feasible-region half-width probes are sampled from "
             "(default 100)",
    )
    p_loadgen.add_argument(
        "--connections", type=int, default=16,
        help="keep-alive connections issuing requests (default 16)",
    )
    p_loadgen.add_argument(
        "--quant-digits", type=int, default=9,
        help="protocol quantization, must match the server "
             "(default 9)",
    )
    p_loadgen.add_argument(
        "--warmup", type=int, default=4, metavar="N",
        help="unmeasured priming requests before the clock starts "
             "(default 4)",
    )
    p_loadgen.add_argument(
        "--batch-window", type=float, default=0.002,
        metavar="SECONDS",
        help="self-serve mode: the in-process server's flush tick",
    )
    p_loadgen.add_argument(
        "--max-batch", type=int, default=1024,
        help="self-serve mode: the in-process server's dgemm row cap",
    )
    p_loadgen.add_argument(
        "--self-serve", action="store_true",
        help="run the server in-process on an ephemeral port "
             "(implied when --url is omitted)",
    )
    p_loadgen.add_argument(
        "--verify-offline", action="store_true",
        help="replay the request stream through the offline explain "
             "kernel and fail on any response-digest mismatch",
    )
    p_loadgen.add_argument(
        "--p99-gate", type=float, default=None, metavar="SECONDS",
        help="exit 1 when p99 latency exceeds this bound",
    )
    p_loadgen.add_argument(
        "--bench-out", default="BENCH_serve.json", metavar="PATH",
        help="where to write the latency BENCH record (default "
             "BENCH_serve.json; '' disables)",
    )
    p_loadgen.add_argument(
        "--no-history", action="store_true",
        help="do not append the record's medians to the perf-history "
             "store",
    )
    p_loadgen.add_argument(
        "--log-level", default="warning",
        choices=("debug", "info", "warning", "error"),
        help="stderr logging level (default warning)",
    )
    _cache_flags(p_loadgen)
    p_loadgen.set_defaults(func=_cmd_loadgen)
    return parser


def _serializable_config(args: argparse.Namespace) -> dict[str, Any]:
    """The parsed CLI namespace, minus the non-JSON machinery."""
    config = dict(vars(args))
    for key in ("func", "spec", "scenario_arg", "scenario_opt"):
        config.pop(key, None)
    return config


def _decade_label(key: str) -> str:
    """``"-3"`` -> ``"1e-3"``; the tie bucket renders as-is."""
    try:
        return f"1e{int(key)}"
    except ValueError:
        return key


def _decade_sort_key(key: str):
    try:
        return (1, int(key))
    except ValueError:
        return (0, 0)  # "tie" sorts first


def _decisions_epilogue(summary: dict) -> str:
    return (
        f"decisions: {summary['probes']} probes observed, "
        f"{summary['sampled']} sampled, {summary['near_plane']} "
        f"within {summary['epsilon']:g} of a switchover plane "
        "(see `repro report`)"
    )


def _fragility_epilogue(summary: dict) -> "str | None":
    """Wrong-choice fraction by margin decade, merged over contexts.

    ``None`` when no probe carried a reference plan (nothing to call
    wrong), e.g. discovery runs outside the census/expected sweeps.
    """
    if not summary.get("with_reference"):
        return None
    merged: dict[str, list[int]] = {}
    for block in summary.get("contexts", {}).values():
        for decade, pair in (block.get("decades") or {}).items():
            bucket = merged.setdefault(decade, [0, 0])
            bucket[0] += int(pair[0])
            bucket[1] += int(pair[1])
    parts = []
    for decade in sorted(merged, key=_decade_sort_key):
        total, wrong = merged[decade]
        if not total:
            continue
        parts.append(
            f"{_decade_label(decade)} {wrong}/{total} "
            f"({wrong / total:.1%})"
        )
    if not parts:
        return None
    return (
        "fragility: wrong-choice fraction by margin decade: "
        + ", ".join(parts)
    )


def _finish_run(
    args: argparse.Namespace,
    ctx: "RunContext | None",
    wall_seconds: float,
    cpu_seconds: float,
) -> None:
    """Write the manifest/metrics artefacts and the cache summary."""
    snapshot = METRICS.snapshot()
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        with open(metrics_out, "w") as handle:
            json.dump(snapshot, handle, indent=2, sort_keys=True)
            handle.write("\n")
    profiling = bool(
        getattr(args, "profile", False)
        or getattr(args, "profile_out", None)
    )
    profile_summary = PROFILER.summary() if profiling else None
    timeseries_summary = (
        TIMESERIES.summary()
        if getattr(args, "timeseries", False) else None
    )
    decisions_summary = None
    if DECISIONS.enabled:
        decisions_summary = DECISIONS.summary()
        decisions_summary["fallback_reasons"] = {
            reason: snapshot["counters"].get(
                f"planindex.exact_fallbacks.{reason}", 0
            )
            for reason in (
                "near_tie", "invalid_probe", "weak_certificate"
            )
        }
    if getattr(args, "manifest", None) and not getattr(
        args, "no_manifest", False
    ):
        manifest = manifest_from_context(
            command=args.command,
            config=_serializable_config(args),
            ctx=ctx,
            metrics=snapshot,
            trace=TRACER.export() if TRACER.enabled else None,
            wall_seconds=wall_seconds,
            cpu_seconds=cpu_seconds,
            profile=profile_summary,
            timeseries=timeseries_summary,
            decisions=decisions_summary,
        )
        write_manifest(manifest, args.manifest)
    decisions_out = getattr(args, "decisions_out", None)
    if DECISIONS.enabled and decisions_out:
        records = DECISIONS.records()
        target = write_decision_records(records, decisions_out)
        print(
            f"decisions: wrote {len(records)} sampled explain "
            f"record(s) to {target}",
            file=sys.stderr,
        )
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        write_trace_events(
            TRACER.export(),
            trace_out,
            counter_tracks=(
                TIMESERIES.counter_tracks()
                if getattr(args, "timeseries", False) else None
            ),
            instant_events=(
                decision_instant_events(DECISIONS.records())
                if DECISIONS.enabled else None
            ),
        )
    if profiling:
        profile_out = (
            getattr(args, "profile_out", None)
            or "profile.speedscope.json"
        )
        state = PROFILER.snapshot()
        target = write_speedscope(
            state, profile_out, name=f"repro {args.command}"
        )
        folded = write_folded(state, folded_path_for(profile_out))
        print(
            f"profile: {PROFILER.sample_count} samples at "
            f"{PROFILER.hz} Hz -> {target} (speedscope.app) and "
            f"{folded} (flamegraph.pl)",
            file=sys.stderr,
        )
    stats = getattr(ctx, "task_stats", None) or {}
    failed = stats.get("failed") or []
    if failed:
        print(
            f"warning: {len(failed)} task(s) failed and were skipped "
            f"— the run has holes (see the manifest's tasks.failed "
            "and `repro report`)",
            file=sys.stderr,
        )
    run_id = getattr(ctx, "run_id", None)
    if run_id:
        print(
            f"checkpoint: run {run_id[:16]} journaled — resume an "
            "interrupted run by re-running with --resume "
            f"(or --resume {run_id} to pin the exact configuration)",
            file=sys.stderr,
        )
    counters = snapshot["counters"]
    lookups = (
        counters.get("plancache.hits", 0)
        + counters.get("plancache.misses", 0)
    )
    if lookups and not getattr(args, "no_cache", False):
        from .optimizer.plancache import default_cache_dir

        if ctx is not None and ctx.cache is not None:
            cache_dir = ctx.cache.root
        else:
            cache_dir = getattr(args, "cache_dir", None) or \
                default_cache_dir()
        print(
            f"cache: {counters.get('plancache.hits', 0)} hits, "
            f"{counters.get('plancache.misses', 0)} misses "
            f"({counters.get('plancache.corrupt', 0)} corrupt) "
            f"under {cache_dir}",
            file=sys.stderr,
        )
    fallbacks = counters.get("planindex.exact_fallbacks", 0)
    probes = counters.get("planindex.probes", 0)
    if fallbacks:
        fraction = fallbacks / probes if probes else 0.0
        reasons = ", ".join(
            f"{reason.replace('_', '-')} "
            f"{counters.get(f'planindex.exact_fallbacks.{reason}', 0)}"
            for reason in (
                "near_tie", "invalid_probe", "weak_certificate"
            )
            if counters.get(f"planindex.exact_fallbacks.{reason}", 0)
        )
        detail = f" ({reasons})" if reasons else ""
        print(
            f"plan index: {fallbacks} of {probes} lookups "
            f"({fraction:.1%}) fell back to the dense kernel{detail} "
            "(results are exact either way; see `repro report`)",
            file=sys.stderr,
        )
    if decisions_summary is not None:
        print(_decisions_epilogue(decisions_summary), file=sys.stderr)
        fragility = _fragility_epilogue(decisions_summary)
        if fragility:
            print(fragility, file=sys.stderr)


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    configure_logging(getattr(args, "log_level", "warning"))
    TRACER.reset()
    # --trace-out and --memprof need the span tree, so either implies
    # --trace.
    TRACER.enabled = bool(
        getattr(args, "trace", False)
        or getattr(args, "trace_out", None)
        or getattr(args, "memprof", False)
    )
    if getattr(args, "memprof", False):
        MEMPROF.enable()
    else:
        MEMPROF.disable()
    # --profile-out / --profile-hz imply --profile; off means the
    # profiler object stays inert (no sampler thread exists).
    profiling = bool(
        getattr(args, "profile", False)
        or getattr(args, "profile_out", None)
    )
    try:
        if profiling:
            PROFILER.reset()
            PROFILER.enable(getattr(args, "profile_hz", None))
        else:
            PROFILER.disable()
        if getattr(args, "timeseries", False):
            TIMESERIES.reset()
            TIMESERIES.start(
                getattr(args, "timeseries_interval", None)
            )
        else:
            TIMESERIES.stop()
            TIMESERIES.reset()
    except ValueError as exc:
        _usage_error(str(exc))
    PROGRESS.configure(
        mode=getattr(args, "progress", "auto"),
        log_level=getattr(args, "log_level", "warning"),
    )
    # --decisions-sample / --decisions-out imply --decisions.  The
    # sampling seed is fixed (not tied to --seed, which drives fault
    # injection) so the sampled record set is a property of the
    # workload alone.
    decisions_on = bool(
        getattr(args, "decisions", False)
        or getattr(args, "decisions_out", None)
        or getattr(args, "decisions_sample", None) is not None
    )
    DECISIONS.disable()
    DECISIONS.reset()
    if decisions_on:
        sample_k = getattr(args, "decisions_sample", None)
        if sample_k is None:
            DECISIONS.configure()
        else:
            if sample_k < 0:
                _usage_error("--decisions-sample must be >= 0")
            DECISIONS.configure(sample_k=sample_k)
        DECISIONS.enable()
    METRICS.reset()
    run = _Run()
    wall_start = time.perf_counter()
    cpu_start = time.process_time()
    # --no-plan-index rides on the env var the core index checks, so
    # one flag reaches every layer (including --jobs workers, which
    # inherit the environment).  Restored afterwards to keep in-process
    # callers (tests, notebooks) unaffected.
    saved_no_index = os.environ.get("REPRO_NO_PLAN_INDEX")
    if getattr(args, "no_plan_index", False):
        os.environ["REPRO_NO_PLAN_INDEX"] = "1"
    try:
        with span(f"cli.{args.command}"):
            code = args.func(args, run)
    finally:
        if getattr(args, "no_plan_index", False):
            if saved_no_index is None:
                os.environ.pop("REPRO_NO_PLAN_INDEX", None)
            else:
                os.environ["REPRO_NO_PLAN_INDEX"] = saved_no_index
    wall_seconds = time.perf_counter() - wall_start
    cpu_seconds = time.process_time() - cpu_start
    # Stop the samplers before reading their state so the artefacts
    # cover exactly the command body.
    if profiling:
        PROFILER.disable()
    if getattr(args, "timeseries", False):
        TIMESERIES.stop()
    # serve/loadgen manage their own artefacts (BENCH record, history
    # append) and never write run manifests.
    if args.command not in ("report", "bench", "serve", "loadgen"):
        _finish_run(args, run.ctx, wall_seconds, cpu_seconds)
    return code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
