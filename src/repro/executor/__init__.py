"""Iterator-model executor with metered physical I/O.

Validates the optimizer's usage vectors against actually-incurred page
reads on generated TPC-H data (see ``tests/executor`` and
``examples/cost_model_validation.py``).
"""

from .bufferpool import BufferPool
from .iterators import ExecutionResult, PlanExecutor, Relation
from .runtime import ColumnCondition, MeasuredIO, StorageEngine

__all__ = [
    "BufferPool",
    "ColumnCondition",
    "ExecutionResult",
    "MeasuredIO",
    "PlanExecutor",
    "Relation",
    "StorageEngine",
]
