"""A CLOCK buffer pool for the validation executor.

Tracks which (object, page) pairs are resident so the executor can
measure *actual* physical I/O — including the residency effects the
optimizer's cost model assumes (tiny nested-loop inners stop paying
I/O after their first scan).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["BufferPool"]

PageId = tuple  # (object key, page number)


@dataclass
class _Frame:
    page: PageId
    referenced: bool = True


class BufferPool:
    """CLOCK (second-chance) replacement over fixed-size frames."""

    def __init__(self, capacity_pages: int) -> None:
        if capacity_pages < 1:
            raise ValueError("buffer pool needs at least one frame")
        self._capacity = capacity_pages
        self._frames: list[_Frame] = []
        self._index: dict[PageId, int] = {}
        self._hand = 0
        self.hits = 0
        self.misses = 0

    @property
    def capacity(self) -> int:
        return self._capacity

    def __len__(self) -> int:
        return len(self._frames)

    def contains(self, page: PageId) -> bool:
        return page in self._index

    def access(self, page: PageId) -> bool:
        """Touch a page; returns True on a hit, False on a miss.

        A miss loads the page, evicting via CLOCK when full.
        """
        slot = self._index.get(page)
        if slot is not None:
            self._frames[slot].referenced = True
            self.hits += 1
            return True
        self.misses += 1
        if len(self._frames) < self._capacity:
            self._index[page] = len(self._frames)
            self._frames.append(_Frame(page))
            return False
        # CLOCK sweep: clear reference bits until a victim is found.
        while True:
            frame = self._frames[self._hand]
            if frame.referenced:
                frame.referenced = False
                self._hand = (self._hand + 1) % self._capacity
                continue
            del self._index[frame.page]
            self._index[page] = self._hand
            self._frames[self._hand] = _Frame(page)
            self._hand = (self._hand + 1) % self._capacity
            return False

    def reset_stats(self) -> None:
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
