"""Measured storage engine: page mapping, I/O counters, conditions.

The executor measures what a plan *actually does* against generated
data: physical page reads per object group (split into sequential and
random, mirroring the paper's ``d_t``/``d_s`` resources) and rows
flowing between operators.  The optimizer's usage vectors are validated
against these measurements in ``tests/executor`` and
``examples/cost_model_validation.py``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..catalog.statistics import Catalog
from ..dbgen.generator import TPCHData
from ..storage.layout import ObjectKey
from .bufferpool import BufferPool

__all__ = ["ColumnCondition", "MeasuredIO", "StorageEngine"]


@dataclass(frozen=True)
class ColumnCondition:
    """An evaluable predicate for the executor.

    ``op`` is one of ``= < <= > >= between``; ``between`` uses
    ``value`` as ``(low, high)`` inclusive.
    """

    alias: str
    column: str
    op: str
    value: object

    def evaluate(self, values: np.ndarray) -> np.ndarray:
        if self.op == "=":
            return values == self.value
        if self.op == "<":
            return values < self.value
        if self.op == "<=":
            return values <= self.value
        if self.op == ">":
            return values > self.value
        if self.op == ">=":
            return values >= self.value
        if self.op == "between":
            low, high = self.value  # type: ignore[misc]
            return (values >= low) & (values <= high)
        raise ValueError(f"unknown operator {self.op!r}")


@dataclass
class MeasuredIO:
    """Physical I/O actually incurred, per object group."""

    sequential_pages: dict[ObjectKey, int] = field(default_factory=dict)
    random_pages: dict[ObjectKey, int] = field(default_factory=dict)
    temp_pages: int = 0
    rows_produced: int = 0

    def add(self, key: ObjectKey, pages: int, sequential: bool) -> None:
        bucket = self.sequential_pages if sequential else self.random_pages
        bucket[key] = bucket.get(key, 0) + pages

    def pages(self, key: ObjectKey) -> int:
        return self.sequential_pages.get(key, 0) + self.random_pages.get(
            key, 0
        )

    def seeks(self, key: ObjectKey) -> int:
        """Random page reads — each pays a seek in the disk model."""
        return self.random_pages.get(key, 0)

    def total_pages(self) -> int:
        return (
            sum(self.sequential_pages.values())
            + sum(self.random_pages.values())
            + self.temp_pages
        )


class StorageEngine:
    """Maps generated rows to pages and meters access to them."""

    def __init__(
        self,
        data: TPCHData,
        catalog: Catalog,
        bufferpool_pages: int = 10_000,
        sortheap_pages: int = 1_000,
    ) -> None:
        self._data = data
        self._catalog = catalog
        self.pool = BufferPool(bufferpool_pages)
        self.sortheap_pages = sortheap_pages
        self.io = MeasuredIO()
        self._last_page: dict[ObjectKey, int] = {}

    # ------------------------------------------------------------------
    # Data access
    # ------------------------------------------------------------------
    @property
    def data(self) -> TPCHData:
        return self._data

    def column(self, table: str, column: str) -> np.ndarray:
        return self._data.column(table, column)

    def row_count(self, table: str) -> int:
        return self._data.row_count(table)

    def rows_per_page(self, table: str) -> int:
        return self._catalog.table_stats(table).rows_per_page

    def n_pages(self, table: str) -> int:
        return max(
            1,
            -(-self.row_count(table) // self.rows_per_page(table)),
        )

    def index_entries_per_leaf(self, index_name: str) -> int:
        stats = self._catalog.index_stats(index_name)
        rows = self._catalog.index(index_name)
        table_rows = self.row_count(rows.table)
        return max(1, -(-table_rows // stats.leaf_pages))

    # ------------------------------------------------------------------
    # Metered page access
    # ------------------------------------------------------------------
    def read_page(self, key: ObjectKey, page: int) -> None:
        """Read one page through the buffer pool, metering a miss."""
        hit = self.pool.access((key, page))
        if hit:
            self._last_page[key] = page
            return
        sequential = self._last_page.get(key) == page - 1
        self.io.add(key, 1, sequential)
        self._last_page[key] = page

    def read_row_pages(
        self, table: str, row_indices: np.ndarray, ordered: bool = False
    ) -> None:
        """Fetch the data pages holding ``row_indices``.

        ``ordered`` marks fetches arriving in physical row order
        (clustered access); otherwise the given order is preserved,
        modelling unclustered fetch patterns.
        """
        if len(row_indices) == 0:
            return
        pages = np.asarray(row_indices) // self.rows_per_page(table)
        if ordered:
            pages = np.sort(pages)
        key = ObjectKey.table(table)
        previous = None
        for page in pages:
            page = int(page)
            if page == previous:
                continue  # same page as the immediately previous fetch
            self.read_page(key, page)
            previous = page

    def scan_table(self, table: str) -> None:
        """Meter a full sequential scan."""
        key = ObjectKey.table(table)
        for page in range(self.n_pages(table)):
            self.read_page(key, page)

    def read_index_leaves(
        self, table: str, index_name: str, n_entries: int
    ) -> None:
        """Meter a leaf-range read of ``n_entries`` index entries."""
        if n_entries <= 0:
            return
        per_leaf = self.index_entries_per_leaf(index_name)
        n_leaves = -(-n_entries // per_leaf)
        key = ObjectKey.index(table)
        # Descend once (levels-1 internal pages) then stream leaves.
        levels = self._catalog.index_stats(index_name).levels
        for internal in range(levels - 1):
            self.read_page(key, 10_000_000 + internal)
        for leaf in range(n_leaves):
            self.read_page(key, leaf)

    def probe_index(
        self, table: str, index_name: str, key_value: int
    ) -> None:
        """Meter one B-tree probe (leaf page chosen by key hash)."""
        stats = self._catalog.index_stats(index_name)
        key = ObjectKey.index(table)
        leaf = int(key_value) % max(1, stats.leaf_pages)
        # Upper levels are hot; model the probe as touching one
        # intermediate page (shared, usually a hit) plus its leaf.
        self.read_page(key, 10_000_000)
        self.read_page(key, leaf)

    def spill(self, pages: int) -> None:
        """Meter a temp-space round trip (write + read)."""
        if pages > 0:
            self.io.temp_pages += 2 * pages
            self.io.add(ObjectKey.temp(), 2 * pages, True)

    # ------------------------------------------------------------------
    def evaluate_conditions(
        self,
        table: str,
        row_indices: np.ndarray,
        conditions: Sequence[ColumnCondition],
    ) -> np.ndarray:
        """Filter ``row_indices`` by all conditions (no I/O metering —
        callers meter the fetches)."""
        mask = np.ones(len(row_indices), dtype=bool)
        for condition in conditions:
            values = self.column(table, condition.column)[row_indices]
            mask &= condition.evaluate(values)
        return row_indices[mask]
