"""Plan-tree interpreter over generated data with metered I/O.

Executes the optimizer's physical plan trees
(:mod:`repro.optimizer.plans`) against :class:`~repro.dbgen.generator.
TPCHData`, producing actual result cardinalities and physical page
reads.  This closes the loop the paper could not close with DB2: the
optimizer's *predicted* usage vectors are checked against *measured*
behaviour.

Relations flow between operators as alias-aligned arrays of row
indices.  Predicates arrive as :class:`ColumnCondition` bindings per
alias (query specs carry only selectivities; the executor needs
evaluable predicates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

import numpy as np

from ..catalog.statistics import Catalog
from ..optimizer.plans import (
    AggregateNode,
    HashJoinNode,
    IndexProbeNode,
    IndexScanNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    TableScanNode,
)
from ..optimizer.query import QuerySpec
from .runtime import ColumnCondition, MeasuredIO, StorageEngine

__all__ = ["Relation", "ExecutionResult", "PlanExecutor"]

#: Assumed bytes per alias in intermediate tuples (spill sizing).
_CARRIED_WIDTH = 32


@dataclass
class Relation:
    """Alias-aligned row-index arrays (one row per joined tuple)."""

    columns: dict[str, np.ndarray]

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset(self.columns)

    def __len__(self) -> int:
        if not self.columns:
            return 0
        return len(next(iter(self.columns.values())))

    def take(self, positions: np.ndarray) -> "Relation":
        return Relation(
            {alias: rows[positions] for alias, rows in self.columns.items()}
        )

    @classmethod
    def base(cls, alias: str, rows: np.ndarray) -> "Relation":
        return cls({alias: np.asarray(rows)})


@dataclass
class ExecutionResult:
    """Outcome of executing one plan."""

    rows: int
    io: MeasuredIO
    relation: Relation


def _join_positions(
    left_values: np.ndarray, right_values: np.ndarray
) -> tuple[np.ndarray, np.ndarray]:
    """Equi-join position pairs between two value arrays."""
    order = np.argsort(right_values, kind="stable")
    sorted_values = right_values[order]
    starts = np.searchsorted(sorted_values, left_values, "left")
    ends = np.searchsorted(sorted_values, left_values, "right")
    counts = ends - starts
    left_positions = np.repeat(np.arange(len(left_values)), counts)
    chunks = [
        order[start:end]
        for start, end in zip(starts, ends)
        if end > start
    ]
    if chunks:
        right_positions = np.concatenate(chunks)
    else:
        right_positions = np.empty(0, dtype=int)
    return left_positions, right_positions


class PlanExecutor:
    """Executes plan trees for one query over one storage engine."""

    def __init__(
        self,
        engine: StorageEngine,
        catalog: Catalog,
        query: QuerySpec,
        conditions: Mapping[str, Sequence[ColumnCondition]] | None = None,
    ) -> None:
        self._engine = engine
        self._catalog = catalog
        self._query = query
        self._conditions = dict(conditions or {})

    # ------------------------------------------------------------------
    def run(self, plan: PlanNode) -> ExecutionResult:
        """Execute ``plan`` and report rows + measured I/O."""
        relation = self._eval(plan)
        rows = len(relation)
        self._engine.io.rows_produced = rows
        return ExecutionResult(
            rows=rows, io=self._engine.io, relation=relation
        )

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _conditions_for(self, alias: str) -> list[ColumnCondition]:
        return list(self._conditions.get(alias, ()))

    def _values(self, alias: str, column: str, rows: np.ndarray) -> np.ndarray:
        table = self._query.table_of(alias)
        return self._engine.column(table, column)[rows]

    def _edges_between(self, left: frozenset, right: frozenset):
        edges = self._query.joins_between(left, right)
        if not edges:
            raise ValueError(
                f"no join edge between {sorted(left)} and {sorted(right)}"
            )
        return edges

    def _combine(
        self,
        left: Relation,
        right: Relation,
    ) -> Relation:
        """Join two relations on every edge between their alias sets."""
        edges = self._edges_between(left.aliases, right.aliases)
        primary, *rest = edges
        if primary.left_alias in left.aliases:
            left_key = (primary.left_alias, primary.left_column)
            right_key = (primary.right_alias, primary.right_column)
        else:
            left_key = (primary.right_alias, primary.right_column)
            right_key = (primary.left_alias, primary.left_column)
        left_values = self._values(
            left_key[0], left_key[1], left.columns[left_key[0]]
        )
        right_values = self._values(
            right_key[0], right_key[1], right.columns[right_key[0]]
        )
        left_positions, right_positions = _join_positions(
            left_values, right_values
        )
        joined = Relation(
            {
                **left.take(left_positions).columns,
                **right.take(right_positions).columns,
            }
        )
        for edge in rest:
            mask = self._values(
                edge.left_alias,
                edge.left_column,
                joined.columns[edge.left_alias],
            ) == self._values(
                edge.right_alias,
                edge.right_column,
                joined.columns[edge.right_alias],
            )
            joined = joined.take(np.flatnonzero(mask))
        return joined

    def _reduce_to_groups(self, relation: Relation, group_keys) -> Relation:
        """One representative row per distinct group-key combination."""
        if len(relation) == 0 or not group_keys:
            return relation
        stacked = np.stack(
            [
                self._values(alias, column, relation.columns[alias])
                for alias, column in group_keys
            ]
        )
        __, first_positions = np.unique(
            stacked, axis=1, return_index=True
        )
        return relation.take(np.sort(first_positions))

    def _spill_if_needed(self, rows: int, n_aliases: int) -> None:
        engine = self._engine
        pages = (rows * n_aliases * _CARRIED_WIDTH) // 4096
        if pages > engine.sortheap_pages:
            engine.spill(int(pages))

    # ------------------------------------------------------------------
    # Node dispatch
    # ------------------------------------------------------------------
    def _eval(self, node: PlanNode) -> Relation:
        if isinstance(node, TableScanNode):
            return self._eval_table_scan(node)
        if isinstance(node, IndexScanNode):
            return self._eval_index_scan(node)
        if isinstance(node, NestedLoopJoinNode):
            return self._eval_nested_loop(node)
        if isinstance(node, HashJoinNode):
            return self._eval_hash_join(node)
        if isinstance(node, MergeJoinNode):
            return self._eval_merge_join(node)
        if isinstance(node, SortNode):
            return self._eval_sort(node)
        if isinstance(node, AggregateNode):
            return self._reduce_to_groups(
                self._eval(node.child), node.group_keys
            )
        raise TypeError(f"cannot execute node type {type(node).__name__}")

    def _eval_table_scan(self, node: TableScanNode) -> Relation:
        engine = self._engine
        engine.scan_table(node.table)
        rows = np.arange(engine.row_count(node.table))
        rows = engine.evaluate_conditions(
            node.table, rows, self._conditions_for(node.alias)
        )
        return Relation.base(node.alias, rows)

    def _eval_index_scan(self, node: IndexScanNode) -> Relation:
        engine = self._engine
        conditions = self._conditions_for(node.alias)
        matched = [
            c for c in conditions if c.column == node.matched_column
        ]
        residual = [
            c for c in conditions if c.column != node.matched_column
        ]
        all_rows = np.arange(engine.row_count(node.table))
        if matched:
            rows = engine.evaluate_conditions(
                node.table, all_rows, matched
            )
        else:
            rows = all_rows  # full index scan for order
        # Index entries are visited in key order.
        key_values = engine.column(node.table, node.matched_column)[rows]
        rows = rows[np.argsort(key_values, kind="stable")]
        engine.read_index_leaves(node.table, node.index_name, len(rows))
        if not node.index_only:
            clustered = (
                self._catalog.index_stats(node.index_name).cluster_ratio
                > 0.5
            )
            engine.read_row_pages(node.table, rows, ordered=clustered)
            rows = engine.evaluate_conditions(node.table, rows, residual)
        elif residual:
            # Residual conditions on an index-only scan can only use
            # key columns; evaluate without data-page fetches.
            rows = engine.evaluate_conditions(node.table, rows, residual)
        return Relation.base(node.alias, rows)

    def _eval_nested_loop(self, node: NestedLoopJoinNode) -> Relation:
        outer = self._eval(node.outer)
        inner = node.inner
        if isinstance(inner, IndexProbeNode):
            return self._eval_index_probe_join(outer, inner)
        if isinstance(inner, TableScanNode):
            return self._eval_rescan_join(outer, inner)
        raise TypeError(
            f"unsupported nested-loop inner {type(inner).__name__}"
        )

    def _eval_index_probe_join(
        self, outer: Relation, inner: IndexProbeNode
    ) -> Relation:
        engine = self._engine
        edges = self._edges_between(
            outer.aliases, frozenset({inner.alias})
        )
        probe_edge = next(
            e
            for e in edges
            if e.column_for(inner.alias) == inner.join_column
        )
        outer_alias = probe_edge.other(inner.alias)
        probe_values = self._values(
            outer_alias,
            probe_edge.column_for(outer_alias),
            outer.columns[outer_alias],
        )
        inner_values = engine.column(inner.table, inner.join_column)
        order = np.argsort(inner_values, kind="stable")
        sorted_values = inner_values[order]
        outer_positions: list[int] = []
        inner_rows: list[np.ndarray] = []
        for position, value in enumerate(probe_values):
            engine.probe_index(inner.table, inner.index_name, int(value))
            start = np.searchsorted(sorted_values, value, "left")
            end = np.searchsorted(sorted_values, value, "right")
            if end > start:
                matches = order[start:end]
                if not inner.index_only:
                    engine.read_row_pages(inner.table, matches)
                matches = engine.evaluate_conditions(
                    inner.table,
                    matches,
                    self._conditions_for(inner.alias),
                )
                if len(matches):
                    outer_positions.extend([position] * len(matches))
                    inner_rows.append(matches)
        if inner_rows:
            inner_column = np.concatenate(inner_rows)
            positions = np.asarray(outer_positions)
        else:
            inner_column = np.empty(0, dtype=int)
            positions = np.empty(0, dtype=int)
        combined = outer.take(positions)
        combined.columns[inner.alias] = inner_column
        result = Relation(combined.columns)
        return self._apply_extra_edges(result, edges, probe_edge)

    def _apply_extra_edges(self, relation, edges, used_edge) -> Relation:
        for edge in edges:
            if edge is used_edge:
                continue
            mask = self._values(
                edge.left_alias,
                edge.left_column,
                relation.columns[edge.left_alias],
            ) == self._values(
                edge.right_alias,
                edge.right_column,
                relation.columns[edge.right_alias],
            )
            relation = relation.take(np.flatnonzero(mask))
        return relation

    def _eval_rescan_join(
        self, outer: Relation, inner: TableScanNode
    ) -> Relation:
        engine = self._engine
        # Each outer tuple rescans the inner table; the buffer pool
        # absorbs repeats for resident inners, exactly the effect the
        # cost model's rescan formula claims.
        inner_rows = np.arange(engine.row_count(inner.table))
        inner_rows = engine.evaluate_conditions(
            inner.table, inner_rows, self._conditions_for(inner.alias)
        )
        for _ in range(len(outer)):
            engine.scan_table(inner.table)
        return self._combine(outer, Relation.base(inner.alias, inner_rows))

    def _eval_hash_join(self, node: HashJoinNode) -> Relation:
        build = self._eval(node.build)
        probe = self._eval(node.probe)
        self._spill_if_needed(len(build), len(build.aliases))
        return self._combine(build, probe)

    def _eval_merge_join(self, node: MergeJoinNode) -> Relation:
        left = self._eval(node.left)
        right = self._eval(node.right)
        return self._combine(left, right)

    def _eval_sort(self, node: SortNode) -> Relation:
        relation = self._eval(node.child)
        self._spill_if_needed(len(relation), len(relation.aliases))
        if len(relation) == 0 or not node.keys:
            return relation
        alias, column = node.keys[0]
        if alias not in relation.columns:
            return relation
        values = self._values(alias, column, relation.columns[alias])
        return relation.take(np.argsort(values, kind="stable"))
