"""Event-level disk simulator (Ruemmler & Wilkes style).

The paper's cost model approximates a disk with two parameters, ``d_s``
(seek/rotate overhead per random access) and ``d_t`` (per-page transfer
time), citing Ruemmler & Wilkes and Worthington et al. for the claim
that this is a good first approximation.  This module provides the
realistic model those papers describe — distance-dependent seeks,
rotational latency, per-track layout — so the approximation can be
*checked* rather than assumed:

* :class:`SimulatedDisk` services page requests and accounts busy time;
* :func:`fit_two_parameter_model` least-squares fits ``(d_s, d_t)`` to
  a simulated trace, recovering the paper's model from first
  principles (see ``tests/storage/test_disksim.py``).

Times are in milliseconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["DiskGeometry", "DiskStats", "SimulatedDisk", "fit_two_parameter_model"]


@dataclass(frozen=True)
class DiskGeometry:
    """Physical parameters of a simulated drive.

    Defaults approximate a circa-2002 10k RPM server drive.
    """

    n_cylinders: int = 10_000
    pages_per_track: int = 64
    tracks_per_cylinder: int = 4
    rpm: float = 10_000.0
    #: Short-seek curve ``a + b * sqrt(distance)`` (ms).
    seek_short_a: float = 0.8
    seek_short_b: float = 0.12
    #: Long-seek line ``c + d * distance`` (ms); chosen to meet the
    #: short-seek curve continuously at the knee.
    seek_long_c: float = 3.4
    seek_long_d: float = 0.0006
    #: Seek distance (cylinders) where the two curves cross over.
    seek_knee: int = 600
    page_size: int = 4096

    def __post_init__(self) -> None:
        if self.n_cylinders < 1 or self.pages_per_track < 1:
            raise ValueError("geometry must be positive")
        if self.rpm <= 0:
            raise ValueError("rpm must be positive")

    @property
    def pages_per_cylinder(self) -> int:
        return self.pages_per_track * self.tracks_per_cylinder

    @property
    def capacity_pages(self) -> int:
        return self.n_cylinders * self.pages_per_cylinder

    @property
    def revolution_time(self) -> float:
        """One platter revolution in milliseconds."""
        return 60_000.0 / self.rpm

    def seek_time(self, distance: int) -> float:
        """Seek time for a cylinder distance (0 = none)."""
        if distance <= 0:
            return 0.0
        if distance < self.seek_knee:
            return self.seek_short_a + self.seek_short_b * math.sqrt(distance)
        return self.seek_long_c + self.seek_long_d * distance

    def transfer_time(self) -> float:
        """Time to stream one page under the head."""
        return self.revolution_time / self.pages_per_track

    def cylinder_of(self, page: int) -> int:
        return page // self.pages_per_cylinder


@dataclass
class DiskStats:
    """Accumulated accounting of a simulated disk."""

    busy_time: float = 0.0
    n_requests: int = 0
    n_random: int = 0
    n_sequential: int = 0
    pages_read: int = 0
    seek_time: float = 0.0
    rotation_time: float = 0.0
    transfer_time: float = 0.0


class SimulatedDisk:
    """A single-disk service-time simulator.

    Requests are synchronous page reads/writes.  A request to the page
    immediately following the previous one continues the stream (no
    seek, no rotational latency); anything else pays a distance-
    dependent seek plus expected rotational latency (half a
    revolution — the simulator is deterministic by default, or pass an
    ``rng`` for sampled latency).
    """

    def __init__(
        self,
        geometry: DiskGeometry | None = None,
        rng: np.random.Generator | None = None,
    ) -> None:
        self.geometry = geometry or DiskGeometry()
        self._rng = rng
        self._head_cylinder = 0
        self._next_sequential_page: int | None = None
        self.stats = DiskStats()

    def _rotational_latency(self) -> float:
        full = self.geometry.revolution_time
        if self._rng is None:
            return full / 2.0
        return float(self._rng.uniform(0.0, full))

    def access(self, page: int, count: int = 1) -> float:
        """Service a request for ``count`` consecutive pages at ``page``.

        Returns the service time in milliseconds and advances the head.
        """
        if not 0 <= page < self.geometry.capacity_pages:
            raise ValueError("page outside disk capacity")
        if count < 1:
            raise ValueError("count must be >= 1")
        geometry = self.geometry
        service = 0.0
        self.stats.n_requests += 1
        if page == self._next_sequential_page:
            self.stats.n_sequential += 1
        else:
            self.stats.n_random += 1
            target = geometry.cylinder_of(page)
            seek = geometry.seek_time(abs(target - self._head_cylinder))
            rotation = self._rotational_latency()
            service += seek + rotation
            self.stats.seek_time += seek
            self.stats.rotation_time += rotation
            self._head_cylinder = target
        transfer = geometry.transfer_time() * count
        # Crossing track/cylinder boundaries mid-stream is folded into
        # the per-page transfer rate (track-to-track seeks are tiny).
        service += transfer
        self.stats.transfer_time += transfer
        self.stats.pages_read += count
        self.stats.busy_time += service
        self._head_cylinder = geometry.cylinder_of(page + count - 1)
        self._next_sequential_page = page + count
        return service

    def sequential_scan(self, start_page: int, n_pages: int) -> float:
        """Read ``n_pages`` as one stream; returns total service time."""
        return self.access(start_page, n_pages)

    def random_reads(self, pages: list[int]) -> float:
        """Service a list of single-page random requests."""
        total = 0.0
        for page in pages:
            total += self.access(page)
            # Break stream detection between explicit random requests.
            self._next_sequential_page = None
        return total


def fit_two_parameter_model(
    requests: list[tuple[int, int]],
    geometry: DiskGeometry | None = None,
) -> tuple[float, float]:
    """Fit the paper's ``(d_s, d_t)`` to a simulated request trace.

    ``requests`` is a list of ``(page, count)`` tuples.  The fit solves
    the least-squares system ``time_i ~= d_s * is_random_i + d_t *
    count_i`` over the simulated per-request service times — i.e. it
    recovers the Section 3.1 two-resource disk model from the realistic
    simulation.  Returns ``(d_s, d_t)`` in milliseconds.
    """
    if not requests:
        raise ValueError("need at least one request")
    disk = SimulatedDisk(geometry)
    rows = []
    times = []
    for page, count in requests:
        random_before = disk.stats.n_random
        service = disk.access(page, count)
        was_random = disk.stats.n_random > random_before
        rows.append([1.0 if was_random else 0.0, float(count)])
        times.append(service)
    matrix = np.asarray(rows)
    solution, *_ = np.linalg.lstsq(matrix, np.asarray(times), rcond=None)
    d_s, d_t = (float(v) for v in solution)
    return d_s, d_t
