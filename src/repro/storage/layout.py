"""Storage layouts: mapping database objects to devices (Section 8.1).

A layout decides which storage device holds each *object group* — a
table's data pages, a table's indexes (the paper models all indexes of
a table as co-located, Section 8.1.2), or the temporary area used by
sorts and hash spills.  The layout induces the experiment's
:class:`~repro.core.resources.ResourceSpace`:

* a single ``cpu`` dimension;
* per device, either two dimensions (``<dev>.seek`` and ``<dev>.xfer``
  — the paper's Section 8.1.1 setup) or one *locked-ratio* dimension
  whose usage is ``seeks * d_s + pages * d_t`` at the device's base
  parameters and whose cost is a unit multiplier (the shortcut of
  Sections 8.1.2/8.1.3 that keeps ``d_s``/``d_t`` in a fixed ratio).

The three storage configurations of the paper's evaluation are exposed
as factories:

* :meth:`StorageLayout.shared_device` — everything on one disk
  (Figure 5);
* :meth:`StorageLayout.per_table_and_index` — each table's data and
  each table's index group on separate devices, plus a temp device
  (Figure 6);
* :meth:`StorageLayout.per_table_with_indexes` — one device per table
  holding the table *and* its indexes, plus temp (Figure 7).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping, Sequence

from ..core.feasible import VariationGroup
from ..core.resources import Resource, ResourceSpace
from ..core.vectors import CostVector, UsageVector
from .device import DEFAULT_SEEK_COST, DEFAULT_TRANSFER_COST, StorageDevice

__all__ = ["ObjectKey", "IOAccount", "StorageLayout", "DEFAULT_CPU_COST"]

#: DB2-style default CPU cost per instruction (paper, Section 8.1).
DEFAULT_CPU_COST = 1.0e-6

#: Object-group kinds a layout places on devices.
OBJECT_KINDS = ("table", "index", "temp")


@dataclass(frozen=True, order=True)
class ObjectKey:
    """Identity of an object group: a table's data, its indexes, or temp."""

    kind: str
    subject: str = ""

    def __post_init__(self) -> None:
        if self.kind not in OBJECT_KINDS:
            raise ValueError(f"unknown object kind {self.kind!r}")
        if self.kind == "temp" and self.subject:
            raise ValueError("temp object group has no subject")
        if self.kind != "temp" and not self.subject:
            raise ValueError(f"{self.kind} object group needs a subject")

    @classmethod
    def table(cls, name: str) -> "ObjectKey":
        return cls("table", name)

    @classmethod
    def index(cls, table: str) -> "ObjectKey":
        return cls("index", table)

    @classmethod
    def temp(cls) -> "ObjectKey":
        return cls("temp")


@dataclass
class IOAccount:
    """Abstract I/O and CPU usage of (part of) a query plan.

    Operators accumulate usage here in device-independent terms —
    seeks and pages per object group, plus CPU instructions — and the
    layout converts the account into a concrete usage vector.
    """

    io: dict[ObjectKey, tuple[float, float]] = field(default_factory=dict)
    cpu_instructions: float = 0.0

    def add_io(self, key: ObjectKey, seeks: float, pages: float) -> None:
        if seeks < 0 or pages < 0:
            raise ValueError("seeks/pages must be non-negative")
        old_seeks, old_pages = self.io.get(key, (0.0, 0.0))
        self.io[key] = (old_seeks + seeks, old_pages + pages)

    def add_cpu(self, instructions: float) -> None:
        if instructions < 0:
            raise ValueError("instructions must be non-negative")
        self.cpu_instructions += instructions

    def merge(self, other: "IOAccount") -> None:
        """Accumulate another account into this one."""
        for key, (seeks, pages) in other.io.items():
            self.add_io(key, seeks, pages)
        self.add_cpu(other.cpu_instructions)

    def scaled(self, factor: float) -> "IOAccount":
        """Account multiplied by a repetition count (e.g. NLJ probes)."""
        if factor < 0:
            raise ValueError("factor must be non-negative")
        result = IOAccount(cpu_instructions=self.cpu_instructions * factor)
        result.io = {
            key: (seeks * factor, pages * factor)
            for key, (seeks, pages) in self.io.items()
        }
        return result

    def copy(self) -> "IOAccount":
        clone = IOAccount(cpu_instructions=self.cpu_instructions)
        clone.io = dict(self.io)
        return clone

    def total_seeks(self) -> float:
        return sum(seeks for seeks, __ in self.io.values())

    def total_pages(self) -> float:
        return sum(pages for __, pages in self.io.values())


def _device_kind(
    hosted: Sequence[ObjectKey],
) -> tuple[str, str | None]:
    """Resource kind/subject tag for a device from what it hosts.

    Drives the Section 5.6 complementarity classification: a device
    holding only one table's indexes is an ``index`` dimension, one
    holding a table (possibly with its indexes, as in Figure 7) is a
    ``table`` dimension, a temp-only device is ``temp``, anything mixed
    across subjects is ``other``.
    """
    kinds = {key.kind for key in hosted}
    subjects = {key.subject for key in hosted}
    if kinds == {"temp"}:
        return "temp", None
    if len(subjects) == 1 and "temp" not in kinds:
        subject = next(iter(subjects))
        if kinds == {"index"}:
            return "index", subject
        return "table", subject
    return "other", None


class StorageLayout:
    """A mapping from object groups to devices, plus the cost space.

    Parameters
    ----------
    placement:
        Object group -> device.  Every device referenced must appear in
        ``devices``.
    devices:
        The devices, in resource-dimension order.
    split_seek_transfer:
        If True every device contributes independent seek and transfer
        dimensions; if False each device is one locked-ratio dimension.
    cpu_cost:
        Center cost of the ``cpu`` dimension (per instruction).
    """

    def __init__(
        self,
        placement: Mapping[ObjectKey, str],
        devices: Sequence[StorageDevice],
        split_seek_transfer: bool = False,
        cpu_cost: float = DEFAULT_CPU_COST,
    ) -> None:
        device_names = [device.name for device in devices]
        if len(set(device_names)) != len(device_names):
            raise ValueError("duplicate device names")
        known = set(device_names)
        for key, device_name in placement.items():
            if device_name not in known:
                raise ValueError(
                    f"object {key} placed on unknown device {device_name!r}"
                )
        if cpu_cost <= 0:
            raise ValueError("cpu_cost must be positive")
        self._placement = dict(placement)
        self._devices = list(devices)
        self._split = bool(split_seek_transfer)
        self._cpu_cost = float(cpu_cost)
        self._space = self._build_space()

    # ------------------------------------------------------------------
    # Construction of the resource space
    # ------------------------------------------------------------------
    def _hosted(self, device_name: str) -> list[ObjectKey]:
        return sorted(
            key
            for key, name in self._placement.items()
            if name == device_name
        )

    def _build_space(self) -> ResourceSpace:
        resources: list[Resource] = [Resource("cpu", kind="cpu")]
        for device in self._devices:
            hosted = self._hosted(device.name)
            kind, subject = _device_kind(hosted) if hosted else ("other", None)
            if self._split:
                seek_kind = "seek" if kind == "other" else kind
                xfer_kind = "transfer" if kind == "other" else kind
                resources.append(
                    Resource(f"{device.name}.seek", seek_kind, subject)
                )
                resources.append(
                    Resource(f"{device.name}.xfer", xfer_kind, subject)
                )
            else:
                resources.append(Resource(device.name, kind, subject))
        return ResourceSpace(tuple(resources))

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def space(self) -> ResourceSpace:
        return self._space

    @property
    def devices(self) -> tuple[StorageDevice, ...]:
        return tuple(self._devices)

    @property
    def split_seek_transfer(self) -> bool:
        return self._split

    @property
    def cpu_cost(self) -> float:
        return self._cpu_cost

    def device_of(self, key: ObjectKey) -> StorageDevice:
        try:
            name = self._placement[key]
        except KeyError:
            raise KeyError(f"object {key} has no placement") from None
        for device in self._devices:
            if device.name == name:
                return device
        raise KeyError(name)  # pragma: no cover - checked in __init__

    def placement(self) -> dict[ObjectKey, str]:
        return dict(self._placement)

    # ------------------------------------------------------------------
    # Conversions
    # ------------------------------------------------------------------
    def center_costs(self) -> CostVector:
        """The estimated cost vector ``C_0`` the optimizer starts from.

        Split dimensions carry the device's seek/transfer parameters;
        locked dimensions carry a unit multiplier (their base parameters
        are folded into usage instead, keeping ``d_s/d_t`` fixed).
        """
        values: dict[str, float] = {"cpu": self._cpu_cost}
        for device in self._devices:
            if self._split:
                values[f"{device.name}.seek"] = device.seek_cost
                values[f"{device.name}.xfer"] = device.transfer_cost
            else:
                values[device.name] = 1.0
        return CostVector(self._space, values)

    def to_usage(self, account: IOAccount) -> UsageVector:
        """Convert an abstract I/O account into a usage vector."""
        values: dict[str, float] = {"cpu": account.cpu_instructions}
        for key, (seeks, pages) in account.io.items():
            device = self.device_of(key)
            if self._split:
                seek_dim = f"{device.name}.seek"
                xfer_dim = f"{device.name}.xfer"
                values[seek_dim] = values.get(seek_dim, 0.0) + seeks
                values[xfer_dim] = values.get(xfer_dim, 0.0) + pages
            else:
                locked = (
                    seeks * device.seek_cost + pages * device.transfer_cost
                )
                values[device.name] = values.get(device.name, 0.0) + locked
        return UsageVector(self._space, values)

    def variation_groups(
        self, vary_cpu: bool = True
    ) -> tuple[VariationGroup, ...]:
        """One variation group per device (plus CPU if varied).

        In split mode a device's seek and transfer dimensions form one
        group — the paper's fixed-ratio shortcut; pass the dimensions
        through :class:`~repro.core.feasible.FeasibleRegion` with
        per-dimension groups instead if both should vary freely.
        """
        groups: list[VariationGroup] = []
        if vary_cpu:
            groups.append(VariationGroup("cpu", (self._space.index("cpu"),)))
        for device in self._devices:
            if self._split:
                indices = (
                    self._space.index(f"{device.name}.seek"),
                    self._space.index(f"{device.name}.xfer"),
                )
            else:
                indices = (self._space.index(device.name),)
            groups.append(VariationGroup(device.name, indices))
        return tuple(groups)

    def independent_groups(
        self, vary_cpu: bool = True
    ) -> tuple[VariationGroup, ...]:
        """One variation group per dimension (fully independent errors).

        This is the Section 8.1.1 regime where ``d_s`` and ``d_t`` vary
        independently of each other.
        """
        groups: list[VariationGroup] = []
        for index, resource in enumerate(self._space.resources):
            if resource.name == "cpu" and not vary_cpu:
                continue
            groups.append(VariationGroup(resource.name, (index,)))
        return tuple(groups)

    # ------------------------------------------------------------------
    # The paper's three storage configurations
    # ------------------------------------------------------------------
    @classmethod
    def shared_device(
        cls,
        tables: Iterable[str],
        seek_cost: float = DEFAULT_SEEK_COST,
        transfer_cost: float = DEFAULT_TRANSFER_COST,
        cpu_cost: float = DEFAULT_CPU_COST,
    ) -> "StorageLayout":
        """Everything on one disk; seek/transfer vary independently.

        Three effective resources — CPU, ``d_s``, ``d_t`` — matching
        the Section 8.1.1 experiment.
        """
        disk = StorageDevice("disk", seek_cost, transfer_cost)
        placement: dict[ObjectKey, str] = {ObjectKey.temp(): "disk"}
        for table in tables:
            placement[ObjectKey.table(table)] = "disk"
            placement[ObjectKey.index(table)] = "disk"
        return cls(
            placement,
            [disk],
            split_seek_transfer=True,
            cpu_cost=cpu_cost,
        )

    @classmethod
    def per_table_and_index(
        cls,
        tables: Sequence[str],
        seek_cost: float = DEFAULT_SEEK_COST,
        transfer_cost: float = DEFAULT_TRANSFER_COST,
        cpu_cost: float = DEFAULT_CPU_COST,
    ) -> "StorageLayout":
        """Each table and each table's index group on its own device.

        ``2k + 2`` effective resources for a ``k``-table query (one per
        table, one per index group, temp, CPU), with each device's
        ``d_s``/``d_t`` locked in ratio — the Section 8.1.2 experiment.
        """
        devices: list[StorageDevice] = []
        placement: dict[ObjectKey, str] = {}
        for table in tables:
            data_device = StorageDevice(
                f"dev.table.{table}", seek_cost, transfer_cost
            )
            index_device = StorageDevice(
                f"dev.index.{table}", seek_cost, transfer_cost
            )
            devices.extend([data_device, index_device])
            placement[ObjectKey.table(table)] = data_device.name
            placement[ObjectKey.index(table)] = index_device.name
        temp_device = StorageDevice("dev.temp", seek_cost, transfer_cost)
        devices.append(temp_device)
        placement[ObjectKey.temp()] = temp_device.name
        return cls(
            placement,
            devices,
            split_seek_transfer=False,
            cpu_cost=cpu_cost,
        )

    @classmethod
    def per_table_with_indexes(
        cls,
        tables: Sequence[str],
        seek_cost: float = DEFAULT_SEEK_COST,
        transfer_cost: float = DEFAULT_TRANSFER_COST,
        cpu_cost: float = DEFAULT_CPU_COST,
    ) -> "StorageLayout":
        """One device per table holding the table AND its indexes.

        ``k + 2`` effective resources — the Section 8.1.3 experiment
        that showed behaviour between Figures 5 and 6.
        """
        devices: list[StorageDevice] = []
        placement: dict[ObjectKey, str] = {}
        for table in tables:
            device = StorageDevice(
                f"dev.{table}", seek_cost, transfer_cost
            )
            devices.append(device)
            placement[ObjectKey.table(table)] = device.name
            placement[ObjectKey.index(table)] = device.name
        temp_device = StorageDevice("dev.temp", seek_cost, transfer_cost)
        devices.append(temp_device)
        placement[ObjectKey.temp()] = temp_device.name
        return cls(
            placement,
            devices,
            split_seek_transfer=False,
            cpu_cost=cpu_cost,
        )
