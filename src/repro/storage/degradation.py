"""Time-varying device degradation models (Section 1's scenarios).

The paper motivates the sensitivity study with storage costs that
"change over time due to load changes ..., device failures, RAID
rebuilds, or maintenance tasks like data backups", citing Brown &
Patterson's RAID-rebuild characterization.  This module provides
simple, composable degradation timelines that produce the
multiplicative cost factors the sensitivity framework consumes:

* :class:`RaidRebuild` — a failed disk rebuilds over a window; during
  the rebuild, foreground accesses are slowed by a factor that decays
  as the rebuild progresses (rebuild I/O competes for the arms);
* :class:`LoadSurge` — a transient load spike with ramp-up/down;
* :class:`StepDegradation` — a permanent partial failure.

A timeline maps time (seconds) to a slowdown factor >= 1 applied to a
device's seek and transfer costs.  Combined with
:func:`repro.core.switching.switching_distances`, a timeline yields
*when* during a rebuild the optimizer's plan goes stale (see
``tests/storage/test_degradation.py`` and the storage-migration
example).
"""

from __future__ import annotations

from dataclasses import dataclass

from .device import StorageDevice

__all__ = [
    "DegradationModel",
    "RaidRebuild",
    "LoadSurge",
    "StepDegradation",
    "first_crossing",
]


class DegradationModel:
    """Base class: a slowdown factor as a function of time."""

    def factor_at(self, t: float) -> float:
        """Multiplicative slowdown (>= 1) at time ``t`` seconds."""
        raise NotImplementedError

    def degraded_device(self, device: StorageDevice, t: float) -> StorageDevice:
        """The device as it effectively behaves at time ``t``."""
        return device.scaled(self.factor_at(t))


@dataclass(frozen=True)
class RaidRebuild(DegradationModel):
    """A RAID rebuild window with decaying foreground impact.

    At ``start`` the array enters degraded+rebuilding mode with a peak
    slowdown of ``peak_factor`` (reads must reconstruct from parity and
    compete with rebuild I/O); the impact decays linearly to 1 as the
    rebuild completes at ``start + duration`` — the first-order shape
    of Brown & Patterson's measurements.
    """

    start: float
    duration: float
    peak_factor: float = 10.0

    def __post_init__(self) -> None:
        if self.duration <= 0:
            raise ValueError("duration must be positive")
        if self.peak_factor < 1:
            raise ValueError("peak_factor must be >= 1")

    def factor_at(self, t: float) -> float:
        if t < self.start or t >= self.start + self.duration:
            return 1.0
        progress = (t - self.start) / self.duration
        return self.peak_factor - (self.peak_factor - 1.0) * progress


@dataclass(frozen=True)
class LoadSurge(DegradationModel):
    """A load spike: linear ramp up, plateau, linear ramp down."""

    start: float
    ramp: float
    plateau: float
    peak_factor: float = 5.0

    def __post_init__(self) -> None:
        if self.ramp < 0 or self.plateau < 0:
            raise ValueError("ramp/plateau must be non-negative")
        if self.peak_factor < 1:
            raise ValueError("peak_factor must be >= 1")

    def factor_at(self, t: float) -> float:
        rise_end = self.start + self.ramp
        fall_start = rise_end + self.plateau
        fall_end = fall_start + self.ramp
        if t < self.start or t >= fall_end:
            return 1.0
        if t < rise_end:
            if self.ramp == 0:
                return self.peak_factor
            fraction = (t - self.start) / self.ramp
            return 1.0 + (self.peak_factor - 1.0) * fraction
        if t < fall_start:
            return self.peak_factor
        if self.ramp == 0:  # pragma: no cover - excluded by fall_end
            return 1.0
        fraction = (t - fall_start) / self.ramp
        return self.peak_factor - (self.peak_factor - 1.0) * fraction


@dataclass(frozen=True)
class StepDegradation(DegradationModel):
    """A permanent slowdown from ``start`` on (partial failure)."""

    start: float
    factor: float

    def __post_init__(self) -> None:
        if self.factor < 1:
            raise ValueError("factor must be >= 1")

    def factor_at(self, t: float) -> float:
        return self.factor if t >= self.start else 1.0


def first_crossing(
    model: DegradationModel,
    threshold: float,
    t_max: float,
    resolution: int = 1000,
) -> float | None:
    """First time the slowdown reaches ``threshold`` (scan-based).

    Feed a plan's switching threshold (robustness radius) in and get
    back the moment the optimizer's plan goes stale — ``None`` if the
    timeline never reaches it before ``t_max``.
    """
    if threshold <= 1.0:
        return 0.0
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    step = t_max / resolution
    for index in range(resolution + 1):
        t = index * step
        if model.factor_at(t) >= threshold:
            return t
    return None
