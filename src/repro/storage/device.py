"""Storage devices under the two-parameter cost model (Section 3.1).

The paper models a disk ``d`` as two resources: ``d_s`` for queueing,
rotational delay and seeks, and ``d_t`` for sequential transfer.  An
operation with ``s`` seeks and ``p`` pages transferred costs
``s * c_ds + p * c_dt``.  DB2's defaults — the values the paper's
"administrator who never tuned anything" scenario starts from — are
24.1 time units per seek and 9.0 per page.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "DEFAULT_SEEK_COST",
    "DEFAULT_TRANSFER_COST",
    "StorageDevice",
    "DeviceCatalog",
]

#: DB2's default seek-ish overhead parameter (the paper, Section 8.1).
DEFAULT_SEEK_COST = 24.1

#: DB2's default per-page transfer parameter (the paper, Section 8.1).
DEFAULT_TRANSFER_COST = 9.0


@dataclass(frozen=True)
class StorageDevice:
    """One storage device with seek and transfer unit costs.

    ``seek_cost``/``transfer_cost`` are the *estimated* (configured)
    parameters; the sensitivity experiments vary the true values around
    them.
    """

    name: str
    seek_cost: float = DEFAULT_SEEK_COST
    transfer_cost: float = DEFAULT_TRANSFER_COST

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("device name must be non-empty")
        if self.seek_cost <= 0 or self.transfer_cost <= 0:
            raise ValueError("device cost parameters must be positive")

    def access_cost(self, seeks: float, pages: float) -> float:
        """Cost of an operation with ``seeks`` seeks, ``pages`` pages.

        The example from Section 3.1: 2 seeks + 3 pages costs
        ``2 * c_ds + 3 * c_dt``.
        """
        if seeks < 0 or pages < 0:
            raise ValueError("seeks and pages must be non-negative")
        return seeks * self.seek_cost + pages * self.transfer_cost

    def scaled(self, factor: float) -> "StorageDevice":
        """Device with both parameters scaled (load change / failure)."""
        if factor <= 0:
            raise ValueError("scale factor must be positive")
        return StorageDevice(
            name=self.name,
            seek_cost=self.seek_cost * factor,
            transfer_cost=self.transfer_cost * factor,
        )


@dataclass
class DeviceCatalog:
    """A named collection of storage devices."""

    _devices: dict[str, StorageDevice] = field(default_factory=dict)

    def add(self, device: StorageDevice) -> StorageDevice:
        if device.name in self._devices:
            raise ValueError(f"device {device.name!r} already registered")
        self._devices[device.name] = device
        return device

    def get(self, name: str) -> StorageDevice:
        try:
            return self._devices[name]
        except KeyError:
            raise KeyError(f"unknown device {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._devices

    def __iter__(self) -> Iterator[StorageDevice]:
        return iter(self._devices.values())

    def __len__(self) -> int:
        return len(self._devices)

    def names(self) -> tuple[str, ...]:
        return tuple(self._devices)
