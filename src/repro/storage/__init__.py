"""Storage substrate: devices, layouts and a disk simulator.

The two-parameter device model (:class:`StorageDevice`) is the paper's
Section 3.1 disk abstraction; :class:`StorageLayout` maps database
object groups onto devices and induces the experiment's resource space;
:mod:`repro.storage.disksim` provides the realistic disk model the
two-parameter abstraction is validated against.
"""

from .degradation import (
    DegradationModel,
    LoadSurge,
    RaidRebuild,
    StepDegradation,
    first_crossing,
)
from .device import (
    DEFAULT_SEEK_COST,
    DEFAULT_TRANSFER_COST,
    DeviceCatalog,
    StorageDevice,
)
from .disksim import (
    DiskGeometry,
    DiskStats,
    SimulatedDisk,
    fit_two_parameter_model,
)
from .layout import DEFAULT_CPU_COST, IOAccount, ObjectKey, StorageLayout

__all__ = [
    "DEFAULT_CPU_COST",
    "DEFAULT_SEEK_COST",
    "DEFAULT_TRANSFER_COST",
    "DegradationModel",
    "DeviceCatalog",
    "DiskGeometry",
    "DiskStats",
    "LoadSurge",
    "RaidRebuild",
    "StepDegradation",
    "IOAccount",
    "ObjectKey",
    "SimulatedDisk",
    "StorageDevice",
    "StorageLayout",
    "first_crossing",
    "fit_two_parameter_model",
]
