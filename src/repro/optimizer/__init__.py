"""A from-scratch Selinger-style cost-based query optimizer.

This is the substrate standing in for the commercial optimizer the
paper characterised.  It satisfies the paper's Section 7.1 contract —
linear additive cost model, user-settable resource costs, and a narrow
interface reporting plan identity plus estimated total cost — while
additionally exposing white-box parametric optimization
(:func:`candidate_plans`) for validating the paper's black-box
extraction algorithms.
"""

from .blackbox import CandidateBackedBlackBox, OptimizerBlackBox
from .config import DEFAULT_PARAMETERS, SystemParameters
from .dp import (
    CostedPlan,
    ParetoPruner,
    PlanEnumerator,
    ScalarPruner,
    enumerate_root_plans,
    optimize_scalar,
)
from .operators import CostModel, yao_pages
from .parametric import CandidateSet, candidate_plans
from .plans import (
    AggregateNode,
    HashJoinNode,
    IndexProbeNode,
    IndexScanNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    TableScanNode,
)
from .query import JoinPredicate, LocalPredicate, QuerySpec, TableRef
from .selectivity import CardinalityModel

__all__ = [
    "AggregateNode",
    "CandidateBackedBlackBox",
    "CandidateSet",
    "CardinalityModel",
    "CostModel",
    "CostedPlan",
    "DEFAULT_PARAMETERS",
    "HashJoinNode",
    "IndexProbeNode",
    "IndexScanNode",
    "JoinPredicate",
    "LocalPredicate",
    "MergeJoinNode",
    "NestedLoopJoinNode",
    "OptimizerBlackBox",
    "ParetoPruner",
    "PlanEnumerator",
    "PlanNode",
    "QuerySpec",
    "ScalarPruner",
    "SortNode",
    "SystemParameters",
    "TableRef",
    "TableScanNode",
    "candidate_plans",
    "enumerate_root_plans",
    "optimize_scalar",
    "yao_pages",
]
