"""Structured query specifications consumed by the optimizer.

The optimizer does not parse SQL; it consumes a :class:`QuerySpec` — a
join graph with selectivities, which is exactly the information that
determines plan choice under the paper's assumptions (Section 3.3: the
optimizer's selectivity and cardinality estimates are taken to be
accurate; only resource *costs* are in question).

A :class:`QuerySpec` supports self-joins through aliases, local
predicates with optional sargable columns (enabling index access
paths), equi-join edges with optional explicit selectivities, and
GROUP BY / ORDER BY clauses that force aggregation and sort operators
into the plan.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

import networkx as nx

__all__ = ["TableRef", "LocalPredicate", "JoinPredicate", "QuerySpec"]


@dataclass(frozen=True)
class TableRef:
    """A table reference with an alias (supports self-joins)."""

    alias: str
    table: str

    def __post_init__(self) -> None:
        if not self.alias or not self.table:
            raise ValueError("alias and table must be non-empty")


@dataclass(frozen=True)
class LocalPredicate:
    """A single-table predicate with a known selectivity.

    ``column`` names the sargable column when the predicate is a
    range/equality on one column (making matching indexes usable);
    ``None`` marks residual predicates (LIKE on the middle of a string,
    expressions over two columns, flattened-subquery filters) that can
    only be applied after rows are fetched.
    """

    alias: str
    selectivity: float
    column: str | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if not 0.0 < self.selectivity <= 1.0:
            raise ValueError(
                f"selectivity must be in (0, 1], got {self.selectivity}"
            )

    @property
    def sargable(self) -> bool:
        return self.column is not None


@dataclass(frozen=True)
class JoinPredicate:
    """An equi-join edge between two aliases.

    ``selectivity`` overrides the default ``1 / max(distinct values)``
    estimate when given (used for flattened subqueries and semi-joins
    whose selectivities the standard formula does not capture).
    """

    left_alias: str
    left_column: str
    right_alias: str
    right_column: str
    selectivity: float | None = None

    def __post_init__(self) -> None:
        if self.left_alias == self.right_alias:
            raise ValueError("join edge must connect two different aliases")
        if self.selectivity is not None and not 0.0 < self.selectivity <= 1.0:
            raise ValueError("join selectivity must be in (0, 1]")

    def aliases(self) -> frozenset[str]:
        return frozenset((self.left_alias, self.right_alias))

    def column_for(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.left_column
        if alias == self.right_alias:
            return self.right_column
        raise KeyError(f"alias {alias!r} not part of this join edge")

    def other(self, alias: str) -> str:
        if alias == self.left_alias:
            return self.right_alias
        if alias == self.right_alias:
            return self.left_alias
        raise KeyError(f"alias {alias!r} not part of this join edge")


@dataclass(frozen=True)
class QuerySpec:
    """A complete query: join graph, predicates, and output clauses."""

    name: str
    tables: tuple[TableRef, ...]
    joins: tuple[JoinPredicate, ...] = ()
    predicates: tuple[LocalPredicate, ...] = ()
    group_by: tuple[tuple[str, str], ...] = ()
    order_by: tuple[tuple[str, str], ...] = ()
    #: Bytes each alias contributes to intermediate tuples (defaults to
    #: a quarter of the row width, clamped to [8, 64], in the
    #: cardinality model).
    carried_width: Mapping[str, int] = field(default_factory=dict)
    description: str = ""

    def __post_init__(self) -> None:
        if not self.tables:
            raise ValueError("query must reference at least one table")
        aliases = [ref.alias for ref in self.tables]
        if len(set(aliases)) != len(aliases):
            raise ValueError(f"duplicate aliases in query {self.name}")
        known = set(aliases)
        for join in self.joins:
            for alias in join.aliases():
                if alias not in known:
                    raise ValueError(
                        f"join references unknown alias {alias!r} "
                        f"in query {self.name}"
                    )
        for predicate in self.predicates:
            if predicate.alias not in known:
                raise ValueError(
                    f"predicate references unknown alias "
                    f"{predicate.alias!r} in query {self.name}"
                )
        for alias, __ in tuple(self.group_by) + tuple(self.order_by):
            if alias not in known:
                raise ValueError(
                    f"group/order clause references unknown alias {alias!r}"
                )

    # ------------------------------------------------------------------
    # Accessors
    # ------------------------------------------------------------------
    @property
    def aliases(self) -> tuple[str, ...]:
        return tuple(ref.alias for ref in self.tables)

    def table_of(self, alias: str) -> str:
        for ref in self.tables:
            if ref.alias == alias:
                return ref.table
        raise KeyError(f"unknown alias {alias!r}")

    def table_names(self) -> tuple[str, ...]:
        """Distinct underlying tables, in first-reference order."""
        seen: dict[str, None] = {}
        for ref in self.tables:
            seen.setdefault(ref.table)
        return tuple(seen)

    def predicates_for(self, alias: str) -> tuple[LocalPredicate, ...]:
        return tuple(p for p in self.predicates if p.alias == alias)

    def joins_between(
        self, left: Iterable[str], right: Iterable[str]
    ) -> tuple[JoinPredicate, ...]:
        """Edges with one endpoint in ``left`` and the other in ``right``."""
        left_set, right_set = set(left), set(right)
        result = []
        for join in self.joins:
            a, b = join.left_alias, join.right_alias
            if (a in left_set and b in right_set) or (
                a in right_set and b in left_set
            ):
                result.append(join)
        return tuple(result)

    def joins_within(self, aliases: Iterable[str]) -> tuple[JoinPredicate, ...]:
        """Edges with both endpoints inside ``aliases``."""
        subset = set(aliases)
        return tuple(
            join for join in self.joins if join.aliases() <= subset
        )

    # ------------------------------------------------------------------
    # Join graph
    # ------------------------------------------------------------------
    def join_graph(self) -> nx.Graph:
        """The query's join graph (aliases as nodes)."""
        graph = nx.Graph()
        graph.add_nodes_from(self.aliases)
        for join in self.joins:
            graph.add_edge(join.left_alias, join.right_alias)
        return graph

    def is_connected(self) -> bool:
        """True if the join graph has no cross products."""
        graph = self.join_graph()
        return nx.is_connected(graph) if len(graph) else False

    def neighbors_of_set(self, aliases: Iterable[str]) -> tuple[str, ...]:
        """Aliases joinable to the set without a cross product."""
        subset = set(aliases)
        graph = self.join_graph()
        neighbors: dict[str, None] = {}
        for alias in self.aliases:
            if alias in subset:
                continue
            if any(neighbor in subset for neighbor in graph.neighbors(alias)):
                neighbors.setdefault(alias)
        return tuple(neighbors)

    @property
    def has_aggregation(self) -> bool:
        return bool(self.group_by)

    @property
    def has_final_sort(self) -> bool:
        return bool(self.order_by)
