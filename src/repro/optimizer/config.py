"""System parameters of the optimizer under test (Section 7.3).

The paper duplicated the DB2 environment variables and database
parameters from the "Tunable System Parameters" section of IBM's TPC-H
Full Disclosure Report, and used ``db2fopt`` to make the optimizer see
a 2.5 GB buffer pool and a 512 MB sort heap.  :class:`SystemParameters`
mirrors that table verbatim, plus the CPU constants our cost formulas
need (DB2's are not public; ours are documented magic numbers in the
same spirit).
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["SystemParameters", "DEFAULT_PARAMETERS"]


@dataclass(frozen=True)
class SystemParameters:
    """Tunable parameters affecting plan choice and plan cost.

    The first block reproduces the paper's Section 7.3 table; the
    second holds the cost-model constants of our optimizer substrate.
    """

    # --- the paper's Section 7.3 table ---------------------------------
    extended_optimization: bool = True     # DB2_EXTENDED_OPTIMIZATION
    antijoin: bool = True                  # DB2_ANTIJOIN
    correlated_predicates: bool = True     # DB2_CORRELATED_PREDICATES
    new_corr_sq_ff: bool = True            # DB2_NEW_CORR_SQ_FF
    vector_io: bool = True                 # DB2_VECTOR
    hash_join: bool = True                 # DB2_HASH_JOIN
    binsort: bool = True                   # DB2_BINSORT
    intra_parallel: bool = True            # INTRA_PARALLEL
    federated: bool = False                # FEDERATED
    dft_degree: int = 32                   # DFT_DEGREE
    avg_appls: int = 1                     # AVG_APPLS
    locklist: int = 16384                  # LOCKLIST
    dft_queryopt: int = 7                  # DFT_QUERYOPT
    opt_buffpage: int = 640_000            # OPT_BUFFPAGE (4 KB pages)
    opt_sortheap: int = 128_000            # OPT_SORTHEAP (4 KB pages)

    # --- cost-model constants ------------------------------------------
    page_size: int = 4096
    #: Pages fetched per sequential-prefetch burst (one "seek" pays for
    #: this many sequentially transferred pages).
    prefetch_extent: int = 32
    #: CPU instructions to produce/consume one tuple.
    cpu_per_tuple: float = 1_000.0
    #: CPU instructions to evaluate one predicate on one tuple.
    cpu_per_predicate: float = 200.0
    #: CPU instructions to hash/probe one tuple in a hash join.
    cpu_per_hash: float = 500.0
    #: CPU instructions per comparison in a sort.
    cpu_per_compare: float = 150.0
    #: Index B-tree levels assumed pinned in the buffer pool during
    #: repeated probes (root + first intermediate level).
    cached_index_levels: int = 2
    #: Fraction of the buffer pool one object may monopolise before we
    #: stop assuming it stays resident across repeated accesses.
    bufferpool_residency_fraction: float = 0.8
    #: Merge fan-in of external sort (runs merged per pass).
    sort_merge_fanin: int = 64

    def __post_init__(self) -> None:
        if self.opt_buffpage <= 0 or self.opt_sortheap <= 0:
            raise ValueError("buffer pool and sort heap must be positive")
        if self.prefetch_extent < 1:
            raise ValueError("prefetch_extent must be >= 1")
        if self.sort_merge_fanin < 2:
            raise ValueError("sort_merge_fanin must be >= 2")

    # ------------------------------------------------------------------
    @property
    def bufferpool_bytes(self) -> int:
        """Buffer pool size in bytes (2.5 GB at the paper's settings)."""
        return self.opt_buffpage * self.page_size

    @property
    def sortheap_bytes(self) -> int:
        """Sort heap size in bytes (512 MB at the paper's settings)."""
        return self.opt_sortheap * self.page_size

    @property
    def sortheap_pages(self) -> int:
        return self.opt_sortheap

    def bufferpool_resident_pages(self) -> int:
        """Pages of one object assumed to stay cached under reuse."""
        return int(self.opt_buffpage * self.bufferpool_residency_fraction)

    def as_db2_table(self) -> list[tuple[str, str]]:
        """Render the Section 7.3 parameter table of the paper."""

        def yn(value: bool) -> str:
            return "Y" if value else "N"

        def yesno(value: bool) -> str:
            return "YES" if value else "NO"

        return [
            ("DB2_EXTENDED_OPTIMIZATION", yesno(self.extended_optimization)),
            ("DB2_ANTIJOIN", yn(self.antijoin)),
            ("DB2_CORRELATED_PREDICATES", yn(self.correlated_predicates)),
            ("DB2_NEW_CORR_SQ_FF", yn(self.new_corr_sq_ff)),
            ("DB2_VECTOR", yn(self.vector_io)),
            ("DB2_HASH_JOIN", yn(self.hash_join)),
            ("DB2_BINSORT", yn(self.binsort)),
            ("INTRA_PARALLEL", yesno(self.intra_parallel)),
            ("FEDERATED", yesno(self.federated)),
            ("DFT_DEGREE", str(self.dft_degree)),
            ("AVG_APPLS", str(self.avg_appls)),
            ("LOCKLIST", str(self.locklist)),
            ("DFT_QUERYOPT", str(self.dft_queryopt)),
            ("OPT_BUFFPAGE", str(self.opt_buffpage)),
            ("OPT_SORTHEAP", str(self.opt_sortheap)),
        ]


#: The paper's configuration (FDR values).
DEFAULT_PARAMETERS = SystemParameters()
