"""The optimizer behind the paper's narrow interface (Section 7.1).

Two implementations of :class:`repro.core.blackbox.BlackBoxOptimizer`:

* :class:`OptimizerBlackBox` — honest: every ``optimize(C)`` call runs
  the full scalar dynamic program, exactly like re-invoking DB2 with
  new ``db2fopt`` cost settings.  Slow but faithful; its batch entry
  point is necessarily a loop (every probe re-plans the query).
* :class:`CandidateBackedBlackBox` — fast: answers from a precomputed
  candidate plan set.  Because the candidate set contains every plan
  that can be optimal over the region, the answers are identical to the
  honest box within that region; large sweeps use this one.  The
  candidate usage vectors are stacked into one cached ``(m, n)``
  matrix, so a whole batch of cost vectors is answered with a single
  ``C @ U.T`` matrix product plus a row-wise argmin instead of a
  Python loop over plans per call.

Both report only ``(plan signature, estimated total cost)`` — usage
vectors stay hidden, which is the entire point of the paper's
extraction algorithms.
"""

from __future__ import annotations

import numpy as np

from ..catalog.statistics import Catalog
from ..core.blackbox import PlanChoice, as_cost_matrix
from ..core.vectors import CostVector
from ..obs.decisions import DECISIONS
from ..obs.metrics import METRICS
from ..storage.layout import StorageLayout
from .config import SystemParameters
from .dp import optimize_scalar
from .parametric import CandidateSet
from .query import QuerySpec

__all__ = ["OptimizerBlackBox", "CandidateBackedBlackBox"]


class OptimizerBlackBox:
    """Runs the scalar DP on every call (the faithful black box)."""

    def __init__(
        self,
        query: QuerySpec,
        catalog: Catalog,
        params: SystemParameters,
        layout: StorageLayout,
    ) -> None:
        self._query = query
        self._catalog = catalog
        self._params = params
        self._layout = layout
        self._space = layout.center_costs().space
        self.call_count = 0

    @property
    def query(self) -> QuerySpec:
        return self._query

    def optimize(self, cost: CostVector) -> PlanChoice:
        self.call_count += 1
        METRICS.counter("blackbox.dp_calls").inc()
        plan = optimize_scalar(
            self._query, self._catalog, self._params, self._layout, cost
        )
        return PlanChoice(
            signature=plan.signature, total_cost=plan.usage.dot(cost)
        )

    def optimize_batch(self, costs) -> list[PlanChoice]:
        """One full DP run per row — nothing to vectorise here."""
        matrix = as_cost_matrix(self._space, costs)
        return [
            self.optimize(CostVector(self._space, row)) for row in matrix
        ]


class CandidateBackedBlackBox:
    """Answers from a precomputed candidate set (fast, region-exact).

    Outside the candidate set's region the answers may be stale — the
    constructor cannot check that, so callers must keep queries inside
    the region the set was computed for.
    """

    def __init__(self, candidates: CandidateSet) -> None:
        if not candidates.plans:
            raise ValueError("candidate set is empty")
        self._candidates = candidates
        self._space = candidates.region.space
        self._matrix = candidates.usage_matrix
        self._signatures = candidates.signatures
        self.call_count = 0

    @property
    def candidates(self) -> CandidateSet:
        return self._candidates

    def usage_of(self, signature: str):
        """Ground-truth usage (validation only, not the narrow API)."""
        for plan in self._candidates.plans:
            if plan.signature == signature:
                return plan.usage
        raise KeyError(signature)

    def _plan_index(self):
        """The candidate set's shared index, or None while inert."""
        index = self._candidates.plan_index()
        return index if index.active else None

    def optimize(self, cost: CostVector) -> PlanChoice:
        self.call_count += 1
        METRICS.counter("blackbox.candidate_calls").inc()
        self._space.require_same(cost.space)
        if DECISIONS.enabled:
            # Dense capture: margins need every rival's total, which
            # the index prunes; the chosen plan is identical.
            totals = self._matrix @ cost.values
            index = int(np.argmin(totals))
            DECISIONS.observe_one(
                self._matrix, cost.values, totals, index,
                path=(
                    "dense" if self._plan_index() is None
                    else "dense_capture"
                ),
            )
        else:
            index_struct = self._plan_index()
            if index_struct is not None:
                index = index_struct.owner(cost.values)
            else:
                totals = self._matrix @ cost.values
                index = int(np.argmin(totals))
        return PlanChoice(
            signature=self._signatures[index],
            total_cost=float(self._matrix[index] @ cost.values),
        )

    def optimize_batch(self, costs) -> list[PlanChoice]:
        """Whole batch in one ``C @ U.T`` against the cached matrix —
        or one sublinear point-location pass once the candidate count
        crosses the :class:`~repro.core.planindex.PlanIndex` threshold.

        The reported totals are recomputed as per-plan dot products so
        they match :meth:`optimize` bitwise for the same chosen plan.
        """
        matrix = as_cost_matrix(self._space, costs)
        self.call_count += len(matrix)
        METRICS.counter("blackbox.candidate_calls").inc(len(matrix))
        if not len(matrix):
            return []
        if DECISIONS.enabled:
            with np.errstate(invalid="ignore"):
                totals = matrix @ self._matrix.T
                indices = np.argmin(totals, axis=1)
            DECISIONS.observe_batch(
                self._matrix, matrix, totals, indices,
                path=(
                    "dense" if self._plan_index() is None
                    else "dense_capture"
                ),
            )
        else:
            index_struct = self._plan_index()
            if index_struct is not None:
                indices = index_struct.owner_batch(matrix)
            else:
                totals = matrix @ self._matrix.T
                indices = np.argmin(totals, axis=1)
        return [
            PlanChoice(
                signature=self._signatures[index],
                total_cost=float(self._matrix[index] @ row),
            )
            for index, row in zip(indices, matrix)
        ]
