"""Selectivity and cardinality estimation.

Implements the classic System-R estimation rules on top of the catalog
statistics.  The paper assumes these estimates are *accurate*
(Section 3.3) — the sensitivity study isolates storage-cost error from
selectivity error — so the same model is shared by the optimizer's DP,
the cost formulas, and the executor validation.

Rules:

* local predicate selectivities are taken from the query spec (our
  TPC-H encodings carry spec-derived values);
* an equi-join edge defaults to ``1 / max(V(left), V(right))`` where
  ``V`` is the column's distinct count;
* conjunction = product (independence), applied to all edges whose
  endpoints fall inside a subset (so cyclic join graphs like TPC-H Q5's
  customer-supplier nation edge are handled);
* group counts are capped by the product of grouping-column distincts.
"""

from __future__ import annotations

from typing import Iterable

from ..catalog.statistics import Catalog
from .query import JoinPredicate, QuerySpec

__all__ = ["CardinalityModel"]

#: Carried-width clamp for intermediate tuples (bytes).
_MIN_CARRIED = 8
_MAX_CARRIED = 64


class CardinalityModel:
    """Cached cardinality estimates for one query over one catalog."""

    def __init__(self, query: QuerySpec, catalog: Catalog) -> None:
        for ref in query.tables:
            catalog.table(ref.table)  # validate early
        self._query = query
        self._catalog = catalog
        self._subset_cache: dict[frozenset[str], float] = {}

    @property
    def query(self) -> QuerySpec:
        return self._query

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    # ------------------------------------------------------------------
    # Base-table quantities
    # ------------------------------------------------------------------
    def base_rows(self, alias: str) -> float:
        """Unfiltered cardinality of the alias's table."""
        return float(self._catalog.row_count(self._query.table_of(alias)))

    def local_selectivity(self, alias: str) -> float:
        """Product of all local predicate selectivities on ``alias``."""
        selectivity = 1.0
        for predicate in self._query.predicates_for(alias):
            selectivity *= predicate.selectivity
        return selectivity

    def filtered_rows(self, alias: str) -> float:
        """Rows of ``alias`` surviving its local predicates."""
        return max(1.0, self.base_rows(alias) * self.local_selectivity(alias))

    def carried_width(self, alias: str) -> int:
        """Bytes ``alias`` contributes to intermediate tuples."""
        explicit = self._query.carried_width.get(alias)
        if explicit is not None:
            return int(explicit)
        table = self._catalog.table(self._query.table_of(alias))
        quarter = table.row_width // 4
        return max(_MIN_CARRIED, min(_MAX_CARRIED, quarter))

    def tuple_width(self, aliases: Iterable[str]) -> int:
        """Width of an intermediate tuple over ``aliases``."""
        return sum(self.carried_width(alias) for alias in aliases)

    # ------------------------------------------------------------------
    # Join quantities
    # ------------------------------------------------------------------
    def join_selectivity(self, join: JoinPredicate) -> float:
        """Selectivity of one equi-join edge.

        Explicit spec selectivities win; otherwise the System-R
        ``1 / max(V_left, V_right)`` rule applies.
        """
        if join.selectivity is not None:
            return join.selectivity
        left_table = self._query.table_of(join.left_alias)
        right_table = self._query.table_of(join.right_alias)
        v_left = self._catalog.distinct_values(left_table, join.left_column)
        v_right = self._catalog.distinct_values(
            right_table, join.right_column
        )
        return 1.0 / max(v_left, v_right, 1.0)

    def join_rows(self, aliases: Iterable[str]) -> float:
        """Cardinality of the join over a subset of aliases.

        ``prod(filtered base rows) * prod(edge selectivities within the
        subset)``, floored at one row.  Cached per subset.
        """
        subset = frozenset(aliases)
        if not subset:
            raise ValueError("subset must be non-empty")
        cached = self._subset_cache.get(subset)
        if cached is not None:
            return cached
        rows = 1.0
        # Sorted, not set order: float multiplication is not
        # associative, and hash-randomized iteration would make the
        # product wobble in the last ulp between processes.
        for alias in sorted(subset):
            rows *= self.filtered_rows(alias)
        for join in self._query.joins_within(subset):
            rows *= self.join_selectivity(join)
        rows = max(1.0, rows)
        self._subset_cache[subset] = rows
        return rows

    def matches_per_probe(
        self, outer: Iterable[str], inner_alias: str
    ) -> float:
        """Expected inner matches per outer tuple in a nested-loop join.

        ``join_rows(outer + inner) / join_rows(outer)`` — the standard
        identity; floors at zero rather than one so highly selective
        joins keep their sub-1 match rates.
        """
        outer_set = frozenset(outer)
        combined = self.join_rows(outer_set | {inner_alias})
        outer_rows = self.join_rows(outer_set)
        if outer_rows <= 0:
            return 0.0
        return combined / outer_rows

    # ------------------------------------------------------------------
    # Output clauses
    # ------------------------------------------------------------------
    def group_count(self) -> float:
        """Estimated number of groups of the query's GROUP BY."""
        query = self._query
        if not query.group_by:
            return 1.0
        total_rows = self.join_rows(query.aliases)
        distinct_product = 1.0
        for alias, column in query.group_by:
            table = query.table_of(alias)
            distinct_product *= self._catalog.distinct_values(table, column)
        return max(1.0, min(total_rows, distinct_product))

    def output_rows(self) -> float:
        """Final result cardinality (after grouping if present)."""
        if self._query.group_by:
            return self.group_count()
        return self.join_rows(self._query.aliases)
