"""Exact candidate-optimal plan sets (white-box parametric optimization).

The paper had to *reverse-engineer* candidate plans and usage vectors
through DB2's narrow interface (Sections 6.1.1 and 6.2.1).  Our
optimizer is white-box, so the candidate set can be computed exactly:

1. run the parametric DP (:func:`repro.optimizer.dp.enumerate_root_plans`)
   to get the root Pareto set — a superset of every possibly-optimal
   plan for any positive cost vector;
2. LP-filter that set against the experiment's feasible cost region
   (:func:`repro.core.candidates.candidate_optimal_indices`).

The result doubles as the validation oracle for the black-box
algorithms: discovery must find exactly these signatures, and the
least-squares estimates must match these usage vectors.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field

import numpy as np

from ..catalog.statistics import Catalog
from ..core.candidates import candidate_optimal_indices
from ..core.feasible import FeasibleRegion
from ..core.planindex import PlanIndex
from ..core.vectors import CostVector, UsageVector
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..storage.layout import StorageLayout
from .config import SystemParameters
from .dp import CostedPlan, enumerate_root_plans
from .query import QuerySpec

__all__ = ["CandidateSet", "candidate_plans"]

logger = logging.getLogger(__name__)


@dataclass
class CandidateSet:
    """The candidate optimal plans of one query over one region."""

    query_name: str
    plans: list[CostedPlan]
    region: FeasibleRegion
    #: True if the DP hit its per-cell cap, i.e. the set may be missing
    #: plans (reported, never silently ignored).
    truncated: bool
    #: Lazily stacked ``(m, n)`` usage matrix shared by every consumer
    #: that sweeps the set (black boxes, Monte-Carlo, argmin below).
    _matrix: "np.ndarray | None" = field(
        default=None, init=False, repr=False, compare=False
    )
    #: Lazily built point-location index over the same matrix.
    _index: "PlanIndex | None" = field(
        default=None, init=False, repr=False, compare=False
    )

    @property
    def usages(self) -> list[UsageVector]:
        return [plan.usage for plan in self.plans]

    @property
    def signatures(self) -> tuple[str, ...]:
        return tuple(plan.signature for plan in self.plans)

    @property
    def usage_matrix(self) -> np.ndarray:
        """The plans' usage vectors stacked into an ``(m, n)`` matrix."""
        if self._matrix is None:
            self._matrix = np.vstack(
                [plan.usage.values for plan in self.plans]
            )
        return self._matrix

    def plan_index(self) -> PlanIndex:
        """Point-location index over :attr:`usage_matrix` (lazy, shared).

        Inert below the activation threshold — consumers must check
        :attr:`~repro.core.planindex.PlanIndex.active` and keep using
        the dense kernel otherwise.
        """
        if self._index is None:
            self._index = PlanIndex(self.usage_matrix, self.region)
        return self._index

    def initial_plan_index(self, center: CostVector | None = None) -> int:
        """Index of the plan optimal at the region center (``C_0``).

        Single vectorised ``U @ C`` + argmin; ``np.argmin`` returns the
        first minimum, preserving the lowest-index tie-break.
        """
        cost = center or self.region.center
        return int(np.argmin(self.usage_matrix @ cost.values))

    def __len__(self) -> int:
        return len(self.plans)

    def __iter__(self):
        return iter(self.plans)


def _deduplicate(plans: list[CostedPlan]) -> list[CostedPlan]:
    """Collapse plans with identical signatures or identical usage.

    Different orders can leave the same plan twice in the root set;
    plans with equal usage vectors are interchangeable for the
    geometric analysis, so the first is kept.  A plan survives iff it
    is the first occurrence of both its signature and its usage row,
    found with two vectorised ``np.unique`` passes over the stacked
    usage matrix and signature array instead of a per-plan scan.
    """
    if not plans:
        return []
    matrix = np.vstack([plan.usage.values for plan in plans])
    __, first_usage = np.unique(matrix, axis=0, return_index=True)
    signatures = np.asarray([plan.signature for plan in plans])
    __, first_signature = np.unique(signatures, return_index=True)
    keep = np.intersect1d(first_usage, first_signature)
    return [plans[i] for i in keep]


def candidate_plans(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    layout: StorageLayout,
    region: FeasibleRegion,
    cell_cap: int | None = 64,
    exact_lp: bool = False,
) -> CandidateSet:
    """Compute the candidate optimal plan set for one experiment cell.

    ``region`` carries both the feasible box (``delta``) and the
    variation-group structure (which dimensions move together), so the
    same function serves all three storage configurations of
    Section 8.1.
    """
    with span(
        "parametric.candidate_plans", query=query.name
    ) as current:
        root_plans, truncated = enumerate_root_plans(
            query, catalog, params, layout, cell_cap=cell_cap
        )
        root_plans = _deduplicate(root_plans)
        usages = [plan.usage for plan in root_plans]
        indices = candidate_optimal_indices(
            usages, region, exact=exact_lp
        )
        chosen = [root_plans[i] for i in indices]
        current.set(
            root_plans=len(root_plans),
            candidates=len(chosen),
            truncated=truncated,
        )
    METRICS.counter("parametric.candidate_sets").inc()
    METRICS.counter("parametric.root_plans").inc(len(root_plans))
    METRICS.counter("parametric.candidates").inc(len(chosen))
    if truncated:
        logger.debug(
            "%s: root Pareto set hit the %s-cell cap; candidate set "
            "is a lower bound", query.name, cell_cap,
        )
    logger.debug(
        "%s: %d root plans -> %d candidates over delta=%g",
        query.name, len(root_plans), len(chosen), region.delta,
    )
    return CandidateSet(
        query_name=query.name,
        plans=chosen,
        region=region,
        truncated=truncated,
    )
