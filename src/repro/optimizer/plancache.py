"""Content-addressed on-disk cache for candidate plan sets.

Computing a candidate set runs the parametric DP plus LP filtering —
seconds per query — and the figure/diagram/validation pipelines
recompute identical sets on every invocation.  This module keys each
:class:`~repro.optimizer.parametric.CandidateSet` by a SHA-256 digest
of everything that determines it:

* the query name and the storage scenario key,
* the feasible region's error level ``delta``,
* every field of :class:`~repro.optimizer.config.SystemParameters`,
* the DP cell cap and the full catalog statistics (so changing the
  TPC-H scale factor, or any table/index statistic, changes the key),
* the package version and a cache format version (a code upgrade never
  resurrects results written by an older cost model).

Layout under the cache root: ``<root>/<first two hex chars>/<digest>.pkl``
(one pickle per candidate set, fanned out to keep directories small).
Writes are atomic (temp file + ``os.replace``), so concurrent figure
workers can share one cache directory; corrupt or unreadable entries
are treated as misses and recomputed.

The cache directory defaults to ``.repro-cache`` in the working
directory and can be redirected with the ``REPRO_CACHE_DIR``
environment variable or the CLI's ``--cache-dir``; ``--no-cache``
bypasses it entirely.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path

from ..catalog.statistics import Catalog
from ..core.feasible import FeasibleRegion
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..storage.layout import StorageLayout
from .config import SystemParameters
from .parametric import CandidateSet, candidate_plans
from .query import QuerySpec

__all__ = [
    "PlanCache",
    "PICKLE_LOAD_ERRORS",
    "atomic_write_pickle",
    "default_cache_dir",
    "cached_candidate_plans",
]

logger = logging.getLogger(__name__)

#: Bump when the pickle payload or key material changes shape.
_FORMAT_VERSION = 1

#: Everything a pickle load can raise on a corrupt/alien/stale entry.
#: Shared with the run journal (:mod:`repro.experiments.journal`),
#: which persists checkpoints with the same machinery.
PICKLE_LOAD_ERRORS = (
    OSError, pickle.UnpicklingError, EOFError,
    AttributeError, ImportError, ValueError,
)


def default_cache_dir() -> str:
    """``$REPRO_CACHE_DIR`` if set, else ``.repro-cache``."""
    return os.environ.get("REPRO_CACHE_DIR", ".repro-cache")


def atomic_write_pickle(path: Path, payload: object) -> None:
    """Pickle ``payload`` to ``path`` via temp file + ``os.replace``.

    The write is atomic on POSIX, so concurrent workers sharing one
    directory never observe a partial entry; raises ``OSError`` on
    unwritable filesystems (callers decide whether that is fatal).
    """
    path.parent.mkdir(parents=True, exist_ok=True)
    temp = path.with_name(f"{path.name}.tmp-{os.getpid()}")
    with open(temp, "wb") as handle:
        pickle.dump(payload, handle, protocol=pickle.HIGHEST_PROTOCOL)
    os.replace(temp, path)


class PlanCache:
    """A content-addressed store of pickled candidate plan sets."""

    def __init__(self, root: "str | Path | None" = None) -> None:
        self._root = Path(root) if root is not None else Path(
            default_cache_dir()
        )

    @property
    def root(self) -> Path:
        return self._root

    @classmethod
    def from_root(cls, root: "str | Path | None") -> "PlanCache | None":
        """Rehydrate a cache handle from a serialized root (or None).

        The experiment engine ships ``str(cache.root)`` to worker
        processes instead of the handle itself; this is the single
        inverse of that convention.
        """
        return None if root is None else cls(root)

    # ------------------------------------------------------------------
    # Keys
    # ------------------------------------------------------------------
    def key_for(
        self,
        query_name: str,
        scenario_key: str,
        delta: float,
        params: SystemParameters,
        cell_cap: "int | None",
        catalog: Catalog,
    ) -> str:
        """SHA-256 digest of everything that determines the result."""
        from .. import __version__

        material = json.dumps(
            {
                "format": _FORMAT_VERSION,
                "version": __version__,
                "query": query_name,
                "scenario": scenario_key,
                "delta": repr(float(delta)),
                "params": {
                    key: repr(value)
                    for key, value in dataclasses.asdict(params).items()
                },
                "cell_cap": cell_cap,
                "catalog": hashlib.sha256(
                    pickle.dumps(catalog)
                ).hexdigest(),
            },
            sort_keys=True,
        )
        return hashlib.sha256(material.encode()).hexdigest()

    def _path(self, key: str) -> Path:
        return self._root / key[:2] / f"{key}.pkl"

    # ------------------------------------------------------------------
    # Load / store
    # ------------------------------------------------------------------
    def load(self, key: str) -> "CandidateSet | None":
        """The cached set for ``key``, or None on miss/corruption.

        Misses and corrupt entries are distinguishable in the metrics
        registry (``plancache.misses`` vs ``plancache.corrupt``), and
        corruption recovery is logged rather than silent: an entry that
        exists but cannot be loaded points at a real problem (partial
        write survived a crash, disk fault, version skew).
        """
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            METRICS.counter("plancache.misses").inc()
            return None
        except PICKLE_LOAD_ERRORS as exc:
            METRICS.counter("plancache.misses").inc()
            METRICS.counter("plancache.corrupt").inc()
            logger.warning(
                "corrupt candidate-set cache entry %s (%s: %s); "
                "treating as a miss and recomputing",
                path, type(exc).__name__, exc,
            )
            return None
        if not isinstance(payload, CandidateSet):
            METRICS.counter("plancache.misses").inc()
            METRICS.counter("plancache.corrupt").inc()
            logger.warning(
                "cache entry %s holds %s, not a CandidateSet; "
                "treating as a miss and recomputing",
                path, type(payload).__name__,
            )
            return None
        METRICS.counter("plancache.hits").inc()
        return payload

    def store(self, key: str, candidates: CandidateSet) -> None:
        """Atomically persist one candidate set (best effort).

        A cache that cannot be written (read-only filesystem, quota)
        must never fail the experiment, so OS errors are logged and
        swallowed.
        """
        path = self._path(key)
        try:
            atomic_write_pickle(path, candidates)
        except OSError as exc:
            METRICS.counter("plancache.store_errors").inc()
            logger.warning(
                "could not write cache entry %s (%s: %s); result "
                "will be recomputed next run",
                path, type(exc).__name__, exc,
            )
            return
        METRICS.counter("plancache.stores").inc()


def cached_candidate_plans(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    layout: StorageLayout,
    region: FeasibleRegion,
    cell_cap: "int | None" = 64,
    cache: "PlanCache | None" = None,
    scenario_key: str = "",
) -> CandidateSet:
    """:func:`candidate_plans` with an optional read-through disk cache.

    With ``cache=None`` this is exactly the uncached computation.  The
    scenario key stands in for the layout/variation-group structure in
    the cache key (both are derived deterministically from scenario +
    query + catalog).
    """
    if cache is None:
        return candidate_plans(
            query, catalog, params, layout, region, cell_cap=cell_cap
        )
    key = cache.key_for(
        query_name=query.name,
        scenario_key=scenario_key,
        delta=region.delta,
        params=params,
        cell_cap=cell_cap,
        catalog=catalog,
    )
    with span(
        "plancache.get", query=query.name, key=key[:16]
    ) as current:
        hit = cache.load(key)
        current.set(hit=hit is not None)
        if hit is not None:
            return hit
        result = candidate_plans(
            query, catalog, params, layout, region, cell_cap=cell_cap
        )
        cache.store(key, result)
        return result
