"""Physical plan trees and their EXPLAIN-style signatures.

Plan nodes are immutable and carry only *structure*; costs live in the
:class:`~repro.optimizer.operators.CostedPlan` wrappers the enumerator
builds.  Signatures are deterministic strings (DB2's EXPLAIN output
played this role in the paper: "enough information to identify each
plan uniquely", Section 7.1).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

__all__ = [
    "PlanNode",
    "TableScanNode",
    "IndexScanNode",
    "IndexProbeNode",
    "NestedLoopJoinNode",
    "HashJoinNode",
    "MergeJoinNode",
    "SortNode",
    "AggregateNode",
]


class PlanNode:
    """Base class for physical plan operators."""

    def signature(self) -> str:
        """Deterministic plan identity string."""
        raise NotImplementedError

    def children(self) -> tuple["PlanNode", ...]:
        return ()

    def aliases(self) -> frozenset[str]:
        """All table aliases covered by this subtree."""
        covered: set[str] = set()
        for child in self.children():
            covered |= child.aliases()
        return frozenset(covered)

    def walk(self) -> Iterator["PlanNode"]:
        """Pre-order traversal of the subtree."""
        yield self
        for child in self.children():
            yield from child.walk()

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.signature()


@dataclass(frozen=True)
class TableScanNode(PlanNode):
    """Full sequential scan of a base table."""

    alias: str
    table: str

    def signature(self) -> str:
        return f"TBSCAN({self.alias})"

    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})


@dataclass(frozen=True)
class IndexScanNode(PlanNode):
    """Range scan of an index driven by a sargable local predicate.

    ``index_only`` marks scans that never touch the data pages (all
    referenced columns are in the index key) — the plans whose usage
    vectors have a zero *table* component, one source of access-path
    complementary plans.
    """

    alias: str
    table: str
    index_name: str
    matched_column: str
    index_only: bool = False

    def signature(self) -> str:
        suffix = ",IXONLY" if self.index_only else ""
        return f"IXSCAN({self.alias},{self.index_name}{suffix})"

    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})


@dataclass(frozen=True)
class IndexProbeNode(PlanNode):
    """Inner side of an index nested-loop join: repeated B-tree probes."""

    alias: str
    table: str
    index_name: str
    join_column: str
    index_only: bool = False

    def signature(self) -> str:
        suffix = ",IXONLY" if self.index_only else ""
        return f"IXPROBE({self.alias},{self.index_name}{suffix})"

    def aliases(self) -> frozenset[str]:
        return frozenset({self.alias})


@dataclass(frozen=True)
class NestedLoopJoinNode(PlanNode):
    """Nested-loop join; the inner is a probe or a rescanned access path."""

    outer: PlanNode
    inner: PlanNode

    def signature(self) -> str:
        return f"NLJOIN({self.outer.signature()},{self.inner.signature()})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.outer, self.inner)


@dataclass(frozen=True)
class HashJoinNode(PlanNode):
    """Hash join: build on the first child, probe with the second."""

    build: PlanNode
    probe: PlanNode

    def signature(self) -> str:
        return f"HSJOIN({self.build.signature()},{self.probe.signature()})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.build, self.probe)


@dataclass(frozen=True)
class MergeJoinNode(PlanNode):
    """Sort-merge join of two inputs ordered on the join columns."""

    left: PlanNode
    right: PlanNode
    left_key: tuple[str, str]
    right_key: tuple[str, str]

    def signature(self) -> str:
        return f"MSJOIN({self.left.signature()},{self.right.signature()})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.left, self.right)


@dataclass(frozen=True)
class SortNode(PlanNode):
    """Explicit sort enforcer (possibly external, via temp space)."""

    child: PlanNode
    keys: tuple[tuple[str, str], ...]

    def signature(self) -> str:
        keys = "+".join(f"{alias}.{column}" for alias, column in self.keys)
        return f"SORT({self.child.signature()},{keys})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)


@dataclass(frozen=True)
class AggregateNode(PlanNode):
    """Grouping/aggregation operator (hash-based)."""

    child: PlanNode
    group_keys: tuple[tuple[str, str], ...]

    def signature(self) -> str:
        return f"GRPBY({self.child.signature()})"

    def children(self) -> tuple[PlanNode, ...]:
        return (self.child,)
