"""Per-operator cost formulas producing abstract I/O accounts.

Every formula charges three currencies, mirroring the paper's resource
model (Section 3.1):

* **seeks** and **pages** against an object group (a table's data, a
  table's index group, or temp space) — the layout later maps these to
  device dimensions;
* **CPU instructions** against the single CPU dimension.

The formulas are classic System-R / DB2-flavoured first approximations;
each documents its assumptions.  Two cross-cutting effects:

* *sequential prefetch*: a sequential read of ``p`` pages costs
  ``ceil(p / prefetch_extent)`` seeks (one per prefetch burst);
* *buffer pool residency*: an object smaller than the buffer-pool
  residency budget is read at most once across repeated accesses
  (nested-loop inners against NATION-sized tables become CPU-bound,
  as in a real system).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..catalog.statistics import Catalog, IndexStats, TableStats
from ..storage.layout import IOAccount, ObjectKey
from .config import SystemParameters

__all__ = ["CostModel", "yao_pages"]


def yao_pages(n_pages: float, rows_per_page: float, k: float) -> float:
    """Expected distinct pages touched by ``k`` random row fetches.

    Cardenas' approximation ``n * (1 - (1 - 1/n) ** k)`` — within a few
    percent of Yao's exact formula for the page counts involved here.
    """
    if n_pages <= 0:
        return 0.0
    if k <= 0:
        return 0.0
    n = float(n_pages)
    # (1 - 1/n)^k via exp/log1p for numerical stability at large n, k.
    fraction = -math.expm1(k * math.log1p(-1.0 / n)) if n > 1 else 1.0
    return n * fraction


@dataclass
class _ScanResult:
    """An account plus the number of rows delivered by the operator."""

    account: IOAccount
    rows: float


class CostModel:
    """Cost formulas bound to a catalog and system parameters."""

    def __init__(self, catalog: Catalog, params: SystemParameters) -> None:
        self._catalog = catalog
        self._params = params

    @property
    def catalog(self) -> Catalog:
        return self._catalog

    @property
    def params(self) -> SystemParameters:
        return self._params

    # ------------------------------------------------------------------
    # Shared helpers
    # ------------------------------------------------------------------
    def _table_stats(self, table: str) -> TableStats:
        return self._catalog.table_stats(table)

    def _index_stats(self, index_name: str) -> IndexStats:
        return self._catalog.index_stats(index_name)

    def sequential_seeks(self, pages: float) -> float:
        """Seeks charged for a sequential read/write of ``pages``."""
        if pages <= 0:
            return 0.0
        return math.ceil(pages / self._params.prefetch_extent)

    def fits_in_bufferpool(self, pages: float) -> bool:
        return pages <= self._params.bufferpool_resident_pages()

    def fits_in_sortheap(self, pages: float) -> bool:
        return pages <= self._params.sortheap_pages

    def pages_for(self, rows: float, width: float) -> float:
        """Data pages occupied by ``rows`` tuples of ``width`` bytes."""
        if rows <= 0:
            return 0.0
        per_page = max(1.0, (self._params.page_size * 0.96) // max(width, 1))
        return math.ceil(rows / per_page)

    # ------------------------------------------------------------------
    # Base-table access paths
    # ------------------------------------------------------------------
    def table_scan(
        self, table: str, n_predicates: int, output_rows: float
    ) -> _ScanResult:
        """Full sequential scan with predicate application."""
        stats = self._table_stats(table)
        account = IOAccount()
        pages = float(stats.n_pages)
        account.add_io(
            ObjectKey.table(table), self.sequential_seeks(pages), pages
        )
        cpu = stats.row_count * self._params.cpu_per_tuple
        cpu += (
            stats.row_count * n_predicates * self._params.cpu_per_predicate
        )
        account.add_cpu(cpu)
        return _ScanResult(account, output_rows)

    def index_scan(
        self,
        table: str,
        index_name: str,
        matched_selectivity: float,
        n_residual_predicates: int,
        output_rows: float,
        index_only: bool = False,
    ) -> _ScanResult:
        """Range scan of an index, optionally fetching data rows.

        ``matched_selectivity`` is the fraction of the key range the
        sargable predicate selects; residual predicates are applied to
        fetched rows.  Fetch cost blends the clustered pattern
        (sequential data pages) and the unclustered pattern (one random
        page per match, capped by Yao's formula and buffer-pool
        residency) by the index's cluster ratio.
        """
        if not 0.0 < matched_selectivity <= 1.0:
            raise ValueError("matched_selectivity must be in (0, 1]")
        table_stats = self._table_stats(table)
        index_stats = self._index_stats(index_name)
        account = IOAccount()
        index_key = ObjectKey.index(table)

        # Descend the B-tree once, then scan the matching leaf range.
        leaf_pages = math.ceil(matched_selectivity * index_stats.leaf_pages)
        descend_pages = index_stats.levels - 1
        account.add_io(
            index_key,
            1.0 + self.sequential_seeks(leaf_pages),
            descend_pages + leaf_pages,
        )
        matches = matched_selectivity * table_stats.row_count
        cpu = matches * self._params.cpu_per_tuple

        if not index_only:
            ratio = index_stats.cluster_ratio
            clustered_pages = matched_selectivity * table_stats.n_pages
            clustered_seeks = self.sequential_seeks(clustered_pages)
            if self.fits_in_bufferpool(table_stats.n_pages):
                # Resident: each distinct page is read once (Yao).
                random_pages = yao_pages(
                    table_stats.n_pages, table_stats.rows_per_page, matches
                )
            else:
                # Classic Selinger: one I/O per unclustered match.
                random_pages = matches
            pages = ratio * clustered_pages + (1 - ratio) * random_pages
            seeks = ratio * clustered_seeks + (1 - ratio) * random_pages
            account.add_io(ObjectKey.table(table), seeks, pages)
            cpu += (
                matches
                * n_residual_predicates
                * self._params.cpu_per_predicate
            )
        account.add_cpu(cpu)
        return _ScanResult(account, output_rows)

    # ------------------------------------------------------------------
    # Nested-loop inners
    # ------------------------------------------------------------------
    def index_probes(
        self,
        table: str,
        index_name: str,
        n_probes: float,
        matches_per_probe: float,
        n_residual_predicates: int = 0,
        index_only: bool = False,
    ) -> IOAccount:
        """Total cost of ``n_probes`` B-tree probes (INL join inner).

        The top ``cached_index_levels`` of the B-tree are assumed
        resident; if the whole index fits the residency budget, leaf
        reads are charged once per distinct leaf rather than once per
        probe.  Data fetches follow the same Yao/residency blend as
        :meth:`index_scan`.
        """
        if n_probes < 0 or matches_per_probe < 0:
            raise ValueError("probe counts must be non-negative")
        table_stats = self._table_stats(table)
        index_stats = self._index_stats(index_name)
        params = self._params
        account = IOAccount()

        uncached_levels = max(
            1.0, index_stats.levels - params.cached_index_levels
        )
        index_total = index_stats.leaf_pages + index_stats.levels
        if self.fits_in_bufferpool(index_total):
            index_pages = min(
                n_probes * uncached_levels,
                yao_pages(index_stats.leaf_pages, 1.0, n_probes)
                + index_stats.levels,
            )
        else:
            index_pages = n_probes * uncached_levels
        account.add_io(ObjectKey.index(table), index_pages, index_pages)

        total_matches = n_probes * matches_per_probe
        cpu = n_probes * params.cpu_per_tuple
        cpu += total_matches * params.cpu_per_tuple
        if not index_only and total_matches > 0:
            ratio = index_stats.cluster_ratio
            distinct = yao_pages(
                table_stats.n_pages,
                table_stats.rows_per_page,
                total_matches,
            )
            if self.fits_in_bufferpool(table_stats.n_pages):
                fetch_pages = distinct
            else:
                fetch_pages = (
                    ratio * distinct + (1 - ratio) * total_matches
                )
            account.add_io(ObjectKey.table(table), fetch_pages, fetch_pages)
            cpu += (
                total_matches
                * n_residual_predicates
                * params.cpu_per_predicate
            )
        account.add_cpu(cpu)
        return account

    def rescans(
        self,
        table: str,
        n_probes: float,
        n_predicates: int,
    ) -> IOAccount:
        """Nested-loop inner as a repeated table scan.

        The first scan pays full I/O; if the table fits in the buffer
        pool the remaining ``n_probes - 1`` iterations are CPU-only,
        otherwise every iteration pays the scan again.  Only sensible
        for tiny inners (NATION, REGION) — anything else is dominated.
        """
        if n_probes < 1:
            n_probes = 1.0
        stats = self._table_stats(table)
        account = IOAccount()
        pages = float(stats.n_pages)
        iterations_paying_io = (
            1.0 if self.fits_in_bufferpool(pages) else n_probes
        )
        account.add_io(
            ObjectKey.table(table),
            self.sequential_seeks(pages) * iterations_paying_io,
            pages * iterations_paying_io,
        )
        cpu_per_scan = stats.row_count * (
            self._params.cpu_per_tuple
            + n_predicates * self._params.cpu_per_predicate
        )
        account.add_cpu(cpu_per_scan * n_probes)
        return account

    # ------------------------------------------------------------------
    # Blocking operators (temp-space users)
    # ------------------------------------------------------------------
    def sort(self, rows: float, width: float) -> IOAccount:
        """Sort ``rows`` tuples of ``width`` bytes.

        In-memory when the input fits the sort heap; otherwise a
        multi-pass external merge sort writing and reading temp space
        once per pass.
        """
        account = IOAccount()
        if rows <= 0:
            return account
        params = self._params
        account.add_cpu(
            rows * math.log2(max(rows, 2.0)) * params.cpu_per_compare
        )
        pages = self.pages_for(rows, width)
        if self.fits_in_sortheap(pages):
            return account
        runs = math.ceil(pages / params.sortheap_pages)
        passes = max(
            1, math.ceil(math.log(runs) / math.log(params.sort_merge_fanin))
        )
        temp_pages = 2.0 * pages * passes
        # Writes stream sequentially; merge reads pay one seek per run
        # switch plus the sequential bursts.
        seeks_per_pass = 2.0 * self.sequential_seeks(pages) + runs
        account.add_io(ObjectKey.temp(), seeks_per_pass * passes, temp_pages)
        return account

    def hash_join(
        self,
        build_rows: float,
        build_width: float,
        probe_rows: float,
        probe_width: float,
        output_rows: float,
    ) -> IOAccount:
        """Hash join; spills both inputs to temp when the build side
        exceeds the sort heap (Grace-style partitioning)."""
        params = self._params
        account = IOAccount()
        cpu = (build_rows + probe_rows) * params.cpu_per_hash
        cpu += output_rows * params.cpu_per_tuple
        account.add_cpu(cpu)
        build_pages = self.pages_for(build_rows, build_width)
        if not self.fits_in_sortheap(build_pages):
            probe_pages = self.pages_for(probe_rows, probe_width)
            partitions = math.ceil(build_pages / params.sortheap_pages)
            passes = max(
                1,
                math.ceil(
                    math.log(partitions) / math.log(params.sort_merge_fanin)
                ),
            )
            total = build_pages + probe_pages
            temp_pages = 2.0 * total * passes
            seeks = passes * (2.0 * self.sequential_seeks(total) + partitions)
            account.add_io(ObjectKey.temp(), seeks, temp_pages)
        return account

    def merge_join(
        self, left_rows: float, right_rows: float, output_rows: float
    ) -> IOAccount:
        """Merge two sorted streams (sorts are separate enforcers)."""
        params = self._params
        account = IOAccount()
        account.add_cpu(
            (left_rows + right_rows) * params.cpu_per_tuple
            + output_rows * params.cpu_per_tuple
        )
        return account

    def aggregate(
        self, rows: float, width: float, groups: float
    ) -> IOAccount:
        """Hash aggregation, spilling when the group table is large."""
        params = self._params
        account = IOAccount()
        account.add_cpu(
            rows * params.cpu_per_hash + groups * params.cpu_per_tuple
        )
        group_pages = self.pages_for(groups, width)
        if not self.fits_in_sortheap(group_pages):
            account.add_io(
                ObjectKey.temp(),
                2.0 * self.sequential_seeks(group_pages),
                2.0 * group_pages,
            )
        return account
