"""Join enumeration: Selinger-style DP with pluggable pruning.

One enumerator serves two modes:

* **Scalar mode** (:class:`ScalarPruner`) — classic dynamic programming
  under a fixed cost vector; this is what the black-box facade runs on
  every ``optimize(C)`` call, mirroring how the paper re-ran the DB2
  optimizer at every sampled cost vector.
* **Parametric mode** (:class:`ParetoPruner`) — per-subproblem sets of
  vector-wise undominated plans.  Componentwise domination is sound for
  any positive cost vector under the additive cost model, so the root's
  Pareto set contains every plan that can be optimal anywhere in the
  positive orthant; LP filtering (:mod:`repro.core.candidates`) then
  yields the *exact* candidate optimal plan set.  This is the white-box
  ground truth the paper could not extract from DB2.

The plan space: left-linear join trees over connected subgraphs, with
table scans / index range scans / index-only scans as access paths,
index nested-loop joins (with buffer-pool-aware probe costs), rescan
nested loops for buffer-pool-resident inners, hash joins with either
side as build, and sort-merge joins with sort enforcers and interesting
orders.  GROUP BY and ORDER BY add aggregation/sort at the root.

Pruning soundness relies on two standard properties: plan cost is the
sum of child costs plus operator-local usage (so a componentwise-
dominated subplan cannot become part of a strictly better full plan),
and order-sensitive futures are protected by only pruning a plan
against plans with the same — or no — required order.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass

import numpy as np

from ..catalog.statistics import Catalog
from ..core.vectors import CostVector, UsageVector
from ..storage.layout import IOAccount, StorageLayout
from .config import SystemParameters
from .operators import CostModel
from .plans import (
    AggregateNode,
    HashJoinNode,
    IndexProbeNode,
    IndexScanNode,
    MergeJoinNode,
    NestedLoopJoinNode,
    PlanNode,
    SortNode,
    TableScanNode,
)
from .query import QuerySpec
from .selectivity import CardinalityModel

__all__ = [
    "CostedPlan",
    "ScalarPruner",
    "ParetoPruner",
    "PlanEnumerator",
    "optimize_scalar",
    "enumerate_root_plans",
]


@dataclass
class CostedPlan:
    """A plan with its usage vector, cardinality and output order."""

    node: PlanNode
    usage: UsageVector
    rows: float
    order: tuple[str, str] | None = None

    @property
    def signature(self) -> str:
        return self.node.signature()


class ScalarPruner:
    """Keep the single cheapest plan per order group under a fixed C."""

    def __init__(self, cost: CostVector) -> None:
        self._cost = cost

    def prune(self, plans: list[CostedPlan]) -> list[CostedPlan]:
        best: dict[tuple[str, str] | None, CostedPlan] = {}
        scores: dict[tuple[str, str] | None, float] = {}
        for plan in plans:
            score = plan.usage.dot(self._cost)
            key = plan.order
            if key not in best or score < scores[key]:
                best[key] = plan
                scores[key] = score
        winners = list(best.values())
        cheapest = min(winners, key=lambda p: p.usage.dot(self._cost))
        # Ordered winners survive (their order may pay off later); the
        # unordered winner survives only if it is the overall cheapest.
        kept = [
            plan
            for plan in winners
            if plan.order is not None or plan is cheapest
        ]
        if cheapest not in kept:  # pragma: no cover - defensive
            kept.append(cheapest)
        return kept


class ParetoPruner:
    """Keep vector-wise undominated plans, respecting orders.

    Plan *a* prunes plan *b* when ``a.usage <= b.usage`` componentwise
    (with ``tol`` slack) and *a*'s order can substitute for *b*'s (same
    order, or *b* requires none).  Componentwise-equal plans keep the
    first seen (deduplication).

    ``cell_cap`` bounds per-cell set sizes; on overflow the cheapest
    plans under ``center`` survive and :attr:`truncated` is set, so
    callers can report possibly-incomplete candidate sets (the paper
    hit the analogous wall: Section 8.2 covers only 16 of 22 queries in
    its hardest configuration).
    """

    def __init__(
        self,
        tol: float = 1e-9,
        cell_cap: int | None = None,
        center: CostVector | None = None,
    ) -> None:
        if cell_cap is not None and center is None:
            raise ValueError("cell_cap requires a center cost vector")
        self._tol = tol
        self._cap = cell_cap
        self._center = center
        self.truncated = False

    def prune(self, plans: list[CostedPlan]) -> list[CostedPlan]:
        kept: list[CostedPlan] = []
        for plan in plans:
            values = plan.usage.values
            dominated = False
            for other in kept:
                if other.order is not None and other.order != plan.order:
                    continue
                if np.all(other.usage.values <= values + self._tol):
                    dominated = True
                    break
            if dominated:
                continue
            kept = [
                other
                for other in kept
                if not (
                    (plan.order is None or plan.order == other.order)
                    and np.all(values <= other.usage.values + self._tol)
                )
            ]
            kept.append(plan)
        if self._cap is not None and len(kept) > self._cap:
            self.truncated = True
            kept.sort(key=lambda p: p.usage.dot(self._center))
            kept = kept[: self._cap]
        return kept


class PlanEnumerator:
    """Enumerates costed plans for one query over one storage layout."""

    def __init__(
        self,
        query: QuerySpec,
        catalog: Catalog,
        params: SystemParameters,
        layout: StorageLayout,
        include_rescans: bool = True,
        include_order_scans: bool = True,
        bushy: bool = False,
    ) -> None:
        self.query = query
        self.model = CardinalityModel(query, catalog)
        self.costs = CostModel(catalog, params)
        self.layout = layout
        self.params = params
        self.catalog = catalog
        self._include_rescans = include_rescans
        self._include_order_scans = include_order_scans
        self._bushy = bushy
        self._base_cache: dict[str, list[CostedPlan]] = {}

    # ------------------------------------------------------------------
    # Helpers
    # ------------------------------------------------------------------
    def _usage(self, account: IOAccount) -> UsageVector:
        return self.layout.to_usage(account)

    def _needed_columns(self, alias: str) -> set[str]:
        """Columns of ``alias`` the rest of the plan must see."""
        needed: set[str] = set()
        for join in self.query.joins:
            if alias in join.aliases():
                needed.add(join.column_for(alias))
        for predicate in self.query.predicates_for(alias):
            if predicate.column is not None:
                needed.add(predicate.column)
            else:
                # Residual predicate over unspecified columns: the full
                # row is required, no index-only access.
                needed.add("*")
        for clause_alias, column in (
            tuple(self.query.group_by) + tuple(self.query.order_by)
        ):
            if clause_alias == alias:
                needed.add(column)
        return needed

    def _index_covers(self, index_name: str, alias: str) -> bool:
        index = self.catalog.index(index_name)
        needed = self._needed_columns(alias)
        return "*" not in needed and needed <= set(index.key_columns)

    def _join_columns(self, alias: str) -> set[str]:
        return {
            join.column_for(alias)
            for join in self.query.joins
            if alias in join.aliases()
        }

    # ------------------------------------------------------------------
    # Base access paths
    # ------------------------------------------------------------------
    def base_plans(self, alias: str) -> list[CostedPlan]:
        """All access paths for one alias (cached)."""
        cached = self._base_cache.get(alias)
        if cached is not None:
            return cached
        query = self.query
        table = query.table_of(alias)
        rows_out = self.model.filtered_rows(alias)
        predicates = query.predicates_for(alias)
        plans: list[CostedPlan] = []

        scan = self.costs.table_scan(table, len(predicates), rows_out)
        plans.append(
            CostedPlan(
                TableScanNode(alias, table),
                self._usage(scan.account),
                rows_out,
            )
        )

        # Index range scans driven by sargable predicates.
        for predicate in predicates:
            if predicate.column is None:
                continue
            for index in self.catalog.indexes_with_leading_column(
                table, predicate.column
            ):
                index_only = self._index_covers(index.name, alias)
                result = self.costs.index_scan(
                    table,
                    index.name,
                    matched_selectivity=predicate.selectivity,
                    n_residual_predicates=len(predicates) - 1,
                    output_rows=rows_out,
                    index_only=index_only,
                )
                node = IndexScanNode(
                    alias, table, index.name, predicate.column, index_only
                )
                plans.append(
                    CostedPlan(
                        node,
                        self._usage(result.account),
                        rows_out,
                        order=(alias, predicate.column),
                    )
                )

        # Full index scans that deliver an interesting order on a join
        # column (feeding merge joins without a sort).
        if self._include_order_scans:
            existing = {plan.signature for plan in plans}
            for column in sorted(self._join_columns(alias)):
                for index in self.catalog.indexes_with_leading_column(
                    table, column
                ):
                    index_only = self._index_covers(index.name, alias)
                    node = IndexScanNode(
                        alias, table, index.name, column, index_only
                    )
                    if node.signature() in existing:
                        continue
                    result = self.costs.index_scan(
                        table,
                        index.name,
                        matched_selectivity=1.0,
                        n_residual_predicates=len(predicates),
                        output_rows=rows_out,
                        index_only=index_only,
                    )
                    plans.append(
                        CostedPlan(
                            node,
                            self._usage(result.account),
                            rows_out,
                            order=(alias, column),
                        )
                    )
        self._base_cache[alias] = plans
        return plans

    # ------------------------------------------------------------------
    # Joins
    # ------------------------------------------------------------------
    def _sorted_variant(
        self, plan: CostedPlan, key: tuple[str, str], width: float
    ) -> CostedPlan:
        """Wrap ``plan`` in a sort on ``key`` (no-op if already ordered)."""
        if plan.order == key:
            return plan
        usage = plan.usage + self._usage(self.costs.sort(plan.rows, width))
        return CostedPlan(
            SortNode(plan.node, (key,)), usage, plan.rows, order=key
        )

    def join_plans(
        self, outer: CostedPlan, outer_aliases: frozenset, inner_alias: str
    ) -> list[CostedPlan]:
        """All ways to join ``outer`` with base table ``inner_alias``."""
        query = self.query
        model = self.model
        costs = self.costs
        table = query.table_of(inner_alias)
        edges = query.joins_between(outer_aliases, {inner_alias})
        if not edges:
            return []
        combined = outer_aliases | {inner_alias}
        rows_out = model.join_rows(combined)
        predicates = query.predicates_for(inner_alias)
        local_sel = model.local_selectivity(inner_alias)
        matches = model.matches_per_probe(outer_aliases, inner_alias)
        plans: list[CostedPlan] = []

        # --- index nested-loop joins ---------------------------------
        inner_join_columns = {edge.column_for(inner_alias) for edge in edges}
        for column in sorted(inner_join_columns):
            for index in self.catalog.indexes_with_leading_column(
                table, column
            ):
                index_only = self._index_covers(index.name, inner_alias)
                # Probes see index entries before local predicates.
                fetched_per_probe = (
                    matches / local_sel if local_sel > 0 else matches
                )
                op_usage = self._usage(
                    costs.index_probes(
                        table,
                        index.name,
                        n_probes=outer.rows,
                        matches_per_probe=fetched_per_probe,
                        n_residual_predicates=len(predicates),
                        index_only=index_only,
                    )
                )
                node = NestedLoopJoinNode(
                    outer.node,
                    IndexProbeNode(
                        inner_alias, table, index.name, column, index_only
                    ),
                )
                plans.append(
                    CostedPlan(
                        node,
                        outer.usage + op_usage,
                        rows_out,
                        order=outer.order,
                    )
                )

        # --- rescan nested loops (tiny resident inners) ---------------
        table_pages = self.catalog.n_pages(table)
        if self._include_rescans and costs.fits_in_bufferpool(table_pages):
            account = costs.rescans(table, outer.rows, len(predicates))
            account.add_cpu(rows_out * self.params.cpu_per_tuple)
            node = NestedLoopJoinNode(
                outer.node, TableScanNode(inner_alias, table)
            )
            plans.append(
                CostedPlan(
                    node,
                    outer.usage + self._usage(account),
                    rows_out,
                    order=outer.order,
                )
            )

        # --- hash joins (either side builds) ---------------------------
        width_outer = float(model.tuple_width(outer_aliases))
        width_inner = float(model.carried_width(inner_alias))
        inner_rows = model.filtered_rows(inner_alias)
        for base in self.base_plans(inner_alias):
            build_inner = self._usage(
                costs.hash_join(
                    build_rows=inner_rows,
                    build_width=width_inner,
                    probe_rows=outer.rows,
                    probe_width=width_outer,
                    output_rows=rows_out,
                )
            )
            plans.append(
                CostedPlan(
                    HashJoinNode(base.node, outer.node),
                    outer.usage + base.usage + build_inner,
                    rows_out,
                    order=None,
                )
            )
            build_outer = self._usage(
                costs.hash_join(
                    build_rows=outer.rows,
                    build_width=width_outer,
                    probe_rows=inner_rows,
                    probe_width=width_inner,
                    output_rows=rows_out,
                )
            )
            plans.append(
                CostedPlan(
                    HashJoinNode(outer.node, base.node),
                    outer.usage + base.usage + build_outer,
                    rows_out,
                    order=None,
                )
            )

        # --- sort-merge joins ------------------------------------------
        for edge in edges:
            outer_alias = edge.other(inner_alias)
            outer_key = (outer_alias, edge.column_for(outer_alias))
            inner_key = (inner_alias, edge.column_for(inner_alias))
            sorted_outer = self._sorted_variant(outer, outer_key, width_outer)
            merge_usage = None
            for base in self.base_plans(inner_alias):
                sorted_inner = self._sorted_variant(
                    base, inner_key, width_inner
                )
                if merge_usage is None:
                    merge_usage = self._usage(
                        costs.merge_join(
                            sorted_outer.rows, sorted_inner.rows, rows_out
                        )
                    )
                node = MergeJoinNode(
                    sorted_outer.node,
                    sorted_inner.node,
                    outer_key,
                    inner_key,
                )
                plans.append(
                    CostedPlan(
                        node,
                        sorted_outer.usage + sorted_inner.usage + merge_usage,
                        rows_out,
                        order=outer_key,
                    )
                )
        return plans

    def bushy_join_plans(
        self,
        left: CostedPlan,
        right: CostedPlan,
        left_set: frozenset,
        right_set: frozenset,
    ) -> list[CostedPlan]:
        """Join two composite subplans (bushy trees).

        Composite inners cannot be index-probed or rescanned cheaply,
        so the bushy combinations are hash join (either side builds)
        and sort-merge join per connecting edge.
        """
        query = self.query
        model = self.model
        costs = self.costs
        edges = query.joins_between(left_set, right_set)
        if not edges:
            return []
        rows_out = model.join_rows(left_set | right_set)
        width_left = float(model.tuple_width(left_set))
        width_right = float(model.tuple_width(right_set))
        plans: list[CostedPlan] = []
        for build, probe, build_width, probe_width in (
            (left, right, width_left, width_right),
            (right, left, width_right, width_left),
        ):
            usage = self._usage(
                costs.hash_join(
                    build_rows=build.rows,
                    build_width=build_width,
                    probe_rows=probe.rows,
                    probe_width=probe_width,
                    output_rows=rows_out,
                )
            )
            plans.append(
                CostedPlan(
                    HashJoinNode(build.node, probe.node),
                    build.usage + probe.usage + usage,
                    rows_out,
                    order=None,
                )
            )
        for edge in edges:
            left_alias = (
                edge.left_alias
                if edge.left_alias in left_set
                else edge.right_alias
            )
            right_alias = edge.other(left_alias)
            left_key = (left_alias, edge.column_for(left_alias))
            right_key = (right_alias, edge.column_for(right_alias))
            sorted_left = self._sorted_variant(left, left_key, width_left)
            sorted_right = self._sorted_variant(
                right, right_key, width_right
            )
            merge_usage = self._usage(
                costs.merge_join(
                    sorted_left.rows, sorted_right.rows, rows_out
                )
            )
            plans.append(
                CostedPlan(
                    MergeJoinNode(
                        sorted_left.node,
                        sorted_right.node,
                        left_key,
                        right_key,
                    ),
                    sorted_left.usage + sorted_right.usage + merge_usage,
                    rows_out,
                    order=left_key,
                )
            )
        return plans

    # ------------------------------------------------------------------
    # Root enforcers
    # ------------------------------------------------------------------
    def finalize(self, plan: CostedPlan) -> CostedPlan:
        """Apply GROUP BY aggregation and the final ORDER BY sort."""
        query = self.query
        model = self.model
        result = plan
        if query.group_by:
            groups = model.group_count()
            width = float(model.tuple_width(query.aliases))
            usage = result.usage + self._usage(
                self.costs.aggregate(result.rows, width, groups)
            )
            result = CostedPlan(
                AggregateNode(result.node, tuple(query.group_by)),
                usage,
                groups,
                order=None,
            )
        if query.order_by:
            keys = tuple(query.order_by)
            already = (
                len(keys) == 1
                and result.order == keys[0]
                and not query.group_by
            )
            if not already:
                width = float(model.tuple_width(query.aliases))
                usage = result.usage + self._usage(
                    self.costs.sort(result.rows, width)
                )
                result = CostedPlan(
                    SortNode(result.node, keys),
                    usage,
                    result.rows,
                    order=keys[0],
                )
        return result

    # ------------------------------------------------------------------
    # The DP driver
    # ------------------------------------------------------------------
    def enumerate(self, pruner) -> list[CostedPlan]:
        """Run the DP and return finalized, pruned root plans."""
        query = self.query
        # Canonical enumeration order: iterating the alias frozenset
        # directly would order subsets (and therefore plan generation
        # and equal-cost tie-breaks) by randomized string hashes.
        aliases = sorted(query.aliases)
        memo: dict[frozenset, list[CostedPlan]] = {}
        for alias in aliases:
            memo[frozenset({alias})] = pruner.prune(self.base_plans(alias))

        n = len(aliases)
        for size in range(2, n + 1):
            for subset in itertools.combinations(aliases, size):
                subset_set = frozenset(subset)
                cell: list[CostedPlan] = []
                for inner_alias in subset:
                    rest = subset_set - {inner_alias}
                    rest_plans = memo.get(rest)
                    if not rest_plans:
                        continue
                    if not query.joins_between(rest, {inner_alias}):
                        continue  # avoid cross products
                    for outer in rest_plans:
                        cell.extend(
                            self.join_plans(outer, rest, inner_alias)
                        )
                if self._bushy and size >= 4:
                    # Proper partitions with both sides >= 2 aliases;
                    # anchoring the first alias to the left side avoids
                    # enumerating each partition twice.
                    anchor, *others = subset
                    for left_size in range(1, size - 2):
                        for chosen in itertools.combinations(
                            others, left_size
                        ):
                            left_set = frozenset((anchor, *chosen))
                            right_set = subset_set - left_set
                            left_plans = memo.get(left_set)
                            right_plans = memo.get(right_set)
                            if not left_plans or not right_plans:
                                continue
                            if not query.joins_between(
                                left_set, right_set
                            ):
                                continue
                            for left in left_plans:
                                for right in right_plans:
                                    cell.extend(
                                        self.bushy_join_plans(
                                            left, right,
                                            left_set, right_set,
                                        )
                                    )
                if cell:
                    memo[subset_set] = pruner.prune(cell)

        full = frozenset(aliases)
        root_plans = memo.get(full, [])
        if not root_plans:
            if n == 1:
                root_plans = memo[frozenset({aliases[0]})]
            else:
                raise RuntimeError(
                    f"no connected plan covers all tables of {query.name}; "
                    "is the join graph connected?"
                )
        finalized = [self.finalize(plan) for plan in root_plans]
        return pruner.prune(finalized)


# ----------------------------------------------------------------------
# Convenience entry points
# ----------------------------------------------------------------------
def optimize_scalar(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    layout: StorageLayout,
    cost: CostVector,
    bushy: bool = False,
) -> CostedPlan:
    """Classic optimization under a fixed cost vector.

    Returns the cheapest finalized plan; deterministic tie-breaking by
    plan signature.  ``bushy`` widens the search to bushy join trees.
    """
    enumerator = PlanEnumerator(query, catalog, params, layout, bushy=bushy)
    plans = enumerator.enumerate(ScalarPruner(cost))
    return min(plans, key=lambda p: (p.usage.dot(cost), p.signature))


def enumerate_root_plans(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    layout: StorageLayout,
    cell_cap: int | None = 64,
    tol: float = 1e-9,
    bushy: bool = False,
) -> tuple[list[CostedPlan], bool]:
    """Parametric enumeration: the root Pareto set of plans.

    Returns ``(plans, truncated)``.  With ``truncated`` False the list
    provably contains every plan that can be optimal for ANY positive
    cost vector; LP-filter it against a feasible region to obtain the
    exact candidate optimal set (see
    :func:`repro.optimizer.parametric.candidate_plans`).
    """
    center = layout.center_costs()
    pruner = ParetoPruner(tol=tol, cell_cap=cell_cap, center=center)
    enumerator = PlanEnumerator(query, catalog, params, layout, bushy=bushy)
    plans = enumerator.enumerate(pruner)
    return plans, pruner.truncated
