"""Black-box discovery of candidate optimal plans (Section 6.2.1).

The paper's five-step loop, driven purely through the narrow optimizer
interface:

1. probe an initial set of cost vectors inside the feasible region;
2. record which plan the optimizer picks at each;
3. keep sampling until every discovered plan has enough points for
4. a least-squares estimate of its usage vector;
5. check completeness and, if new plans can still hide somewhere, loop.

The completeness check rests on Observation 3 (convexity): *if one plan
is optimal at every vertex of a convex polytope, it is optimal on the
whole polytope.*  We exploit it in multiplier space — the axis-aligned
box of per-group error factors — by recursive subdivision: a sub-box
whose every vertex elects the same plan is settled; a mixed sub-box is
split along its longest edge and both halves are re-examined.  The
recursion terminates either by settling every box (discovery is then
*exact* up to regions thinner than the resolution limit) or by
exhausting the optimizer-call budget (the result is then flagged
incomplete, the honest analogue of the paper only finishing 16 of 22
queries in the hardest configuration).
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from .blackbox import BlackBoxOptimizer
from .estimation import UsageEstimate, estimate_usage_vector
from .feasible import FeasibleRegion
from .vectors import CostVector

__all__ = ["DiscoveryResult", "discover_candidate_plans"]


@dataclass
class DiscoveryResult:
    """Outcome of a discovery run.

    ``complete`` means the subdivision ran to its resolution limit
    without exhausting the optimizer-call budget: every plan whose
    region of influence contains a sub-box wider than the resolution
    has provably been found (Observation 3).  Plans whose regions are
    thinner slivers — wedged between switchover planes closer together
    than the resolution — can still be missed; lower
    ``min_edge_ratio`` / raise ``max_depth`` to chase them.
    """

    plans: dict[str, UsageEstimate] = field(default_factory=dict)
    witnesses: dict[str, CostVector] = field(default_factory=dict)
    complete: bool = False
    optimizer_calls: int = 0
    boxes_examined: int = 0
    boxes_settled: int = 0

    @property
    def signatures(self) -> tuple[str, ...]:
        return tuple(sorted(self.plans))


class _Budget:
    """Shared optimizer-call budget across the discovery phases."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def take(self, amount: int = 1) -> bool:
        if self.used + amount > self.limit:
            return False
        self.used += amount
        return True

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


def _cost_at(region: FeasibleRegion, multipliers: Sequence[float]) -> CostVector:
    """Cost vector for per-group multipliers (fixed dims stay put)."""
    values = region.center.values.copy()
    for factor, group in zip(multipliers, region.groups):
        for index in group.indices:
            values[index] *= factor
    return CostVector(region.space, values)


def _probe(
    optimizer: BlackBoxOptimizer,
    region: FeasibleRegion,
    multipliers: tuple[float, ...],
    found: dict[str, CostVector],
    budget: _Budget,
    cache: dict[tuple[float, ...], str],
) -> str | None:
    """Ask the optimizer at one multiplier point; remember new plans."""
    if multipliers in cache:
        return cache[multipliers]
    if not budget.take():
        return None
    cost = _cost_at(region, multipliers)
    choice = optimizer.optimize(cost)
    cache[multipliers] = choice.signature
    found.setdefault(choice.signature, cost)
    return choice.signature


def discover_candidate_plans(
    optimizer: BlackBoxOptimizer,
    region: FeasibleRegion,
    max_optimizer_calls: int = 20000,
    max_depth: int = 8,
    min_edge_ratio: float = 1.05,
    rng: np.random.Generator | None = None,
    n_random_probes: int = 32,
    estimate_usages: bool = True,
) -> DiscoveryResult:
    """Run the Section 6.2.1 loop against a black-box optimizer.

    Parameters
    ----------
    max_optimizer_calls:
        Total optimizer-invocation budget (probing + usage sampling).
    max_depth:
        Maximum subdivision depth of the multiplier box.
    min_edge_ratio:
        Sub-boxes whose every edge spans less than this multiplicative
        ratio are settled without further splitting (resolution limit).
    n_random_probes:
        Extra random interior probes seeding step 1 (vertices of thin
        regions of influence are easy to miss from box corners alone).
    estimate_usages:
        Run the Section 6.1.1 least-squares estimation for each
        discovered plan (costs extra optimizer calls).
    """
    rng = rng or np.random.default_rng(0)
    budget = _Budget(max_optimizer_calls)
    result = DiscoveryResult()
    found: dict[str, CostVector] = {}
    cache: dict[tuple[float, ...], str] = {}
    g = len(region.groups)
    delta = region.delta

    # --- Step 1-2: initial probes -------------------------------------
    center_multipliers = tuple([1.0] * g)
    _probe(optimizer, region, center_multipliers, found, budget, cache)
    for point in rng.uniform(-1.0, 1.0, size=(n_random_probes, g)):
        multipliers = tuple(float(delta ** exponent) for exponent in point)
        _probe(optimizer, region, multipliers, found, budget, cache)
        if budget.exhausted:
            break

    # --- Step 5 driver: recursive Observation-3 subdivision ------------
    # Boxes are (lo, hi) multiplier tuples.  A box whose 2**g vertices
    # all elect the same plan is optimal for that plan throughout
    # (corollary to Observation 3) and is settled.
    root = (tuple([1.0 / delta] * g), tuple([delta] * g))
    stack: list[tuple[tuple[float, ...], tuple[float, ...], int]] = [
        (*root, 0)
    ]
    settled_everything = True
    while stack:
        lo, hi, depth = stack.pop()
        result.boxes_examined += 1
        vertex_plans = set()
        aborted = False
        for corner in itertools.product(*zip(lo, hi)):
            signature = _probe(optimizer, region, corner, found, budget, cache)
            if signature is None:  # budget exhausted
                aborted = True
                break
            vertex_plans.add(signature)
        if aborted:
            settled_everything = False
            break
        if len(vertex_plans) == 1:
            result.boxes_settled += 1
            continue
        edge_ratios = [h / l for l, h in zip(lo, hi)]
        widest = int(np.argmax(edge_ratios))
        if depth >= max_depth or edge_ratios[widest] <= min_edge_ratio:
            # Resolution limit: several plans meet inside this box but
            # the box is already tiny.  Probe its center once more and
            # accept the remaining uncertainty.
            center = tuple(
                float(np.sqrt(l * h)) for l, h in zip(lo, hi)
            )
            _probe(optimizer, region, center, found, budget, cache)
            result.boxes_settled += 1
            continue
        split = float(np.sqrt(lo[widest] * hi[widest]))  # log-midpoint
        lo_list, hi_list = list(lo), list(hi)
        hi_left = hi_list.copy()
        hi_left[widest] = split
        lo_right = lo_list.copy()
        lo_right[widest] = split
        stack.append((tuple(lo_list), tuple(hi_left), depth + 1))
        stack.append((tuple(lo_right), tuple(hi_list), depth + 1))

    result.witnesses = dict(found)
    result.complete = settled_everything and not budget.exhausted

    # --- Steps 3-4: usage-vector estimation per plan -------------------
    if estimate_usages:
        for signature, witness in found.items():
            if budget.exhausted:
                result.complete = False
                break
            remaining = budget.limit - budget.used
            try:
                estimate = estimate_usage_vector(
                    optimizer,
                    signature,
                    witness,
                    region,
                    rng=rng,
                )
            except (RuntimeError, ValueError):
                # Degenerate region of influence: not enough distinct
                # sample points.  Record the witness without a usage
                # estimate by skipping; discovery is then incomplete.
                result.complete = False
                continue
            spent = estimate.optimizer_calls
            if spent > remaining:
                budget.used = budget.limit
            else:
                budget.used += spent
            result.plans[signature] = estimate

    result.optimizer_calls = budget.used
    return result
