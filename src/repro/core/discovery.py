"""Black-box discovery of candidate optimal plans (Section 6.2.1).

The paper's five-step loop, driven purely through the narrow optimizer
interface:

1. probe an initial set of cost vectors inside the feasible region;
2. record which plan the optimizer picks at each;
3. keep sampling until every discovered plan has enough points for
4. a least-squares estimate of its usage vector;
5. check completeness and, if new plans can still hide somewhere, loop.

The completeness check rests on Observation 3 (convexity): *if one plan
is optimal at every vertex of a convex polytope, it is optimal on the
whole polytope.*  We exploit it in multiplier space — the axis-aligned
box of per-group error factors — by recursive subdivision: a sub-box
whose every vertex elects the same plan is settled; a mixed sub-box is
split along its longest edge and both halves are re-examined.  The
recursion terminates either by settling every box (discovery is then
*exact* up to regions thinner than the resolution limit) or by
exhausting the optimizer-call budget (the result is then flagged
incomplete, the honest analogue of the paper only finishing 16 of 22
queries in the hardest configuration).

The subdivision runs level-synchronously: every unprobed corner of the
current generation of sub-boxes is collected into one matrix and
answered through :func:`repro.core.blackbox.batch_optimize` — a single
``C @ U.T`` against a candidate-backed black box — instead of one
optimizer round-trip per corner.  The probe cache and the call budget
keep per-point semantics: a batch of *k* fresh points costs *k*
optimizer calls, cached points cost nothing, and when the remaining
budget covers only a prefix of a batch exactly that prefix is probed
(matching what a sequential loop would have spent before giving up).
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..obs.metrics import METRICS
from ..obs.trace import span
from .blackbox import BlackBoxOptimizer, batch_optimize
from .estimation import UsageEstimate, estimate_usage_vector
from .feasible import FeasibleRegion
from .vectors import CostVector

__all__ = ["DiscoveryResult", "discover_candidate_plans"]

logger = logging.getLogger(__name__)


@dataclass
class DiscoveryResult:
    """Outcome of a discovery run.

    ``complete`` means the subdivision ran to its resolution limit
    without exhausting the optimizer-call budget: every plan whose
    region of influence contains a sub-box wider than the resolution
    has provably been found (Observation 3).  Plans whose regions are
    thinner slivers — wedged between switchover planes closer together
    than the resolution — can still be missed; lower
    ``min_edge_ratio`` / raise ``max_depth`` to chase them.
    """

    plans: dict[str, UsageEstimate] = field(default_factory=dict)
    witnesses: dict[str, CostVector] = field(default_factory=dict)
    complete: bool = False
    optimizer_calls: int = 0
    boxes_examined: int = 0
    boxes_settled: int = 0

    @property
    def signatures(self) -> tuple[str, ...]:
        return tuple(sorted(self.plans))


class _Budget:
    """Shared optimizer-call budget across the discovery phases."""

    def __init__(self, limit: int) -> None:
        self.limit = limit
        self.used = 0

    def take(self, amount: int = 1) -> bool:
        if self.used + amount > self.limit:
            return False
        self.used += amount
        return True

    @property
    def remaining(self) -> int:
        return self.limit - self.used

    @property
    def exhausted(self) -> bool:
        return self.used >= self.limit


#: Significant digits kept in probe-cache keys.
_KEY_DIGITS = 12


def _round_multipliers(array: np.ndarray) -> np.ndarray:
    """Round positive multipliers to ``_KEY_DIGITS`` significant digits.

    Subdivision midpoints are geometric means; recomputing the same
    corner from two neighbouring boxes can differ in the last float
    bits.  Without rounding those near-duplicates would miss the probe
    cache and burn budget on points that are physically identical.
    Elementwise numpy ops keep the rounding identical whether applied
    to one point or a whole corner matrix.
    """
    exponent = np.floor(np.log10(array))
    scale = np.power(10.0, (_KEY_DIGITS - 1) - exponent)
    return np.round(array * scale) / scale


def _pack_keys(matrix: np.ndarray) -> list[bytes]:
    """One rounded probe-cache key per row of a multiplier matrix.

    Keys are the rounded rows' raw float64 bytes: hashable and exactly
    as collision-safe as a tuple of the same floats, but produced
    without materialising hundreds of thousands of Python floats per
    subdivision level (``tolist`` on corner matrices dominated the
    whole discovery runtime).
    """
    rounded = np.ascontiguousarray(_round_multipliers(matrix))
    buffer = rounded.tobytes()
    stride = rounded.shape[1] * rounded.itemsize
    return [
        buffer[i * stride : (i + 1) * stride]
        for i in range(rounded.shape[0])
    ]


def _round_key(multipliers: Sequence[float]) -> bytes:
    """Probe-cache key for one multiplier point."""
    array = np.asarray(multipliers, dtype=float)
    return _round_multipliers(array).tobytes()


def _box_corners(
    lo: tuple[float, ...], hi: tuple[float, ...], bits: np.ndarray
) -> list[bytes]:
    """All ``2**g`` rounded corner keys of one multiplier box.

    ``bits`` is the shared ``(2**g, g)`` 0/1 matrix; row order matches
    ``itertools.product(*zip(lo, hi))`` (first dimension slowest).
    """
    corners = np.where(
        bits == 1,
        np.asarray(hi, dtype=float),
        np.asarray(lo, dtype=float),
    )
    return _pack_keys(corners)


class _BatchProber:
    """Budget- and cache-aware batched probing of multiplier points."""

    def __init__(
        self,
        optimizer: BlackBoxOptimizer,
        region: FeasibleRegion,
        budget: _Budget,
        found: dict[str, CostVector],
        cache: dict[bytes, str],
    ) -> None:
        self._optimizer = optimizer
        self._region = region
        self._budget = budget
        self._found = found
        self._cache = cache
        self._group_indices = [
            list(group.indices) for group in region.groups
        ]

    def _cost_matrix(self, keys: list[bytes]) -> np.ndarray:
        """Cost vectors for multiplier keys (fixed dims stay put)."""
        center = self._region.center.values
        factors = np.ones((len(keys), len(center)))
        multipliers = np.frombuffer(b"".join(keys)).reshape(
            len(keys), -1
        )
        for position, indices in enumerate(self._group_indices):
            factors[:, indices] = multipliers[:, position][:, None]
        return center[None, :] * factors

    def probe(self, keys) -> bool:
        """Probe every uncached point the budget allows, in order.

        ``keys`` are rounded multiplier keys (:func:`_round_key`).
        Returns True iff every fresh point fit within the budget; a
        False return means the budget ran out part-way (the prefix that
        fit was still probed and cached).
        """
        fresh: list[bytes] = []
        seen: set[bytes] = set()
        requested = 0
        for key in keys:
            requested += 1
            if key in self._cache or key in seen:
                continue
            seen.add(key)
            fresh.append(key)
        take = min(len(fresh), max(self._budget.remaining, 0))
        METRICS.counter("discovery.probes_requested").inc(requested)
        METRICS.counter("discovery.probe_cache_hits").inc(
            requested - len(fresh)
        )
        if take < len(fresh):
            METRICS.counter("discovery.probes_dropped").inc(
                len(fresh) - take
            )
        if take:
            METRICS.counter("discovery.probes_total").inc(take)
            batch = fresh[:take]
            matrix = self._cost_matrix(batch)
            self._budget.take(take)
            choices = batch_optimize(
                self._optimizer, self._region.space, matrix
            )
            space = self._region.space
            for key, choice, row in zip(batch, choices, matrix):
                self._cache[key] = choice.signature
                if choice.signature not in self._found:
                    self._found[choice.signature] = CostVector(space, row)
        return take == len(fresh)

    def lookup(self, key) -> str | None:
        return self._cache.get(key)


def discover_candidate_plans(
    optimizer: BlackBoxOptimizer,
    region: FeasibleRegion,
    max_optimizer_calls: int = 20000,
    max_depth: int = 8,
    min_edge_ratio: float = 1.05,
    rng: np.random.Generator | None = None,
    n_random_probes: int = 32,
    estimate_usages: bool = True,
) -> DiscoveryResult:
    """Run the Section 6.2.1 loop against a black-box optimizer.

    Parameters
    ----------
    max_optimizer_calls:
        Total optimizer-invocation budget (probing + usage sampling).
    max_depth:
        Maximum subdivision depth of the multiplier box.
    min_edge_ratio:
        Sub-boxes whose every edge spans less than this multiplicative
        ratio are settled without further splitting (resolution limit).
    n_random_probes:
        Extra random interior probes seeding step 1 (vertices of thin
        regions of influence are easy to miss from box corners alone).
    estimate_usages:
        Run the Section 6.1.1 least-squares estimation for each
        discovered plan (costs extra optimizer calls).
    """
    rng = rng or np.random.default_rng(0)
    budget = _Budget(max_optimizer_calls)
    result = DiscoveryResult()
    found: dict[str, CostVector] = {}
    cache: dict[bytes, str] = {}
    g = len(region.groups)
    delta = region.delta
    prober = _BatchProber(optimizer, region, budget, found, cache)

    # --- Step 1-2: initial probes (one batch) -------------------------
    seeds: list[bytes] = [_round_key([1.0] * g)]
    for point in rng.uniform(-1.0, 1.0, size=(n_random_probes, g)):
        seeds.append(
            _round_key([float(delta ** exponent) for exponent in point])
        )
    with span(
        "discovery.initial_probes", probes=len(seeds), groups=g
    ) as current:
        prober.probe(seeds)
        current.set(plans_found=len(found))

    # --- Step 5 driver: level-synchronous Observation-3 subdivision ---
    # Boxes are (lo, hi) multiplier tuples.  A box whose 2**g vertices
    # all elect the same plan is optimal for that plan throughout
    # (corollary to Observation 3) and is settled.  Each generation of
    # surviving boxes contributes its unprobed corners to one batch.
    root = (tuple([1.0 / delta] * g), tuple([delta] * g))
    frontier: list[tuple[tuple[float, ...], tuple[float, ...], int]] = [
        (*root, 0)
    ]
    # Corner enumeration order (shared by every box): row i of ``bits``
    # encodes the same lo/hi choices as the i-th tuple of
    # ``itertools.product(*zip(lo, hi))``.
    bits = (
        np.arange(1 << g)[:, None] >> np.arange(g - 1, -1, -1)[None, :]
    ) & 1
    settled_everything = True
    level = 0
    while frontier:
        with span(
            "discovery.probe_batch", level=level, boxes=len(frontier)
        ) as current:
            corners_per_box = [
                _box_corners(lo, hi, bits) for lo, hi, __ in frontier
            ]
            prober.probe(
                corner
                for corners in corners_per_box
                for corner in corners
            )
            next_frontier: list[
                tuple[tuple[float, ...], tuple[float, ...], int]
            ] = []
            resolution_centers: list[bytes] = []
            aborted = False
            settled_before = result.boxes_settled
            for (lo, hi, depth), corners in zip(
                frontier, corners_per_box
            ):
                result.boxes_examined += 1
                vertex_plans = set()
                for corner in corners:
                    signature = prober.lookup(corner)
                    if signature is None:  # budget exhausted
                        aborted = True
                        break
                    vertex_plans.add(signature)
                if aborted:
                    break
                if len(vertex_plans) == 1:
                    result.boxes_settled += 1
                    continue
                edge_ratios = [h / l for l, h in zip(lo, hi)]
                widest = int(np.argmax(edge_ratios))
                if (
                    depth >= max_depth
                    or edge_ratios[widest] <= min_edge_ratio
                ):
                    # Resolution limit: several plans meet inside this
                    # box but the box is already tiny.  Probe its
                    # center once more and accept the remaining
                    # uncertainty.
                    resolution_centers.append(
                        _round_key(
                            [np.sqrt(l * h) for l, h in zip(lo, hi)]
                        )
                    )
                    result.boxes_settled += 1
                    continue
                split = float(
                    np.sqrt(lo[widest] * hi[widest])
                )  # log-midpoint
                lo_list, hi_list = list(lo), list(hi)
                hi_left = hi_list.copy()
                hi_left[widest] = split
                lo_right = lo_list.copy()
                lo_right[widest] = split
                next_frontier.append(
                    (tuple(lo_list), tuple(hi_left), depth + 1)
                )
                next_frontier.append(
                    (tuple(lo_right), tuple(hi_list), depth + 1)
                )
            if resolution_centers:
                # A center probe that no longer fits the budget is
                # dropped silently — it cannot change the box's
                # settled status.
                prober.probe(resolution_centers)
            current.set(
                settled=result.boxes_settled - settled_before,
                split=len(next_frontier),
                plans_found=len(found),
                budget_used=budget.used,
                aborted=aborted,
            )
        level += 1
        if aborted:
            settled_everything = False
            break
        frontier = next_frontier

    result.witnesses = dict(found)
    result.complete = settled_everything and not budget.exhausted
    if not settled_everything:
        logger.warning(
            "discovery budget (%d calls) exhausted after %d subdivision "
            "levels with %d plans found; result flagged incomplete",
            budget.limit, level, len(found),
        )

    # --- Steps 3-4: usage-vector estimation per plan -------------------
    if estimate_usages:
        with span(
            "discovery.estimate_usages", plans=len(found)
        ) as current:
            for signature, witness in found.items():
                if budget.exhausted:
                    result.complete = False
                    break
                remaining = budget.remaining
                try:
                    estimate = estimate_usage_vector(
                        optimizer,
                        signature,
                        witness,
                        region,
                        rng=rng,
                    )
                except (RuntimeError, ValueError):
                    # Degenerate region of influence: not enough
                    # distinct sample points.  Record the witness
                    # without a usage estimate by skipping; discovery
                    # is then incomplete.
                    logger.debug(
                        "usage estimation failed for %s (degenerate "
                        "region of influence)", signature,
                    )
                    result.complete = False
                    continue
                spent = estimate.optimizer_calls
                if spent > remaining:
                    budget.used = budget.limit
                else:
                    budget.used += spent
                result.plans[signature] = estimate
            current.set(estimated=len(result.plans))
    result.optimizer_calls = budget.used
    METRICS.counter("discovery.runs").inc()
    METRICS.counter("discovery.optimizer_calls").inc(budget.used)
    METRICS.counter("discovery.boxes_examined").inc(
        result.boxes_examined
    )
    METRICS.counter("discovery.boxes_settled").inc(result.boxes_settled)
    METRICS.counter("discovery.plans_found").inc(len(found))
    logger.debug(
        "discovery: %d plans, %d/%d optimizer calls, %d boxes "
        "examined, complete=%s",
        len(found), budget.used, budget.limit,
        result.boxes_examined, result.complete,
    )
    return result
