"""Linear programming support for the geometric analyses.

The candidate-optimality test of Section 4.4 ("does there exist a
feasible cost vector under which plan *a* is no more expensive than any
other plan?") is an LP feasibility question.  Floating-point LP solvers
can mis-classify plans whose regions of influence are extremely thin, so
this module provides two interchangeable backends:

* :func:`solve_lp_exact` — a two-phase primal simplex over
  :class:`fractions.Fraction`, immune to rounding (Bland's rule, so it
  always terminates).
* :func:`solve_lp_scipy` — a thin wrapper over
  :func:`scipy.optimize.linprog` (HiGHS), much faster for large
  instances.

Both solve the same canonical form::

    maximize    c . x
    subject to  A x <= b,   x >= 0

and the convenience helpers (:func:`feasible_point`,
:func:`max_min_slack`) reduce the geometric questions to that form.
"""

from __future__ import annotations

from dataclasses import dataclass
from fractions import Fraction
from typing import Sequence

import numpy as np

__all__ = [
    "LPResult",
    "LPStatus",
    "solve_lp_exact",
    "solve_lp_scipy",
    "feasible_point",
    "max_min_slack",
]


class LPStatus:
    """Status constants for :class:`LPResult`."""

    OPTIMAL = "optimal"
    INFEASIBLE = "infeasible"
    UNBOUNDED = "unbounded"


@dataclass(frozen=True)
class LPResult:
    """Outcome of an LP solve.

    ``x`` and ``objective`` are ``None`` unless ``status`` is
    ``optimal``.  Exact solves return :class:`~fractions.Fraction`
    components; the scipy path returns floats.
    """

    status: str
    x: tuple | None = None
    objective: object | None = None

    @property
    def is_optimal(self) -> bool:
        return self.status == LPStatus.OPTIMAL


def _to_fractions(values: Sequence) -> list[Fraction]:
    return [Fraction(v) if not isinstance(v, Fraction) else v for v in values]


class _Tableau:
    """Dense simplex tableau over Fractions.

    Layout: ``rows`` is a list of ``m`` constraint rows, each of length
    ``n_total + 1`` (coefficients then RHS).  ``objective`` has length
    ``n_total + 1`` and stores the *negated* reduced costs so that a
    pivot loop can maximise by searching for positive entries.
    """

    def __init__(self, rows: list[list[Fraction]], objective: list[Fraction],
                 basis: list[int]) -> None:
        self.rows = rows
        self.objective = objective
        self.basis = basis

    @property
    def n_total(self) -> int:
        return len(self.objective) - 1

    def pivot(self, row: int, col: int) -> None:
        """Pivot the tableau around ``rows[row][col]``."""
        pivot_row = self.rows[row]
        pivot_value = pivot_row[col]
        inv = Fraction(1) / pivot_value
        self.rows[row] = [value * inv for value in pivot_row]
        pivot_row = self.rows[row]
        for i, other in enumerate(self.rows):
            if i == row:
                continue
            factor = other[col]
            if factor:
                self.rows[i] = [
                    o - factor * p for o, p in zip(other, pivot_row)
                ]
        factor = self.objective[col]
        if factor:
            self.objective = [
                o - factor * p for o, p in zip(self.objective, pivot_row)
            ]
        self.basis[row] = col

    def run(self, allowed: set[int]) -> str:
        """Run Bland's-rule simplex until optimal or unbounded.

        ``allowed`` restricts which columns may enter the basis (used to
        keep artificial variables out during phase 2).
        """
        while True:
            enter = None
            for col in range(self.n_total):
                if col in allowed and self.objective[col] > 0:
                    enter = col
                    break
            if enter is None:
                return LPStatus.OPTIMAL
            leave = None
            best_ratio = None
            for i, row in enumerate(self.rows):
                coeff = row[enter]
                if coeff > 0:
                    ratio = row[-1] / coeff
                    if (
                        best_ratio is None
                        or ratio < best_ratio
                        or (ratio == best_ratio
                            and self.basis[i] < self.basis[leave])
                    ):
                        best_ratio = ratio
                        leave = i
            if leave is None:
                return LPStatus.UNBOUNDED
            self.pivot(leave, enter)


def solve_lp_exact(
    c: Sequence, a_ub: Sequence[Sequence], b_ub: Sequence
) -> LPResult:
    """Solve ``max c.x  s.t.  A x <= b, x >= 0`` exactly.

    All inputs are converted to :class:`~fractions.Fraction`; floats are
    converted exactly (via their binary expansion), so callers who care
    about specific rationals should pass Fractions or ints.
    """
    c = _to_fractions(c)
    b = _to_fractions(b_ub)
    a = [_to_fractions(row) for row in a_ub]
    n = len(c)
    m = len(a)
    for row in a:
        if len(row) != n:
            raise ValueError("constraint matrix width does not match c")
    if len(b) != m:
        raise ValueError("b length does not match number of constraints")

    # Build rows with slack variables; flip rows with negative RHS and
    # add artificial variables for them.
    needs_artificial = [b_i < 0 for b_i in b]
    n_art = sum(needs_artificial)
    n_total = n + m + n_art
    rows: list[list[Fraction]] = []
    basis: list[int] = []
    art_col = n + m
    zero = Fraction(0)
    for i in range(m):
        row = [zero] * (n_total + 1)
        sign = Fraction(-1) if needs_artificial[i] else Fraction(1)
        for j in range(n):
            row[j] = sign * a[i][j]
        row[n + i] = sign  # slack
        row[-1] = sign * b[i]
        if needs_artificial[i]:
            row[art_col] = Fraction(1)
            basis.append(art_col)
            art_col += 1
        else:
            basis.append(n + i)
        rows.append(row)

    if n_art:
        # Phase 1: maximize -(sum of artificials).
        objective = [zero] * (n_total + 1)
        for col in range(n + m, n_total):
            objective[col] = Fraction(-1)
        tableau = _Tableau(rows, objective, basis)
        # Price out the artificial basis columns.
        for i, col in enumerate(tableau.basis):
            if col >= n + m:
                factor = tableau.objective[col]
                if factor:
                    tableau.objective = [
                        o - factor * r
                        for o, r in zip(tableau.objective, tableau.rows[i])
                    ]
        status = tableau.run(set(range(n_total)))
        if status != LPStatus.OPTIMAL or tableau.objective[-1] != 0:
            return LPResult(LPStatus.INFEASIBLE)
        # Drive any artificial variables out of the basis.
        for i, col in enumerate(list(tableau.basis)):
            if col >= n + m:
                pivot_col = next(
                    (
                        j
                        for j in range(n + m)
                        if tableau.rows[i][j] != 0
                    ),
                    None,
                )
                if pivot_col is not None:
                    tableau.pivot(i, pivot_col)
        rows = tableau.rows
        basis = tableau.basis

    # Phase 2 objective (negated reduced costs for maximisation).
    objective = [zero] * (n_total + 1)
    for j in range(n):
        objective[j] = c[j]
    tableau = _Tableau(rows, objective, basis)
    for i, col in enumerate(tableau.basis):
        factor = tableau.objective[col]
        if factor:
            tableau.objective = [
                o - factor * r
                for o, r in zip(tableau.objective, tableau.rows[i])
            ]
    allowed = set(range(n + m))  # artificials may not re-enter
    status = tableau.run(allowed)
    if status == LPStatus.UNBOUNDED:
        return LPResult(LPStatus.UNBOUNDED)
    x = [zero] * n
    for i, col in enumerate(tableau.basis):
        if col < n:
            x[col] = tableau.rows[i][-1]
    objective_value = -tableau.objective[-1]
    # ``objective[-1]`` holds -(current objective) after pricing out.
    return LPResult(LPStatus.OPTIMAL, tuple(x), objective_value)


def solve_lp_scipy(
    c: Sequence, a_ub: Sequence[Sequence], b_ub: Sequence
) -> LPResult:
    """Same canonical form as :func:`solve_lp_exact`, via HiGHS."""
    from scipy.optimize import linprog

    c = np.asarray(c, dtype=float)
    a_matrix = np.asarray(a_ub, dtype=float)
    b_vector = np.asarray(b_ub, dtype=float)
    bounds = [(0, None)] * len(c)
    result = linprog(
        -c, A_ub=a_matrix, b_ub=b_vector, bounds=bounds, method="highs"
    )
    if result.status == 4:
        # HiGHS presolve reports "infeasible OR unbounded" without
        # deciding which; disambiguate with presolve off.
        result = linprog(
            -c,
            A_ub=a_matrix,
            b_ub=b_vector,
            bounds=bounds,
            method="highs",
            options={"presolve": False},
        )
    if result.status == 2:
        # HiGHS occasionally labels unbounded primals "infeasible"
        # (dual infeasibility detected in presolve).  A zero-objective
        # solve settles feasibility for real.
        feasibility = linprog(
            np.zeros_like(c),
            A_ub=a_matrix,
            b_ub=b_vector,
            bounds=bounds,
            method="highs",
        )
        if feasibility.success:
            return LPResult(LPStatus.UNBOUNDED)
        return LPResult(LPStatus.INFEASIBLE)
    if result.status == 3:
        return LPResult(LPStatus.UNBOUNDED)
    if not result.success:  # pragma: no cover - numerical corner
        return LPResult(LPStatus.INFEASIBLE)
    return LPResult(
        LPStatus.OPTIMAL, tuple(result.x.tolist()), float(-result.fun)
    )


def max_min_slack(
    a_ge: Sequence[Sequence],
    b_ge: Sequence,
    lo: Sequence,
    hi: Sequence,
    exact: bool = False,
) -> LPResult:
    """Maximise the minimum slack of ``A x >= b`` over the box ``[lo, hi]``.

    Solves ``max s  s.t.  A x - s >= b, lo <= x <= hi, s <= 1`` after
    normalising every constraint row by its largest coefficient (query
    cost vectors span many orders of magnitude, which otherwise breaks
    the float solver's tolerances; normalisation leaves the feasible
    set for ``x`` unchanged).  The cap on ``s`` keeps the LP bounded.
    A non-negative optimal ``s`` means the system is feasible; a
    strictly positive one means feasible with margin (a
    full-dimensional region of influence).  The slack is a *normalised*
    margin, comparable across constraints.

    The returned ``x`` excludes the slack variable; ``objective`` is the
    optimal slack.
    """
    n = len(lo)
    if len(hi) != n:
        raise ValueError("lo/hi length mismatch")
    a = []
    b_norm = []
    for row, rhs in zip(a_ge, b_ge):
        row = list(row)
        if len(row) != n:
            raise ValueError("constraint width does not match box")
        if exact:
            # Fraction arithmetic needs no scaling; keep values exact.
            a.append(row)
            b_norm.append(rhs)
            continue
        scale = max((abs(float(v)) for v in row), default=0.0)
        scale = max(scale, abs(float(rhs)), 1.0)
        a.append([float(v) / scale for v in row])
        b_norm.append(float(rhs) / scale)
    b_ge = b_norm
    # Shift x = lo + y with 0 <= y <= hi - lo, variables (y, s).
    a_ub: list[list] = []
    b_ub: list = []
    for row, rhs in zip(a, b_ge):
        # row . (lo + y) - s >= rhs   ->   -row . y + s <= row . lo - rhs
        shift = sum(r * l for r, l in zip(row, lo))
        a_ub.append([-v for v in row] + [1])
        b_ub.append(shift - rhs)
    for j in range(n):
        bound_row = [0] * (n + 1)
        bound_row[j] = 1
        a_ub.append(bound_row)
        b_ub.append(hi[j] - lo[j])
    cap_row = [0] * (n + 1)
    cap_row[-1] = 1
    a_ub.append(cap_row)
    b_ub.append(1)
    c = [0] * n + [1]
    solver = solve_lp_exact if exact else solve_lp_scipy
    result = solver(c, a_ub, b_ub)
    if not result.is_optimal:
        return result
    x = tuple(
        l + y for l, y in zip(lo, result.x[:n])
    )
    return LPResult(LPStatus.OPTIMAL, x, result.objective)


def feasible_point(
    a_ge: Sequence[Sequence],
    b_ge: Sequence,
    lo: Sequence,
    hi: Sequence,
    exact: bool = False,
) -> tuple | None:
    """A point of ``{x : A x >= b, lo <= x <= hi}``, or ``None``.

    This is the primitive behind the candidate-optimality test: plan *a*
    with usage ``A`` is candidate optimal over a feasible box iff the
    system ``(B_j - A) . C >= 0`` for all rivals *b_j* has a solution in
    the box.
    """
    result = max_min_slack(a_ge, b_ge, lo, hi, exact=exact)
    if not result.is_optimal:
        return None
    slack = result.objective
    if slack is None or slack < 0:
        return None
    return result.x
