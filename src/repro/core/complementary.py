"""Complementary plans and their classification (Sections 5.5–5.6).

Two plans are **complementary** when one uses a resource the other does
not touch at all: there is an *i* with ``a_i > 0, b_i == 0`` or vice
versa.  Complementary candidate pairs are exactly the regime where the
constant Theorem 2 bound collapses and the quadratic Theorem 1 bound is
attainable — the mechanism behind the difference between Figures 5
and 6 of the paper.

Section 5.6 distinguishes three causes, which we recover from the
*kind* tag of the complementary dimensions:

* ``table`` dimensions  -> **table complementary** (plans touch
  different numbers of tuples of some table);
* ``index`` dimensions  -> **access path complementary** (same tuples,
  different access paths);
* ``temp`` dimensions   -> **temp complementary** (one plan spills to
  sorted runs / hash buckets, the other does not).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Sequence

from .bounds import ratio_extremes
from .resources import ResourceSpace
from .vectors import UsageVector

__all__ = [
    "are_complementary",
    "complementary_dimensions",
    "classify_pair",
    "PairAnalysis",
    "analyze_pair",
    "ComplementarityCensus",
    "census",
]

#: Mapping from resource kind to the paper's complementarity class.
_KIND_TO_CLASS = {
    "table": "table",
    "index": "access-path",
    "temp": "temp",
}


def complementary_dimensions(
    usage_a: UsageVector, usage_b: UsageVector, tol: float = 0.0
) -> tuple[int, ...]:
    """Dimensions where exactly one of the two plans has nonzero usage."""
    usage_a.space.require_same(usage_b.space)
    dims = []
    for i, (a_i, b_i) in enumerate(zip(usage_a.values, usage_b.values)):
        if (a_i > tol) != (b_i > tol):
            dims.append(i)
    return tuple(dims)


def are_complementary(
    usage_a: UsageVector, usage_b: UsageVector, tol: float = 0.0
) -> bool:
    """Section 5.5 definition of complementary query plans."""
    return bool(complementary_dimensions(usage_a, usage_b, tol))


def _touches_subject(
    usage: UsageVector, subject: str, tol: float
) -> bool:
    """Does the plan access table ``subject`` at all (data OR index)?"""
    space = usage.space
    for dim, resource in enumerate(space.resources):
        if resource.subject == subject and resource.kind in ("table", "index"):
            if usage.values[dim] > tol:
                return True
    return False


def classify_pair(
    usage_a: UsageVector,
    usage_b: UsageVector,
    tol: float = 0.0,
) -> frozenset[str]:
    """Complementarity classes of a pair (Section 5.6).

    Returns a frozenset drawn from ``{"table", "access-path", "temp",
    "other"}``; empty set = not complementary.  The classes follow the
    paper's definitions, not raw dimension kinds:

    * **table complementary** — one plan accesses no tuples of some
      table at all (neither its data nor its index dimensions);
    * **access path complementary** — both plans access the table's
      tuples, but through different paths (complementary in a data or
      index dimension while both touch the table);
    * **temp complementary** — complementary in a temp dimension
      (sorted runs / hash spill vs in-memory);
    * **other** — complementary in a dimension outside those classes
      (e.g. CPU).
    """
    space: ResourceSpace = usage_a.space
    classes = set()
    for dim in complementary_dimensions(usage_a, usage_b, tol):
        resource = space.resources[dim]
        kind = resource.kind
        if kind in ("table", "index") and resource.subject is not None:
            subject = resource.subject
            both_touch = _touches_subject(
                usage_a, subject, tol
            ) and _touches_subject(usage_b, subject, tol)
            classes.add("access-path" if both_touch else "table")
        else:
            classes.add(_KIND_TO_CLASS.get(kind, "other"))
    return frozenset(classes)


@dataclass(frozen=True)
class PairAnalysis:
    """Complete complementarity analysis of one pair of plans."""

    index_a: int
    index_b: int
    complementary: bool
    classes: frozenset[str]
    r_min: float
    r_max: float

    @property
    def max_ratio(self) -> float:
        """The larger of ``r_max`` and ``1/r_min`` (symmetric spread)."""
        inverse = math.inf if self.r_min == 0 else 1.0 / self.r_min
        return max(self.r_max, inverse)

    def near_complementary(self, threshold: float = 10.0) -> bool:
        """Ratio between corresponding elements exceeds ``threshold``.

        Section 8.2 of the paper counts pairs that are complementary *or*
        have ratios of more than an order of magnitude between
        corresponding usage elements; ``threshold=10`` reproduces that
        criterion.
        """
        return self.complementary or self.max_ratio > threshold


def analyze_pair(
    index_a: int,
    index_b: int,
    usage_a: UsageVector,
    usage_b: UsageVector,
    tol: float = 0.0,
) -> PairAnalysis:
    """Build a :class:`PairAnalysis` for two plans."""
    r_min, r_max = ratio_extremes(usage_a, usage_b, tol=tol)
    classes = classify_pair(usage_a, usage_b, tol=tol)
    return PairAnalysis(
        index_a=index_a,
        index_b=index_b,
        complementary=bool(classes),
        classes=classes,
        r_min=r_min,
        r_max=r_max,
    )


@dataclass
class ComplementarityCensus:
    """Aggregate pair statistics for a set of candidate optimal plans.

    This is the shape of the Section 8.2 results: how many pairs are
    complementary, of which classes, and how many are merely
    near-complementary (ratio > 10x).
    """

    n_plans: int = 0
    n_pairs: int = 0
    n_complementary: int = 0
    n_near_complementary: int = 0
    class_counts: dict[str, int] = field(default_factory=dict)
    pairs: list[PairAnalysis] = field(default_factory=list)

    @property
    def fraction_complementary(self) -> float:
        return self.n_complementary / self.n_pairs if self.n_pairs else 0.0

    @property
    def fraction_near_complementary(self) -> float:
        if not self.n_pairs:
            return 0.0
        return self.n_near_complementary / self.n_pairs

    def count(self, cls: str) -> int:
        return self.class_counts.get(cls, 0)


def census(
    usages: Sequence[UsageVector],
    tol: float = 0.0,
    near_threshold: float = 10.0,
) -> ComplementarityCensus:
    """Pairwise complementarity census over candidate optimal plans.

    Pairs are unordered; each is analysed once with the lower index as
    *a*.  ``near_threshold`` controls the near-complementary criterion
    (see :meth:`PairAnalysis.near_complementary`).
    """
    result = ComplementarityCensus(n_plans=len(usages))
    for i in range(len(usages)):
        for j in range(i + 1, len(usages)):
            analysis = analyze_pair(i, j, usages[i], usages[j], tol=tol)
            result.n_pairs += 1
            if analysis.complementary:
                result.n_complementary += 1
                for cls in analysis.classes:
                    result.class_counts[cls] = (
                        result.class_counts.get(cls, 0) + 1
                    )
            if analysis.near_complementary(near_threshold):
                result.n_near_complementary += 1
            result.pairs.append(analysis)
    return result
