"""The feasible cost region (Section 3.3) and its vertex structure.

The paper bounds the optimizer's error by assuming the *true* resource
cost vector lies in a finite region around the *estimated* one.  In the
experiments (Section 6.1) that region is the box obtained by letting
each resource cost ``c_i`` vary multiplicatively between ``c_i / delta``
and ``c_i * delta``.

Two refinements from the paper are supported:

* **Fixed dimensions** — costs the sweep does not vary (none by default).
* **Variation groups** — several dimensions sharing a single multiplier.
  Section 8.1.2 keeps each disk's seek and transfer parameters "in a
  fixed ratio to reduce the running time of the experiment"; that is a
  two-dimension variation group.

By Observation 2, the worst-case global relative cost over the region is
attained at one of its vertices, so the class exposes both streaming
(:meth:`vertices`) and vectorised, chunked (:meth:`vertex_batches`)
vertex enumeration.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Sequence

import numpy as np

from .resources import ResourceSpace
from .vectors import CostVector

__all__ = ["VariationGroup", "FeasibleRegion"]


@dataclass(frozen=True)
class VariationGroup:
    """A set of dimensions that share one multiplicative error factor."""

    name: str
    indices: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.indices:
            raise ValueError("variation group must cover >= 1 dimension")
        if len(set(self.indices)) != len(self.indices):
            raise ValueError("variation group has duplicate indices")


def _default_groups(space: ResourceSpace) -> tuple[VariationGroup, ...]:
    return tuple(
        VariationGroup(name, (i,)) for i, name in enumerate(space.names)
    )


class FeasibleRegion:
    """The box ``{C : center_i/delta <= C_i <= center_i * delta}``.

    Parameters
    ----------
    center:
        The optimizer's estimated cost vector ``C_0``.
    delta:
        Maximum multiplicative error, ``>= 1``.
    groups:
        Variation groups.  Defaults to one group per dimension (fully
        independent variation).  Dimensions covered by no group are held
        fixed at their center value.
    """

    def __init__(
        self,
        center: CostVector,
        delta: float,
        groups: Sequence[VariationGroup] | None = None,
    ) -> None:
        if delta < 1.0:
            raise ValueError("delta must be >= 1 (got %r)" % delta)
        space = center.space
        if groups is None:
            groups = _default_groups(space)
        covered: set[int] = set()
        for group in groups:
            for index in group.indices:
                if not 0 <= index < space.dimension:
                    raise ValueError(
                        f"group {group.name!r} index {index} out of range"
                    )
                if index in covered:
                    raise ValueError(
                        f"dimension {index} appears in multiple groups"
                    )
                covered.add(index)
        self._center = center
        self._delta = float(delta)
        self._groups = tuple(groups)
        self._fixed = tuple(
            i for i in range(space.dimension) if i not in covered
        )

    # ------------------------------------------------------------------
    @property
    def space(self) -> ResourceSpace:
        return self._center.space

    @property
    def center(self) -> CostVector:
        return self._center

    @property
    def delta(self) -> float:
        return self._delta

    @property
    def groups(self) -> tuple[VariationGroup, ...]:
        return self._groups

    @property
    def fixed_dimensions(self) -> tuple[int, ...]:
        """Dimensions held at their center value."""
        return self._fixed

    @property
    def n_vertices(self) -> int:
        """``2 ** g`` where ``g`` is the number of variation groups."""
        return 1 << len(self._groups)

    def with_delta(self, delta: float) -> "FeasibleRegion":
        """Same center and groups, different error bound."""
        return FeasibleRegion(self._center, delta, self._groups)

    # ------------------------------------------------------------------
    # Box bounds
    # ------------------------------------------------------------------
    def lower(self) -> np.ndarray:
        """Componentwise lower corner of the box."""
        lo = self._center.values.copy()
        for group in self._groups:
            for index in group.indices:
                lo[index] /= self._delta
        return lo

    def upper(self) -> np.ndarray:
        """Componentwise upper corner of the box."""
        hi = self._center.values.copy()
        for group in self._groups:
            for index in group.indices:
                hi[index] *= self._delta
        return hi

    def contains(self, cost: CostVector, rel_tol: float = 1e-12) -> bool:
        """True if ``cost`` lies in the region (with relative slack).

        Grouped dimensions must also share (approximately) the same
        multiplier, because a variation group models a *single* error
        factor.
        """
        self.space.require_same(cost.space)
        values = cost.values
        lo = self.lower() * (1 - rel_tol)
        hi = self.upper() * (1 + rel_tol)
        if not (np.all(values >= lo) and np.all(values <= hi)):
            return False
        center = self._center.values
        for index in self._fixed:
            if not np.isclose(values[index], center[index], rtol=rel_tol):
                return False
        for group in self._groups:
            multipliers = values[list(group.indices)] / center[
                list(group.indices)
            ]
            if not np.allclose(multipliers, multipliers[0],
                               rtol=max(rel_tol, 1e-9)):
                return False
        return True

    # ------------------------------------------------------------------
    # Vertices
    # ------------------------------------------------------------------
    def vertex(self, vertex_id: int) -> CostVector:
        """Vertex where group *k* is at ``delta`` iff bit *k* is set."""
        if not 0 <= vertex_id < self.n_vertices:
            raise ValueError("vertex id out of range")
        values = self._center.values.copy()
        for bit, group in enumerate(self._groups):
            factor = self._delta if (vertex_id >> bit) & 1 else 1.0 / self._delta
            for index in group.indices:
                values[index] *= factor
        return CostVector(self.space, values)

    def vertices(self) -> Iterator[CostVector]:
        """All ``2**g`` vertices.  Prefer :meth:`vertex_batches` in bulk."""
        for vertex_id in range(self.n_vertices):
            yield self.vertex(vertex_id)

    def vertex_batches(
        self, batch_size: int = 4096
    ) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Yield ``(vertex_ids, cost_matrix)`` chunks.

        ``cost_matrix`` has one vertex per row and the full space
        dimension in columns — ready for ``matrix @ usage.T`` sweeps.
        """
        g = len(self._groups)
        center = self._center.values
        # Per-group incidence: group_map[k, j] == 1 iff dim j in group k.
        group_map = np.zeros((g, self.space.dimension))
        for k, group in enumerate(self._groups):
            group_map[k, list(group.indices)] = 1.0
        log_delta = np.log(self._delta) if self._delta > 1.0 else 0.0
        for start in range(0, self.n_vertices, batch_size):
            ids = np.arange(start, min(start + batch_size, self.n_vertices))
            bits = (ids[:, None] >> np.arange(g)[None, :]) & 1
            signs = 2.0 * bits - 1.0  # -1 -> 1/delta, +1 -> delta
            log_mult = (signs * log_delta) @ group_map
            yield ids, center[None, :] * np.exp(log_mult)

    # ------------------------------------------------------------------
    # Sampling
    # ------------------------------------------------------------------
    def sample(
        self, rng: np.random.Generator, count: int = 1
    ) -> list[CostVector]:
        """Log-uniform random cost vectors from the region.

        Multipliers are drawn log-uniformly in ``[1/delta, delta]`` per
        variation group, matching the multiplicative error model.
        """
        results = []
        g = len(self._groups)
        for _ in range(count):
            values = self._center.values.copy()
            if self._delta > 1.0 and g:
                exponents = rng.uniform(-1.0, 1.0, size=g)
                for exponent, group in zip(exponents, self._groups):
                    factor = self._delta ** exponent
                    for index in group.indices:
                        values[index] *= factor
            results.append(CostVector(self.space, values))
        return results

    def sample_matrix(
        self, rng: np.random.Generator, count: int
    ) -> np.ndarray:
        """Vectorised sampling: ``count`` log-uniform rows at once.

        Consumes the identical random stream as :meth:`sample` (one
        batched ``uniform`` draw fills the same doubles in the same
        order), so a seeded generator gives the same sample *points*
        either way; only the per-point Python loop is gone.  Values may
        differ from :meth:`sample` in the last ulp because the
        multiplier ``delta ** e`` is evaluated with the vectorised
        ``np.power`` kernel — use one method or the other consistently
        when bitwise stability matters.
        """
        if count < 0:
            raise ValueError("count must be >= 0")
        values = np.tile(self._center.values, (count, 1))
        g = len(self._groups)
        if self._delta > 1.0 and g and count:
            exponents = rng.uniform(-1.0, 1.0, size=(count, g))
            for k, group in enumerate(self._groups):
                factor = self._delta ** exponents[:, k]
                for index in group.indices:
                    values[:, index] *= factor
        return values

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"FeasibleRegion(delta={self._delta}, groups="
            f"{[g.name for g in self._groups]}, fixed={self._fixed})"
        )
