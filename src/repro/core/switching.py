"""Per-parameter switching distances (plan robustness radii).

The paper's motivation is autonomic monitoring: storage parameters
drift, and the optimizer should be told *when it matters*.  This
module answers the operational question exactly: for each variation
group (device), how far can its cost drift — up or down — before the
currently-optimal plan stops being optimal?

Along a one-parameter family ``C(m)`` that multiplies one group's
dimensions by ``m`` and leaves the rest at the center, every plan's
total cost is affine in ``m``::

    T_i(m) = a_i + b_i * m
    a_i = sum of usage over non-group dims (at center costs)
    b_i = sum of usage over group dims (at center costs)

so the first switchover in each direction has the closed form
``m* = (a_0 - a_j) / (b_j - b_0)`` over rival plans *j* — no search
required.  A plan's *robustness radius* for a parameter is
``min(up_factor, 1/down_factor)``: the multiplicative drift it
tolerates in either direction.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .feasible import VariationGroup
from .vectors import CostVector, UsageVector

__all__ = ["SwitchingDistance", "switching_distance", "switching_distances"]


@dataclass(frozen=True)
class SwitchingDistance:
    """Plan-switch thresholds for one variation group.

    ``up_factor`` (> 1, or ``inf``): smallest multiplier on the
    group's costs at which some rival plan overtakes the initial plan.
    ``down_factor`` (< 1, or ``0.0``): largest such multiplier below
    one.  The overtaking plan indices identify who wins just past each
    threshold (``None`` when no switch happens in that direction).
    """

    group: str
    up_factor: float
    up_plan_index: int | None
    down_factor: float
    down_plan_index: int | None

    @property
    def robustness_radius(self) -> float:
        """Multiplicative drift tolerated in the worse direction."""
        down = math.inf if self.down_factor == 0.0 else 1.0 / self.down_factor
        return min(self.up_factor, down)

    @property
    def insensitive(self) -> bool:
        """True if no drift of this parameter alone changes the plan."""
        return math.isinf(self.up_factor) and self.down_factor == 0.0


def _affine_coefficients(
    usages: Sequence[UsageVector],
    center: CostVector,
    group: VariationGroup,
) -> tuple[np.ndarray, np.ndarray]:
    """Split each plan's center cost into off-group and group parts."""
    matrix = np.vstack([usage.values for usage in usages])
    center_values = center.values
    mask = np.zeros(len(center_values), dtype=bool)
    mask[list(group.indices)] = True
    group_part = matrix[:, mask] @ center_values[mask]
    off_part = matrix[:, ~mask] @ center_values[~mask]
    return off_part, group_part


def switching_distance(
    initial_index: int,
    usages: Sequence[UsageVector],
    center: CostVector,
    group: VariationGroup,
    rel_tol: float = 1e-12,
) -> SwitchingDistance:
    """Exact switch thresholds for one group (closed form).

    ``initial_index`` must be optimal at ``center``; a ``ValueError``
    is raised otherwise (a stale initial plan would make the thresholds
    meaningless).
    """
    a, b = _affine_coefficients(usages, center, group)
    a0, b0 = a[initial_index], b[initial_index]
    totals = a + b
    best = totals.min()
    if totals[initial_index] > best * (1 + 1e-9):
        raise ValueError(
            "initial plan is not optimal at the center cost vector"
        )
    up = math.inf
    up_plan: int | None = None
    down = 0.0
    down_plan: int | None = None
    for j in range(len(usages)):
        if j == initial_index:
            continue
        db = b[j] - b0
        da = a0 - a[j]
        if abs(db) <= rel_tol * max(abs(b0), abs(b[j]), 1.0):
            continue  # parallel lines: never cross
        crossing = da / db
        if crossing <= 0:
            continue
        if abs(crossing - 1.0) <= rel_tol:
            # Rival tied with the initial plan at the center: it takes
            # over immediately on its winning side.
            if db < 0 and up > 1.0:
                up, up_plan = 1.0, j
            elif db > 0 and down < 1.0:
                down, down_plan = 1.0, j
            continue
        if crossing > 1.0 + rel_tol:
            if crossing < up and db < 0:
                # Rival gets cheaper as m grows beyond the crossing.
                up = crossing
                up_plan = j
        elif crossing < 1.0 - rel_tol:
            if crossing > down and db > 0:
                # Rival gets cheaper as m shrinks below the crossing.
                down = crossing
                down_plan = j
    return SwitchingDistance(
        group=group.name,
        up_factor=up,
        up_plan_index=up_plan,
        down_factor=down,
        down_plan_index=down_plan,
    )


def switching_distances(
    initial_index: int,
    usages: Sequence[UsageVector],
    center: CostVector,
    groups: Sequence[VariationGroup],
) -> list[SwitchingDistance]:
    """Switch thresholds for every variation group."""
    return [
        switching_distance(initial_index, usages, center, group)
        for group in groups
    ]
