"""Worst-case sensitivity analysis (Section 6.1, Figures 5–7).

The experiment: fix an *initial* cost vector ``C_0`` (the optimizer's
estimates) and the *initial plan* ``p_0`` that is optimal under it.  Let
every resource cost drift independently by a multiplicative factor in
``[1/delta, delta]`` and report the worst global relative cost of
``p_0`` — "how many times slower than optimal can the optimizer's choice
get if its estimates are off by up to ``delta``".

Observation 2 reduces the search over the feasible box to its vertices:
``GTC_rel(a, C) = max_b (A . C) / (B . C)`` is a max of quasiconvex
ratios of linear functions, hence quasiconvex, hence maximised at an
extreme point.  The sweep is therefore an exact vectorised enumeration
of ``2**g`` vertices (``g`` = number of variation groups), evaluated in
chunks against the candidate-plan usage matrix.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..obs.decisions import DECISIONS
from .costmodel import usage_matrix
from .feasible import FeasibleRegion
from .planindex import PlanIndex
from .vectors import CostVector, UsageVector

__all__ = [
    "WorstCasePoint",
    "WorstCaseCurve",
    "worst_case_gtc",
    "worst_case_curve",
]


@dataclass(frozen=True)
class WorstCasePoint:
    """Worst-case GTC at a single error level ``delta``."""

    delta: float
    gtc: float
    vertex_id: int
    worst_cost: CostVector


@dataclass(frozen=True)
class WorstCaseCurve:
    """One line of Figure 5/6/7: worst GTC as a function of ``delta``."""

    label: str
    initial_plan_index: int
    points: tuple[WorstCasePoint, ...]

    @property
    def deltas(self) -> tuple[float, ...]:
        return tuple(p.delta for p in self.points)

    @property
    def gtcs(self) -> tuple[float, ...]:
        return tuple(p.gtc for p in self.points)

    def final_gtc(self) -> float:
        """Worst-case GTC at the largest delta swept."""
        return self.points[-1].gtc

    def is_bounded(self, plateau_tol: float = 0.05) -> bool:
        """Heuristic: does the curve flatten to a constant?

        Compares the last two sweep points; a relative growth below
        ``plateau_tol`` counts as a plateau (Theorem 2 regime), anything
        faster as unbounded growth (Theorem 1 regime).  Figures 5–7 are
        classified with exactly this rule in the experiment reports.
        """
        if len(self.points) < 2:
            return True
        last = self.points[-1].gtc
        previous = self.points[-2].gtc
        if previous <= 0:
            return True
        return (last / previous - 1.0) <= plateau_tol


def worst_case_gtc(
    initial: UsageVector,
    candidates: Sequence[UsageVector],
    region: FeasibleRegion,
    batch_size: int = 4096,
    index: "PlanIndex | None" = None,
    reference: "int | None" = None,
) -> WorstCasePoint:
    """Exact worst-case GTC of ``initial`` over ``region``.

    ``candidates`` must include every plan that can be optimal anywhere
    in the region (see :mod:`repro.core.candidates`); the optimum at
    each vertex is then the cheapest candidate.  The initial plan itself
    need not be among the candidates — if it is optimal somewhere, it
    should be, and GTC at such vertices is 1.

    ``index`` may be an active :class:`~repro.core.planindex.PlanIndex`
    built over exactly ``usage_matrix(candidates)``: the per-vertex
    optimum is then found by point location (winner row dot product)
    instead of the dense ``costs @ matrix.T`` sweep.  The winner totals
    are exact dot products either way.

    With ``--decisions`` the full totals matrix is materialized on both
    paths and handed to :data:`~repro.obs.decisions.DECISIONS`
    (``reference`` marks the initial plan's row for wrong-choice
    accounting); each path's ``optima`` stays bitwise identical to the
    undecorated run — the index path's winners equal the dense argmin
    by the index contract.
    """
    matrix = usage_matrix(candidates)
    initial.space.require_same(candidates[0].space)
    initial_row = initial.values
    use_index = index is not None and index.active
    capture = DECISIONS.enabled
    best_gtc = -np.inf
    best_vertex = -1
    for ids, costs in region.vertex_batches(batch_size):
        if use_index and not capture:
            winners = index.owner_batch(costs)
            optima = np.einsum(
                "rd,rd->r", costs, matrix[winners], optimize=True
            )
        else:
            totals = costs @ matrix.T        # (batch, m)
            if capture:
                with np.errstate(invalid="ignore"):
                    winners = np.argmin(totals, axis=1)
                DECISIONS.observe_batch(
                    matrix, costs, totals, winners,
                    reference=reference,
                    path="dense_capture" if use_index else "dense",
                )
                if use_index:
                    optima = np.einsum(
                        "rd,rd->r", costs, matrix[winners],
                        optimize=True,
                    )
                else:
                    optima = totals.min(axis=1)
            else:
                optima = totals.min(axis=1)  # cheapest per vertex
        initial_totals = costs @ initial_row
        with np.errstate(divide="ignore", invalid="ignore"):
            gtc = np.where(optima > 0, initial_totals / optima, np.inf)
        local_arg = int(np.argmax(gtc))
        if gtc[local_arg] > best_gtc:
            best_gtc = float(gtc[local_arg])
            best_vertex = int(ids[local_arg])
    worst_cost = region.vertex(best_vertex)
    return WorstCasePoint(
        delta=region.delta,
        gtc=best_gtc,
        vertex_id=best_vertex,
        worst_cost=worst_cost,
    )


def worst_case_curve(
    initial: UsageVector,
    candidates: Sequence[UsageVector],
    base_region: FeasibleRegion,
    deltas: Sequence[float],
    label: str = "",
    initial_plan_index: int = -1,
    batch_size: int = 4096,
    index: PlanIndex | None = None,
) -> WorstCaseCurve:
    """Sweep :func:`worst_case_gtc` over a grid of error levels.

    ``base_region`` supplies the center cost vector and variation
    groups; its own delta is ignored in favour of each entry of
    ``deltas``.  ``index`` is forwarded to every per-delta sweep (the
    index is scale-free, so one index serves all error levels).
    """
    points = []
    reference = initial_plan_index if initial_plan_index >= 0 else None
    for delta in deltas:
        region = base_region.with_delta(delta)
        points.append(
            worst_case_gtc(
                initial, candidates, region, batch_size, index=index,
                reference=reference,
            )
        )
    return WorstCaseCurve(
        label=label,
        initial_plan_index=initial_plan_index,
        points=tuple(points),
    )
