"""Equicost lines, switchover planes and half-spaces (Sections 4.1–4.3).

For two plans with usage vectors ``A`` and ``B`` the *switchover plane*
is the hyperplane through the origin with normal ``A - B``::

    Switchover(A, B) = { C : (A - B) . C = 0 }

On one side (the *A-dominated half-space*, ``(A - B) . C > 0``) plan *a*
is the more expensive of the two; on the other side plan *b* is.  The
plane itself is where the two plans cost exactly the same.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .lp import feasible_point
from .vectors import CostVector, UsageVector

__all__ = [
    "Side",
    "switchover_normal",
    "SwitchoverPlane",
    "equicost_value",
    "on_same_equicost_line",
    "switchover_point_in_box",
]


class Side:
    """Which half-space a cost vector falls in, relative to a plane."""

    A_DOMINATED = "a-dominated"  # plan a is MORE expensive here
    B_DOMINATED = "b-dominated"  # plan b is MORE expensive here
    ON_PLANE = "on-plane"


def switchover_normal(usage_a: UsageVector, usage_b: UsageVector) -> np.ndarray:
    """The normal ``A - B`` of the switchover plane of two plans."""
    return usage_a - usage_b


@dataclass(frozen=True)
class SwitchoverPlane:
    """The switchover plane of two plans (Section 4.2).

    Degenerate case: if ``A == B`` the "plane" is all of space; the
    constructor rejects that because every cost vector would be "on" it
    and the half-space classification would be meaningless.
    """

    usage_a: UsageVector
    usage_b: UsageVector

    def __post_init__(self) -> None:
        self.usage_a.space.require_same(self.usage_b.space)
        if np.array_equal(self.usage_a.values, self.usage_b.values):
            raise ValueError(
                "plans with identical usage vectors have no switchover plane"
            )

    @property
    def normal(self) -> np.ndarray:
        return switchover_normal(self.usage_a, self.usage_b)

    def signed_margin(self, cost: CostVector) -> float:
        """``(A - B) . C``: positive means *a* is more expensive."""
        self.usage_a.space.require_same(cost.space)
        return float(self.normal @ cost.values)

    def contains(self, cost: CostVector, rel_tol: float = 1e-9) -> bool:
        """True if ``cost`` lies on the plane (relative tolerance).

        The tolerance is scaled by the magnitude of the two total costs
        so the test is invariant under Observation 1 scaling.
        """
        margin = self.signed_margin(cost)
        scale = max(self.usage_a.dot(cost), self.usage_b.dot(cost), 1e-300)
        return abs(margin) <= rel_tol * scale

    def side(self, cost: CostVector, rel_tol: float = 1e-9) -> str:
        """Classify ``cost`` into a half-space (Section 4.3)."""
        if self.contains(cost, rel_tol):
            return Side.ON_PLANE
        if self.signed_margin(cost) > 0:
            return Side.A_DOMINATED
        return Side.B_DOMINATED


def equicost_value(usage: UsageVector, cost: CostVector) -> float:
    """The total cost identifying the equicost line through ``usage``.

    Section 4.1: all usage vectors ``U'`` with ``U' . C`` equal to this
    value lie on the same equicost line (hyperplane orthogonal to ``C``).
    """
    return usage.dot(cost)


def on_same_equicost_line(
    usage_a: UsageVector,
    usage_b: UsageVector,
    cost: CostVector,
    rel_tol: float = 1e-9,
) -> bool:
    """True if the two usage vectors cost the same under ``cost``."""
    total_a = usage_a.dot(cost)
    total_b = usage_b.dot(cost)
    scale = max(abs(total_a), abs(total_b), 1e-300)
    return abs(total_a - total_b) <= rel_tol * scale


def switchover_point_in_box(
    usage_a: UsageVector,
    usage_b: UsageVector,
    lower: Sequence[float],
    upper: Sequence[float],
    others: Sequence[UsageVector] = (),
    exact: bool = False,
) -> CostVector | None:
    """A cost vector in ``[lower, upper]`` where plans *a* and *b* tie.

    If ``others`` is given, the point must additionally make *a* (and
    hence *b*) no more expensive than every other plan — i.e. it lies on
    the shared facet of the two plans' regions of influence.  Returns
    ``None`` when no such point exists.  Used by the black-box discovery
    algorithm to probe switchover boundaries for undiscovered plans.
    """
    space = usage_a.space
    space.require_same(usage_b.space)
    normal = switchover_normal(usage_a, usage_b)
    rows: list[list[float]] = [normal.tolist(), (-normal).tolist()]
    rhs: list[float] = [0.0, 0.0]
    for other in others:
        space.require_same(other.space)
        rows.append((other - usage_a).tolist())
        rhs.append(0.0)
    point = feasible_point(rows, rhs, list(lower), list(upper), exact=exact)
    if point is None:
        return None
    return CostVector(space, [float(v) for v in point])
