"""Candidate optimal plans (Section 4.4).

Of the many plans an optimizer enumerates, only a subset can ever become
optimal as storage access costs vary.  A plan *a* is **candidate
optimal** over a feasible cost region iff there exists a feasible cost
vector ``C`` with ``A . C <= B . C`` for every rival plan *b*.

Two facts make the test cheap:

* A plan that lies in the positive first quadrant relative to another
  plan (``A' >= A`` componentwise, ``A' != A``) is *dominated* and can be
  discarded without solving anything (Figure 3 of the paper).
* For the survivors the question is an LP feasibility problem over the
  feasible region box, solved by :mod:`repro.core.lp`.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .feasible import FeasibleRegion
from .lp import feasible_point, max_min_slack
from .vectors import UsageVector

__all__ = [
    "pareto_undominated_indices",
    "is_candidate_optimal",
    "candidate_optimal_indices",
    "witness_cost_vector",
]


def pareto_undominated_indices(
    usages: Sequence[UsageVector] | np.ndarray, tol: float = 0.0
) -> list[int]:
    """Indices of plans not dominated componentwise by any other plan.

    Duplicates are kept once (the first occurrence survives).  ``tol``
    is an absolute slack for float comparisons: *a* dominates *b* when
    ``A <= B + tol`` componentwise and the vectors differ by more than
    ``tol`` somewhere.
    """
    if isinstance(usages, np.ndarray):
        matrix = usages
    else:
        matrix = np.vstack([u.values for u in usages])
    m = matrix.shape[0]
    keep: list[int] = []
    for i in range(m):
        row = matrix[i]
        dominated = False
        for j in range(m):
            if i == j:
                continue
            other = matrix[j]
            if np.all(other <= row + tol):
                if np.any(other < row - tol):
                    dominated = True
                    break
                # Componentwise equal within tol: deduplicate, keep the
                # earliest index.
                if j < i:
                    dominated = True
                    break
        if not dominated:
            keep.append(i)
    return keep


def _rival_rows(
    matrix: np.ndarray, index: int
) -> tuple[list[list[float]], list[float]]:
    """Constraint rows ``(B_j - A) . C >= 0`` for the LP test."""
    rows: list[list[float]] = []
    for j in range(matrix.shape[0]):
        if j == index:
            continue
        rows.append((matrix[j] - matrix[index]).tolist())
    rhs = [0.0] * len(rows)
    return rows, rhs


def is_candidate_optimal(
    index: int,
    usages: Sequence[UsageVector],
    region: FeasibleRegion,
    exact: bool = False,
) -> bool:
    """Is plan ``index`` optimal somewhere in ``region``?

    Variation groups of the region are honoured: grouped dimensions
    share one multiplier, which shrinks the LP to one variable per
    group (this is exactly the structure of the paper's Section 8.1.2
    experiment, where each disk's seek/transfer costs move together).
    """
    return witness_cost_vector(index, usages, region, exact=exact) is not None


def witness_cost_vector(
    index: int,
    usages: Sequence[UsageVector],
    region: FeasibleRegion,
    exact: bool = False,
):
    """A feasible cost vector making plan ``index`` optimal, or ``None``.

    The returned value is a :class:`~repro.core.vectors.CostVector`.
    """
    from .vectors import CostVector

    matrix = np.vstack([u.values for u in usages])
    space = usages[0].space
    region.space.require_same(space)

    # Reduce to multiplier space: one variable per variation group, so
    # grouped dimensions provably share a factor.  Fixed dimensions
    # contribute constants.
    groups = region.groups
    center = region.center.values
    g = len(groups)
    diff = matrix - matrix[index]  # rows: B_j - A
    rows: list[list[float]] = []
    rhs: list[float] = []
    fixed = list(region.fixed_dimensions)
    for j in range(matrix.shape[0]):
        if j == index:
            continue
        coeffs = []
        for group in groups:
            coeffs.append(
                float(sum(diff[j, k] * center[k] for k in group.indices))
            )
        constant = float(sum(diff[j, k] * center[k] for k in fixed))
        rows.append(coeffs)
        rhs.append(-constant)
    lo = [1.0 / region.delta] * g
    hi = [region.delta] * g
    point = feasible_point(rows, rhs, lo, hi, exact=exact)
    if point is None:
        return None
    values = center.copy()
    for factor, group in zip(point, groups):
        for k in group.indices:
            values[k] = center[k] * float(factor)
    return CostVector(space, values)


def candidate_optimal_indices(
    usages: Sequence[UsageVector],
    region: FeasibleRegion,
    exact: bool = False,
    prefilter_tol: float = 0.0,
) -> list[int]:
    """All candidate optimal plans among ``usages`` over ``region``.

    Componentwise-dominated plans are discarded first (sound for any
    region in the positive orthant), then each survivor gets an LP
    feasibility test.
    """
    survivors = pareto_undominated_indices(usages, tol=prefilter_tol)
    subset = [usages[i] for i in survivors]
    result = []
    for local_index, global_index in enumerate(survivors):
        if is_candidate_optimal(local_index, subset, region, exact=exact):
            result.append(global_index)
    return result


def region_of_influence_margin(
    index: int,
    usages: Sequence[UsageVector],
    region: FeasibleRegion,
    exact: bool = False,
) -> float | None:
    """Best slack of the system defining plan ``index``'s region.

    Positive margin = the region of influence has nonempty interior
    within the feasible box; zero = the plan is optimal only on a
    lower-dimensional boundary; ``None`` = not candidate optimal at all.
    The slack is measured in multiplier space, so its magnitude is
    comparable across plans.
    """
    matrix = np.vstack([u.values for u in usages])
    groups = region.groups
    center = region.center.values
    diff = matrix - matrix[index]
    rows = []
    rhs = []
    fixed = list(region.fixed_dimensions)
    for j in range(matrix.shape[0]):
        if j == index:
            continue
        coeffs = [
            float(sum(diff[j, k] * center[k] for k in group.indices))
            for group in groups
        ]
        constant = float(sum(diff[j, k] * center[k] for k in fixed))
        rows.append(coeffs)
        rhs.append(-constant)
    lo = [1.0 / region.delta] * len(groups)
    hi = [region.delta] * len(groups)
    result = max_min_slack(rows, rhs, lo, hi, exact=exact)
    if not result.is_optimal or result.objective is None:
        return None
    margin = float(result.objective)
    return margin if margin >= 0 else None
