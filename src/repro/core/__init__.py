"""The paper's vector-space sensitivity framework (Sections 3–6).

Everything in this package is optimizer-agnostic: it reasons about
usage vectors, cost vectors and the geometry between them.  The query
optimizer substrate that *produces* usage vectors lives in
:mod:`repro.optimizer`.
"""

from .blackbox import BlackBoxOptimizer, PlanChoice, TabularBlackBox
from .bounds import (
    corollary_constant_bound,
    ratio_extremes,
    theorem1_interval,
    theorem1_plan_bound,
    theorem2_interval,
)
from .candidates import (
    candidate_optimal_indices,
    is_candidate_optimal,
    pareto_undominated_indices,
    witness_cost_vector,
)
from .complementary import (
    ComplementarityCensus,
    PairAnalysis,
    analyze_pair,
    are_complementary,
    census,
    classify_pair,
)
from .costmodel import (
    global_relative_cost,
    optimal_plan,
    optimal_plan_index,
    relative_total_cost,
    total_cost,
    usage_matrix,
)
from .diagram import PlanDiagram, plan_diagram
from .envelope import EnvelopePiece, PlanEnvelope, lower_envelope
from .discovery import DiscoveryResult, discover_candidate_plans
from .estimation import (
    UsageEstimate,
    collect_plan_samples,
    estimate_usage_vector,
    gaussian_solve,
    least_squares_usage,
    validate_estimate,
)
from .feasible import FeasibleRegion, VariationGroup
from .geometry import (
    Side,
    SwitchoverPlane,
    equicost_value,
    on_same_equicost_line,
    switchover_normal,
    switchover_point_in_box,
)
from .planindex import PlanIndex, dense_owner_batch
from .regions import InfluenceDiagram, RegionOfInfluence
from .resources import Resource, ResourceSpace, ResourceSpaceMismatchError
from .switching import (
    SwitchingDistance,
    switching_distance,
    switching_distances,
)
from .vectors import CostVector, UsageVector
from .worstcase import (
    WorstCaseCurve,
    WorstCasePoint,
    worst_case_curve,
    worst_case_gtc,
)

__all__ = [
    "BlackBoxOptimizer",
    "PlanChoice",
    "TabularBlackBox",
    "ComplementarityCensus",
    "CostVector",
    "DiscoveryResult",
    "FeasibleRegion",
    "InfluenceDiagram",
    "PairAnalysis",
    "EnvelopePiece",
    "PlanDiagram",
    "PlanEnvelope",
    "PlanIndex",
    "RegionOfInfluence",
    "Resource",
    "ResourceSpace",
    "ResourceSpaceMismatchError",
    "Side",
    "SwitchoverPlane",
    "SwitchingDistance",
    "UsageEstimate",
    "UsageVector",
    "VariationGroup",
    "WorstCaseCurve",
    "WorstCasePoint",
    "analyze_pair",
    "are_complementary",
    "candidate_optimal_indices",
    "census",
    "classify_pair",
    "collect_plan_samples",
    "corollary_constant_bound",
    "dense_owner_batch",
    "discover_candidate_plans",
    "equicost_value",
    "estimate_usage_vector",
    "gaussian_solve",
    "global_relative_cost",
    "is_candidate_optimal",
    "least_squares_usage",
    "lower_envelope",
    "on_same_equicost_line",
    "optimal_plan",
    "optimal_plan_index",
    "pareto_undominated_indices",
    "plan_diagram",
    "ratio_extremes",
    "relative_total_cost",
    "switchover_normal",
    "switching_distance",
    "switching_distances",
    "switchover_point_in_box",
    "theorem1_interval",
    "theorem1_plan_bound",
    "theorem2_interval",
    "total_cost",
    "usage_matrix",
    "validate_estimate",
    "witness_cost_vector",
    "worst_case_curve",
    "worst_case_gtc",
]
