"""Named resource dimensions for the vector-space cost framework.

The paper (Section 3.1) models query execution against ``n`` time-shared
resources.  A :class:`ResourceSpace` fixes the identity and order of those
resources so that usage vectors and cost vectors can be compared and
combined safely.  Every vector in :mod:`repro.core.vectors` is bound to a
space; mixing vectors from different spaces is an error, not a silent bug.

Each dimension carries a *kind* tag (``cpu``, ``table``, ``index``,
``temp``, ``seek``, ``transfer`` or ``other``) and an optional *subject*
(for example the table name the dimension belongs to).  The tags drive the
complementary-plan classification of Section 5.6: a pair of plans that is
complementary in an ``index`` dimension is *access path complementary*,
and so on.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Mapping, Sequence

__all__ = ["Resource", "ResourceSpace", "ResourceSpaceMismatchError"]

#: Dimension kinds recognised by the complementarity classifier.
KNOWN_KINDS = frozenset(
    {"cpu", "table", "index", "temp", "seek", "transfer", "other"}
)


class ResourceSpaceMismatchError(ValueError):
    """Raised when vectors bound to different spaces are combined."""


@dataclass(frozen=True)
class Resource:
    """One time-shared resource (one dimension of the cost vector space).

    Parameters
    ----------
    name:
        Unique name within the space, e.g. ``"disk.seek"`` or
        ``"table:LINEITEM"``.
    kind:
        Semantic tag used by the complementary-plan classifier
        (Section 5.6 of the paper).  One of :data:`KNOWN_KINDS`.
    subject:
        Optional object the resource belongs to (a table name for
        ``table``/``index`` dimensions, a device name, ...).
    """

    name: str
    kind: str = "other"
    subject: str | None = None

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("resource name must be non-empty")
        if self.kind not in KNOWN_KINDS:
            raise ValueError(
                f"unknown resource kind {self.kind!r}; "
                f"expected one of {sorted(KNOWN_KINDS)}"
            )

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.name


@dataclass(frozen=True)
class ResourceSpace:
    """An ordered, immutable collection of :class:`Resource` dimensions.

    The space provides name-to-index resolution and acts as the type tag
    for :class:`~repro.core.vectors.UsageVector` and
    :class:`~repro.core.vectors.CostVector`.

    Examples
    --------
    >>> space = ResourceSpace.from_names(["cpu", "disk.seek", "disk.xfer"])
    >>> space.dimension
    3
    >>> space.index("disk.seek")
    1
    """

    resources: tuple[Resource, ...]
    _index: Mapping[str, int] = field(init=False, repr=False, compare=False)

    def __post_init__(self) -> None:
        index = {r.name: i for i, r in enumerate(self.resources)}
        if len(index) != len(self.resources):
            names = [r.name for r in self.resources]
            dupes = sorted({n for n in names if names.count(n) > 1})
            raise ValueError(f"duplicate resource names: {dupes}")
        if not self.resources:
            raise ValueError("a resource space needs at least one dimension")
        object.__setattr__(self, "_index", index)

    # ------------------------------------------------------------------
    # Construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_names(cls, names: Iterable[str]) -> "ResourceSpace":
        """Build a space of ``other``-kind resources from bare names."""
        return cls(tuple(Resource(name) for name in names))

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def dimension(self) -> int:
        """Number of resources ``n`` in the space."""
        return len(self.resources)

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(r.name for r in self.resources)

    def index(self, name: str) -> int:
        """Return the dimension index of resource ``name``.

        Raises :class:`KeyError` if the name is unknown.
        """
        try:
            return self._index[name]
        except KeyError:
            raise KeyError(
                f"unknown resource {name!r}; space has {self.names}"
            ) from None

    def __contains__(self, name: object) -> bool:
        return name in self._index

    def __iter__(self) -> Iterator[Resource]:
        return iter(self.resources)

    def __len__(self) -> int:
        return len(self.resources)

    def resource(self, name: str) -> Resource:
        """Return the :class:`Resource` called ``name``."""
        return self.resources[self.index(name)]

    def indices_of_kind(self, *kinds: str) -> tuple[int, ...]:
        """Indices of all dimensions whose kind is in ``kinds``."""
        wanted = set(kinds)
        unknown = wanted - KNOWN_KINDS
        if unknown:
            raise ValueError(f"unknown kinds: {sorted(unknown)}")
        return tuple(
            i for i, r in enumerate(self.resources) if r.kind in wanted
        )

    def subjects_of_kind(self, kind: str) -> tuple[str, ...]:
        """Distinct, ordered subjects among dimensions of ``kind``."""
        seen: dict[str, None] = {}
        for r in self.resources:
            if r.kind == kind and r.subject is not None:
                seen.setdefault(r.subject)
        return tuple(seen)

    # ------------------------------------------------------------------
    # Compatibility checks
    # ------------------------------------------------------------------
    def require_same(self, other: "ResourceSpace") -> None:
        """Raise unless ``other`` is the same space (by value)."""
        if self is other:
            return
        if self.resources != other.resources:
            raise ResourceSpaceMismatchError(
                f"resource spaces differ: {self.names} vs {other.names}"
            )

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ResourceSpace({list(self.names)!r})"


def space_union(spaces: Sequence[ResourceSpace]) -> ResourceSpace:
    """Union of several spaces, preserving first-seen order.

    Resources with the same name must be identical across the inputs.
    """
    seen: dict[str, Resource] = {}
    for space in spaces:
        for resource in space:
            existing = seen.get(resource.name)
            if existing is None:
                seen[resource.name] = resource
            elif existing != resource:
                raise ValueError(
                    f"conflicting definitions for resource {resource.name!r}"
                )
    return ResourceSpace(tuple(seen.values()))
