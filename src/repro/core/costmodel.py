"""Total, relative and global-relative plan cost (Sections 3 and 5).

* :func:`total_cost` — ``T = U . C`` (Equation 3).
* :func:`relative_total_cost` — ``T_rel(a, b, C)`` (Equation 7), the
  unitless ratio used throughout the sensitivity analysis.
* :func:`global_relative_cost` — ``GTC_rel(a, C)``, the relative total
  cost of plan *a* with respect to the plan that is optimal under ``C``
  (Section 5.2).  ``GTC_rel(a, C) >= 1`` always, with equality iff *a*
  is optimal under ``C``.

The module also exposes :func:`optimal_plan_index` /
:func:`optimal_plan`, the building blocks the experiment harness uses to
evaluate plan sets at many cost vectors at once (see
:mod:`repro.core.worstcase` for the vectorised sweep).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from .vectors import CostVector, UsageVector

__all__ = [
    "total_cost",
    "relative_total_cost",
    "global_relative_cost",
    "optimal_plan_index",
    "optimal_plan",
    "usage_matrix",
]


def total_cost(usage: UsageVector, cost: CostVector) -> float:
    """True total cost ``T = U . C`` of a plan (Equation 3)."""
    return usage.dot(cost)


def relative_total_cost(
    usage_a: UsageVector, usage_b: UsageVector, cost: CostVector
) -> float:
    """``T_rel(a, b, C)`` — cost of plan *a* over cost of plan *b*.

    Raises :class:`ZeroDivisionError` if plan *b* has zero total cost
    under ``C`` (only possible for the all-zero usage vector, since cost
    components are strictly positive).
    """
    denominator = usage_b.dot(cost)
    if denominator == 0.0:
        raise ZeroDivisionError(
            "reference plan has zero total cost under the given costs"
        )
    return usage_a.dot(cost) / denominator


def usage_matrix(plans: Sequence[UsageVector]) -> np.ndarray:
    """Stack plan usage vectors into an ``(m, n)`` matrix.

    All plans must share the same resource space.  The matrix layout is
    one row per plan, one column per resource, which is what the
    vectorised sweeps in :mod:`repro.core.worstcase` expect.
    """
    if not plans:
        raise ValueError("need at least one plan")
    space = plans[0].space
    for plan in plans[1:]:
        space.require_same(plan.space)
    return np.vstack([plan.values for plan in plans])


def optimal_plan_index(
    plans: Sequence[UsageVector], cost: CostVector
) -> int:
    """Index of the plan with minimum total cost under ``cost``.

    Ties are broken in favour of the lowest index, which makes the
    function deterministic — important for the black-box optimizer
    facade, whose answers must be reproducible.
    """
    matrix = usage_matrix(plans)
    plans[0].space.require_same(cost.space)
    totals = matrix @ cost.values
    return int(np.argmin(totals))


def optimal_plan(
    plans: Sequence[UsageVector], cost: CostVector
) -> UsageVector:
    """The plan (usage vector) with minimum total cost under ``cost``."""
    return plans[optimal_plan_index(plans, cost)]


def global_relative_cost(
    usage: UsageVector,
    candidates: Sequence[UsageVector],
    cost: CostVector,
) -> float:
    """``GTC_rel(a, C)``: cost of *a* relative to the optimum under ``C``.

    ``candidates`` must contain every plan that can be optimal somewhere
    in the region of interest (the *candidate optimal plans* of
    Section 4.4); the optimum under ``C`` is then the cheapest candidate.
    The measured plan itself does not need to be in ``candidates`` — if
    it is cheaper than all of them the result is < 1, which callers can
    use to detect an incomplete candidate set.
    """
    best = optimal_plan(candidates, cost)
    return relative_total_cost(usage, best, cost)
