"""The narrow optimizer interface the paper works through (Section 6.1.1).

Commercial optimizers do not expose resource usage vectors; they expose
just enough to run the paper's algorithms:

* the user can set every resource cost;
* for a given cost vector the optimizer reports the chosen plan's
  *identity* (an EXPLAIN-style signature) and its *estimated total
  cost*.

:class:`BlackBoxOptimizer` is the :class:`typing.Protocol` for that
contract.  Because the paper's algorithms spend their entire budget on
optimizer invocations, the protocol also carries a *batched* entry
point, :meth:`BlackBoxOptimizer.optimize_batch`: one call answering a
whole matrix of cost vectors, which lets backends replace a Python loop
over plans per probe with a single ``C @ U.T`` matrix product.
:func:`batch_optimize` is the generic driver — it uses an optimizer's
native batch method when present and falls back to looping
:meth:`~BlackBoxOptimizer.optimize` otherwise, so algorithms written
against batches work with any single-call implementation.

:class:`TabularBlackBox` is a trivial implementation backed by an
explicit plan list — handy in tests and as the "ideal DB2" against
which the extraction algorithms are validated.  The real substrate
implementation lives in :mod:`repro.optimizer.blackbox`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

import numpy as np

from ..obs.decisions import DECISIONS
from ..obs.metrics import METRICS
from .vectors import CostVector, UsageVector

__all__ = [
    "PlanChoice",
    "BlackBoxOptimizer",
    "TabularBlackBox",
    "as_cost_matrix",
    "batch_optimize",
]


@dataclass(frozen=True)
class PlanChoice:
    """What a narrow optimizer interface reveals for one cost vector."""

    signature: str
    total_cost: float


def as_cost_matrix(space, costs) -> np.ndarray:
    """Normalise a batch of cost vectors into a ``(k, n)`` matrix.

    Accepts a ready-made 2-D array (returned as-is after a shape check)
    or a sequence of :class:`CostVector` bound to ``space``.
    """
    if isinstance(costs, np.ndarray):
        matrix = np.asarray(costs, dtype=float)
        if matrix.ndim != 2 or matrix.shape[1] != space.dimension:
            raise ValueError(
                f"expected a (k, {space.dimension}) cost matrix, got "
                f"shape {matrix.shape}"
            )
        return matrix
    rows = []
    for cost in costs:
        space.require_same(cost.space)
        rows.append(cost.values)
    if not rows:
        return np.empty((0, space.dimension))
    return np.vstack(rows)


def batch_optimize(optimizer, space, costs) -> list[PlanChoice]:
    """Evaluate a batch of cost vectors against any black box.

    Dispatches to the optimizer's native ``optimize_batch`` when it has
    one; otherwise falls back to looping :meth:`optimize` — the generic
    path that keeps call-count and answer semantics identical, one
    Python-level invocation per cost vector.
    """
    method = getattr(optimizer, "optimize_batch", None)
    if method is not None:
        choices = method(costs)
        METRICS.counter("optimize_batch.rows").inc(len(choices))
        METRICS.counter("optimize_batch.batches").inc()
        return choices
    matrix = as_cost_matrix(space, costs)
    METRICS.counter("optimize_batch.fallback_rows").inc(len(matrix))
    return [optimizer.optimize(CostVector(space, row)) for row in matrix]


@runtime_checkable
class BlackBoxOptimizer(Protocol):
    """Anything that optimises a fixed query under variable costs."""

    def optimize(self, cost: CostVector) -> PlanChoice:
        """Return the estimated optimal plan id and its estimated cost."""
        ...  # pragma: no cover - protocol

    def optimize_batch(self, costs) -> list[PlanChoice]:
        """Answer one :class:`PlanChoice` per row of a cost batch.

        Semantically equivalent to calling :meth:`optimize` on every
        row (including call accounting: a batch of *k* counts as *k*
        optimizer invocations), but implementations may vectorise.
        """
        ...  # pragma: no cover - protocol


class TabularBlackBox:
    """A black box backed by an explicit list of (signature, usage) plans.

    The optimizer behaviour is exact: the reported plan minimises
    ``U . C`` with deterministic lowest-index tie-breaking, and the
    reported total cost is the exact dot product.  ``call_count`` tracks
    how many optimizer invocations an algorithm spent — the budget
    currency of the discovery experiments; a batch of *k* cost vectors
    counts as *k* invocations.

    An optional ``quantization`` emulates the cost rounding the paper had
    to work around in DB2 ("to compensate for quantization error within
    the query optimizer we always used at least m = 2n samples"): the
    reported total cost is rounded to that relative precision.
    """

    def __init__(
        self,
        plans: Sequence[tuple[str, UsageVector]],
        quantization: float = 0.0,
        plan_index: "bool | None" = None,
    ) -> None:
        if not plans:
            raise ValueError("need at least one plan")
        signatures = [signature for signature, __ in plans]
        if len(set(signatures)) != len(signatures):
            raise ValueError("plan signatures must be unique")
        self._plans = list(plans)
        self._space = plans[0][1].space
        for __, usage in plans[1:]:
            self._space.require_same(usage.space)
        self._matrix = np.vstack([usage.values for __, usage in plans])
        self._quantization = float(quantization)
        #: None = automatic (index activates above its plan-count
        #: threshold), False = always dense, True = index regardless
        #: of plan count.
        self._plan_index_opt = plan_index
        self._index = None
        self.call_count = 0

    def _plan_index(self):
        """The lazily built point-location index (None when forced off)."""
        if self._plan_index_opt is False:
            return None
        if self._index is None:
            from .planindex import PlanIndex

            min_plans = 1 if self._plan_index_opt is True else None
            self._index = PlanIndex(self._matrix, min_plans=min_plans)
        return self._index if self._index.active else None

    @property
    def plans(self) -> list[tuple[str, UsageVector]]:
        return list(self._plans)

    def usage_of(self, signature: str) -> UsageVector:
        """Ground-truth usage vector (NOT part of the narrow interface).

        Validation code may call this; extraction algorithms must not.
        """
        for candidate_signature, usage in self._plans:
            if candidate_signature == signature:
                return usage
        raise KeyError(signature)

    def _quantize(self, total: float) -> float:
        if self._quantization > 0.0 and total > 0.0:
            from math import ceil, log10

            step = self._quantization * 10.0 ** ceil(log10(total))
            total = round(total / step) * step
        return total

    def optimize(self, cost: CostVector) -> PlanChoice:
        self.call_count += 1
        self._space.require_same(cost.space)
        if DECISIONS.enabled:
            # Decision capture needs every rival's total, which the
            # index cascade prunes away — take the dense kernel (the
            # chosen plan is identical by contract).
            totals = self._matrix @ cost.values
            index = int(np.argmin(totals))
            DECISIONS.observe_one(
                self._matrix, cost.values, totals, index,
                path=(
                    "dense" if self._plan_index() is None
                    else "dense_capture"
                ),
            )
        else:
            plan_index = self._plan_index()
            if plan_index is not None:
                index = plan_index.owner(cost.values)
            else:
                totals = self._matrix @ cost.values
                index = int(np.argmin(totals))
        total = float(self._matrix[index] @ cost.values)
        return PlanChoice(
            signature=self._plans[index][0],
            total_cost=self._quantize(total),
        )

    def optimize_batch(self, costs) -> list[PlanChoice]:
        """Vectorised batch: one ``C @ U.T`` for the whole cost matrix
        (or a sublinear :class:`~repro.core.planindex.PlanIndex`
        lookup once the plan count crosses the index threshold).

        The reported totals are recomputed as per-plan dot products so
        they match :meth:`optimize` bitwise for the same chosen plan.
        """
        matrix = as_cost_matrix(self._space, costs)
        self.call_count += len(matrix)
        if not len(matrix):
            return []
        if DECISIONS.enabled:
            # Dense even when the index is active: margins and plane
            # distances are extracted from the totals the kernel just
            # materialized (no second pass), and the index would prune
            # exactly the rivals that extraction needs.
            with np.errstate(invalid="ignore"):
                totals = matrix @ self._matrix.T
                indices = np.argmin(totals, axis=1)
            DECISIONS.observe_batch(
                self._matrix, matrix, totals, indices,
                path=(
                    "dense" if self._plan_index() is None
                    else "dense_capture"
                ),
            )
        else:
            plan_index = self._plan_index()
            if plan_index is not None:
                indices = plan_index.owner_batch(matrix)
            else:
                totals = matrix @ self._matrix.T
                indices = np.argmin(totals, axis=1)
        return [
            PlanChoice(
                signature=self._plans[index][0],
                total_cost=self._quantize(
                    float(self._matrix[index] @ row)
                ),
            )
            for index, row in zip(indices, matrix)
        ]
