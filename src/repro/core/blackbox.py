"""The narrow optimizer interface the paper works through (Section 6.1.1).

Commercial optimizers do not expose resource usage vectors; they expose
just enough to run the paper's algorithms:

* the user can set every resource cost;
* for a given cost vector the optimizer reports the chosen plan's
  *identity* (an EXPLAIN-style signature) and its *estimated total
  cost*.

:class:`BlackBoxOptimizer` is the :class:`typing.Protocol` for that
contract.  :class:`TabularBlackBox` is a trivial implementation backed
by an explicit plan list — handy in tests and as the "ideal DB2" against
which the extraction algorithms are validated.  The real substrate
implementation lives in :mod:`repro.optimizer.blackbox`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from .costmodel import optimal_plan_index
from .vectors import CostVector, UsageVector

__all__ = ["PlanChoice", "BlackBoxOptimizer", "TabularBlackBox"]


@dataclass(frozen=True)
class PlanChoice:
    """What a narrow optimizer interface reveals for one cost vector."""

    signature: str
    total_cost: float


@runtime_checkable
class BlackBoxOptimizer(Protocol):
    """Anything that optimises a fixed query under variable costs."""

    def optimize(self, cost: CostVector) -> PlanChoice:
        """Return the estimated optimal plan id and its estimated cost."""
        ...  # pragma: no cover - protocol


class TabularBlackBox:
    """A black box backed by an explicit list of (signature, usage) plans.

    The optimizer behaviour is exact: the reported plan minimises
    ``U . C`` with deterministic lowest-index tie-breaking, and the
    reported total cost is the exact dot product.  ``call_count`` tracks
    how many optimizer invocations an algorithm spent — the budget
    currency of the discovery experiments.

    An optional ``quantization`` emulates the cost rounding the paper had
    to work around in DB2 ("to compensate for quantization error within
    the query optimizer we always used at least m = 2n samples"): the
    reported total cost is rounded to that relative precision.
    """

    def __init__(
        self,
        plans: Sequence[tuple[str, UsageVector]],
        quantization: float = 0.0,
    ) -> None:
        if not plans:
            raise ValueError("need at least one plan")
        signatures = [signature for signature, __ in plans]
        if len(set(signatures)) != len(signatures):
            raise ValueError("plan signatures must be unique")
        self._plans = list(plans)
        self._quantization = float(quantization)
        self.call_count = 0

    @property
    def plans(self) -> list[tuple[str, UsageVector]]:
        return list(self._plans)

    def usage_of(self, signature: str) -> UsageVector:
        """Ground-truth usage vector (NOT part of the narrow interface).

        Validation code may call this; extraction algorithms must not.
        """
        for candidate_signature, usage in self._plans:
            if candidate_signature == signature:
                return usage
        raise KeyError(signature)

    def optimize(self, cost: CostVector) -> PlanChoice:
        self.call_count += 1
        usages = [usage for __, usage in self._plans]
        index = optimal_plan_index(usages, cost)
        signature = self._plans[index][0]
        total = usages[index].dot(cost)
        if self._quantization > 0.0 and total > 0.0:
            from math import ceil, log10

            step = self._quantization * 10.0 ** ceil(log10(total))
            total = round(total / step) * step
        return PlanChoice(signature=signature, total_cost=total)
