"""Usage and cost vectors (Sections 3.1–3.2 of the paper).

A query plan is characterised by its *resource usage vector*
``U = (u_1, ..., u_n)``; the state of the system by a *resource cost
vector* ``C = (c_1, ..., c_n)``.  The true total cost of the plan is the
dot product ``T = U . C`` (Equation 3).

Both vector types are immutable, numpy-backed and bound to a
:class:`~repro.core.resources.ResourceSpace`.  Usage vectors must be
non-negative; cost vectors must be strictly positive (a resource with a
zero or negative unit cost breaks the conic geometry of Sections 4–5).
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Mapping

import numpy as np

from .resources import ResourceSpace

__all__ = ["UsageVector", "CostVector"]


def _as_array(
    space: ResourceSpace,
    values: "Mapping[str, float] | Iterable[float] | np.ndarray",
) -> np.ndarray:
    """Convert mapping / sequence input into a dense float array."""
    if isinstance(values, Mapping):
        array = np.zeros(space.dimension, dtype=float)
        for name, value in values.items():
            array[space.index(name)] = float(value)
        return array
    array = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=float)
    if array.shape != (space.dimension,):
        raise ValueError(
            f"expected {space.dimension} values, got shape {array.shape}"
        )
    return array.copy()


class _BoundVector:
    """Shared behaviour of usage and cost vectors."""

    __slots__ = ("_space", "_values")

    def __init__(
        self,
        space: ResourceSpace,
        values: "Mapping[str, float] | Iterable[float] | np.ndarray",
    ) -> None:
        array = _as_array(space, values)
        if not np.all(np.isfinite(array)):
            raise ValueError("vector components must be finite")
        self._validate(array)
        array.setflags(write=False)
        self._space = space
        self._values = array

    # Subclasses override to enforce sign constraints.
    def _validate(self, array: np.ndarray) -> None:  # pragma: no cover
        raise NotImplementedError

    # ------------------------------------------------------------------
    @property
    def space(self) -> ResourceSpace:
        return self._space

    @property
    def values(self) -> np.ndarray:
        """Read-only numpy view of the components."""
        return self._values

    def __getitem__(self, name: str) -> float:
        return float(self._values[self._space.index(name)])

    def __iter__(self) -> Iterator[float]:
        return iter(self._values.tolist())

    def __len__(self) -> int:
        return self._space.dimension

    def as_dict(self) -> dict[str, float]:
        """Components keyed by resource name."""
        return dict(zip(self._space.names, self._values.tolist()))

    def norm(self) -> float:
        """Euclidean norm of the vector."""
        return float(np.linalg.norm(self._values))

    # ------------------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, type(self)):
            return NotImplemented
        return self._space == other._space and np.array_equal(
            self._values, other._values
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self._space.names,
                     self._values.tobytes()))

    def isclose(self, other: "_BoundVector", rel_tol: float = 1e-9,
                abs_tol: float = 0.0) -> bool:
        """Componentwise :func:`math.isclose` comparison."""
        self._space.require_same(other._space)
        return all(
            math.isclose(a, b, rel_tol=rel_tol, abs_tol=abs_tol)
            for a, b in zip(self._values, other._values)
        )

    def __repr__(self) -> str:
        pairs = ", ".join(
            f"{name}={value:.6g}"
            for name, value in zip(self._space.names, self._values)
        )
        return f"{type(self).__name__}({pairs})"


class UsageVector(_BoundVector):
    """Resource usage of one query plan (``U`` in the paper).

    Components are the number of units of each resource the plan
    consumes; they must be non-negative and finite.
    """

    def _validate(self, array: np.ndarray) -> None:
        if np.any(array < 0):
            bad = [
                name
                for name, value in zip(self._space_names_hint(array), array)
                if value < 0
            ]
            raise ValueError(f"usage components must be >= 0 (bad: {bad})")

    def _space_names_hint(self, array: np.ndarray) -> tuple[str, ...]:
        # ``_space`` is not yet assigned while validating in __init__;
        # fall back to positional labels.
        space = getattr(self, "_space", None)
        if space is not None:
            return space.names
        return tuple(f"dim{i}" for i in range(len(array)))

    # ------------------------------------------------------------------
    def dot(self, cost: "CostVector") -> float:
        """Total cost ``U . C`` (Equation 3 of the paper)."""
        self._space.require_same(cost.space)
        return float(self._values @ cost.values)

    def __add__(self, other: "UsageVector") -> "UsageVector":
        self._space.require_same(other._space)
        return UsageVector(self._space, self._values + other._values)

    def scaled(self, factor: float) -> "UsageVector":
        """Usage multiplied by a non-negative scalar.

        Used e.g. to charge a nested-loop inner subplan once per outer
        tuple.
        """
        if factor < 0:
            raise ValueError("usage scaling factor must be >= 0")
        return UsageVector(self._space, self._values * factor)

    def __sub__(self, other: "UsageVector") -> np.ndarray:
        """Difference ``A - B`` as a raw array (a switchover normal).

        The difference of two usage vectors is *not* a usage vector (it
        may have negative components), so a plain array is returned.
        """
        self._space.require_same(other._space)
        return self._values - other._values

    def dominates(self, other: "UsageVector", tol: float = 0.0) -> bool:
        """True if ``other`` lies in this plan's positive first quadrant.

        Section 4.4 of the paper: plan *a* dominates plan *b* when
        ``B = A + q`` with ``q >= 0`` and ``B != A``; a dominated plan can
        never be candidate optimal.  ``tol`` allows a small absolute slack
        when comparing floating-point usage.
        """
        self._space.require_same(other._space)
        if np.array_equal(self._values, other._values):
            return False
        return bool(np.all(other._values >= self._values - tol))

    def support(self, tol: float = 0.0) -> tuple[int, ...]:
        """Indices of strictly positive components (above ``tol``)."""
        return tuple(int(i) for i in np.flatnonzero(self._values > tol))


class CostVector(_BoundVector):
    """Per-unit resource costs (``C`` in the paper).

    Components must be strictly positive: the feasible cost region of
    Section 3.3 is a subset of the open positive orthant, and several
    geometric facts (cone-shaped regions of influence, Observation 1)
    assume positive costs.
    """

    def _validate(self, array: np.ndarray) -> None:
        if np.any(array <= 0):
            raise ValueError("cost components must be > 0")

    # ------------------------------------------------------------------
    def dot(self, usage: UsageVector) -> float:
        """Total cost ``U . C``; symmetric to :meth:`UsageVector.dot`."""
        return usage.dot(self)

    def scaled(self, factor: float) -> "CostVector":
        """Cost vector multiplied by a positive scalar ``k``.

        By Observation 1 of the paper this leaves every relative total
        cost unchanged.
        """
        if factor <= 0:
            raise ValueError("cost scaling factor must be > 0")
        return CostVector(self._space, self._values * factor)

    def perturbed(
        self, multipliers: "Mapping[str, float] | Iterable[float] | np.ndarray"
    ) -> "CostVector":
        """Componentwise multiplicative perturbation of the costs.

        ``multipliers`` follows the same conventions as the constructor
        (mapping resource-name -> factor, or a full-length sequence).
        Mapping entries default to a factor of 1.
        """
        if isinstance(multipliers, Mapping):
            factors = np.ones(self._space.dimension)
            for name, value in multipliers.items():
                factors[self._space.index(name)] = float(value)
        else:
            factors = _as_array(self._space, multipliers)
        if np.any(factors <= 0):
            raise ValueError("perturbation factors must be > 0")
        return CostVector(self._space, self._values * factors)

    def convex_combination(
        self, other: "CostVector", beta: float
    ) -> "CostVector":
        """``beta * self + (1 - beta) * other`` (Observation 3 setting)."""
        self._space.require_same(other._space)
        if not 0.0 <= beta <= 1.0:
            raise ValueError("beta must be in [0, 1]")
        return CostVector(
            self._space, beta * self._values + (1.0 - beta) * other._values
        )
