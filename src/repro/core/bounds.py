"""Error bounds on suboptimal plan choices (Sections 5.4 and 5.5).

* **Theorem 1** (general, tight): if every estimated resource cost is
  within a multiplicative factor ``delta`` of the truth, the relative
  total cost of any two plans changes by at most ``delta**2`` — so the
  optimizer's chosen plan is within ``delta**2`` of optimal.
* **Theorem 2** (non-complementary plans): the relative total cost of
  plans *a*, *b* is bounded by the extreme ratios
  ``r_min = min_i a_i/b_i`` and ``r_max = max_i a_i/b_i`` for *any* cost
  vector — a constant independent of how wrong the estimates are.
* **Corollary** (Equation 9): with no complementary candidate pairs the
  chosen plan is within ``max_{a,b} r_max^{a,b}`` of optimal.

All bounds are implemented as plain functions so they can double as
property-test oracles.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .vectors import UsageVector

__all__ = [
    "theorem1_interval",
    "theorem1_plan_bound",
    "ratio_extremes",
    "theorem2_interval",
    "corollary_constant_bound",
    "lemma1_holds",
]


def theorem1_interval(gamma: float, delta: float) -> tuple[float, float]:
    """Theorem 1: range of ``T_rel`` under estimates off by ``<= delta``.

    If ``T_rel(a, b, C) == gamma`` and every component of ``C_hat`` is
    within ``[c_i/delta, c_i*delta]``, then ``T_rel(a, b, C_hat)`` lies
    in ``[gamma/delta**2, gamma*delta**2]``.
    """
    if delta < 1.0:
        raise ValueError("delta must be >= 1")
    if gamma < 0.0:
        raise ValueError("relative cost must be >= 0")
    factor = delta * delta
    return gamma / factor, gamma * factor


def theorem1_plan_bound(delta: float) -> float:
    """Corollary to Theorem 1: worst GTC of the chosen plan.

    With estimates within a factor ``delta`` of the truth, the chosen
    plan's global relative cost is at most ``delta**2``.
    """
    if delta < 1.0:
        raise ValueError("delta must be >= 1")
    return delta * delta


def ratio_extremes(
    usage_a: UsageVector, usage_b: UsageVector, tol: float = 0.0
) -> tuple[float, float]:
    """``(r_min, r_max)`` — extreme componentwise ratios ``a_i / b_i``.

    Dimension conventions for zeros (treating ``<= tol`` as zero):

    * both components zero: the dimension is irrelevant and skipped;
    * ``a_i > 0, b_i == 0``: ``r_max = inf`` (plans are complementary);
    * ``a_i == 0, b_i > 0``: ``r_min = 0`` (complementary the other way).

    If every dimension is skipped (both plans all-zero) the plans are
    identical free plans and ``(1.0, 1.0)`` is returned.
    """
    usage_a.space.require_same(usage_b.space)
    a = usage_a.values
    b = usage_b.values
    r_min = math.inf
    r_max = 0.0
    relevant = False
    for a_i, b_i in zip(a, b):
        a_zero = a_i <= tol
        b_zero = b_i <= tol
        if a_zero and b_zero:
            continue
        relevant = True
        if b_zero:
            r_max = math.inf
            r_min = min(r_min, math.inf)
        elif a_zero:
            r_min = 0.0
            r_max = max(r_max, 0.0)
        else:
            ratio = a_i / b_i
            r_min = min(r_min, ratio)
            r_max = max(r_max, ratio)
    if not relevant:
        return 1.0, 1.0
    return r_min, r_max


def theorem2_interval(
    usage_a: UsageVector, usage_b: UsageVector, tol: float = 0.0
) -> tuple[float, float]:
    """Theorem 2: bounds on ``T_rel(a, b, C)`` valid for every ``C > 0``.

    For non-complementary plans this is a finite interval
    ``[r_min, r_max]``.  For complementary plans the theorem does not
    apply and the interval degenerates to ``[0, inf)`` on the
    complementary side.
    """
    return ratio_extremes(usage_a, usage_b, tol=tol)


def corollary_constant_bound(
    usages: Sequence[UsageVector], tol: float = 0.0
) -> float:
    """Equation 9: constant GTC bound over a set of candidate plans.

    ``max_{a, b} max(r_min^{a,b}, r_max^{a,b})`` over all ordered pairs
    of candidate optimal plans.  Because ``r_min^{a,b} = 1/r_max^{b,a}``,
    scanning ``r_max`` over ordered pairs suffices.  Returns ``inf`` when
    some pair is complementary (the bound is vacuous then, which is
    exactly the regime of Figure 6).
    """
    bound = 1.0
    for i, a in enumerate(usages):
        for j, b in enumerate(usages):
            if i == j:
                continue
            __, r_max = ratio_extremes(a, b, tol=tol)
            bound = max(bound, r_max)
            if math.isinf(bound):
                return math.inf
    return bound


def lemma1_holds(
    a1: float, b1: float, a2: float, b2: float, c1: float, c2: float
) -> bool:
    """Check Lemma 1 on concrete values (used by property tests).

    Preconditions: ``a1, b1, a2, b2 > 0``, ``a2/b2 <= a1/b1``,
    ``c1, c2 >= 0``.  Then ``(a1*c1 + a2*c2) / (b1*c1 + b2*c2) <= a1/b1``
    (interpreting 0/0 as satisfying the bound).
    """
    if min(a1, b1, a2, b2) <= 0:
        raise ValueError("a1, b1, a2, b2 must be > 0")
    if min(c1, c2) < 0:
        raise ValueError("c1, c2 must be >= 0")
    if a2 / b2 > a1 / b1:
        raise ValueError("precondition a2/b2 <= a1/b1 violated")
    numerator = a1 * c1 + a2 * c2
    denominator = b1 * c1 + b2 * c2
    if denominator == 0:
        return True
    # Cross-multiplied: with subnormal weights (c ~ 5e-324) the direct
    # quotient can round tens of percent high and falsely refute the
    # lemma; the absolute slack absorbs products that underflow.
    return (
        numerator * b1
        <= a1 * denominator * (1 + 1e-9) + 1e-300
    )


def empirical_ratio_range(
    usage_a: UsageVector,
    usage_b: UsageVector,
    costs: Sequence,
) -> tuple[float, float]:
    """Observed ``T_rel(a, b, C)`` range over a sample of cost vectors.

    Convenience for tests/benchmarks comparing observed behaviour with
    the Theorem 2 interval.
    """
    ratios = []
    a = usage_a.values
    b = usage_b.values
    for cost in costs:
        usage_a.space.require_same(cost.space)
        denominator = float(b @ cost.values)
        if denominator == 0.0:
            continue
        ratios.append(float(a @ cost.values) / denominator)
    if not ratios:
        raise ValueError("no usable cost vectors")
    return min(ratios), max(ratios)


def numpy_ratio_extremes(matrix_a: np.ndarray, matrix_b: np.ndarray,
                         tol: float = 0.0) -> tuple[np.ndarray, np.ndarray]:
    """Vectorised :func:`ratio_extremes` for batched pair analysis.

    ``matrix_a`` and ``matrix_b`` are ``(m, n)`` arrays of usage rows;
    the result is a pair of length-``m`` arrays ``(r_min, r_max)``.
    """
    a_zero = matrix_a <= tol
    b_zero = matrix_b <= tol
    both_zero = a_zero & b_zero
    with np.errstate(divide="ignore", invalid="ignore"):
        ratios = np.where(b_zero, np.inf, matrix_a / np.where(b_zero, 1.0, matrix_b))
    ratios = np.where(a_zero & ~b_zero, 0.0, ratios)
    ratios_min = np.where(both_zero, np.inf, ratios)
    ratios_max = np.where(both_zero, -np.inf, ratios)
    r_min = ratios_min.min(axis=1)
    r_max = ratios_max.max(axis=1)
    all_irrelevant = both_zero.all(axis=1)
    r_min = np.where(all_irrelevant, 1.0, r_min)
    r_max = np.where(all_irrelevant, 1.0, r_max)
    return r_min, r_max
