"""Least-squares estimation of resource usage vectors (Section 6.1.1).

A narrow optimizer interface reveals only total costs.  Because the cost
model is linear, ``m >= n`` observations ``(C_i, t_i)`` of one plan
determine its usage vector ``U_p`` through the normal equations::

    U_hat = (X^T X)^{-1} X^T t

where ``X`` stacks the cost vectors as rows.  The paper solves the
system with Gaussian elimination and uses at least ``m = 2n`` samples to
absorb quantization noise; both choices are reproduced here (with a
numpy fallback for ill-conditioned systems).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

import numpy as np

from .blackbox import BlackBoxOptimizer
from .feasible import FeasibleRegion
from .resources import ResourceSpace
from .vectors import CostVector, UsageVector

__all__ = [
    "gaussian_solve",
    "least_squares_usage",
    "UsageEstimate",
    "collect_plan_samples",
    "estimate_usage_vector",
    "validate_estimate",
]


def gaussian_solve(matrix: np.ndarray, rhs: np.ndarray) -> np.ndarray:
    """Solve a square linear system by Gaussian elimination.

    Partial pivoting; raises :class:`np.linalg.LinAlgError` on a
    (numerically) singular matrix.  This mirrors the paper's stated
    method for inverting the normal-equation matrix.
    """
    a = np.asarray(matrix, dtype=float).copy()
    b = np.asarray(rhs, dtype=float).copy()
    n = a.shape[0]
    if a.shape != (n, n) or b.shape != (n,):
        raise ValueError("gaussian_solve expects a square system")
    for col in range(n):
        pivot_row = col + int(np.argmax(np.abs(a[col:, col])))
        pivot = a[pivot_row, col]
        if abs(pivot) < 1e-300:
            raise np.linalg.LinAlgError("singular matrix")
        if pivot_row != col:
            a[[col, pivot_row]] = a[[pivot_row, col]]
            b[[col, pivot_row]] = b[[pivot_row, col]]
        factors = a[col + 1 :, col] / a[col, col]
        a[col + 1 :] -= factors[:, None] * a[col]
        b[col + 1 :] -= factors * b[col]
    x = np.zeros(n)
    for row in range(n - 1, -1, -1):
        x[row] = (b[row] - a[row, row + 1 :] @ x[row + 1 :]) / a[row, row]
    return x


def least_squares_usage(
    space: ResourceSpace,
    samples: Sequence[tuple[CostVector, float]],
    clip_negative: bool = True,
) -> UsageVector:
    """Estimate a usage vector from ``(cost vector, total cost)`` samples.

    Builds the normal equations and solves them with
    :func:`gaussian_solve`; if the normal matrix is singular (samples do
    not span the space) falls back to :func:`numpy.linalg.lstsq`, which
    returns the minimum-norm solution.

    ``clip_negative`` zeroes slightly-negative components that arise
    from noise: true usage is non-negative by definition.
    """
    if len(samples) < space.dimension:
        raise ValueError(
            f"need at least n={space.dimension} samples, got {len(samples)}"
        )
    x = np.vstack([cost.values for cost, __ in samples])
    t = np.asarray([total for __, total in samples], dtype=float)
    normal = x.T @ x
    rhs = x.T @ t
    try:
        solution = gaussian_solve(normal, rhs)
    except np.linalg.LinAlgError:
        solution, *_ = np.linalg.lstsq(x, t, rcond=None)
    if clip_negative:
        solution = np.where(solution < 0, 0.0, solution)
    return UsageVector(space, solution)


@dataclass(frozen=True)
class UsageEstimate:
    """A reconstructed usage vector plus the evidence behind it."""

    signature: str
    usage: UsageVector
    samples: tuple[tuple[CostVector, float], ...]
    optimizer_calls: int


def collect_plan_samples(
    optimizer: BlackBoxOptimizer,
    signature: str,
    seed: CostVector,
    region: FeasibleRegion,
    min_samples: int | None = None,
    rng: np.random.Generator | None = None,
    max_attempts: int = 2000,
) -> list[tuple[CostVector, float]]:
    """Gather cost/total-cost samples on which ``signature`` is optimal.

    Strategy: perturb around ``seed`` (a point where the plan is known
    to win) with a shrinking multiplicative radius, keeping only samples
    where the black box still returns the same plan.  At least
    ``min_samples`` (default ``2n``, the paper's choice) are gathered.

    Raises :class:`RuntimeError` if the attempt budget runs out — that
    happens for plans whose region of influence is (nearly) degenerate.
    """
    space = seed.space
    if min_samples is None:
        min_samples = 2 * space.dimension
    rng = rng or np.random.default_rng(0)
    samples: list[tuple[CostVector, float]] = []

    choice = optimizer.optimize(seed)
    if choice.signature != signature:
        raise ValueError(
            f"plan {signature!r} is not optimal at the seed point "
            f"(got {choice.signature!r})"
        )
    samples.append((seed, choice.total_cost))

    radius = 2.0  # multiplicative perturbation half-width (factor)
    attempts = 0
    lo = region.lower()
    hi = region.upper()
    while len(samples) < min_samples:
        if attempts >= max_attempts:
            raise RuntimeError(
                f"could not gather {min_samples} samples for plan "
                f"{signature!r} ({len(samples)} found, "
                f"{attempts} attempts)"
            )
        attempts += 1
        exponents = rng.uniform(-1.0, 1.0, size=space.dimension)
        factors = radius ** exponents
        values = np.clip(seed.values * factors, lo, hi)
        cost = CostVector(space, values)
        choice = optimizer.optimize(cost)
        if choice.signature == signature:
            samples.append((cost, choice.total_cost))
        else:
            # Plan lost at this distance: shrink the perturbation.
            radius = max(1.0001, radius ** 0.7)
    return samples


def estimate_usage_vector(
    optimizer: BlackBoxOptimizer,
    signature: str,
    seed: CostVector,
    region: FeasibleRegion,
    min_samples: int | None = None,
    rng: np.random.Generator | None = None,
) -> UsageEstimate:
    """End-to-end Section 6.1.1: sample, then least-squares estimate."""
    calls_before = getattr(optimizer, "call_count", 0)
    samples = collect_plan_samples(
        optimizer, signature, seed, region, min_samples, rng
    )
    usage = least_squares_usage(seed.space, samples)
    calls_after = getattr(optimizer, "call_count", 0)
    return UsageEstimate(
        signature=signature,
        usage=usage,
        samples=tuple(samples),
        optimizer_calls=calls_after - calls_before,
    )


def validate_estimate(
    estimate: UsageVector,
    true_total: Callable[[CostVector], float],
    test_costs: Sequence[CostVector],
) -> float:
    """Max relative error of predicted vs true total cost.

    The paper validated its estimates the same way and reported
    discrepancies below one percent.
    """
    worst = 0.0
    for cost in test_costs:
        truth = true_total(cost)
        if truth == 0.0:
            continue
        predicted = estimate.dot(cost)
        worst = max(worst, abs(predicted - truth) / abs(truth))
    return worst
