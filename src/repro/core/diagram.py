"""Plan diagrams: 2-D slices of the cost vector space.

The parametric-query-optimization literature the paper builds on
visualises optimizer behaviour as *plan diagrams* — colour one cell
per cost point by the plan that is optimal there.  Regions of
influence appear as contiguous blobs whose borders are switchover
curves (straight lines through the origin in our conic geometry, bent
by the log-log axes).

:func:`plan_diagram` computes such a slice over two variation groups
(all other dimensions pinned at the center), and
:meth:`PlanDiagram.render` draws it as ASCII with a legend — useful in
terminals, docstrings and tests alike.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .feasible import VariationGroup
from .vectors import CostVector, UsageVector

__all__ = ["PlanDiagram", "plan_diagram"]

#: Cell glyphs, in plan-index order.
_GLYPHS = "ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789"


@dataclass
class PlanDiagram:
    """A rasterised 2-D slice of the plan space."""

    x_group: str
    y_group: str
    x_multipliers: np.ndarray
    y_multipliers: np.ndarray
    cells: np.ndarray  # (ny, nx) of plan indices
    plan_signatures: tuple[str, ...]

    @property
    def plans_appearing(self) -> tuple[int, ...]:
        """Plan indices that own at least one cell."""
        return tuple(int(i) for i in np.unique(self.cells))

    def share(self, plan_index: int) -> float:
        """Fraction of cells owned by one plan."""
        return float((self.cells == plan_index).mean())

    def render(self, legend: bool = True, max_signature: int = 60) -> str:
        """ASCII rendering, y increasing upward, with a legend."""
        lines = []
        ny, nx = self.cells.shape
        appearing = self.plans_appearing
        glyph_of = {
            plan: _GLYPHS[rank % len(_GLYPHS)]
            for rank, plan in enumerate(appearing)
        }
        lines.append(
            f"y: {self.y_group} multiplier "
            f"[{self.y_multipliers[0]:g} .. {self.y_multipliers[-1]:g}], "
            f"x: {self.x_group} multiplier "
            f"[{self.x_multipliers[0]:g} .. {self.x_multipliers[-1]:g}]"
        )
        for row in range(ny - 1, -1, -1):
            lines.append(
                "".join(glyph_of[int(cell)] for cell in self.cells[row])
            )
        if legend:
            lines.append("")
            for plan in appearing:
                signature = self.plan_signatures[plan]
                lines.append(
                    f"{glyph_of[plan]} = [{self.share(plan) * 100:5.1f}%] "
                    f"{signature[:max_signature]}"
                )
        return "\n".join(lines)


def plan_diagram(
    usages: Sequence[UsageVector],
    center: CostVector,
    x_group: VariationGroup,
    y_group: VariationGroup,
    delta: float = 100.0,
    resolution: int = 32,
    signatures: Sequence[str] | None = None,
) -> PlanDiagram:
    """Compute the optimal plan over a log-spaced 2-D multiplier grid.

    ``x_group`` and ``y_group`` must not overlap.  Each axis sweeps the
    group's multiplier log-uniformly over ``[1/delta, delta]``;
    remaining dimensions stay at the center costs.
    """
    if delta <= 1.0:
        raise ValueError("delta must exceed 1 for a non-degenerate slice")
    if resolution < 2:
        raise ValueError("resolution must be >= 2")
    if set(x_group.indices) & set(y_group.indices):
        raise ValueError("x and y groups overlap")
    if not usages:
        raise ValueError("need at least one plan")
    space = usages[0].space
    center.space.require_same(space)

    matrix = np.vstack([usage.values for usage in usages])
    base = center.values
    multipliers = np.logspace(
        -np.log10(delta), np.log10(delta), resolution
    )
    # Split each plan's center-cost into x-part, y-part, rest.
    x_mask = np.zeros(space.dimension, dtype=bool)
    x_mask[list(x_group.indices)] = True
    y_mask = np.zeros(space.dimension, dtype=bool)
    y_mask[list(y_group.indices)] = True
    rest_mask = ~(x_mask | y_mask)
    x_part = matrix[:, x_mask] @ base[x_mask]          # (m,)
    y_part = matrix[:, y_mask] @ base[y_mask]
    rest_part = matrix[:, rest_mask] @ base[rest_mask]
    # totals[y, x, plan] = rest + x_part*mx + y_part*my
    totals = (
        rest_part[None, None, :]
        + x_part[None, None, :] * multipliers[None, :, None]
        + y_part[None, None, :] * multipliers[:, None, None]
    )
    cells = totals.argmin(axis=2)
    if signatures is None:
        signatures = tuple(f"plan-{i}" for i in range(len(usages)))
    return PlanDiagram(
        x_group=x_group.name,
        y_group=y_group.name,
        x_multipliers=multipliers,
        y_multipliers=multipliers.copy(),
        cells=cells,
        plan_signatures=tuple(signatures),
    )
