"""Sublinear optimal-plan lookup: point location in regions of influence.

Regions of influence are convex polyhedral cones with apex at the
origin (Observation 1, Section 4.5): the plan optimal at ``C`` is
``argmin_i U_i . C``, and the set of cost vectors where plan *i* wins
is scale-invariant.  Every winner lookup in the repo used to be the
dense kernel — one ``C @ U.T`` product plus a row argmin, ``O(m * d)``
work per probe over all *m* candidate plans.  :class:`PlanIndex`
precomputes the conic Voronoi structure once so each probe touches a
small, certified subset of plans instead.

The lookup cascade, per probe ``C`` (componentwise ``>= 0``):

1. **Dominant-set prefilter** (build time, float32).  Plans that are
   componentwise Pareto-dominated on the feasible box can never win on
   a positive cost vector; a vectorised float32 pass marks the
   survivors that seed the witness stage.  Pruned plans still take
   part in the exact stage below — the prefilter only shapes the
   search structure, never the answer.
2. **Witness seeding** (unit sphere).  Cones are scale-invariant, so
   the probe is normalised to the unit sphere and a kd-tree over
   *region witnesses* — the normalised centroid of the build-time
   sample directions each surviving plan won — returns the K nearest
   candidate regions.  Their exact float64 totals give an upper bound
   ``t`` on the optimal total.
3. **Conic group certificate** (exact stage).  All *m* plans are
   partitioned into ~``sqrt(m)`` groups of geometrically similar rows;
   each group *g* carries the componentwise minimum ``L_g`` of its
   rows, so ``L_g . C <= U_j . C`` holds in real arithmetic for every
   member *j* whenever ``C >= 0``.  Groups whose bound exceeds
   ``t * (1 + 1e-9)`` cannot contain the winner — or any plan tying
   it — and are pruned; the slack dwarfs the ``d * ulp`` rounding of a
   positive dot product, so the certificate is safe.  Surviving groups
   are evaluated with exact float64 submatrix products and a first-min
   argmin over ascending plan ids, preserving the repo's lowest-index
   tie-break.
4. **Guaranteed fallback.**  Probes with negative, non-finite or
   all-zero components — where the cone certificate does not apply —
   take the dense kernel.  So do probes whose best scanned total is
   not separated from the runner-up by a certified margin: BLAS
   kernels round dot products position-dependently, so on (near-)ties
   only the dense kernel itself can reproduce the dense argmin.  Both
   kinds are counted, so silent de-optimization is visible in
   ``repro report``.

Instrumentation: ``planindex.builds``, ``planindex.probes``,
``planindex.pruned``, ``planindex.leaf_visits``,
``planindex.exact_fallbacks`` (probes answered by the dense kernel)
and ``planindex.weak_certificates`` in
:data:`repro.obs.metrics.METRICS`.  Fallbacks are reason-coded —
``planindex.exact_fallbacks.invalid_probe`` (negative/non-finite/zero
probes), ``.near_tie`` (top-two totals inside ``TIE_MARGIN``) and
``.weak_certificate`` (the certificate admitted at least
``FALLBACK_SCAN_FRACTION`` of the plans on a set of at least
``WEAK_FALLBACK_MIN_PLANS``, so the dense kernel is taken outright) —
and the breakdown is surfaced in the CLI epilogue and ``repro
report``.

A/B verification: set ``REPRO_NO_PLAN_INDEX=1`` (or pass
``--no-plan-index`` to any experiment command) to force every lookup
back onto the dense kernel; ``REPRO_PLAN_INDEX_MIN_PLANS`` overrides
the activation threshold (default 64 — below it the dense kernel is
faster and the index stays inert).
"""

from __future__ import annotations

import logging
import os
from typing import Sequence

import numpy as np

from ..obs.metrics import METRICS
from .feasible import FeasibleRegion

__all__ = [
    "PlanIndex",
    "dense_owner_batch",
    "plan_index_disabled",
    "plan_index_min_plans",
]

logger = logging.getLogger(__name__)

#: Relative slack on the group-bound threshold.  A positive dot
#: product's rounding error is at most ``d * ulp`` (~1e-14 relative for
#: the dimensions here), so 1e-9 leaves orders of magnitude of margin
#: while never admitting a spurious winner.
CERTIFICATE_SLACK = 1e-9

#: Below this many plans the dense kernel wins; the index stays inert.
DEFAULT_MIN_PLANS = 64

#: Witness regions seeded per probe before the certificate stage.
DEFAULT_LEAF_K = 16

#: Build-time sample directions for the witness stage.
DEFAULT_WITNESS_SAMPLES = 2048

#: A probe whose certificate scans at least this fraction of the plans
#: has a weak certificate (the work done approaches the dense kernel's).
FALLBACK_SCAN_FRACTION = 0.5

#: Plan-set size below which a weak certificate is only *counted*, not
#: rerouted to the dense kernel: when the masked scan touches a handful
#: of rows it costs no more than the dense product anyway, so rerouting
#: would just inflate the fallback telemetry on workloads that force
#: tiny indexes on via ``REPRO_PLAN_INDEX_MIN_PLANS``.
WEAK_FALLBACK_MIN_PLANS = DEFAULT_MIN_PLANS

#: Relative best-vs-runner-up separation below which the winner is
#: re-decided by the dense kernel.  BLAS kernels round a dot product
#: position-dependently (identical rows can get different float totals
#: within one gemm), so an argmin is only reproducible across kernels
#: when the top two totals are separated by much more than the
#: ``d * ulp`` (~1e-15 relative) rounding of a positive dot product.
TIE_MARGIN = 1e-12

try:  # pragma: no cover - exercised via the fallback test
    from scipy.spatial import cKDTree as _KDTree
except Exception:  # pragma: no cover - scipy is a hard dep in practice
    _KDTree = None


def plan_index_disabled() -> bool:
    """True when ``REPRO_NO_PLAN_INDEX`` forces the dense kernel."""
    return os.environ.get(
        "REPRO_NO_PLAN_INDEX", ""
    ).strip() not in ("", "0")


def plan_index_min_plans() -> int:
    """Activation threshold (``REPRO_PLAN_INDEX_MIN_PLANS`` override)."""
    raw = os.environ.get("REPRO_PLAN_INDEX_MIN_PLANS", "").strip()
    if raw:
        try:
            return max(1, int(raw))
        except ValueError:
            logger.warning(
                "ignoring invalid REPRO_PLAN_INDEX_MIN_PLANS=%r", raw
            )
    return DEFAULT_MIN_PLANS


def dense_owner_batch(
    matrix: np.ndarray, costs: np.ndarray
) -> np.ndarray:
    """The dense reference kernel: ``argmin(C @ U.T)`` per row.

    ``np.argmin`` returns the first minimum, so the repo's lowest-index
    tie-break is built in.  This is both the fallback path and the
    ground truth the index is property-tested against.
    """
    with np.errstate(invalid="ignore"):
        return np.argmin(costs @ matrix.T, axis=1)


def _as_matrix(plans) -> np.ndarray:
    if isinstance(plans, np.ndarray):
        matrix = np.ascontiguousarray(plans, dtype=float)
    else:
        matrix = np.ascontiguousarray(
            np.vstack([u.values for u in plans]), dtype=float
        )
    if matrix.ndim != 2 or not matrix.size:
        raise ValueError(
            "need a nonempty (m, d) usage matrix, got shape "
            f"{matrix.shape}"
        )
    if not np.isfinite(matrix).all():
        raise ValueError("usage matrix must be finite")
    return matrix


def _pareto_survivors(matrix32: np.ndarray, chunk: int = 128):
    """Boolean mask of plans not componentwise dominated (float32).

    Same semantics as
    :func:`repro.core.candidates.pareto_undominated_indices` with
    ``tol=0`` — duplicates keep the first occurrence — but vectorised
    in chunks so a 4096-plan set takes milliseconds, not seconds.
    Only used to *seed* the witness stage; never affects answers.
    """
    m = matrix32.shape[0]
    ids = np.arange(m)
    keep = np.ones(m, dtype=bool)
    for start in range(0, m, chunk):
        rows = matrix32[start:start + chunk]  # (c, d)
        le_all = (matrix32[None, :, :] <= rows[:, None, :]).all(-1)
        lt_any = (matrix32[None, :, :] < rows[:, None, :]).any(-1)
        earlier = ids[None, :] < ids[start:start + rows.shape[0], None]
        dominates = le_all & (lt_any | earlier)
        dominates[
            np.arange(rows.shape[0]), ids[start:start + rows.shape[0]]
        ] = False
        keep[start:start + rows.shape[0]] = ~dominates.any(axis=1)
    return keep


def _bisect_groups(
    matrix: np.ndarray, leaf_size: int
) -> list[np.ndarray]:
    """Partition plan ids into tight groups (recursive bisection).

    Splits at the median of the widest dimension in log space —
    multiplicative spread is the natural metric for usage vectors —
    until every block holds at most ``leaf_size`` plans.  Each block
    is returned with ids ascending, so a first-min scan inside it
    preserves the lowest-index tie-break.
    """
    logm = np.log(np.maximum(matrix, 1e-300))
    groups: list[np.ndarray] = []
    stack = [np.arange(matrix.shape[0])]
    while stack:
        ids = stack.pop()
        if len(ids) <= leaf_size:
            groups.append(np.sort(ids))
            continue
        rows = logm[ids]
        widest = int(np.argmax(rows.max(axis=0) - rows.min(axis=0)))
        order = ids[np.argsort(rows[:, widest], kind="stable")]
        half = len(order) // 2
        stack.append(order[:half])
        stack.append(order[half:])
    return groups


class PlanIndex:
    """Conic point-location index over a candidate usage matrix.

    Parameters
    ----------
    plans:
        ``(m, d)`` usage matrix or a sequence of
        :class:`~repro.core.vectors.UsageVector`.
    region:
        Optional :class:`~repro.core.feasible.FeasibleRegion` supplying
        realistic build-time sample directions (and their variation
        groups); without one, directions are drawn log-uniformly.
    min_plans:
        Activation threshold; below it (or under
        ``REPRO_NO_PLAN_INDEX``) the index is inert and
        :meth:`owner_batch` is exactly the dense kernel.
    """

    def __init__(
        self,
        plans: "np.ndarray | Sequence",
        region: FeasibleRegion | None = None,
        *,
        min_plans: int | None = None,
        leaf_k: int = DEFAULT_LEAF_K,
        group_size: int | None = None,
        witness_samples: int = DEFAULT_WITNESS_SAMPLES,
        seed: int = 0,
    ) -> None:
        self._matrix = _as_matrix(plans)
        self._m, self._d = self._matrix.shape
        if min_plans is None:
            min_plans = plan_index_min_plans()
        self._leaf_k = max(1, int(leaf_k))
        self._active = (
            self._m >= max(1, int(min_plans))
            and not plan_index_disabled()
        )
        self._warned_fallbacks = False
        self.stats = {
            "probes": 0, "fallbacks": 0,
            "invalid_probe": 0, "near_tie": 0, "weak_certificate": 0,
        }
        if self._active:
            self._build(region, group_size, witness_samples, seed)
            METRICS.counter("planindex.builds").inc()

    # ------------------------------------------------------------------
    # Construction
    # ------------------------------------------------------------------
    def _build(self, region, group_size, witness_samples, seed) -> None:
        matrix = self._matrix
        m, d = self._m, self._d
        rng = np.random.default_rng(seed)
        matrix32 = matrix.astype(np.float32)

        # Stage 1: dominant-set prefilter (shapes the witness stage).
        survivors = _pareto_survivors(matrix32)
        survivor_ids = np.flatnonzero(survivors)

        # Build-time probe directions: feasible-region samples when a
        # region is available (plus a slice of its vertices, where the
        # worst cases live), log-uniform otherwise.
        probes = self._build_probes(region, witness_samples, rng)

        # Float32 winners among the survivors locate each probe's
        # region; the exact stage never relies on this precision.
        probes32 = probes.astype(np.float32)
        winners = np.empty(len(probes), dtype=np.int64)
        sub32 = matrix32[survivor_ids]
        for start in range(0, len(probes), 4096):
            block = probes32[start:start + 4096]
            winners[start:start + len(block)] = survivor_ids[
                np.argmin(block @ sub32.T, axis=1)
            ]

        # Region witnesses: the normalised centroid of the unit
        # directions each plan won (inside its cone by convexity).
        norms = np.linalg.norm(probes, axis=1)
        unit = probes / norms[:, None]
        active_ids = np.unique(winners)
        witnesses = np.empty((len(active_ids), d))
        for row, plan in enumerate(active_ids):
            centroid = unit[winners == plan].mean(axis=0)
            witnesses[row] = centroid / np.linalg.norm(centroid)
        self._witness_plan_ids = active_ids
        self._tree = (
            _KDTree(witnesses)
            if _KDTree is not None and len(active_ids) > self._leaf_k
            else None
        )

        # Stage 3 structure: groups of geometrically similar plans,
        # built by recursive median bisection along the widest
        # dimension in log space.  Tight axis-aligned boxes keep each
        # group's componentwise-min bound vector close to its members,
        # which is what makes the certificate prune.
        if group_size is None:
            group_size = max(
                4, min(16, int(round(np.sqrt(m) / 4.0)))
            )
        group_ids = _bisect_groups(matrix, group_size)
        self._group_ids = group_ids
        self._group_of = np.empty(m, dtype=np.int64)
        for g, block in enumerate(group_ids):
            self._group_of[block] = g
        self._group_sizes = np.array(
            [len(block) for block in group_ids], dtype=np.int64
        )
        # Componentwise minima are exact in float64: L_g <= U_j holds
        # elementwise with no rounding, which is what the certificate
        # needs.
        self._bounds_matrix = np.vstack(
            [matrix[block].min(axis=0) for block in group_ids]
        )

    def _build_probes(self, region, witness_samples, rng) -> np.ndarray:
        if region is not None and region.space.dimension == self._d:
            parts = [region.sample_matrix(rng, witness_samples)]
            take = min(region.n_vertices, 256)
            got = 0
            for __, costs in region.vertex_batches(batch_size=256):
                parts.append(costs[: take - got])
                got += len(parts[-1])
                if got >= take:
                    break
            return np.vstack(parts)
        exponents = rng.uniform(
            -np.log(100.0), np.log(100.0), size=(witness_samples, self._d)
        )
        return np.exp(exponents)

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def active(self) -> bool:
        """False when inert (too few plans or disabled via env)."""
        return self._active

    @property
    def n_plans(self) -> int:
        return self._m

    @property
    def dimension(self) -> int:
        return self._d

    @property
    def n_groups(self) -> int:
        return len(self._group_ids) if self._active else 0

    @property
    def n_witnesses(self) -> int:
        return len(self._witness_plan_ids) if self._active else 0

    # ------------------------------------------------------------------
    # Lookup
    # ------------------------------------------------------------------
    def owner(self, cost) -> int:
        """Index of the optimal plan at ``cost`` (lowest index on ties).

        Accepts a :class:`~repro.core.vectors.CostVector` or a 1-D
        array.  When the index is inert this is exactly the dense
        gemv kernel the callers used before.
        """
        values = getattr(cost, "values", cost)
        row = np.asarray(values, dtype=float)
        if not self._active or plan_index_disabled():
            return int(np.argmin(self._matrix @ row))
        return int(self.owner_batch(row[None, :])[0])

    def owner_batch(self, costs: np.ndarray) -> np.ndarray:
        """Winning plan index per row of an ``(k, d)`` cost matrix.

        Bit-identical (tie-break included) to
        :func:`dense_owner_batch` on the same matrix.
        """
        costs = np.ascontiguousarray(costs, dtype=float)
        if costs.ndim != 2 or costs.shape[1] != self._d:
            raise ValueError(
                f"expected a (k, {self._d}) cost matrix, got shape "
                f"{costs.shape}"
            )
        if not len(costs):
            return np.empty(0, dtype=np.int64)
        if not self._active or plan_index_disabled():
            return dense_owner_batch(self._matrix, costs)
        winners = np.empty(len(costs), dtype=np.int64)
        reasons = {"invalid_probe": 0, "near_tie": 0,
                   "weak_certificate": 0}
        for start in range(0, len(costs), 4096):
            block = costs[start:start + 4096]
            chunk = self._lookup_chunk(
                block, winners[start:start + len(block)]
            )
            for reason, count in chunk.items():
                reasons[reason] += count
        fallbacks = sum(reasons.values())
        METRICS.counter("planindex.probes").inc(len(costs))
        self.stats["probes"] += len(costs)
        self.stats["fallbacks"] += fallbacks
        for reason, count in reasons.items():
            if count:
                self.stats[reason] += count
                METRICS.counter(
                    f"planindex.exact_fallbacks.{reason}"
                ).inc(count)
        if fallbacks:
            METRICS.counter("planindex.exact_fallbacks").inc(fallbacks)
            self._note_fallbacks(fallbacks, len(costs))
        return winners

    def _note_fallbacks(self, fallbacks: int, probes: int) -> None:
        fraction = fallbacks / probes
        if fraction > 0.25 and not self._warned_fallbacks:
            self._warned_fallbacks = True
            logger.warning(
                "plan index fell back to the dense kernel for %d of "
                "%d probes (%.0f%%) — the certificate is weak for "
                "this workload; see planindex.* metrics in the run "
                "manifest", fallbacks, probes, 100.0 * fraction,
            )

    def _lookup_chunk(self, costs, out) -> dict[str, int]:
        """Cascade one chunk; returns dense-fallback counts by reason."""
        matrix = self._matrix
        norms = np.linalg.norm(costs, axis=1)
        valid = (
            np.isfinite(costs).all(axis=1)
            & (costs >= 0.0).all(axis=1)
            & (norms > 0.0)
        )
        if not valid.all():
            bad = np.flatnonzero(~valid)
            out[bad] = dense_owner_batch(matrix, costs[bad])
            reasons = {"invalid_probe": len(bad), "near_tie": 0,
                       "weak_certificate": 0}
            if valid.any():
                rows = np.flatnonzero(valid)
                located = self._locate(costs[rows], norms[rows], out, rows)
                for reason, count in located.items():
                    reasons[reason] += count
            return reasons
        return self._locate(costs, norms, out, np.arange(len(costs)))

    def _locate(self, costs, norms, out, rows) -> dict[str, int]:
        matrix = self._matrix
        m = self._m
        r = len(costs)

        # Stage 2: witness seeds give the upper bound t.
        unit = costs / norms[:, None]
        if self._tree is not None:
            k = min(self._leaf_k, len(self._witness_plan_ids))
            __, nearest = self._tree.query(unit, k=k)
            nearest = np.atleast_2d(nearest)
            if nearest.shape[0] != r:  # k == 1 transposes the result
                nearest = nearest.T
            seeds = self._witness_plan_ids[nearest]
        else:
            seeds = np.broadcast_to(
                self._witness_plan_ids, (r, len(self._witness_plan_ids))
            )
        seed_totals = np.einsum(
            "rd,rkd->rk", costs, matrix[seeds], optimize=True
        )
        t = seed_totals.min(axis=1)

        # Stage 3: conic group certificate.
        bounds = costs @ self._bounds_matrix.T  # (r, G)
        scan = bounds <= t[:, None] * (1.0 + CERTIFICATE_SLACK)
        # Belt and braces: the best seed's group always scans.
        best_seed = seeds[np.arange(r), np.argmin(seed_totals, axis=1)]
        scan[np.arange(r), self._group_of[best_seed]] = True

        scanned_plans = scan @ self._group_sizes  # per-probe leaf count
        reasons = {"invalid_probe": 0, "near_tie": 0,
                   "weak_certificate": 0}

        # A weak certificate admits so many plans that the masked scan
        # approaches dense-kernel work anyway — on plan sets large
        # enough for that to matter, take the dense kernel outright (it
        # is the ground truth, so answers are unchanged) and count the
        # reason.  Tiny forced-on indexes keep the masked scan: it is
        # no dearer than the dense product there.
        weak = scanned_plans >= FALLBACK_SCAN_FRACTION * m
        if weak.any():
            METRICS.counter("planindex.weak_certificates").inc(
                int(weak.sum())
            )
        weak_mask = (
            weak if m >= WEAK_FALLBACK_MIN_PLANS
            else np.zeros(r, dtype=bool)
        )
        strong = np.flatnonzero(~weak_mask)
        weak_rows = np.flatnonzero(weak_mask)
        if weak_rows.size:
            out[rows[weak_rows]] = dense_owner_batch(
                matrix, costs[weak_rows]
            )
            reasons["weak_certificate"] = len(weak_rows)
        METRICS.counter("planindex.leaf_visits").inc(
            int(scanned_plans[strong].sum()) + m * len(weak_rows)
        )
        METRICS.counter("planindex.pruned").inc(
            int((m - scanned_plans[strong]).sum())
        )
        if not strong.size:
            return reasons

        # Exact stage: float64 submatrix products over the union of
        # scanned groups, masked per probe.  Probes seeded in the same
        # region scan near-identical group sets, so sorting by seed
        # region keeps each sub-block's union small.  Plan columns are
        # ascending, so the first-min argmin preserves the lowest-index
        # tie-break.
        order = strong[np.argsort(best_seed[strong], kind="stable")]
        for start in range(0, len(order), 512):
            block = order[start:start + 512]
            sub_scan = scan[block]
            need = np.flatnonzero(sub_scan.any(axis=0))
            cols = np.concatenate([self._group_ids[g] for g in need])
            cols.sort()
            totals = costs[block] @ matrix[cols].T
            allowed = sub_scan[:, self._group_of[cols]]
            masked = np.where(allowed, totals, np.inf)
            span = np.arange(len(block))
            local = np.argmin(masked, axis=1)
            best = masked[span, local]
            # Margin test: a winner is only trusted when the runner-up
            # is clearly separated; otherwise the dense kernel decides
            # (its own position-dependent rounding is the ground truth
            # the repo's tie-break is defined against).
            if masked.shape[1] > 1:
                masked[span, local] = np.inf
                runner_up = masked.min(axis=1)
                ambiguous = runner_up <= best * (1.0 + TIE_MARGIN)
            else:
                ambiguous = np.zeros(len(block), dtype=bool)
            out[rows[block]] = cols[local]
            if ambiguous.any():
                redo = block[ambiguous]
                out[rows[redo]] = dense_owner_batch(
                    matrix, costs[redo]
                )
                reasons["near_tie"] += len(redo)
        return reasons

    # ------------------------------------------------------------------
    # Provenance
    # ------------------------------------------------------------------
    def explain(self, cost) -> dict:
        """Walk the cascade for one probe and report the path taken.

        Returns the stage that decided the probe (``dense`` when the
        index is inert, ``certificate`` when the group certificate
        separated a winner, ``dense_fallback`` otherwise) with a reason
        code (``inert`` / ``separated`` / ``invalid_probe`` /
        ``weak_certificate`` / ``near_tie``) plus pruning statistics.
        The reported winner is always identical to the dense kernel's;
        this method never touches counters or stats.
        """
        values = np.asarray(
            getattr(cost, "values", cost), dtype=float
        ).ravel()
        if values.shape != (self._d,):
            raise ValueError(
                f"expected a {self._d}-dimensional cost vector, got "
                f"shape {values.shape}"
            )
        probe = values[None, :]
        winner = int(dense_owner_batch(self._matrix, probe)[0])
        result = {
            "winner": winner,
            "path": "dense",
            "reason": "inert",
            "n_plans": self._m,
            "groups": self.n_groups,
            "groups_scanned": None,
            "groups_pruned": None,
            "plans_scanned": None,
            "seed_plan": None,
            "seed_total": None,
        }
        if not self._active or plan_index_disabled():
            return result
        norm = float(np.linalg.norm(values))
        if (
            not np.isfinite(values).all()
            or (values < 0.0).any()
            or norm == 0.0
        ):
            result.update(path="dense_fallback", reason="invalid_probe")
            return result

        unit = probe / norm
        if self._tree is not None:
            k = min(self._leaf_k, len(self._witness_plan_ids))
            __, nearest = self._tree.query(unit, k=k)
            seeds = self._witness_plan_ids[
                np.atleast_1d(np.asarray(nearest).ravel())
            ]
        else:
            seeds = self._witness_plan_ids
        seed_totals = self._matrix[seeds] @ values
        best = int(np.argmin(seed_totals))
        t = float(seed_totals[best])
        result["seed_plan"] = int(seeds[best])
        result["seed_total"] = t

        bounds = self._bounds_matrix @ values
        scan = bounds <= t * (1.0 + CERTIFICATE_SLACK)
        scan[self._group_of[seeds[best]]] = True
        scanned_plans = int(self._group_sizes[scan].sum())
        result["groups_scanned"] = int(scan.sum())
        result["groups_pruned"] = int(self.n_groups - scan.sum())
        result["plans_scanned"] = scanned_plans
        if (
            self._m >= WEAK_FALLBACK_MIN_PLANS
            and scanned_plans >= FALLBACK_SCAN_FRACTION * self._m
        ):
            result.update(
                path="dense_fallback", reason="weak_certificate"
            )
            return result

        cols = np.concatenate(
            [self._group_ids[g] for g in np.flatnonzero(scan)]
        )
        cols.sort()
        totals = self._matrix[cols] @ values
        local = int(np.argmin(totals))
        if len(cols) > 1:
            rest = np.delete(totals, local)
            if rest.min() <= totals[local] * (1.0 + TIE_MARGIN):
                result.update(path="dense_fallback", reason="near_tie")
                return result
        result.update(path="certificate", reason="separated")
        return result
