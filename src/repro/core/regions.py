"""Regions of influence (Section 4.5).

The region of influence ``V_i`` of candidate plan ``A_i`` is the set of
feasible cost vectors under which that plan is optimal::

    V_i = { v in U : A_i . v <= A_j . v  for all j != i }

Regions of influence are convex polyhedral cones (apex at the origin,
Observation 1) intersected with the feasible region; their facets are
switchover planes.  They partition the feasible region like a Voronoi
diagram of cones, except that non-candidate plans get no region at all.

This module provides membership tests, interior points, Monte-Carlo
volume estimation and the facet-adjacency structure between regions —
the machinery behind the discovery algorithm's completeness reasoning
and the Section 8.2 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .candidates import region_of_influence_margin, witness_cost_vector
from .feasible import FeasibleRegion
from .geometry import switchover_point_in_box
from .vectors import CostVector, UsageVector

__all__ = ["RegionOfInfluence", "InfluenceDiagram"]


@dataclass(frozen=True)
class RegionOfInfluence:
    """One plan's region of influence within a feasible region."""

    plan_index: int
    usages: tuple[UsageVector, ...]
    region: FeasibleRegion

    @property
    def usage(self) -> UsageVector:
        return self.usages[self.plan_index]

    def contains(self, cost: CostVector, rel_tol: float = 1e-9) -> bool:
        """Is the plan optimal (within tolerance) at ``cost``?

        Membership is tested against all rival plans; the cost vector
        itself need not lie inside the feasible region (cones extend to
        the whole orthant by Observation 1).
        """
        own = self.usage.dot(cost)
        for j, other in enumerate(self.usages):
            if j == self.plan_index:
                continue
            rival = other.dot(cost)
            if own > rival * (1 + rel_tol):
                return False
        return True

    def interior_point(self) -> CostVector | None:
        """A feasible cost vector where this plan wins, if any."""
        return witness_cost_vector(
            self.plan_index, list(self.usages), self.region
        )

    def margin(self) -> float | None:
        """Interior slack of the region (see candidates module)."""
        return region_of_influence_margin(
            self.plan_index, list(self.usages), self.region
        )

    def is_empty(self) -> bool:
        return self.interior_point() is None

    def volume_fraction(
        self, rng: np.random.Generator, n_samples: int = 2000
    ) -> float:
        """Monte-Carlo fraction of the feasible region this plan rules.

        Sampling is log-uniform per variation group (the natural measure
        for multiplicative error); the fractions of all candidate plans
        sum to ~1.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        hits = 0
        matrix = np.vstack([u.values for u in self.usages])
        for cost in self.region.sample(rng, n_samples):
            totals = matrix @ cost.values
            if int(np.argmin(totals)) == self.plan_index:
                hits += 1
        return hits / n_samples


class InfluenceDiagram:
    """All regions of influence of a candidate plan set at once."""

    def __init__(
        self, usages: Sequence[UsageVector], region: FeasibleRegion
    ) -> None:
        if not usages:
            raise ValueError("need at least one plan")
        self._usages = tuple(usages)
        self._region = region

    @property
    def regions(self) -> tuple[RegionOfInfluence, ...]:
        return tuple(
            RegionOfInfluence(i, self._usages, self._region)
            for i in range(len(self._usages))
        )

    def owner(self, cost: CostVector) -> int:
        """Index of the plan optimal at ``cost`` (lowest index on ties)."""
        matrix = np.vstack([u.values for u in self._usages])
        return int(np.argmin(matrix @ cost.values))

    def nonempty_regions(self) -> list[int]:
        """Plans whose region of influence is nonempty (the candidates)."""
        return [
            i
            for i, region in enumerate(self.regions)
            if not region.is_empty()
        ]

    def are_adjacent(self, index_a: int, index_b: int) -> bool:
        """Do two regions share a switchover facet inside the region?

        True iff some feasible cost vector makes the two plans tie while
        neither is beaten by any third plan.
        """
        lo = self._region.lower()
        hi = self._region.upper()
        others = [
            usage
            for k, usage in enumerate(self._usages)
            if k not in (index_a, index_b)
        ]
        point = switchover_point_in_box(
            self._usages[index_a],
            self._usages[index_b],
            lo,
            hi,
            others=others,
        )
        return point is not None

    def adjacency_pairs(self) -> list[tuple[int, int]]:
        """All adjacent (facet-sharing) pairs of nonempty regions."""
        nonempty = self.nonempty_regions()
        pairs = []
        for position, index_a in enumerate(nonempty):
            for index_b in nonempty[position + 1 :]:
                if self.are_adjacent(index_a, index_b):
                    pairs.append((index_a, index_b))
        return pairs

    def volume_fractions(
        self, rng: np.random.Generator, n_samples: int = 5000
    ) -> np.ndarray:
        """Monte-Carlo volume share of every plan in one pass."""
        matrix = np.vstack([u.values for u in self._usages])
        counts = np.zeros(len(self._usages), dtype=int)
        for cost in self._region.sample(rng, n_samples):
            counts[int(np.argmin(matrix @ cost.values))] += 1
        return counts / n_samples
