"""Regions of influence (Section 4.5).

The region of influence ``V_i`` of candidate plan ``A_i`` is the set of
feasible cost vectors under which that plan is optimal::

    V_i = { v in U : A_i . v <= A_j . v  for all j != i }

Regions of influence are convex polyhedral cones (apex at the origin,
Observation 1) intersected with the feasible region; their facets are
switchover planes.  They partition the feasible region like a Voronoi
diagram of cones, except that non-candidate plans get no region at all.

This module provides membership tests, interior points, Monte-Carlo
volume estimation and the facet-adjacency structure between regions —
the machinery behind the discovery algorithm's completeness reasoning
and the Section 8.2 analysis.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property
from typing import Sequence

import numpy as np

from .candidates import region_of_influence_margin, witness_cost_vector
from .feasible import FeasibleRegion
from .geometry import switchover_point_in_box
from .planindex import PlanIndex
from .vectors import CostVector, UsageVector

__all__ = ["RegionOfInfluence", "InfluenceDiagram"]

#: Chunk size of the vectorised Monte-Carlo sweeps below.
_MC_CHUNK = 4096


def _winner_counts(
    matrix: np.ndarray,
    region: FeasibleRegion,
    rng: np.random.Generator,
    n_samples: int,
    index: "PlanIndex | None" = None,
) -> np.ndarray:
    """Monte-Carlo winner histogram over the feasible region.

    One batched ``S @ U.T`` + row argmin per chunk (or a
    :class:`PlanIndex` lookup when an active index is supplied)
    instead of a Python loop per sample.
    """
    counts = np.zeros(matrix.shape[0], dtype=np.int64)
    remaining = n_samples
    while remaining > 0:
        take = min(remaining, _MC_CHUNK)
        samples = region.sample_matrix(rng, take)
        if index is not None and index.active:
            winners = index.owner_batch(samples)
        else:
            winners = np.argmin(samples @ matrix.T, axis=1)
        counts += np.bincount(winners, minlength=len(counts))
        remaining -= take
    return counts


@dataclass(frozen=True)
class RegionOfInfluence:
    """One plan's region of influence within a feasible region."""

    plan_index: int
    usages: tuple[UsageVector, ...]
    region: FeasibleRegion

    @property
    def usage(self) -> UsageVector:
        return self.usages[self.plan_index]

    def contains(self, cost: CostVector, rel_tol: float = 1e-9) -> bool:
        """Is the plan optimal (within tolerance) at ``cost``?

        Membership is tested against all rival plans; the cost vector
        itself need not lie inside the feasible region (cones extend to
        the whole orthant by Observation 1).
        """
        own = self.usage.dot(cost)
        for j, other in enumerate(self.usages):
            if j == self.plan_index:
                continue
            rival = other.dot(cost)
            if own > rival * (1 + rel_tol):
                return False
        return True

    def interior_point(self) -> CostVector | None:
        """A feasible cost vector where this plan wins, if any."""
        return witness_cost_vector(
            self.plan_index, list(self.usages), self.region
        )

    def margin(self) -> float | None:
        """Interior slack of the region (see candidates module)."""
        return region_of_influence_margin(
            self.plan_index, list(self.usages), self.region
        )

    def is_empty(self) -> bool:
        return self.interior_point() is None

    @cached_property
    def _usage_matrix(self) -> np.ndarray:
        """The usages stacked once (cached; the dataclass is frozen)."""
        return np.vstack([u.values for u in self.usages])

    def volume_fraction(
        self, rng: np.random.Generator, n_samples: int = 2000
    ) -> float:
        """Monte-Carlo fraction of the feasible region this plan rules.

        Sampling is log-uniform per variation group (the natural measure
        for multiplicative error); the fractions of all candidate plans
        sum to ~1.  Vectorised: one batched ``S @ U.T`` + argmin per
        chunk instead of a per-sample Python loop.
        """
        if n_samples <= 0:
            raise ValueError("n_samples must be positive")
        counts = _winner_counts(
            self._usage_matrix, self.region, rng, n_samples
        )
        return int(counts[self.plan_index]) / n_samples


class InfluenceDiagram:
    """All regions of influence of a candidate plan set at once."""

    def __init__(
        self, usages: Sequence[UsageVector], region: FeasibleRegion
    ) -> None:
        if not usages:
            raise ValueError("need at least one plan")
        self._usages = tuple(usages)
        self._region = region
        # Cached once: owner()/volume_fractions() used to rebuild this
        # stack on every call.
        self._matrix = np.vstack([u.values for u in self._usages])
        self._index: "PlanIndex | None" = None

    def plan_index(self) -> PlanIndex:
        """The point-location index over this diagram's plans (lazy).

        Inert below the activation threshold (small plan sets are
        faster through the dense kernel), in which case lookups below
        stay on the exact code path they always used.
        """
        if self._index is None:
            self._index = PlanIndex(self._matrix, self._region)
        return self._index

    @property
    def regions(self) -> tuple[RegionOfInfluence, ...]:
        return tuple(
            RegionOfInfluence(i, self._usages, self._region)
            for i in range(len(self._usages))
        )

    def owner(self, cost: CostVector) -> int:
        """Index of the plan optimal at ``cost`` (lowest index on ties)."""
        index = self.plan_index()
        if index.active:
            return index.owner(cost)
        return int(np.argmin(self._matrix @ cost.values))

    def nonempty_regions(self) -> list[int]:
        """Plans whose region of influence is nonempty (the candidates)."""
        return [
            i
            for i, region in enumerate(self.regions)
            if not region.is_empty()
        ]

    def are_adjacent(self, index_a: int, index_b: int) -> bool:
        """Do two regions share a switchover facet inside the region?

        True iff some feasible cost vector makes the two plans tie while
        neither is beaten by any third plan.
        """
        lo = self._region.lower()
        hi = self._region.upper()
        others = [
            usage
            for k, usage in enumerate(self._usages)
            if k not in (index_a, index_b)
        ]
        point = switchover_point_in_box(
            self._usages[index_a],
            self._usages[index_b],
            lo,
            hi,
            others=others,
        )
        return point is not None

    def adjacency_pairs(self) -> list[tuple[int, int]]:
        """All adjacent (facet-sharing) pairs of nonempty regions."""
        nonempty = self.nonempty_regions()
        pairs = []
        for position, index_a in enumerate(nonempty):
            for index_b in nonempty[position + 1 :]:
                if self.are_adjacent(index_a, index_b):
                    pairs.append((index_a, index_b))
        return pairs

    def volume_fractions(
        self, rng: np.random.Generator, n_samples: int = 5000
    ) -> np.ndarray:
        """Monte-Carlo volume share of every plan in one pass.

        Vectorised (chunked ``S @ U.T`` + argmin, or the plan index
        when it is active) — the sampling stream matches the old
        per-sample loop point for point.
        """
        counts = _winner_counts(
            self._matrix, self._region, rng, n_samples,
            index=self.plan_index(),
        )
        return counts / n_samples
