"""One-dimensional parametric analysis: the optimal-plan envelope.

Along a ray that scales one variation group's costs by ``m`` (holding
everything else at the center), every plan's total cost is an affine
function ``T_i(m) = a_i + b_i * m``.  The optimal plan as a function of
``m`` is therefore the *lower envelope* of a set of lines — the
classic parametric-query-optimization picture in one dimension.

:func:`lower_envelope` computes that envelope exactly over a
multiplier interval: the ordered sequence of optimal plans and the
breakpoints (switchover multipliers) between them.  This generalises
:mod:`repro.core.switching`, which reports only the first breakpoint
on either side of ``m = 1``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from .feasible import VariationGroup
from .vectors import CostVector, UsageVector

__all__ = ["EnvelopePiece", "PlanEnvelope", "lower_envelope"]


@dataclass(frozen=True)
class EnvelopePiece:
    """One maximal interval of the envelope owned by a single plan."""

    plan_index: int
    m_low: float
    m_high: float

    def contains(self, m: float) -> bool:
        return self.m_low <= m <= self.m_high

    @property
    def width_ratio(self) -> float:
        """Multiplicative width of the interval."""
        return self.m_high / self.m_low


@dataclass(frozen=True)
class PlanEnvelope:
    """The full lower envelope over a multiplier interval."""

    group: str
    pieces: tuple[EnvelopePiece, ...]

    @property
    def plan_sequence(self) -> tuple[int, ...]:
        return tuple(piece.plan_index for piece in self.pieces)

    @property
    def breakpoints(self) -> tuple[float, ...]:
        """The interior switchover multipliers."""
        return tuple(piece.m_low for piece in self.pieces[1:])

    def plan_at(self, m: float) -> int:
        """Optimal plan index at multiplier ``m``."""
        for piece in self.pieces:
            if piece.contains(m):
                return piece.plan_index
        raise ValueError(
            f"multiplier {m} outside the envelope range "
            f"[{self.pieces[0].m_low}, {self.pieces[-1].m_high}]"
        )

    def __len__(self) -> int:
        return len(self.pieces)


def _affine(usages, center, group):
    matrix = np.vstack([usage.values for usage in usages])
    values = center.values
    mask = np.zeros(len(values), dtype=bool)
    mask[list(group.indices)] = True
    slopes = matrix[:, mask] @ values[mask]
    intercepts = matrix[:, ~mask] @ values[~mask]
    return intercepts, slopes


def lower_envelope(
    usages: Sequence[UsageVector],
    center: CostVector,
    group: VariationGroup,
    m_low: float,
    m_high: float,
    rel_tol: float = 1e-12,
) -> PlanEnvelope:
    """Exact lower envelope of plan costs along a one-group ray.

    Sweep construction: start with the argmin at ``m_low``; from the
    current plan, find the nearest crossing to the right where another
    plan strictly takes over; repeat.  Each step is O(plans), the
    envelope has at most ``len(usages)`` pieces (affine functions), so
    the sweep terminates.  Ties resolve toward the lower plan index,
    matching the deterministic black-box optimizer.
    """
    if not usages:
        raise ValueError("need at least one plan")
    if not 0 < m_low < m_high:
        raise ValueError("need 0 < m_low < m_high")
    intercepts, slopes = _affine(usages, center, group)

    def argmin_at(m: float) -> int:
        totals = intercepts + slopes * m
        best = totals.min()
        # Lowest index within relative tolerance of the minimum.
        for index, total in enumerate(totals):
            if total <= best * (1 + 1e-12):
                return index
        return int(np.argmin(totals))  # pragma: no cover

    pieces: list[EnvelopePiece] = []
    current = argmin_at(m_low)
    position = m_low
    guard = 0
    while position < m_high and guard <= len(usages) + 2:
        guard += 1
        # Nearest crossing beyond ``position`` where a rival with a
        # smaller slope-side advantage overtakes the current plan.
        next_cross = m_high
        next_plan = None
        for j in range(len(usages)):
            if j == current:
                continue
            db = slopes[j] - slopes[current]
            da = intercepts[current] - intercepts[j]
            if db >= 0 or abs(db) <= rel_tol * max(
                abs(slopes[j]), abs(slopes[current]), 1.0
            ):
                continue  # rival never overtakes as m grows
            crossing = da / db
            if crossing <= position * (1 + rel_tol):
                continue
            if crossing < next_cross:
                next_cross = crossing
                next_plan = j
        end = min(next_cross, m_high)
        pieces.append(EnvelopePiece(current, position, end))
        if next_plan is None or end >= m_high:
            break
        current = next_plan
        position = end
    if guard > len(usages) + 2:  # pragma: no cover - safety net
        raise RuntimeError("envelope sweep failed to terminate")
    return PlanEnvelope(group=group.name, pieces=tuple(pieces))
