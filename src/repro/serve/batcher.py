"""Micro-batching request queue with coalescing and tick flushes.

Requests arriving within one batching window are answered together:
the ticker wakes every ``window`` seconds, snapshots the pending map,
and hands each ``(query, scenario)`` group's *unique* quantized
probes to the compute callback — one batched dgemm sweep per group
per tick (see ``serve/decide.py``).  Requests that coalesced onto an
identical key are computed once and replied N times with the same
payload.

A tick whose group exceeds ``max_batch`` unique probes is split into
consecutive chunks — each chunk is its own dgemm call — so a burst
can never build an unbounded matrix; splits are counted in
``serve.batch_splits`` and every dgemm's row count lands in the
``serve.batch_size`` histogram.

The batcher is deliberately synchronous inside the flush (numpy math
on an event loop thread): a tick's work is microseconds-to-
milliseconds, and keeping it on-loop makes drain trivially correct —
``stop()`` flushes whatever is pending and no request is ever
dropped.  Tests drive :meth:`flush_now` directly instead of racing
the wall-clock ticker.
"""

from __future__ import annotations

import asyncio
from typing import Any, Awaitable, Callable, Mapping

from ..obs.metrics import METRICS
from .protocol import request_key

__all__ = ["MicroBatcher"]

#: Default flush window: 2ms keeps p99 tight at hundreds of QPS while
#: still coalescing bursts.
DEFAULT_WINDOW = 0.002

#: Default per-dgemm row cap; a tick beyond it splits.
DEFAULT_MAX_BATCH = 1024


class _Pending:
    """One unique in-flight key and everyone waiting on it."""

    __slots__ = ("request", "waiters")

    def __init__(self, request: Mapping[str, Any]) -> None:
        self.request = request
        self.waiters: list[asyncio.Future] = []


class MicroBatcher:
    """Coalescing micro-batch queue in front of the decide kernel.

    ``compute`` maps a list of parsed requests (unique keys, single
    ``(query, scenario)`` group) to a list of response payloads in
    order; it may raise per-group, which rejects every waiter of that
    group with the error.
    """

    def __init__(
        self,
        compute: Callable[[list], "list | Awaitable[list]"],
        window: float = DEFAULT_WINDOW,
        max_batch: int = DEFAULT_MAX_BATCH,
    ) -> None:
        if window <= 0:
            raise ValueError("window must be > 0")
        if max_batch < 1:
            raise ValueError("max_batch must be >= 1")
        self.compute = compute
        self.window = float(window)
        self.max_batch = int(max_batch)
        self._pending: dict[tuple, _Pending] = {}
        self._ticker: "asyncio.Task | None" = None
        self._stopping = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(self) -> None:
        if self._ticker is None:
            self._stopping = False
            self._ticker = asyncio.ensure_future(self._run())

    async def stop(self) -> None:
        """Drain: flush everything pending, then stop the ticker."""
        self._stopping = True
        ticker = self._ticker
        self._ticker = None
        if ticker is not None:
            ticker.cancel()
            try:
                await ticker
            except asyncio.CancelledError:
                pass
        while self._pending:
            self.flush_now()

    async def _run(self) -> None:
        while not self._stopping:
            await asyncio.sleep(self.window)
            self.flush_now()

    # ------------------------------------------------------------------
    # Submission
    # ------------------------------------------------------------------
    def submit(self, request: Mapping[str, Any]) -> asyncio.Future:
        """Queue one parsed request; the future resolves at flush."""
        METRICS.counter("serve.requests").inc()
        key = request_key(request)
        pending = self._pending.get(key)
        if pending is None:
            pending = self._pending[key] = _Pending(request)
        else:
            METRICS.counter("serve.coalesced").inc()
        future = asyncio.get_running_loop().create_future()
        pending.waiters.append(future)
        return future

    @property
    def depth(self) -> int:
        """Unique keys currently waiting for the next tick."""
        return len(self._pending)

    # ------------------------------------------------------------------
    # Flush
    # ------------------------------------------------------------------
    def flush_now(self) -> int:
        """Flush the current pending map; returns keys answered.

        Called by the ticker every window, by ``stop()`` to drain,
        and directly by tests.
        """
        if not self._pending:
            METRICS.counter("serve.empty_ticks").inc()
            return 0
        taken = self._pending
        self._pending = {}
        METRICS.counter("serve.batches").inc()

        groups: dict[tuple, list[_Pending]] = {}
        for pending in taken.values():
            group = (
                pending.request["query"],
                pending.request["scenario"],
            )
            groups.setdefault(group, []).append(pending)

        for members in groups.values():
            chunks = [
                members[start : start + self.max_batch]
                for start in range(0, len(members), self.max_batch)
            ]
            if len(chunks) > 1:
                METRICS.counter("serve.batch_splits").inc(
                    len(chunks) - 1
                )
            for chunk in chunks:
                self._flush_chunk(chunk)
        return len(taken)

    def _flush_chunk(self, chunk: "list[_Pending]") -> None:
        METRICS.histogram("serve.batch_size").observe(len(chunk))
        try:
            responses = self.compute(
                [pending.request for pending in chunk]
            )
        except Exception as exc:  # reject this chunk's waiters
            for pending in chunk:
                for waiter in pending.waiters:
                    if not waiter.done():
                        waiter.set_exception(exc)
            return
        for pending, response in zip(chunk, responses):
            for waiter in pending.waiters:
                if not waiter.done():
                    waiter.set_result(response)
