"""The online plan-sensitivity service.

Serves the paper's core question — *which plan wins at this cost
vector, and how close is the nearest switchover plane?* — as a
long-running HTTP endpoint (``POST /v1/decide``) with micro-batched
request handling, a warm shared candidate-set store, and responses
bitwise identical to offline ``repro explain`` for the same probe.

Layering: ``serve`` sits *above* ``experiments`` (it reuses scenario
wiring and the run-context workload) and below ``cli`` (the ``repro
serve`` / ``repro loadgen`` subcommands are thin argument shims).
"""

from .batcher import MicroBatcher
from .decide import decide_group, decide_one, verify_offline
from .loadgen import build_requests, run_loadgen
from .protocol import (
    QUANT_DIGITS,
    SERVE_SCHEMA_VERSION,
    RequestError,
    decisions_digest,
    parse_decide_request,
    quantize_costs,
    request_key,
    response_core,
)
from .server import ServeApp, run_server
from .store import CandidateStore, StoreEntry

__all__ = [
    "QUANT_DIGITS",
    "SERVE_SCHEMA_VERSION",
    "CandidateStore",
    "MicroBatcher",
    "RequestError",
    "ServeApp",
    "StoreEntry",
    "build_requests",
    "decide_group",
    "decide_one",
    "decisions_digest",
    "parse_decide_request",
    "quantize_costs",
    "request_key",
    "response_core",
    "run_loadgen",
    "run_server",
    "verify_offline",
]
