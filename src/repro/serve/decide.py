"""The per-tick decide kernel: one dgemm sweep + canonical provenance.

Each micro-batch tick hands this module the unique quantized probes
of one ``(query, scenario)`` group.  Two passes answer them:

* **The batched winner sweep** — one ``C @ U.T`` dgemm over the whole
  group (the same kernel shape ``optimize_batch`` and the figure
  sweeps use), from which winners, margins and switchover-plane
  distances are extracted vectorized via the ``obs/decisions`` helpers
  with no second kernel pass.  This is what the serving metrics see:
  near-plane fractions, margin histograms, batch sizes.
* **Canonical per-probe provenance** — the response payload for each
  unique probe is recomputed with :func:`repro.obs.explain_probe`,
  the exact single-probe computation behind offline ``repro explain``.

The second pass is not redundancy for its own sake: BLAS dgemm is
*not* row-wise bitwise reproducible across batch shapes (the same
probe row multiplied inside a 500-row batch and alone differs in the
last ulp), so any response field derived from the batched totals would
change with the accidental composition of its micro-batch — and the
offline digest gate would be unsatisfiable.  ``explain_probe`` always
runs the same fixed-shape product for a given candidate set, so a
response is a pure function of ``(query, scenario, quantized C)`` and
digests match offline recomputation bit for bit.  Near-ties can still
make the *batched* argmin disagree with the canonical one (margins at
double-precision noise); those rows are counted in
``serve.winner_mismatches`` and the canonical answer wins.
"""

from __future__ import annotations

from typing import Any, Mapping, Sequence

import numpy as np

from ..obs.decisions import (
    explain_probe,
    margins_from_totals,
    plane_distances,
)
from ..obs.metrics import METRICS
from .protocol import SERVE_SCHEMA_VERSION

__all__ = ["decide_group", "decide_one", "verify_offline"]


def decide_one(
    entry: Any, cost: Sequence[float]
) -> dict[str, Any]:
    """The canonical decide response for one quantized probe.

    ``entry`` is a :class:`repro.serve.store.StoreEntry` (anything
    with ``query``, ``scenario``, ``matrix`` and ``signatures``).
    This is the function the offline verifier replays — the server
    returns exactly its output.
    """
    probe = np.asarray(cost, dtype=float)
    info = explain_probe(entry.matrix, probe)
    winner = info["winner"]
    runner = info["runner_up"]
    return {
        "serve_schema_version": SERVE_SCHEMA_VERSION,
        "query": entry.query,
        "scenario": entry.scenario,
        "cost": [float(value) for value in cost],
        "candidates": info["candidates"],
        "winner": winner,
        "winner_signature": entry.signatures[winner],
        "winner_total": info["winner_total"],
        "runner_up": runner,
        "runner_up_signature": (
            entry.signatures[runner] if runner is not None else None
        ),
        "runner_up_total": info["runner_up_total"],
        "margin": info["margin"],
        "plane_distance": info["plane_distance"],
        "nearest_rival": info["nearest_rival"],
        "index_active": bool(entry.index_active),
    }


def decide_group(
    entry: Any, costs: Sequence[Sequence[float]]
) -> list[dict[str, Any]]:
    """Decide every unique probe of one ``(query, scenario)`` group.

    Issues the group's single batched dgemm winner sweep (metrics
    source), then builds each response through :func:`decide_one`.
    Returns responses in probe order.
    """
    matrix = entry.matrix
    stacked = np.asarray(costs, dtype=float)
    totals = stacked @ matrix.T
    METRICS.counter("serve.dgemm_calls").inc()
    METRICS.counter("serve.probes").inc(len(costs))
    winners, _, _, margins = margins_from_totals(totals)
    distances = plane_distances(
        matrix, stacked, totals, winners, margins
    )
    finite = np.isfinite(margins)
    METRICS.histogram("serve.margin").observe_many(margins[finite])
    METRICS.counter("serve.near_plane").inc(
        int(np.count_nonzero(distances <= 1e-3))
    )

    responses = [decide_one(entry, cost) for cost in costs]
    mismatches = sum(
        int(response["winner"]) != int(winner)
        for response, winner in zip(responses, winners)
    )
    if mismatches:
        # Batched argmin disagreed with the canonical single-probe
        # argmin — only possible on margins at double-precision noise.
        METRICS.counter("serve.winner_mismatches").inc(mismatches)
    return responses


def verify_offline(
    entries: Mapping[tuple, Any],
    requests: Sequence[Mapping[str, Any]],
) -> list[dict[str, Any]]:
    """Replay requests through the canonical kernel, no batching.

    ``entries`` maps ``(query, scenario)`` to store entries; each
    request is a parsed/quantized protocol request.  The returned
    responses digest-match what the server produced for the same
    request stream — that equality is the serve-smoke CI gate.
    """
    return [
        decide_one(
            entries[(request["query"], request["scenario"])],
            request["cost"],
        )
        for request in requests
    ]
