"""The `/v1/decide` wire protocol: quantization, validation, digests.

The online gate the service must pass is *bitwise*: a decide response
served out of a micro-batch has to carry exactly the numbers offline
``repro explain`` would print for the same ``(query, C)`` probe.  Two
protocol rules make that possible:

* **Cost quantization.**  Incoming cost vectors are rounded to
  ``QUANT_DIGITS`` significant digits before anything touches them.
  The quantized floats survive a JSON round-trip exactly (floats in
  this range serialize shortest-repr and parse back bit-identically),
  so the server, the load generator and the offline verifier all
  operate on the same probe.  Quantization is also the coalescing key:
  two requests that agree to nine significant digits are one decision.
* **Canonical response core.**  :func:`response_core` projects a
  response onto the fields that define the decision (ids, totals,
  margin, plane distance) — dropping serving metadata like batch
  sizes — and :func:`decisions_digest` hashes the cores in request
  order as canonical JSON.  Equal digests mean equal decisions, field
  for field, bit for bit.
"""

from __future__ import annotations

import hashlib
import json
import math
from typing import Any, Iterable, Mapping

__all__ = [
    "QUANT_DIGITS",
    "SERVE_SCHEMA_VERSION",
    "CORE_FIELDS",
    "RequestError",
    "decisions_digest",
    "parse_decide_request",
    "quantize_costs",
    "request_key",
    "response_core",
]

#: Bump when the decide response shape changes.
SERVE_SCHEMA_VERSION = 1

#: Significant digits a probe cost vector is quantized to.  Nine
#: digits is far below any physically meaningful calibration error and
#: far above double-precision noise, so quantization never moves a
#: probe across a switchover plane that matters while making equal
#: requests exactly equal.
QUANT_DIGITS = 9

#: The fields of a decide response that define the decision itself.
#: Everything else (serving metadata, signatures' rendering) rides
#: outside the digest.
CORE_FIELDS = (
    "query",
    "scenario",
    "cost",
    "candidates",
    "winner",
    "winner_total",
    "runner_up",
    "runner_up_total",
    "margin",
    "plane_distance",
    "nearest_rival",
)


class RequestError(ValueError):
    """A malformed or unserveable decide request (HTTP 400)."""


def quantize_costs(
    values: Iterable[float], digits: int = QUANT_DIGITS
) -> tuple[float, ...]:
    """Round each cost to ``digits`` significant digits.

    Deterministic (decimal formatting, not arithmetic) and idempotent;
    positive inputs stay positive.
    """
    if digits < 1:
        raise ValueError("digits must be >= 1")
    return tuple(
        float(f"{float(value):.{digits - 1}e}") for value in values
    )


def parse_decide_request(
    payload: Any, digits: int = QUANT_DIGITS
) -> "dict[str, Any]":
    """Validate one decide request body into its canonical form.

    Returns ``{"query", "scenario", "cost"}`` with the cost already
    quantized; raises :class:`RequestError` with a one-line message on
    any malformation (the server maps that to HTTP 400).  Scenario
    resolution (aliases, unknown keys) and dimension checks happen at
    the store layer, which knows the candidate sets.
    """
    if not isinstance(payload, Mapping):
        raise RequestError("request body must be a JSON object")
    unknown = sorted(
        set(payload) - {"query", "scenario", "cost_vector"}
    )
    if unknown:
        raise RequestError(
            "unknown request field(s): " + ", ".join(unknown)
        )
    query = payload.get("query")
    if not isinstance(query, str) or not query:
        raise RequestError("'query' must be a non-empty string")
    scenario = payload.get("scenario", "split")
    if not isinstance(scenario, str) or not scenario:
        raise RequestError("'scenario' must be a non-empty string")
    cost = payload.get("cost_vector")
    if not isinstance(cost, (list, tuple)) or not cost:
        raise RequestError(
            "'cost_vector' must be a non-empty array of numbers"
        )
    values = []
    for position, value in enumerate(cost):
        if isinstance(value, bool) or not isinstance(
            value, (int, float)
        ):
            raise RequestError(
                f"cost_vector[{position}] must be a number"
            )
        value = float(value)
        if not math.isfinite(value) or value <= 0.0:
            raise RequestError(
                f"cost_vector[{position}] must be finite and > 0"
            )
        values.append(value)
    return {
        "query": query,
        "scenario": scenario,
        "cost": quantize_costs(values, digits),
    }


def request_key(request: Mapping[str, Any]) -> tuple:
    """The coalescing key: identical keys are one decision."""
    return (
        request["query"],
        request["scenario"],
        tuple(request["cost"]),
    )


def response_core(response: Mapping[str, Any]) -> dict[str, Any]:
    """The digest-relevant projection of one decide response."""
    return {field: response[field] for field in CORE_FIELDS}


def decisions_digest(responses: Iterable[Mapping[str, Any]]) -> str:
    """SHA-256 over the canonical JSON of response cores, in order.

    The load generator digests what it received; the offline verifier
    digests what ``explain_probe`` recomputes.  Equality is the CI
    gate.
    """
    hasher = hashlib.sha256()
    for response in responses:
        line = json.dumps(
            response_core(response), sort_keys=True
        )
        hasher.update(line.encode())
        hasher.update(b"\n")
    return hasher.hexdigest()
