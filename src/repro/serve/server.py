"""The stdlib-only asyncio decision server.

A hand-rolled HTTP/1.1 server over ``asyncio`` streams — no
third-party web framework, matching the repository's stdlib+numpy
dependency budget.  Three routes:

* ``POST /v1/decide`` — body ``{"query", "scenario", "cost_vector"}``;
  the request is validated and quantized (``serve/protocol.py``),
  coalesced into the micro-batch queue (``serve/batcher.py``) and
  answered from the per-tick decide kernel (``serve/decide.py``).
* ``GET /healthz`` — liveness + store stats + drain state.
* ``GET /metrics`` — the process-global obs metrics registry snapshot
  (counters/gauges/histograms), JSON.

Keep-alive is supported (the load generator reuses connections), and
drain is graceful: SIGTERM/SIGINT stops the listener, lets in-flight
requests finish through a final batch flush, and exits 0 — the CI
serve-smoke job asserts exactly that.

``--workers N`` pre-forks: the parent binds the listening socket,
forks N children that each run their own event loop against the
shared socket (the kernel load-balances accepts), forwards SIGTERM,
and exits with the worst child status.  Workers share one candidate
-set cache on disk (``store.py``), so a cold plan is computed once
machine-wide.
"""

from __future__ import annotations

import asyncio
import json
import logging
import os
import signal
import socket
import sys
from typing import Any

from ..obs.metrics import METRICS
from .batcher import MicroBatcher
from .decide import decide_group
from .protocol import RequestError, parse_decide_request
from .store import CandidateStore

__all__ = ["ServeApp", "run_server"]

logger = logging.getLogger(__name__)

#: Largest accepted request body; decide bodies are ~hundreds of bytes.
MAX_BODY_BYTES = 1 << 20

#: Default catalog hot-reload poll interval (seconds).
DEFAULT_RELOAD_INTERVAL = 5.0


class ServeApp:
    """One server process: store + batcher + HTTP front end."""

    def __init__(
        self,
        store: CandidateStore,
        window: float = 0.002,
        max_batch: int = 1024,
        quant_digits: int = 9,
        reload_interval: float = DEFAULT_RELOAD_INTERVAL,
    ) -> None:
        self.store = store
        self.quant_digits = int(quant_digits)
        self.reload_interval = float(reload_interval)
        self.batcher = MicroBatcher(
            self._compute, window=window, max_batch=max_batch
        )
        self.draining = False
        self._server: "asyncio.AbstractServer | None" = None
        self._reloader: "asyncio.Task | None" = None
        self._drained = asyncio.Event()

    # ------------------------------------------------------------------
    # Decide plumbing
    # ------------------------------------------------------------------
    def _compute(self, requests: list) -> list:
        """One batch group -> responses (runs inside a tick flush)."""
        first = requests[0]
        entry = self.store.entry(first["query"], first["scenario"])
        return decide_group(
            entry, [request["cost"] for request in requests]
        )

    async def decide(self, payload: Any) -> dict[str, Any]:
        request = parse_decide_request(
            payload, digits=self.quant_digits
        )
        # Resolve the entry before queueing so unknown queries,
        # unknown scenarios and dimension mismatches fail fast as 400s
        # instead of poisoning a whole batch group.
        entry = self.store.entry(request["query"], request["scenario"])
        request["scenario"] = entry.scenario
        if len(request["cost"]) != entry.dimension:
            raise RequestError(
                f"cost_vector needs {entry.dimension} component(s) "
                f"({', '.join(entry.names)}), got "
                f"{len(request['cost'])}"
            )
        return await self.batcher.submit(request)

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    async def start(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        sock: "socket.socket | None" = None,
    ) -> tuple[str, int]:
        """Bind (or adopt ``sock``), start ticking; returns (host, port)."""
        await self.batcher.start()
        if sock is not None:
            self._server = await asyncio.start_server(
                self._handle, sock=sock
            )
        else:
            self._server = await asyncio.start_server(
                self._handle, host=host, port=port
            )
        if self.reload_interval > 0:
            self._reloader = asyncio.ensure_future(self._reload_loop())
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def _reload_loop(self) -> None:
        while not self.draining:
            await asyncio.sleep(self.reload_interval)
            try:
                self.store.maybe_reload()
            except Exception:
                logger.exception("catalog reload failed")

    async def drain(self) -> None:
        """Stop accepting, flush in-flight work, release the port."""
        if self.draining:
            await self._drained.wait()
            return
        self.draining = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._reloader is not None:
            self._reloader.cancel()
            try:
                await self._reloader
            except asyncio.CancelledError:
                pass
        await self.batcher.stop()
        self._drained.set()
        logger.info("drained: all in-flight requests answered")

    # ------------------------------------------------------------------
    # HTTP front end
    # ------------------------------------------------------------------
    async def _handle(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
    ) -> None:
        try:
            while True:
                keep_alive = await self._one_request(reader, writer)
                if not keep_alive:
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            # close() is enough: awaiting wait_closed() here leaves
            # handler tasks parked in the close handshake when the
            # loop shuts down right after drain, and asyncio logs
            # their cancellation as spurious callback errors.
            writer.close()

    async def _one_request(self, reader, writer) -> bool:
        request_line = await reader.readline()
        if not request_line:
            return False
        try:
            method, path, version = (
                request_line.decode("latin-1").split()
            )
        except ValueError:
            await self._respond(
                writer, 400, {"error": "malformed request line"},
                close=True,
            )
            return False
        headers = {}
        while True:
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        keep_alive = (
            version == "HTTP/1.1"
            and headers.get("connection", "").lower() != "close"
        )
        length = int(headers.get("content-length", 0) or 0)
        if length > MAX_BODY_BYTES:
            await self._respond(
                writer, 413, {"error": "request body too large"},
                close=True,
            )
            return False
        body = await reader.readexactly(length) if length else b""
        status, payload = await self._route(method, path, body)
        await self._respond(
            writer, status, payload, close=not keep_alive
        )
        return keep_alive

    async def _route(
        self, method: str, path: str, body: bytes
    ) -> tuple[int, Any]:
        path = path.split("?", 1)[0]
        if path == "/healthz":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, {
                "status": "draining" if self.draining else "ok",
                "pid": os.getpid(),
                "pending": self.batcher.depth,
                "store": self.store.stats(),
            }
        if path == "/metrics":
            if method != "GET":
                return 405, {"error": "use GET"}
            return 200, METRICS.snapshot()
        if path == "/v1/decide":
            if method != "POST":
                return 405, {"error": "use POST"}
            if self.draining:
                return 503, {"error": "draining"}
            try:
                payload = json.loads(body.decode() or "null")
            except ValueError:
                return 400, {"error": "request body is not JSON"}
            try:
                return 200, await self.decide(payload)
            except RequestError as exc:
                return 400, {"error": str(exc)}
            except Exception:
                logger.exception("decide failed")
                METRICS.counter("serve.internal_errors").inc()
                return 500, {"error": "internal error"}
        return 404, {"error": f"no route {path}"}

    async def _respond(
        self, writer, status: int, payload: Any, close: bool = False
    ) -> None:
        reasons = {
            200: "OK", 400: "Bad Request", 404: "Not Found",
            405: "Method Not Allowed", 413: "Payload Too Large",
            500: "Internal Server Error", 503: "Service Unavailable",
        }
        body = (json.dumps(payload) + "\n").encode()
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n"
            "\r\n"
        )
        writer.write(head.encode("latin-1") + body)
        await writer.drain()


# ----------------------------------------------------------------------
# Process entry points (CLI `repro serve`)
# ----------------------------------------------------------------------
async def _serve_async(
    app: ServeApp,
    host: str,
    port: int,
    sock: "socket.socket | None" = None,
) -> int:
    loop = asyncio.get_running_loop()
    stop = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, stop.set)
    bound_host, bound_port = await app.start(host, port, sock=sock)
    print(
        f"serving on http://{bound_host}:{bound_port} "
        f"(pid {os.getpid()})",
        file=sys.stderr,
        flush=True,
    )
    await stop.wait()
    print("SIGTERM: draining...", file=sys.stderr, flush=True)
    await app.drain()
    return 0


def _worker_main(app_factory, sock: socket.socket) -> int:
    app = app_factory()
    return asyncio.run(_serve_async(app, "", 0, sock=sock))


def _prefork(app_factory, host: str, port: int, workers: int) -> int:
    """Bind once, fork N serving children, forward TERM, reap."""
    listener = socket.create_server(
        (host, port), family=socket.AF_INET, backlog=128,
        reuse_port=False,
    )
    listener.setblocking(False)
    bound = listener.getsockname()
    print(
        f"serving on http://{bound[0]}:{bound[1]} "
        f"({workers} worker(s))",
        file=sys.stderr,
        flush=True,
    )
    pids = []
    for _ in range(workers):
        pid = os.fork()
        if pid == 0:
            try:
                code = _worker_main(app_factory, listener)
            except BaseException:
                logging.getLogger(__name__).exception("worker died")
                os._exit(1)
            os._exit(code)
        pids.append(pid)

    def _forward(signum, _frame):
        for child in pids:
            try:
                os.kill(child, signal.SIGTERM)
            except ProcessLookupError:
                pass

    signal.signal(signal.SIGTERM, _forward)
    signal.signal(signal.SIGINT, _forward)
    worst = 0
    for child in pids:
        while True:
            try:
                _, status = os.waitpid(child, 0)
                break
            except InterruptedError:
                continue
        code = (
            os.waitstatus_to_exitcode(status)
            if hasattr(os, "waitstatus_to_exitcode")
            else os.WEXITSTATUS(status)
        )
        worst = max(worst, abs(code))
    listener.close()
    return worst


def run_server(
    host: str,
    port: int,
    store_factory,
    warm: "tuple[str, ...]" = (),
    warm_scenario: str = "split",
    window: float = 0.002,
    max_batch: int = 1024,
    quant_digits: int = 9,
    reload_interval: float = DEFAULT_RELOAD_INTERVAL,
    workers: int = 1,
) -> int:
    """Blocking server entry point behind ``repro serve``.

    ``store_factory`` builds a fresh :class:`CandidateStore` per
    process (each forked worker gets its own in-memory entries, all
    sharing one on-disk plan cache).
    """

    def app_factory() -> ServeApp:
        store = store_factory()
        if warm:
            count = store.warm(warm, warm_scenario)
            print(
                f"warmed {count} candidate set(s) "
                f"[{warm_scenario}]",
                file=sys.stderr,
                flush=True,
            )
        return ServeApp(
            store,
            window=window,
            max_batch=max_batch,
            quant_digits=quant_digits,
            reload_interval=reload_interval,
        )

    if workers > 1:
        if not hasattr(os, "fork"):
            raise RequestError(
                "--workers > 1 needs os.fork (POSIX only)"
            )
        return _prefork(app_factory, host, port, workers)
    app = app_factory()
    return asyncio.run(_serve_async(app, host, port))
