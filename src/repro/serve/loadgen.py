"""Seeded closed-loop load generator + the serve latency BENCH record.

Drives ``POST /v1/decide`` at a target QPS over ``--connections``
keep-alive connections.  The request stream is fully deterministic in
``--seed``: probes are log-uniform samples from each query's feasible
region (the same :meth:`FeasibleRegion.sample` the Monte-Carlo sweeps
use), quantized with the protocol's significant-digit rule, and
round-robined over the query list — so two runs with one seed issue
byte-identical request bodies, which is what makes the offline digest
verification a meaningful CI gate rather than a tautology.

Output is a schema-versioned ``BENCH_serve.json`` record (the same
schema every benchmark module emits): ``results.decide_latency``
carries the full latency distribution (median/IQR gate through
``repro bench --compare``), ``results.decide_p99`` pins the tail as
its own gated series, and ``extras`` holds achieved QPS, the latency
percentiles, the server's batch-size histogram and the decisions
digest.  Medians are appended to the perf-history store so ``repro
bench trend`` judges serve latency alongside every other series.

``--verify-offline`` replays the request stream through the canonical
single-probe kernel (``serve/decide.py::verify_offline`` — the exact
computation behind offline ``repro explain``) and compares SHA-256
digests of the response cores; ``--p99-gate`` turns the tail latency
into an exit code.
"""

from __future__ import annotations

import asyncio
import json
import sys
import time
from typing import Any, Mapping, Sequence

import numpy as np

from ..experiments.scenarios import scenario
from ..obs.bench import build_bench_record, write_bench_record
from ..obs.history import append_history, bench_history_entries
from .decide import verify_offline
from .protocol import (
    decisions_digest,
    parse_decide_request,
    quantize_costs,
)
from .store import CandidateStore

__all__ = ["LoadgenResult", "build_requests", "run_loadgen"]


class LoadgenError(RuntimeError):
    """A run-level load generator failure (bad responses, digests)."""


class LoadgenResult:
    """Everything one closed-loop run measured."""

    def __init__(
        self,
        requests: list,
        responses: list,
        latencies: np.ndarray,
        wall_seconds: float,
        target_qps: float,
        errors: int,
        server_metrics: "Mapping[str, Any] | None",
    ) -> None:
        self.requests = requests
        self.responses = responses
        self.latencies = latencies
        self.wall_seconds = wall_seconds
        self.target_qps = target_qps
        self.errors = errors
        self.server_metrics = server_metrics

    @property
    def achieved_qps(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return len(self.latencies) / self.wall_seconds

    def percentile(self, q: float) -> float:
        return float(np.percentile(self.latencies, q))

    @property
    def digest(self) -> str:
        return decisions_digest(self.responses)


def build_requests(
    store: CandidateStore,
    queries: Sequence[str],
    scenario_key: str,
    count: int,
    seed: int,
    quant_digits: int,
) -> list[dict[str, Any]]:
    """The deterministic request stream: parsed protocol requests.

    One RNG stream per query (seeded by position), probes sampled
    from the query's feasible region and round-robined — identical
    for any connection count or QPS.
    """
    config = scenario(scenario_key)
    per_query: dict[str, list] = {}
    share = count // len(queries) + 1
    for position, name in enumerate(queries):
        entry = store.entry(name, scenario_key)
        query = store.query_spec(name)
        layout = config.layout_for(query)
        region = config.region(layout, store.delta)
        rng = np.random.default_rng([seed, position])
        samples = region.sample(rng, share)
        per_query[name] = [
            quantize_costs(
                (float(v) for v in sample.values), quant_digits
            )
            for sample in samples
        ]
        assert entry.dimension == len(per_query[name][0])
    requests = []
    for index in range(count):
        name = queries[index % len(queries)]
        cost = per_query[name][index // len(queries)]
        requests.append(
            parse_decide_request(
                {
                    "query": name,
                    "scenario": scenario_key,
                    "cost_vector": list(cost),
                },
                digits=quant_digits,
            )
        )
    return requests


# ----------------------------------------------------------------------
# HTTP client (keep-alive, stdlib asyncio streams)
# ----------------------------------------------------------------------
class _Connection:
    """One keep-alive connection issuing sequential POSTs."""

    def __init__(self, host: str, port: int) -> None:
        self.host = host
        self.port = port
        self.reader: "asyncio.StreamReader | None" = None
        self.writer: "asyncio.StreamWriter | None" = None

    async def _ensure(self) -> None:
        if self.writer is None or self.writer.is_closing():
            self.reader, self.writer = await asyncio.open_connection(
                self.host, self.port
            )

    async def post(
        self, path: str, payload: Any
    ) -> tuple[int, Any]:
        await self._ensure()
        body = json.dumps(payload).encode()
        head = (
            f"POST {path} HTTP/1.1\r\n"
            f"Host: {self.host}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            "\r\n"
        )
        self.writer.write(head.encode("latin-1") + body)
        await self.writer.drain()
        return await self._read_response()

    async def get(self, path: str) -> tuple[int, Any]:
        await self._ensure()
        head = (
            f"GET {path} HTTP/1.1\r\nHost: {self.host}\r\n\r\n"
        )
        self.writer.write(head.encode("latin-1"))
        await self.writer.drain()
        return await self._read_response()

    async def _read_response(self) -> tuple[int, Any]:
        status_line = await self.reader.readline()
        if not status_line:
            raise ConnectionError("server closed the connection")
        status = int(status_line.split()[1])
        length = 0
        close = False
        while True:
            line = await self.reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            name = name.strip().lower()
            if name == "content-length":
                length = int(value.strip())
            elif name == "connection":
                close = value.strip().lower() == "close"
        body = await self.reader.readexactly(length) if length else b""
        if close:
            self.writer.close()
            self.writer = None
        return status, json.loads(body.decode() or "null")

    def close(self) -> None:
        if self.writer is not None:
            self.writer.close()
            self.writer = None


# ----------------------------------------------------------------------
# The closed loop
# ----------------------------------------------------------------------
async def _drive(
    host: str,
    port: int,
    requests: "list[dict]",
    qps: float,
    connections: int,
    warmup: int,
) -> LoadgenResult:
    """Issue the stream at the target rate; gather latencies.

    Closed-loop per connection: each connection owns the request
    indices ``i % connections == its rank`` and never pipelines; the
    global schedule spaces request ``i`` at ``i / qps`` seconds, so
    an overloaded server pushes achieved QPS below target instead of
    queueing unboundedly.
    """
    conns = [_Connection(host, port) for _ in range(connections)]
    # Warmup probes (first request repeated) prime candidate sets and
    # connections outside the measured window.
    if requests and warmup:
        for _ in range(warmup):
            status, payload = await conns[0].post(
                "/v1/decide", _wire(requests[0])
            )
            if status != 200:
                raise LoadgenError(
                    f"warmup request failed ({status}): {payload}"
                )
    latencies = np.zeros(len(requests))
    responses: list = [None] * len(requests)
    errors = 0
    start = time.perf_counter()

    async def worker(rank: int) -> int:
        failed = 0
        conn = conns[rank]
        for index in range(rank, len(requests), connections):
            due = start + index / qps
            delay = due - time.perf_counter()
            if delay > 0:
                await asyncio.sleep(delay)
            sent = time.perf_counter()
            status, payload = await conn.post(
                "/v1/decide", _wire(requests[index])
            )
            latencies[index] = time.perf_counter() - sent
            if status != 200:
                failed += 1
                responses[index] = {"error": payload, "status": status}
            else:
                responses[index] = payload
        return failed

    results = await asyncio.gather(
        *(worker(rank) for rank in range(connections))
    )
    errors = sum(results)
    wall = time.perf_counter() - start
    metrics = None
    try:
        status, metrics = await conns[0].get("/metrics")
        if status != 200:
            metrics = None
    except (ConnectionError, asyncio.IncompleteReadError, OSError):
        metrics = None
    for conn in conns:
        conn.close()
    return LoadgenResult(
        requests=requests,
        responses=responses,
        latencies=latencies,
        wall_seconds=wall,
        target_qps=qps,
        errors=errors,
        server_metrics=metrics,
    )


def _wire(request: Mapping[str, Any]) -> dict[str, Any]:
    """A parsed request back onto the wire shape."""
    return {
        "query": request["query"],
        "scenario": request["scenario"],
        "cost_vector": list(request["cost"]),
    }


# ----------------------------------------------------------------------
# BENCH record assembly
# ----------------------------------------------------------------------
def _stats_block(values: np.ndarray) -> dict[str, float]:
    q25, q50, q75 = np.percentile(values, [25, 50, 75])
    return {
        "median_seconds": float(q50),
        "iqr_seconds": float(q75 - q25),
        "rounds": int(values.size),
        "mean_seconds": float(values.mean()),
        "min_seconds": float(values.min()),
        "max_seconds": float(values.max()),
    }


def _pinned_block(value: float, rounds: int) -> dict[str, float]:
    """A single pinned quantity in the 6-field results shape."""
    return {
        "median_seconds": float(value),
        "iqr_seconds": 0.0,
        "rounds": int(rounds),
        "mean_seconds": float(value),
        "min_seconds": float(value),
        "max_seconds": float(value),
    }


def bench_record_from(
    result: LoadgenResult, catalog_sha: "str | None"
) -> dict[str, Any]:
    """The schema-versioned BENCH record one loadgen run emits."""
    counters = (result.server_metrics or {}).get("counters", {})
    histograms = (result.server_metrics or {}).get("histograms", {})
    extras = {
        "target_qps": result.target_qps,
        "achieved_qps": result.achieved_qps,
        "requests": int(len(result.latencies)),
        "errors": int(result.errors),
        "p50_seconds": result.percentile(50),
        "p95_seconds": result.percentile(95),
        "p99_seconds": result.percentile(99),
        "decisions_digest": result.digest,
        "server_requests": counters.get("serve.requests"),
        "server_coalesced": counters.get("serve.coalesced"),
        "server_dgemm_calls": counters.get("serve.dgemm_calls"),
        "server_batch_splits": counters.get("serve.batch_splits"),
        "server_empty_ticks": counters.get("serve.empty_ticks"),
        "server_winner_mismatches": counters.get(
            "serve.winner_mismatches"
        ),
        "batch_size": histograms.get("serve.batch_size"),
    }
    results = {
        "decide_latency": _stats_block(result.latencies),
        "decide_p99": _pinned_block(
            result.percentile(99), len(result.latencies)
        ),
    }
    return build_bench_record(
        benchmark="serve",
        results=results,
        extras=extras,
        catalog_sha=catalog_sha,
        metrics=result.server_metrics,
    )


# ----------------------------------------------------------------------
# CLI entry point (behind `repro loadgen`)
# ----------------------------------------------------------------------
def run_loadgen(
    store: CandidateStore,
    queries: Sequence[str],
    scenario_key: str,
    qps: float,
    count: int,
    seed: int,
    connections: int,
    quant_digits: int,
    warmup: int,
    host: "str | None",
    port: "int | None",
    self_serve_app=None,
    bench_out: "str | None" = "BENCH_serve.json",
    verify: bool = False,
    p99_gate: "float | None" = None,
    append_to_history: bool = True,
) -> int:
    """Run the closed loop end to end; returns the exit code.

    With ``self_serve_app`` set (a started :class:`ServeApp` is built
    by the caller), the generator targets an in-process server — the
    mode the bench-smoke CI job and the tests use; otherwise it
    targets ``host:port``.
    """
    requests = build_requests(
        store, queries, scenario_key, count, seed, quant_digits
    )

    async def _run() -> LoadgenResult:
        if self_serve_app is not None:
            app_host, app_port = await self_serve_app.start(
                "127.0.0.1", 0
            )
            try:
                return await _drive(
                    app_host, app_port, requests, qps,
                    connections, warmup,
                )
            finally:
                await self_serve_app.drain()
        return await _drive(
            host, port, requests, qps, connections, warmup
        )

    result = asyncio.run(_run())
    if result.errors:
        print(
            f"loadgen: {result.errors} request(s) failed",
            file=sys.stderr,
        )
        return 1

    record = bench_record_from(result, store.catalog_sha)
    if bench_out:
        target = write_bench_record(record, bench_out)
        print(f"loadgen: wrote {target}", file=sys.stderr)
        if append_to_history:
            entries = bench_history_entries(record, source=str(target))
            history = append_history(entries, None)
            print(
                f"history: appended {len(entries)} series point(s) "
                f"to {history}",
                file=sys.stderr,
            )
    print(
        f"loadgen: {len(result.latencies)} request(s) in "
        f"{result.wall_seconds:.2f}s — achieved "
        f"{result.achieved_qps:.1f}/{result.target_qps:g} qps, "
        f"p50 {result.percentile(50) * 1e3:.2f}ms, "
        f"p95 {result.percentile(95) * 1e3:.2f}ms, "
        f"p99 {result.percentile(99) * 1e3:.2f}ms"
    )

    code = 0
    if verify:
        entries_map = {
            (request["query"], request["scenario"]): store.entry(
                request["query"], request["scenario"]
            )
            for request in requests
        }
        offline = verify_offline(entries_map, requests)
        offline_digest = decisions_digest(offline)
        if offline_digest == result.digest:
            print(
                f"verify-offline: digest parity OK "
                f"({len(requests)} decision(s), "
                f"{result.digest[:16]})"
            )
        else:
            print(
                "verify-offline: DIGEST MISMATCH — online "
                f"{result.digest[:16]} vs offline "
                f"{offline_digest[:16]}",
                file=sys.stderr,
            )
            code = 1
    if p99_gate is not None:
        p99 = result.percentile(99)
        if p99 > p99_gate:
            print(
                f"p99 gate: FAIL — {p99 * 1e3:.2f}ms > "
                f"{p99_gate * 1e3:.2f}ms",
                file=sys.stderr,
            )
            code = 1
        else:
            print(
                f"p99 gate: OK — {p99 * 1e3:.2f}ms <= "
                f"{p99_gate * 1e3:.2f}ms"
            )
    return code
