"""The warm candidate-set store behind the decision server.

One :class:`CandidateStore` holds, per ``(query, scenario)``, the
usage matrix, plan signatures and plan index the decide kernel sweeps
— built exactly the way offline ``repro explain`` builds them
(``cached_candidate_plans`` with the same delta, cell cap and scenario
key), so an online decision and an offline explain of the same probe
see the same candidate set byte for byte.

The store is **shared, not private**: entry construction reads through
the same content-addressed ``.repro-cache`` the CLI uses (honouring
``$REPRO_CACHE_DIR`` / ``--cache-dir`` / ``--no-cache``), and cache
writes are atomic — so N pre-forked worker processes, the load
generator's offline verifier and any concurrent CLI run all serve one
cache.  The first process to compute a candidate set warms it for
everyone.

Catalog hot-reload: with ``catalog_path`` set, :meth:`maybe_reload`
re-digests the pickled catalog file and, when the digest changed,
swaps the catalog in and drops every warm entry (they were computed
against the old statistics).  The server polls this on a timer; the
``/healthz`` payload reports the active digest.
"""

from __future__ import annotations

import logging
import pickle
from pathlib import Path
from typing import Any

import numpy as np

from ..experiments.engine import RunContext, UnknownQueryError
from ..experiments.scenarios import (
    UnknownScenarioError,
    resolve_scenario_key,
    scenario,
)
from ..obs.manifest import catalog_digest
from ..obs.metrics import METRICS
from ..optimizer.plancache import (
    PICKLE_LOAD_ERRORS,
    PlanCache,
    cached_candidate_plans,
)
from .protocol import RequestError

__all__ = ["CandidateStore", "StoreEntry"]

logger = logging.getLogger(__name__)

#: The candidate-set DP cell cap offline ``repro explain`` uses for
#: named TPC-H queries; the store must match it for digest parity.
CELL_CAP = 64


class StoreEntry:
    """One warm ``(query, scenario)`` candidate set, sweep-ready."""

    __slots__ = (
        "query",
        "scenario",
        "matrix",
        "signatures",
        "names",
        "center",
        "index_active",
        "truncated",
    )

    def __init__(
        self, query: str, scenario_key: str, candidates: Any, layout: Any
    ) -> None:
        self.query = query
        self.scenario = scenario_key
        self.matrix = np.asarray(candidates.usage_matrix, dtype=float)
        self.signatures = candidates.signatures
        center = layout.center_costs()
        self.names = tuple(center.space.names)
        self.center = tuple(float(v) for v in center.values)
        self.index_active = bool(candidates.plan_index().active)
        self.truncated = bool(candidates.truncated)

    @property
    def dimension(self) -> int:
        return self.matrix.shape[1]

    @property
    def plans(self) -> int:
        return self.matrix.shape[0]


class CandidateStore:
    """Warm store + catalog lifecycle for the decision server."""

    def __init__(
        self,
        scale: float = 100.0,
        delta: float = 100.0,
        cache: "PlanCache | None" = None,
        catalog_path: "str | Path | None" = None,
    ) -> None:
        self.scale = float(scale)
        self.delta = float(delta)
        self.cache = cache
        self.catalog_path = (
            Path(catalog_path) if catalog_path is not None else None
        )
        self._entries: dict[tuple, StoreEntry] = {}
        self._ctx = self._build_context()

    # ------------------------------------------------------------------
    # Catalog lifecycle
    # ------------------------------------------------------------------
    def _load_catalog_file(self) -> Any:
        if self.catalog_path is None:
            return None
        try:
            with open(self.catalog_path, "rb") as handle:
                return pickle.load(handle)
        except PICKLE_LOAD_ERRORS as exc:
            raise RequestError(
                f"cannot load catalog {self.catalog_path}: "
                f"{type(exc).__name__}: {exc}"
            )

    def _build_context(self) -> RunContext:
        catalog = self._load_catalog_file()
        ctx = RunContext(
            scale=self.scale, catalog=catalog, cache=self.cache
        )
        ctx.catalog  # materialize now so catalog_sha is ready
        return ctx

    @property
    def catalog_sha(self) -> str:
        return self._ctx.catalog_sha

    def maybe_reload(self) -> bool:
        """Re-digest the catalog file; swap + invalidate on change.

        Returns True when a reload happened.  Without a catalog file
        the store is static and this is a no-op.  An unreadable file
        (mid-replace, deleted) keeps the current catalog — the server
        must never die because a reload raced a writer.
        """
        if self.catalog_path is None:
            return False
        try:
            fresh = self._load_catalog_file()
        except RequestError as exc:
            logger.warning("catalog reload skipped: %s", exc)
            return False
        digest = catalog_digest(fresh)
        if digest == self._ctx.catalog_sha:
            return False
        logger.info(
            "catalog digest changed %s -> %s; dropping %d warm "
            "entr(ies)",
            (self._ctx.catalog_sha or "?")[:12],
            digest[:12],
            len(self._entries),
        )
        self._ctx = RunContext(
            scale=self.scale, catalog=fresh, cache=self.cache
        )
        self._ctx.catalog
        self._entries.clear()
        METRICS.counter("serve.catalog_reloads").inc()
        return True

    # ------------------------------------------------------------------
    # Entries
    # ------------------------------------------------------------------
    def entry(self, query: str, scenario_key: str) -> StoreEntry:
        """The warm entry for ``(query, scenario)``, built on miss.

        Unknown queries/scenarios surface as :class:`RequestError`
        with the valid choices listed — the server maps that straight
        to an HTTP 400 body.
        """
        try:
            key = (query, resolve_scenario_key(scenario_key))
        except UnknownScenarioError as exc:
            raise RequestError(str(exc))
        found = self._entries.get(key)
        if found is not None:
            return found
        try:
            selected = self._ctx.select([query])
        except UnknownQueryError as exc:
            raise RequestError(str(exc))
        (spec,) = selected.values()
        config = scenario(key[1])
        layout = config.layout_for(spec)
        region = config.region(layout, self.delta)
        candidates = cached_candidate_plans(
            spec,
            self._ctx.catalog,
            self._ctx.params,
            layout,
            region,
            cell_cap=CELL_CAP,
            cache=self.cache,
            scenario_key=key[1],
        )
        built = StoreEntry(query, key[1], candidates, layout)
        self._entries[key] = built
        METRICS.counter("serve.store_builds").inc()
        return built

    def query_spec(self, query: str):
        """The named :class:`QuerySpec` (RequestError when unknown)."""
        try:
            selected = self._ctx.select([query])
        except UnknownQueryError as exc:
            raise RequestError(str(exc))
        (spec,) = selected.values()
        return spec

    def warm(self, queries, scenario_key: str) -> int:
        """Pre-build entries for a query list; returns the count."""
        count = 0
        for query in queries:
            self.entry(query, scenario_key)
            count += 1
        return count

    def stats(self) -> dict[str, Any]:
        """The ``/healthz`` store block."""
        return {
            "entries": len(self._entries),
            "catalog_digest": self.catalog_sha,
            "cache_dir": (
                str(self.cache.root) if self.cache is not None else None
            ),
            "plans": {
                f"{query}/{key}": entry.plans
                for (query, key), entry in sorted(self._entries.items())
            },
        }
