"""Validation of the black-box algorithms against white-box truth.

The paper validated its least-squares usage estimates by predicting
total costs at held-out cost vectors and comparing with the optimizer's
reported costs, finding discrepancies below one percent
(Section 6.1.1).  Our optimizer is white-box, so validation is
stronger: estimates and discovered candidate sets are compared against
the *exact* parametric-DP ground truth.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field

import numpy as np

from ..catalog.statistics import Catalog
from ..core.discovery import discover_candidate_plans
from ..core.estimation import estimate_usage_vector, validate_estimate
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.blackbox import CandidateBackedBlackBox, OptimizerBlackBox
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import Scenario, scenario

__all__ = [
    "EstimationValidation",
    "DiscoveryValidation",
    "ValidationParams",
    "ValidationExperiment",
    "validate_estimation",
    "validate_discovery",
    "run_validation",
]


@dataclass
class EstimationValidation:
    """Least-squares reconstruction quality for one query/scenario."""

    query_name: str
    scenario_key: str
    #: plan signature -> max relative prediction error at test points.
    prediction_errors: dict[str, float] = field(default_factory=dict)
    #: plan signature -> max relative component error vs true usage.
    component_errors: dict[str, float] = field(default_factory=dict)
    optimizer_calls: int = 0

    @property
    def worst_prediction_error(self) -> float:
        return max(self.prediction_errors.values(), default=0.0)

    @property
    def meets_paper_criterion(self) -> bool:
        """The paper reported < 1% prediction discrepancy."""
        return self.worst_prediction_error < 0.01


@dataclass
class DiscoveryValidation:
    """Black-box discovery recall/precision for one query/scenario."""

    query_name: str
    scenario_key: str
    true_signatures: frozenset[str]
    found_signatures: frozenset[str]
    discovery_complete: bool
    optimizer_calls: int

    @property
    def missed(self) -> frozenset[str]:
        return self.true_signatures - self.found_signatures

    @property
    def spurious(self) -> frozenset[str]:
        """Found plans outside the true candidate set.

        Nonempty only if the white-box set was truncated or the black
        box answered outside the region — both reportable defects.
        """
        return self.found_signatures - self.true_signatures

    @property
    def recall(self) -> float:
        if not self.true_signatures:
            return 1.0
        hits = len(self.true_signatures & self.found_signatures)
        return hits / len(self.true_signatures)

    @property
    def exact(self) -> bool:
        return self.found_signatures == self.true_signatures


def _candidates_and_box(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    config: Scenario,
    delta: float,
    cell_cap: int | None,
    honest_blackbox: bool,
    cache: "PlanCache | None" = None,
):
    layout = config.layout_for(query)
    region = config.region(layout, delta)
    candidates = cached_candidate_plans(
        query, catalog, params, layout, region, cell_cap=cell_cap,
        cache=cache, scenario_key=config.key,
    )
    if honest_blackbox:
        box = OptimizerBlackBox(query, catalog, params, layout)
    else:
        box = CandidateBackedBlackBox(candidates)
    return candidates, region, box


def validate_estimation(
    query: QuerySpec,
    catalog: Catalog,
    config_key: str = "shared",
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    cell_cap: int | None = 64,
    n_test_points: int = 30,
    honest_blackbox: bool = False,
    seed: int = 0,
    cache: "PlanCache | None" = None,
) -> EstimationValidation:
    """Section 6.1.1 end-to-end: sample, estimate, predict, compare.

    For every candidate plan with a full-dimensional region of
    influence, gather >= 2n plan-stable samples through the narrow
    interface, least-squares the usage vector, then check predictions
    at held-out cost vectors AND the component-wise match against the
    white-box usage vector.
    """
    config = scenario(config_key)
    with span(
        "validate.estimation", query=query.name, scenario=config_key,
        seed=seed,
    ) as current:
        candidates, region, box = _candidates_and_box(
            query, catalog, params, config, delta, cell_cap,
            honest_blackbox, cache,
        )
        rng = np.random.default_rng(seed)
        result = EstimationValidation(
            query_name=query.name, scenario_key=config_key
        )
        calls_before = box.call_count
        result = _estimate_all_plans(
            box, candidates, region, result, rng, n_test_points
        )
        result.optimizer_calls = box.call_count - calls_before
        current.set(
            plans=len(result.prediction_errors),
            optimizer_calls=result.optimizer_calls,
        )
    METRICS.counter("validate.estimation_calls").inc(
        result.optimizer_calls
    )
    return result


def _estimate_all_plans(
    box, candidates, region, result, rng, n_test_points
) -> EstimationValidation:
    """The per-plan sample/estimate/predict loop of Section 6.1.1."""
    for plan in candidates.plans:
        # Find a seed point where this plan wins.
        from ..core.candidates import witness_cost_vector

        witness = witness_cost_vector(
            candidates.plans.index(plan), candidates.usages, region
        )
        if witness is None:
            continue
        if box.optimize(witness).signature != plan.signature:
            # Another plan ties at the witness; skip (boundary-only).
            continue
        try:
            estimate = estimate_usage_vector(
                box, plan.signature, witness, region, rng=rng
            )
        except (RuntimeError, ValueError):
            continue
        test_costs = region.sample(rng, n_test_points)
        truth = plan.usage
        result.prediction_errors[plan.signature] = validate_estimate(
            estimate.usage, lambda c: truth.dot(c), test_costs
        )
        scale = np.maximum(truth.values, truth.values.max() * 1e-9)
        component_error = float(
            np.max(np.abs(estimate.usage.values - truth.values) / scale)
        )
        result.component_errors[plan.signature] = component_error
    return result


def validate_discovery(
    query: QuerySpec,
    catalog: Catalog,
    config_key: str = "shared",
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    cell_cap: int | None = 64,
    max_optimizer_calls: int = 20000,
    honest_blackbox: bool = False,
    seed: int = 0,
    cache: "PlanCache | None" = None,
) -> DiscoveryValidation:
    """Section 6.2.1 end-to-end: discover plans, compare with truth."""
    config = scenario(config_key)
    with span(
        "validate.discovery", query=query.name, scenario=config_key,
        seed=seed,
    ) as current:
        candidates, region, box = _candidates_and_box(
            query, catalog, params, config, delta, cell_cap,
            honest_blackbox, cache,
        )
        calls_before = box.call_count
        discovery = discover_candidate_plans(
            box,
            region,
            max_optimizer_calls=max_optimizer_calls,
            rng=np.random.default_rng(seed),
            estimate_usages=False,
        )
        optimizer_calls = box.call_count - calls_before
        current.set(
            found=len(discovery.witnesses),
            truth=len(candidates.signatures),
            optimizer_calls=optimizer_calls,
        )
    METRICS.counter("validate.discovery_calls").inc(optimizer_calls)
    return DiscoveryValidation(
        query_name=query.name,
        scenario_key=config_key,
        true_signatures=frozenset(candidates.signatures),
        found_signatures=frozenset(discovery.witnesses),
        discovery_complete=discovery.complete,
        optimizer_calls=optimizer_calls,
    )


@dataclass(frozen=True)
class ValidationParams:
    """Everything that determines one validation run (picklable)."""

    scenario_key: str = "shared"
    query_names: tuple[str, ...] = ()
    delta: float = 100.0


@register_experiment
class ValidationExperiment(Experiment):
    """Estimation + discovery validation, one task per query."""

    name = "validate"
    help = "black-box estimation/discovery validation"
    params_type = ValidationParams
    scenario_positional = False
    scenario_default = "shared"

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "query",
            help="query name, or a comma-separated list, e.g. Q3,Q14",
        )
        parser.add_argument("--delta", type=float, default=100.0)

    def params_from_args(
        self, args: argparse.Namespace
    ) -> ValidationParams:
        return ValidationParams(
            scenario_key=args.scenario,
            query_names=tuple(
                name.strip().upper() for name in args.query.split(",")
            ),
            delta=args.delta,
        )

    def seeds(self, params: ValidationParams) -> dict:
        return {"estimation": 0, "discovery": 0}

    def plan_tasks(
        self, ctx: RunContext, params: ValidationParams
    ) -> list[QuerySpec]:
        if params.query_names:
            return list(ctx.select(params.query_names).values())
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: ValidationParams, task: QuerySpec
    ) -> tuple[EstimationValidation, DiscoveryValidation]:
        estimation = validate_estimation(
            task, ctx.catalog, params.scenario_key,
            delta=params.delta, cache=ctx.cache,
        )
        discovery = validate_discovery(
            task, ctx.catalog, params.scenario_key,
            delta=params.delta, cache=ctx.cache,
        )
        return estimation, discovery

    # -- streaming reducer: the result is the per-query pair list ---
    def make_accumulator(
        self, ctx: RunContext, params: ValidationParams
    ) -> list:
        return []

    def absorb(
        self, ctx: RunContext, params: ValidationParams, acc: list,
        task: QuerySpec, result,
    ) -> list:
        acc.append(result)
        return acc

    def finalize(
        self, ctx: RunContext, params: ValidationParams, acc: list
    ) -> list:
        return acc

    def render(
        self, ctx: RunContext, params: ValidationParams, reduced: list
    ) -> str:
        return format_validation_report(reduced) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: ValidationParams, reduced: list
    ) -> dict[str, str]:
        return {"validation_report": format_validation_report(reduced)}


def format_validation_report(
    results: "list[tuple[EstimationValidation, DiscoveryValidation]]",
) -> str:
    """The ``repro validate`` text report (names shown when > 1)."""
    lines = []
    for estimation, discovery in results:
        if len(results) > 1:
            lines.append(f"{estimation.query_name}:")
        lines.append(
            f"estimation: {len(estimation.prediction_errors)} plans, "
            f"worst prediction error "
            f"{estimation.worst_prediction_error * 100:.4f}% "
            f"(paper criterion < 1%: "
            f"{'PASS' if estimation.meets_paper_criterion else 'FAIL'})"
        )
        lines.append(
            f"discovery:  {len(discovery.found_signatures)}/"
            f"{len(discovery.true_signatures)} candidate plans found "
            f"(recall {discovery.recall:.2f}, "
            f"spurious {len(discovery.spurious)}, "
            f"{discovery.optimizer_calls} optimizer calls)"
        )
    return "\n".join(lines)


def run_validation(
    queries: "list[QuerySpec]",
    catalog: Catalog,
    config_key: str = "shared",
    delta: float = 100.0,
    jobs: int = 1,
    cache: "PlanCache | None" = None,
) -> list[tuple[EstimationValidation, DiscoveryValidation]]:
    """Estimation + discovery validation over several queries.

    An engine wrapper: ``jobs`` spreads queries over worker processes;
    per-query results are identical to the serial run and keep input
    order.
    """
    ctx = RunContext(
        catalog=catalog,
        queries={query.name: query for query in queries},
        cache=cache,
        jobs=jobs,
    )
    return run_experiment(
        "validate",
        ValidationParams(
            scenario_key=config_key,
            query_names=tuple(query.name for query in queries),
            delta=delta,
        ),
        ctx,
    )
