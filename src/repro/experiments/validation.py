"""Validation of the black-box algorithms against white-box truth.

The paper validated its least-squares usage estimates by predicting
total costs at held-out cost vectors and comparing with the optimizer's
reported costs, finding discrepancies below one percent
(Section 6.1.1).  Our optimizer is white-box, so validation is
stronger: estimates and discovered candidate sets are compared against
the *exact* parametric-DP ground truth.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..catalog.statistics import Catalog
from ..core.discovery import discover_candidate_plans
from ..core.estimation import estimate_usage_vector, validate_estimate
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.blackbox import CandidateBackedBlackBox, OptimizerBlackBox
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .parallel import parallel_map, worker_catalog, worker_payload
from .scenarios import Scenario, scenario

__all__ = [
    "EstimationValidation",
    "DiscoveryValidation",
    "validate_estimation",
    "validate_discovery",
    "run_validation",
]


@dataclass
class EstimationValidation:
    """Least-squares reconstruction quality for one query/scenario."""

    query_name: str
    scenario_key: str
    #: plan signature -> max relative prediction error at test points.
    prediction_errors: dict[str, float] = field(default_factory=dict)
    #: plan signature -> max relative component error vs true usage.
    component_errors: dict[str, float] = field(default_factory=dict)
    optimizer_calls: int = 0

    @property
    def worst_prediction_error(self) -> float:
        return max(self.prediction_errors.values(), default=0.0)

    @property
    def meets_paper_criterion(self) -> bool:
        """The paper reported < 1% prediction discrepancy."""
        return self.worst_prediction_error < 0.01


@dataclass
class DiscoveryValidation:
    """Black-box discovery recall/precision for one query/scenario."""

    query_name: str
    scenario_key: str
    true_signatures: frozenset[str]
    found_signatures: frozenset[str]
    discovery_complete: bool
    optimizer_calls: int

    @property
    def missed(self) -> frozenset[str]:
        return self.true_signatures - self.found_signatures

    @property
    def spurious(self) -> frozenset[str]:
        """Found plans outside the true candidate set.

        Nonempty only if the white-box set was truncated or the black
        box answered outside the region — both reportable defects.
        """
        return self.found_signatures - self.true_signatures

    @property
    def recall(self) -> float:
        if not self.true_signatures:
            return 1.0
        hits = len(self.true_signatures & self.found_signatures)
        return hits / len(self.true_signatures)

    @property
    def exact(self) -> bool:
        return self.found_signatures == self.true_signatures


def _candidates_and_box(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    config: Scenario,
    delta: float,
    cell_cap: int | None,
    honest_blackbox: bool,
    cache: "PlanCache | None" = None,
):
    layout = config.layout_for(query)
    region = config.region(layout, delta)
    candidates = cached_candidate_plans(
        query, catalog, params, layout, region, cell_cap=cell_cap,
        cache=cache, scenario_key=config.key,
    )
    if honest_blackbox:
        box = OptimizerBlackBox(query, catalog, params, layout)
    else:
        box = CandidateBackedBlackBox(candidates)
    return candidates, region, box


def validate_estimation(
    query: QuerySpec,
    catalog: Catalog,
    config_key: str = "shared",
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    cell_cap: int | None = 64,
    n_test_points: int = 30,
    honest_blackbox: bool = False,
    seed: int = 0,
    cache: "PlanCache | None" = None,
) -> EstimationValidation:
    """Section 6.1.1 end-to-end: sample, estimate, predict, compare.

    For every candidate plan with a full-dimensional region of
    influence, gather >= 2n plan-stable samples through the narrow
    interface, least-squares the usage vector, then check predictions
    at held-out cost vectors AND the component-wise match against the
    white-box usage vector.
    """
    config = scenario(config_key)
    with span(
        "validate.estimation", query=query.name, scenario=config_key,
        seed=seed,
    ) as current:
        candidates, region, box = _candidates_and_box(
            query, catalog, params, config, delta, cell_cap,
            honest_blackbox, cache,
        )
        rng = np.random.default_rng(seed)
        result = EstimationValidation(
            query_name=query.name, scenario_key=config_key
        )
        calls_before = box.call_count
        result = _estimate_all_plans(
            box, candidates, region, result, rng, n_test_points
        )
        result.optimizer_calls = box.call_count - calls_before
        current.set(
            plans=len(result.prediction_errors),
            optimizer_calls=result.optimizer_calls,
        )
    METRICS.counter("validate.estimation_calls").inc(
        result.optimizer_calls
    )
    return result


def _estimate_all_plans(
    box, candidates, region, result, rng, n_test_points
) -> EstimationValidation:
    """The per-plan sample/estimate/predict loop of Section 6.1.1."""
    for plan in candidates.plans:
        # Find a seed point where this plan wins.
        from ..core.candidates import witness_cost_vector

        witness = witness_cost_vector(
            candidates.plans.index(plan), candidates.usages, region
        )
        if witness is None:
            continue
        if box.optimize(witness).signature != plan.signature:
            # Another plan ties at the witness; skip (boundary-only).
            continue
        try:
            estimate = estimate_usage_vector(
                box, plan.signature, witness, region, rng=rng
            )
        except (RuntimeError, ValueError):
            continue
        test_costs = region.sample(rng, n_test_points)
        truth = plan.usage
        result.prediction_errors[plan.signature] = validate_estimate(
            estimate.usage, lambda c: truth.dot(c), test_costs
        )
        scale = np.maximum(truth.values, truth.values.max() * 1e-9)
        component_error = float(
            np.max(np.abs(estimate.usage.values - truth.values) / scale)
        )
        result.component_errors[plan.signature] = component_error
    return result


def validate_discovery(
    query: QuerySpec,
    catalog: Catalog,
    config_key: str = "shared",
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    cell_cap: int | None = 64,
    max_optimizer_calls: int = 20000,
    honest_blackbox: bool = False,
    seed: int = 0,
    cache: "PlanCache | None" = None,
) -> DiscoveryValidation:
    """Section 6.2.1 end-to-end: discover plans, compare with truth."""
    config = scenario(config_key)
    with span(
        "validate.discovery", query=query.name, scenario=config_key,
        seed=seed,
    ) as current:
        candidates, region, box = _candidates_and_box(
            query, catalog, params, config, delta, cell_cap,
            honest_blackbox, cache,
        )
        calls_before = box.call_count
        discovery = discover_candidate_plans(
            box,
            region,
            max_optimizer_calls=max_optimizer_calls,
            rng=np.random.default_rng(seed),
            estimate_usages=False,
        )
        optimizer_calls = box.call_count - calls_before
        current.set(
            found=len(discovery.witnesses),
            truth=len(candidates.signatures),
            optimizer_calls=optimizer_calls,
        )
    METRICS.counter("validate.discovery_calls").inc(optimizer_calls)
    return DiscoveryValidation(
        query_name=query.name,
        scenario_key=config_key,
        true_signatures=frozenset(candidates.signatures),
        found_signatures=frozenset(discovery.witnesses),
        discovery_complete=discovery.complete,
        optimizer_calls=optimizer_calls,
    )


def _validation_worker(
    query: QuerySpec,
) -> tuple[EstimationValidation, DiscoveryValidation]:
    """Both validations for one query, run in a (possibly forked) worker."""
    payload = worker_payload()
    cache_root = payload["cache_root"]
    cache = PlanCache(cache_root) if cache_root is not None else None
    catalog = worker_catalog()
    estimation = validate_estimation(
        query,
        catalog,
        payload["scenario_key"],
        delta=payload["delta"],
        cache=cache,
    )
    discovery = validate_discovery(
        query,
        catalog,
        payload["scenario_key"],
        delta=payload["delta"],
        cache=cache,
    )
    return estimation, discovery


def run_validation(
    queries: "list[QuerySpec]",
    catalog: Catalog,
    config_key: str = "shared",
    delta: float = 100.0,
    jobs: int = 1,
    cache: "PlanCache | None" = None,
) -> list[tuple[EstimationValidation, DiscoveryValidation]]:
    """Estimation + discovery validation over several queries.

    ``jobs`` spreads queries over worker processes; per-query results
    are identical to the serial run and keep input order.
    """
    payload = {
        "scenario_key": config_key,
        "delta": delta,
        "cache_root": str(cache.root) if cache is not None else None,
    }
    return parallel_map(
        _validation_worker,
        queries,
        jobs=jobs,
        catalog_spec=catalog,
        payload=payload,
    )
