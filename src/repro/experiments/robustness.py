"""Plan-robustness analysis: which storage parameters must be watched.

An extension experiment beyond the paper's figures, built from its
framework: for each query and storage scenario, compute the exact
multiplicative drift each device's cost can undergo — in either
direction — before the default-cost plan stops being optimal
(:mod:`repro.core.switching`), plus the regret of ignoring the switch.

The output directly serves the paper's autonomic-computing motivation:
a monitoring system should watch the parameters with the smallest
robustness radii first.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping

from ..catalog.statistics import Catalog
from ..core.costmodel import global_relative_cost
from ..core.switching import SwitchingDistance, switching_distances
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import Scenario, scenario

__all__ = [
    "ParameterRobustness",
    "QueryRobustness",
    "RobustnessParams",
    "RobustnessExperiment",
    "run_robustness",
]


@dataclass
class ParameterRobustness:
    """One device's switch thresholds for one query."""

    group: str
    distance: SwitchingDistance
    #: GTC of sticking with the stale plan at 10x past the up switch
    #: threshold (1.0 when no switch exists).
    regret_past_switch: float

    @property
    def radius(self) -> float:
        return self.distance.robustness_radius


@dataclass
class QueryRobustness:
    """All parameter thresholds for one query under one scenario."""

    query_name: str
    scenario_key: str
    initial_signature: str
    parameters: list[ParameterRobustness]

    def most_fragile(self) -> ParameterRobustness | None:
        """The parameter with the smallest robustness radius."""
        finite = [p for p in self.parameters if not math.isinf(p.radius)]
        if not finite:
            return None
        return min(finite, key=lambda p: p.radius)

    def watch_list(self, radius_threshold: float = 10.0) -> list[str]:
        """Parameters whose drift by <= ``radius_threshold`` flips the
        plan — the ones worth monitoring."""
        return [
            p.group
            for p in self.parameters
            if p.radius <= radius_threshold
        ]


def analyze_query_robustness(
    query: QuerySpec,
    catalog: Catalog,
    config: Scenario,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 10000.0,
    cell_cap: int | None = 64,
    regret_probe_factor: float = 10.0,
    cache: PlanCache | None = None,
) -> QueryRobustness:
    """Compute switch thresholds for every device of one query."""
    with span(
        "robustness.query", query=query.name, scenario=config.key
    ):
        return _analyze_query_robustness(
            query, catalog, config, params, delta, cell_cap,
            regret_probe_factor, cache,
        )


def _analyze_query_robustness(
    query: QuerySpec,
    catalog: Catalog,
    config: Scenario,
    params: SystemParameters,
    delta: float,
    cell_cap: "int | None",
    regret_probe_factor: float,
    cache: "PlanCache | None",
) -> QueryRobustness:
    layout = config.layout_for(query)
    region = config.region(layout, delta)
    candidates = cached_candidate_plans(
        query, catalog, params, layout, region, cell_cap=cell_cap,
        cache=cache, scenario_key=config.key,
    )
    METRICS.counter("robustness.queries_total").inc()
    center = layout.center_costs()
    initial_index = candidates.initial_plan_index()
    initial = candidates.plans[initial_index]
    groups = config.groups_for(layout)
    rows = []
    for distance in switching_distances(
        initial_index, candidates.usages, center, groups
    ):
        # Probe the BINDING direction: whichever switch threshold is
        # closer, continue the drift another regret_probe_factor past
        # it and measure the stale plan's regret there.
        up = distance.up_factor
        down = math.inf if distance.down_factor == 0 else (
            1.0 / distance.down_factor
        )
        regret = 1.0
        if not (math.isinf(up) and math.isinf(down)):
            if up <= down:
                probe_factor = min(up * regret_probe_factor, delta)
            else:
                probe_factor = max(
                    distance.down_factor / regret_probe_factor,
                    1.0 / delta,
                )
            group = next(g for g in groups if g.name == distance.group)
            values = center.values.copy()
            for index in group.indices:
                values[index] *= probe_factor
            from ..core.vectors import CostVector

            probe = CostVector(center.space, values)
            regret = global_relative_cost(
                initial.usage, candidates.usages, probe
            )
        rows.append(
            ParameterRobustness(
                group=distance.group,
                distance=distance,
                regret_past_switch=regret,
            )
        )
    return QueryRobustness(
        query_name=query.name,
        scenario_key=config.key,
        initial_signature=initial.signature,
        parameters=rows,
    )


@dataclass(frozen=True)
class RobustnessParams:
    """Everything that determines one robustness run (picklable)."""

    scenario_key: str
    delta: float = 10000.0
    cell_cap: int | None = 64
    regret_probe_factor: float = 10.0


@register_experiment
class RobustnessExperiment(Experiment):
    """Per-parameter switch thresholds, one task per query."""

    name = "robustness"
    help = "per-parameter plan-switch thresholds"
    params_type = RobustnessParams

    def params_from_args(self, args) -> RobustnessParams:
        return RobustnessParams(scenario_key=args.scenario)

    def plan_tasks(
        self, ctx: RunContext, params: RobustnessParams
    ) -> list[QuerySpec]:
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: RobustnessParams, task: QuerySpec
    ) -> QueryRobustness:
        return analyze_query_robustness(
            task, ctx.catalog, scenario(params.scenario_key), ctx.params,
            params.delta, params.cell_cap, params.regret_probe_factor,
            cache=ctx.cache,
        )

    # -- streaming reducer: the result is the per-query row list ----
    def make_accumulator(
        self, ctx: RunContext, params: RobustnessParams
    ) -> list:
        return []

    def absorb(
        self, ctx: RunContext, params: RobustnessParams, acc: list,
        task: QuerySpec, result: QueryRobustness,
    ) -> list:
        acc.append(result)
        return acc

    def finalize(
        self, ctx: RunContext, params: RobustnessParams, acc: list
    ) -> list:
        return acc

    def render(
        self, ctx: RunContext, params: RobustnessParams, reduced: list
    ) -> str:
        return format_robustness_table(reduced) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: RobustnessParams, reduced: list
    ) -> dict[str, str]:
        return {"robustness_table": format_robustness_table(reduced)}


def run_robustness(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 10000.0,
    cell_cap: int | None = 64,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
) -> list[QueryRobustness]:
    """Robustness analysis over a workload (engine wrapper)."""
    ctx = RunContext(
        scale=scale, catalog=catalog, queries=queries,
        params=params, cache=cache, jobs=jobs,
    )
    return run_experiment(
        "robustness",
        RobustnessParams(
            scenario_key=scenario_key, delta=delta, cell_cap=cell_cap,
        ),
        ctx,
    )


def format_robustness_table(rows: list[QueryRobustness]) -> str:
    """Text table: per query, the most fragile parameter and regret."""
    lines = [
        f"{'query':>6}  {'most fragile parameter':<24} "
        f"{'radius':>8}  {'regret@10x':>10}  watch list (radius <= 10)"
    ]
    lines.append("-" * len(lines[0]))
    for row in rows:
        fragile = row.most_fragile()
        if fragile is None:
            lines.append(
                f"{row.query_name:>6}  {'(plan never switches)':<24} "
                f"{'inf':>8}  {'1.00':>10}"
            )
            continue
        watch = ", ".join(row.watch_list()) or "-"
        lines.append(
            f"{row.query_name:>6}  {fragile.group:<24} "
            f"{fragile.radius:8.2f}  "
            f"{fragile.regret_past_switch:10.2f}  {watch}"
        )
    return "\n".join(lines)
