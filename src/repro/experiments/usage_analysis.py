"""Resource-usage-vector analysis: the Section 8.2 census.

For each query and storage scenario, compute the candidate optimal
plans and classify every pair:

* complementary or not (Section 5.5);
* complementarity class — table / access-path / temp (Section 5.6);
* near-complementary (element ratios above an order of magnitude).

The paper's Section 8.2 findings, which this experiment reproduces in
shape:

* ``shared``: no complementary candidate pairs for any query;
* ``split``: many complementary pairs — all access-path or temp
  complementary, none table complementary;
* ``colocated``: access-path complementarity eliminated (tables and
  their indexes share a device), temp complementarity remains.

Beyond the paper's 22 TPC-H queries, ``repro census --generated N``
runs the same white-box machinery over a seeded stream of N random
SPJ queries (:mod:`repro.workloads.generator`) and characterises, at
population scale, how sensitive the optimizer's choice is to storage
cost drift: the candidate-set-size distribution, the fraction of the
feasible cost space where the center-optimal plan is the wrong
choice, and q-error→regret *regime curves* — for each drift level
``δ``, the regret distribution of the stale plan against the
``δ²`` worst-case bound of Theorem 1.  Tasks are plain integers
(workers regenerate catalog+query from ``(seed, index)``), results
stream into O(1) accumulators in task-index order, so a million-query
census runs with flat memory and digests independent of ``--jobs``.
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass, field
from typing import Mapping

import numpy as np

from ..catalog.statistics import Catalog
from ..core.bounds import corollary_constant_bound
from ..core.complementary import ComplementarityCensus, census
from ..obs.decisions import DECISIONS
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from ..workloads.generator import GeneratorConfig, generated_task
from .accumulators import (
    CountHistogram,
    DecadeHistogram,
    ReservoirSampler,
    WelfordMoments,
)
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import Scenario, scenario
from .sweeps import (
    monte_carlo_shares,
    plan_index_for,
    sweep_optimal_totals,
)

__all__ = [
    "QueryCensus",
    "UsageAnalysisResult",
    "CensusParams",
    "CensusExperiment",
    "GeneratedQuerySummary",
    "GeneratedCensus",
    "RegimeCurve",
    "analyze_query_census",
    "analyze_generated_query",
    "run_usage_analysis",
    "run_generated_census",
]

#: Delta of the feasible region the candidate sets are computed over
#: (the widest sweep level of the worst-case experiments).
DEFAULT_DELTA = 10000.0


@dataclass
class QueryCensus:
    """Candidate-set complementarity census for one query."""

    query_name: str
    scenario_key: str
    n_candidates: int
    truncated: bool
    census: ComplementarityCensus
    #: Equation 9 constant bound over the candidate set (inf when any
    #: pair is complementary).
    constant_bound: float
    #: Monte-Carlo share of the feasible region where the initial plan
    #: (optimal at the region center) stays optimal.
    initial_share: float = float("nan")

    @property
    def has_complementary_pairs(self) -> bool:
        return self.census.n_complementary > 0

    def class_count(self, cls: str) -> int:
        return self.census.count(cls)


@dataclass
class UsageAnalysisResult:
    """Census rows for all queries of one scenario."""

    scenario_key: str
    rows: list[QueryCensus]

    def queries_with_complementary_plans(self) -> list[str]:
        return [
            row.query_name for row in self.rows
            if row.has_complementary_pairs
        ]

    def total_class_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for row in self.rows:
            for cls, count in row.census.class_counts.items():
                totals[cls] = totals.get(cls, 0) + count
        return totals

    def by_query(self) -> Mapping[str, QueryCensus]:
        return {row.query_name: row for row in self.rows}


def analyze_query_census(
    query: QuerySpec,
    catalog: Catalog,
    config: Scenario,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = DEFAULT_DELTA,
    cell_cap: int | None = 64,
    usage_tol: float = 1e-9,
    cache: PlanCache | None = None,
    share_samples: int = 512,
) -> QueryCensus:
    """The Section 8.2 census for one query under one scenario.

    ``share_samples`` Monte-Carlo samples (seeded per query, so the
    result is independent of execution order and worker count) measure
    how much of the feasible region the center-optimal plan rules.
    """
    with span(
        "census.query", query=query.name, scenario=config.key
    ) as current:
        layout = config.layout_for(query)
        region = config.region(layout, delta)
        candidates = cached_candidate_plans(
            query, catalog, params, layout, region,
            cell_cap=cell_cap, cache=cache, scenario_key=config.key,
        )
        pair_census = census(candidates.usages, tol=usage_tol)
        bound = corollary_constant_bound(
            candidates.usages, tol=usage_tol
        )
        with DECISIONS.scoped(f"census:{query.name}"):
            shares = monte_carlo_shares(
                candidates.usage_matrix, region,
                np.random.default_rng(0), share_samples,
                index=plan_index_for(candidates),
                reference=candidates.initial_plan_index(),
            )
        initial_share = float(shares[candidates.initial_plan_index()])
        current.set(
            candidates=len(candidates),
            complementary=pair_census.n_complementary,
            initial_share=initial_share,
        )
    METRICS.counter("census.queries_total").inc()
    METRICS.counter("census.complementary_pairs").inc(
        pair_census.n_complementary
    )
    return QueryCensus(
        query_name=query.name,
        scenario_key=config.key,
        n_candidates=len(candidates),
        truncated=candidates.truncated,
        census=pair_census,
        constant_bound=bound,
        initial_share=initial_share,
    )


# ----------------------------------------------------------------------
# The generated census: a million-query population study
# ----------------------------------------------------------------------

#: Drift levels of the regime curves (the q-error of the cost vector).
DEFAULT_REGIME_DELTAS = (2.0, 10.0, 100.0)


@dataclass(frozen=True)
class GeneratedQuerySummary:
    """Per-task result of one generated query — a few hundred bytes.

    ``regime_regrets[i]`` holds the per-sample GTC regret factors of
    the stale (center-optimal) plan at drift level
    ``regime_deltas[i]``; the accumulator folds the raw samples so
    its histograms and moments are exact and order-deterministic.
    """

    index: int
    n_tables: int
    n_candidates: int
    truncated: bool
    #: Fraction of the widest feasible region where the center-optimal
    #: plan is NOT the optimal choice (Monte-Carlo, seeded per query).
    wrong_fraction: float
    regime_deltas: tuple[float, ...]
    regime_regrets: tuple[tuple[float, ...], ...]


def analyze_generated_query(
    index: int,
    config: Scenario,
    params: SystemParameters = DEFAULT_PARAMETERS,
    seed: int = 0,
    generator: GeneratorConfig | None = None,
    regime_deltas: tuple[float, ...] = DEFAULT_REGIME_DELTAS,
    regime_samples: int = 64,
    share_samples: int = 256,
    cell_cap: int | None = 16,
) -> GeneratedQuerySummary:
    """One generated query's sensitivity summary.

    The catalog and query are regenerated from ``(seed, index)``, so
    the task payload is one integer.  The candidate set is computed
    once over the *widest* regime region — candidate sets are
    monotone in ``δ``, so it is exhaustive (modulo ``cell_cap``) for
    every narrower drift level sampled afterwards.  All Monte-Carlo
    draws are seeded per query, making every number independent of
    execution order and worker count.
    """
    catalog, query = generated_task(seed, index, generator)
    with span(
        "census.generated", index=index, scenario=config.key
    ) as current:
        layout = config.layout_for(query)
        widest = max(regime_deltas)
        region = config.region(layout, widest)
        candidates = cached_candidate_plans(
            query, catalog, params, layout, region, cell_cap=cell_cap,
        )
        matrix = candidates.usage_matrix
        plan_index = plan_index_for(candidates)
        initial_row = matrix[candidates.initial_plan_index()]
        rng = np.random.default_rng(
            np.random.SeedSequence(seed, spawn_key=(index, 1))
        )
        with DECISIONS.scoped("census:generated"):
            shares = monte_carlo_shares(
                matrix, region, rng, share_samples, index=plan_index,
                reference=candidates.initial_plan_index(),
            )
        wrong_fraction = 1.0 - float(
            shares[candidates.initial_plan_index()]
        )
        regime_regrets = []
        for position, delta in enumerate(regime_deltas):
            level = config.region(layout, delta)
            level_rng = np.random.default_rng(
                np.random.SeedSequence(
                    seed, spawn_key=(index, 2 + position)
                )
            )
            samples = level.sample_matrix(level_rng, regime_samples)
            with DECISIONS.scoped("census:generated"):
                __, best = sweep_optimal_totals(
                    matrix, samples, plan_index
                )
            stale = samples @ initial_row
            regime_regrets.append(
                tuple(float(x) for x in stale / best)
            )
        current.set(
            candidates=len(candidates), wrong=wrong_fraction
        )
    METRICS.counter("census.generated_total").inc()
    return GeneratedQuerySummary(
        index=index,
        n_tables=len(query.table_names()),
        n_candidates=len(candidates),
        truncated=candidates.truncated,
        wrong_fraction=wrong_fraction,
        regime_deltas=tuple(regime_deltas),
        regime_regrets=tuple(regime_regrets),
    )


@dataclass
class RegimeCurve:
    """Streaming regret statistics at one drift level ``δ``.

    The ``δ²`` column is Theorem 1's worst-case envelope: with every
    cost multiplier in ``[1/δ, δ]``, no plan switch can cost more
    than a factor ``δ²`` — the curve shows how far below it the
    population actually sits, and ``wrong`` counts samples where the
    stale plan was no longer optimal at all.
    """

    delta: float
    regret: WelfordMoments = field(default_factory=WelfordMoments)
    regret_hist: DecadeHistogram = field(
        default_factory=lambda: DecadeHistogram(floor=1e-3)
    )
    wrong: int = 0
    total: int = 0

    def absorb(self, regrets: tuple[float, ...]) -> None:
        for value in regrets:
            self.regret.add(value)
            self.regret_hist.add(value)
            if value > 1.0 + 1e-9:
                self.wrong += 1
            self.total += 1

    @property
    def wrong_fraction(self) -> float:
        return self.wrong / self.total if self.total else 0.0

    @property
    def bound(self) -> float:
        return self.delta * self.delta


@dataclass
class GeneratedCensus:
    """The O(1)-memory accumulator (and result) of a generated census.

    Absorbs one :class:`GeneratedQuerySummary` at a time in
    task-index order; every field is either fixed-size or bounded by
    a reservoir, so peak memory is independent of the query count.
    Picklable — long checkpointed runs snapshot it to the journal.
    """

    scenario_key: str
    seed: int
    n_queries: int = 0
    truncated: int = 0
    sizes: CountHistogram = field(default_factory=CountHistogram)
    wrong: WelfordMoments = field(default_factory=WelfordMoments)
    #: Queries whose center plan is wrong somewhere in cost space.
    contested: int = 0
    regimes: list[RegimeCurve] = field(default_factory=list)
    reservoir: ReservoirSampler = field(
        default_factory=lambda: ReservoirSampler(k=64)
    )
    #: The ``k`` most drift-sensitive queries seen, by wrong fraction.
    worst: list[tuple[float, int]] = field(default_factory=list)
    worst_k: int = 8

    def absorb(self, summary: GeneratedQuerySummary) -> None:
        if not self.regimes:
            self.regimes = [
                RegimeCurve(delta) for delta in summary.regime_deltas
            ]
        self.n_queries += 1
        self.truncated += int(summary.truncated)
        self.sizes.add(summary.n_candidates)
        self.wrong.add(summary.wrong_fraction)
        if summary.wrong_fraction > 0.0:
            self.contested += 1
        for curve, regrets in zip(
            self.regimes, summary.regime_regrets
        ):
            curve.absorb(regrets)
        self.reservoir.add(
            summary.index,
            (summary.n_candidates, summary.wrong_fraction),
        )
        self.worst.append((summary.wrong_fraction, summary.index))
        self.worst.sort(key=lambda entry: (-entry[0], entry[1]))
        del self.worst[self.worst_k:]

    @property
    def contested_fraction(self) -> float:
        return self.contested / self.n_queries if self.n_queries else 0.0


@dataclass(frozen=True)
class CensusParams:
    """Everything that determines one census run (picklable).

    ``generated=0`` is the paper's census over the TPC-H workload;
    ``generated=N`` switches to N seeded random queries with the
    regime-curve analysis (the scenario defaults to ``colocated``
    there — the cheapest per-query candidate sets, hence the scale
    regime the generated census targets).
    """

    scenario_key: str
    delta: float = DEFAULT_DELTA
    cell_cap: int | None = 64
    usage_tol: float = 1e-9
    share_samples: int = 512
    generated: int = 0
    seed: int = 0
    generator: GeneratorConfig = GeneratorConfig()
    regime_deltas: tuple[float, ...] = DEFAULT_REGIME_DELTAS
    regime_samples: int = 64
    generated_cell_cap: int | None = 16
    generated_share_samples: int = 256


@register_experiment
class CensusExperiment(Experiment):
    """The Section 8.2 census — TPC-H or a generated population.

    One task per query either way; in generated mode a task is a bare
    stream index and the streaming accumulator keeps memory flat no
    matter how large ``--generated`` is.
    """

    name = "census"
    help = "Section 8.2 complementarity census"
    params_type = CensusParams

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument(
            "--generated", type=int, default=0, metavar="N",
            help="census a seeded stream of N generated SPJ queries "
                 "instead of the TPC-H workload (scenario defaults "
                 "to colocated; memory stays flat for any N)",
        )
        parser.add_argument(
            "--regime-deltas", default="", metavar="D1,D2,...",
            help="drift levels of the generated regime curves "
                 "(default 2,10,100)",
        )
        parser.add_argument(
            "--regime-samples", type=int, default=64, metavar="N",
            help="cost-vector samples per drift level and query "
                 "(default 64)",
        )

    def params_from_args(self, args) -> CensusParams:
        regime_deltas = DEFAULT_REGIME_DELTAS
        if getattr(args, "regime_deltas", ""):
            regime_deltas = tuple(
                float(d) for d in args.regime_deltas.split(",")
            )
        return CensusParams(
            scenario_key=args.scenario,
            generated=getattr(args, "generated", 0),
            seed=getattr(args, "seed", 0),
            regime_deltas=regime_deltas,
            regime_samples=getattr(args, "regime_samples", 64),
        )

    def scenario_default_for(self, args) -> "str | None":
        # `repro census --generated N` needs no scenario argument:
        # colocated has the cheapest per-query candidate sets, which
        # is the scale regime the generated census exists for.
        if getattr(args, "generated", 0):
            return "colocated"
        return self.scenario_default

    def seeds(self, params: CensusParams) -> dict:
        if params.generated:
            return {"generated_workload": params.seed}
        return {}

    def plan_tasks(self, ctx: RunContext, params: CensusParams):
        if params.generated:
            return range(params.generated)
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: CensusParams, task
    ):
        if params.generated:
            return analyze_generated_query(
                task, scenario(params.scenario_key), ctx.params,
                seed=params.seed, generator=params.generator,
                regime_deltas=params.regime_deltas,
                regime_samples=params.regime_samples,
                share_samples=params.generated_share_samples,
                cell_cap=params.generated_cell_cap,
            )
        return analyze_query_census(
            task, ctx.catalog, scenario(params.scenario_key), ctx.params,
            params.delta, params.cell_cap, params.usage_tol,
            cache=ctx.cache, share_samples=params.share_samples,
        )

    # -- streaming reducer -------------------------------------------
    def make_accumulator(self, ctx: RunContext, params: CensusParams):
        if params.generated:
            return GeneratedCensus(
                scenario_key=params.scenario_key, seed=params.seed
            )
        return UsageAnalysisResult(
            scenario_key=params.scenario_key, rows=[]
        )

    def absorb(
        self, ctx: RunContext, params: CensusParams, acc, task, result
    ):
        if params.generated:
            acc.absorb(result)
        else:
            acc.rows.append(result)
        return acc

    def finalize(self, ctx: RunContext, params: CensusParams, acc):
        return acc

    def reduce(self, ctx: RunContext, params: CensusParams, results: list):
        """Legacy batch protocol, kept for digest-parity testing."""
        acc = self.make_accumulator(ctx, params)
        for result in results:
            acc = self.absorb(ctx, params, acc, None, result)
        return self.finalize(ctx, params, acc)

    def render(self, ctx: RunContext, params: CensusParams, reduced) -> str:
        from .report import format_census_table, format_generated_census

        if params.generated:
            return format_generated_census(reduced) + "\n"
        return format_census_table(reduced) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: CensusParams, reduced
    ) -> dict[str, str]:
        from .report import format_census_table, format_generated_census

        if params.generated:
            return {
                "generated_census": format_generated_census(reduced)
            }
        return {"census_table": format_census_table(reduced)}


def run_usage_analysis(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = DEFAULT_DELTA,
    cell_cap: int | None = 64,
    usage_tol: float = 1e-9,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
    share_samples: int = 512,
) -> UsageAnalysisResult:
    """Run the Section 8.2 analysis for one scenario (engine wrapper)."""
    ctx = RunContext(
        scale=scale, catalog=catalog, queries=queries,
        params=params, cache=cache, jobs=jobs,
    )
    return run_experiment(
        "census",
        CensusParams(
            scenario_key=scenario_key, delta=delta, cell_cap=cell_cap,
            usage_tol=usage_tol, share_samples=share_samples,
        ),
        ctx,
    )


def run_generated_census(
    n: int,
    scenario_key: str = "colocated",
    seed: int = 0,
    generator: GeneratorConfig | None = None,
    regime_deltas: tuple[float, ...] = DEFAULT_REGIME_DELTAS,
    regime_samples: int = 64,
    jobs: int = 1,
    ctx: "RunContext | None" = None,
) -> GeneratedCensus:
    """Run a generated census over ``n`` queries (engine wrapper)."""
    if ctx is None:
        ctx = RunContext(jobs=jobs, seed=seed, cache=None)
    params = CensusParams(
        scenario_key=scenario_key,
        generated=n,
        seed=seed,
        generator=generator or GeneratorConfig(),
        regime_deltas=tuple(regime_deltas),
        regime_samples=regime_samples,
    )
    return run_experiment("census", params, ctx)
