"""Resource-usage-vector analysis: the Section 8.2 census.

For each query and storage scenario, compute the candidate optimal
plans and classify every pair:

* complementary or not (Section 5.5);
* complementarity class — table / access-path / temp (Section 5.6);
* near-complementary (element ratios above an order of magnitude).

The paper's Section 8.2 findings, which this experiment reproduces in
shape:

* ``shared``: no complementary candidate pairs for any query;
* ``split``: many complementary pairs — all access-path or temp
  complementary, none table complementary;
* ``colocated``: access-path complementarity eliminated (tables and
  their indexes share a device), temp complementarity remains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..catalog.statistics import Catalog
from ..core.bounds import corollary_constant_bound
from ..core.complementary import ComplementarityCensus, census
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import Scenario, scenario
from .sweeps import monte_carlo_shares, plan_index_for

__all__ = [
    "QueryCensus",
    "UsageAnalysisResult",
    "CensusParams",
    "CensusExperiment",
    "analyze_query_census",
    "run_usage_analysis",
]

#: Delta of the feasible region the candidate sets are computed over
#: (the widest sweep level of the worst-case experiments).
DEFAULT_DELTA = 10000.0


@dataclass
class QueryCensus:
    """Candidate-set complementarity census for one query."""

    query_name: str
    scenario_key: str
    n_candidates: int
    truncated: bool
    census: ComplementarityCensus
    #: Equation 9 constant bound over the candidate set (inf when any
    #: pair is complementary).
    constant_bound: float
    #: Monte-Carlo share of the feasible region where the initial plan
    #: (optimal at the region center) stays optimal.
    initial_share: float = float("nan")

    @property
    def has_complementary_pairs(self) -> bool:
        return self.census.n_complementary > 0

    def class_count(self, cls: str) -> int:
        return self.census.count(cls)


@dataclass
class UsageAnalysisResult:
    """Census rows for all queries of one scenario."""

    scenario_key: str
    rows: list[QueryCensus]

    def queries_with_complementary_plans(self) -> list[str]:
        return [
            row.query_name for row in self.rows
            if row.has_complementary_pairs
        ]

    def total_class_counts(self) -> dict[str, int]:
        totals: dict[str, int] = {}
        for row in self.rows:
            for cls, count in row.census.class_counts.items():
                totals[cls] = totals.get(cls, 0) + count
        return totals

    def by_query(self) -> Mapping[str, QueryCensus]:
        return {row.query_name: row for row in self.rows}


def analyze_query_census(
    query: QuerySpec,
    catalog: Catalog,
    config: Scenario,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = DEFAULT_DELTA,
    cell_cap: int | None = 64,
    usage_tol: float = 1e-9,
    cache: PlanCache | None = None,
    share_samples: int = 512,
) -> QueryCensus:
    """The Section 8.2 census for one query under one scenario.

    ``share_samples`` Monte-Carlo samples (seeded per query, so the
    result is independent of execution order and worker count) measure
    how much of the feasible region the center-optimal plan rules.
    """
    with span(
        "census.query", query=query.name, scenario=config.key
    ) as current:
        layout = config.layout_for(query)
        region = config.region(layout, delta)
        candidates = cached_candidate_plans(
            query, catalog, params, layout, region,
            cell_cap=cell_cap, cache=cache, scenario_key=config.key,
        )
        pair_census = census(candidates.usages, tol=usage_tol)
        bound = corollary_constant_bound(
            candidates.usages, tol=usage_tol
        )
        shares = monte_carlo_shares(
            candidates.usage_matrix, region,
            np.random.default_rng(0), share_samples,
            index=plan_index_for(candidates),
        )
        initial_share = float(shares[candidates.initial_plan_index()])
        current.set(
            candidates=len(candidates),
            complementary=pair_census.n_complementary,
            initial_share=initial_share,
        )
    METRICS.counter("census.queries_total").inc()
    METRICS.counter("census.complementary_pairs").inc(
        pair_census.n_complementary
    )
    return QueryCensus(
        query_name=query.name,
        scenario_key=config.key,
        n_candidates=len(candidates),
        truncated=candidates.truncated,
        census=pair_census,
        constant_bound=bound,
        initial_share=initial_share,
    )


@dataclass(frozen=True)
class CensusParams:
    """Everything that determines one census run (picklable)."""

    scenario_key: str
    delta: float = DEFAULT_DELTA
    cell_cap: int | None = 64
    usage_tol: float = 1e-9
    share_samples: int = 512


@register_experiment
class CensusExperiment(Experiment):
    """The Section 8.2 complementarity census, one task per query."""

    name = "census"
    help = "Section 8.2 complementarity census"
    params_type = CensusParams

    def params_from_args(self, args) -> CensusParams:
        return CensusParams(scenario_key=args.scenario)

    def plan_tasks(
        self, ctx: RunContext, params: CensusParams
    ) -> list[QuerySpec]:
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: CensusParams, task: QuerySpec
    ) -> QueryCensus:
        return analyze_query_census(
            task, ctx.catalog, scenario(params.scenario_key), ctx.params,
            params.delta, params.cell_cap, params.usage_tol,
            cache=ctx.cache, share_samples=params.share_samples,
        )

    def reduce(
        self, ctx: RunContext, params: CensusParams, results: list
    ) -> UsageAnalysisResult:
        return UsageAnalysisResult(
            scenario_key=params.scenario_key, rows=results
        )

    def render(
        self, ctx: RunContext, params: CensusParams,
        reduced: UsageAnalysisResult,
    ) -> str:
        from .report import format_census_table

        return format_census_table(reduced) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: CensusParams,
        reduced: UsageAnalysisResult,
    ) -> dict[str, str]:
        from .report import format_census_table

        return {"census_table": format_census_table(reduced)}


def run_usage_analysis(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = DEFAULT_DELTA,
    cell_cap: int | None = 64,
    usage_tol: float = 1e-9,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
    share_samples: int = 512,
) -> UsageAnalysisResult:
    """Run the Section 8.2 analysis for one scenario (engine wrapper)."""
    ctx = RunContext(
        scale=scale, catalog=catalog, queries=queries,
        params=params, cache=cache, jobs=jobs,
    )
    return run_experiment(
        "census",
        CensusParams(
            scenario_key=scenario_key, delta=delta, cell_cap=cell_cap,
            usage_tol=usage_tol, share_samples=share_samples,
        ),
        ctx,
    )
