"""The experiment engine: one pipeline for every experiment kind.

Before this module existed, each experiment runner hand-rolled the
same scaffolding — catalog construction, ``--jobs`` process fan-out,
plan-cache wiring, manifest bookkeeping, ad-hoc parameter threading.
The engine factors that scaffolding into three pieces:

* :class:`RunContext` — everything an experiment needs from its
  environment (catalog, workload, system parameters, plan cache,
  parallelism, seed) plus the manifest bookkeeping (recorded seeds,
  result digests, catalog digest), built once and injected everywhere.
  The catalog and workload are lazy, so commands that never touch them
  (``params``, ``report``) pay nothing.
* :class:`ExperimentSpec` — the protocol an experiment implements:
  ``plan_tasks`` (split the work into independent tasks),
  ``run_task`` (one task, runnable in a worker process),
  ``reduce`` (combine task results), ``render`` (the stdout payload)
  and ``digest_payloads`` (what goes into the run manifest).  Params
  travel as a frozen dataclass so tasks pickle cleanly across the
  process boundary.
* a declarative registry — :func:`register_experiment` makes a spec
  visible to :func:`run_experiment` (the single programmatic entry
  point) and to the CLI, which auto-generates one subcommand per
  registered spec.

:func:`run_experiment` drives every spec through the one generic
serial-or-``ProcessPoolExecutor`` executor
(:func:`~repro.experiments.parallel.parallel_map`), preserving the
repo-wide guarantee that serial and ``--jobs N`` runs produce
identical results, digests and merged metrics.
"""

from __future__ import annotations

import argparse
import importlib
import logging
from pathlib import Path
from typing import (
    Any,
    Iterable,
    Iterator,
    Mapping,
    Protocol,
    Sequence,
    runtime_checkable,
)

from ..catalog.statistics import Catalog
from ..catalog.tpch import build_tpch_catalog
from ..obs.decisions import DECISIONS
from ..obs.faults import FaultPlan, RetryPolicy
from ..obs.manifest import catalog_digest, text_digest
from ..obs.progress import PROGRESS
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache
from ..optimizer.query import QuerySpec
from ..workloads.tpch_queries import build_tpch_queries
from .journal import RunJournal, default_journal_root, run_key
from .parallel import (
    TaskRunReport,
    parallel_map,
    worker_catalog,
    worker_payload,
)

__all__ = [
    "RunContext",
    "ExperimentSpec",
    "ResumeMismatchError",
    "UnknownQueryError",
    "register_experiment",
    "get_experiment",
    "all_experiments",
    "experiment_names",
    "run_experiment",
]

logger = logging.getLogger(__name__)


class ResumeMismatchError(ValueError):
    """An explicit ``--resume RUN_ID`` that does not match this run.

    The journal is content-addressed, so a mismatch means the current
    configuration (params, scale, seed, version...) differs from the
    one that produced the journal — resuming would silently mix
    results computed under different configurations.
    """

    def __init__(self, requested: str, computed: str) -> None:
        self.requested = requested
        self.computed = computed
        super().__init__(
            f"--resume {requested} does not match this run's "
            f"configuration (computed run id {computed}); journals are "
            "content-addressed and can only resume an identically "
            "configured run"
        )


class UnknownQueryError(ValueError):
    """A query name outside the workload, with the valid choices."""

    def __init__(self, unknown: Sequence[str], valid: Sequence[str]) -> None:
        self.unknown = tuple(unknown)
        super().__init__(
            f"unknown {'query' if len(unknown) == 1 else 'queries'} "
            f"{', '.join(repr(name) for name in unknown)}; "
            f"valid choices: {', '.join(valid)}"
        )


def _parse_query_names(names: "str | Sequence[str]") -> tuple[str, ...]:
    if isinstance(names, str):
        names = names.split(",")
    return tuple(name.strip().upper() for name in names if name.strip())


class RunContext:
    """Everything one experiment run needs, built once, injected everywhere.

    Holds the catalog and workload (built lazily from ``scale`` unless
    injected), the system cost-model parameters, the candidate-set
    :class:`PlanCache` handle (or None), the worker count and base
    seed — plus the manifest bookkeeping every run feeds: recorded
    seeds, result digests, catalog digest and per-task outcome stats.
    :func:`repro.obs.manifest.manifest_from_context` assembles the run
    manifest straight from this object.

    The resilience knobs mirror the CLI: ``policy`` (retries, task
    timeout, on-error mode), ``faults`` (the injection plan),
    ``checkpoint`` (journal finished tasks) and ``resume`` (``"auto"``
    or an explicit run id to pick an interrupted run back up).
    """

    def __init__(
        self,
        scale: float = 100.0,
        query_filter: "str | Sequence[str]" = (),
        catalog: "Catalog | None" = None,
        queries: "Mapping[str, QuerySpec] | None" = None,
        params: SystemParameters = DEFAULT_PARAMETERS,
        cache: "PlanCache | None" = None,
        jobs: int = 1,
        seed: int = 0,
        policy: "RetryPolicy | None" = None,
        faults: "FaultPlan | None" = None,
        checkpoint: bool = False,
        resume: "str | None" = None,
        journal_root: "str | Path | None" = None,
    ) -> None:
        self.scale = float(scale)
        self.query_filter = _parse_query_names(query_filter)
        self.params = params
        self.cache = cache
        self.jobs = jobs
        self.seed = seed
        self.policy = policy
        self.faults = faults
        self.checkpoint = checkpoint
        self.resume = resume
        self.journal_root = journal_root
        self._catalog = catalog
        self._catalog_injected = catalog is not None
        self._queries = dict(queries) if queries is not None else None
        #: Manifest bookkeeping, filled in as the run progresses.
        self.seeds: dict[str, Any] = {}
        self.result_digests: dict[str, str] = {}
        self.catalog_sha: "str | None" = None
        self.task_stats: "dict[str, Any] | None" = None
        self.run_id: "str | None" = None

    # ------------------------------------------------------------------
    # Lazy workload
    # ------------------------------------------------------------------
    @property
    def catalog(self) -> Catalog:
        if self._catalog is None:
            self._catalog = build_tpch_catalog(self.scale)
        if self.catalog_sha is None:
            self.catalog_sha = catalog_digest(self._catalog)
        return self._catalog

    @property
    def queries(self) -> dict[str, QuerySpec]:
        """The run's workload (filtered when ``query_filter`` is set)."""
        if self._queries is None:
            self._queries = build_tpch_queries(self.catalog)
            if self.query_filter:
                self._queries = self.select(self.query_filter)
        return self._queries

    def select(self, names: "str | Sequence[str]") -> dict[str, QuerySpec]:
        """A named subset of the workload, validated with choices."""
        if self._queries is None:
            available = build_tpch_queries(self.catalog)
        else:
            available = self._queries
        wanted = _parse_query_names(names)
        unknown = [name for name in wanted if name not in available]
        if unknown:
            raise UnknownQueryError(unknown, list(available))
        return {name: available[name] for name in wanted}

    @property
    def catalog_spec(self) -> "Catalog | float":
        """What worker processes rebuild the catalog from.

        A bare scale factor when this context built its own catalog
        (workers rebuild it — cheap, and avoids pickling assumptions);
        the catalog object itself when the caller injected customised
        statistics.
        """
        if self._catalog_injected:
            return self.catalog
        return self.scale

    # ------------------------------------------------------------------
    # Manifest bookkeeping
    # ------------------------------------------------------------------
    def record_digest(self, name: str, payload: str) -> None:
        """Register one rendered result for the run manifest."""
        self.result_digests[name] = text_digest(payload)

    def record_seeds(self, **seeds: Any) -> None:
        self.seeds.update(seeds)

    def cache_root(self) -> "str | None":
        """The plan-cache root as shipped to worker processes."""
        return str(self.cache.root) if self.cache is not None else None

    # ------------------------------------------------------------------
    # Checkpoint/resume
    # ------------------------------------------------------------------
    @property
    def journals(self) -> bool:
        """Whether this run reads/writes a checkpoint journal."""
        return self.checkpoint or self.resume is not None

    def journal_for(self, experiment: str, params: Any) -> RunJournal:
        """The content-addressed journal of this run's configuration.

        Computes the run id from everything that determines the task
        results and validates an explicit ``--resume RUN_ID`` against
        it (:class:`ResumeMismatchError` on mismatch — journals can
        only resume an identically configured run).
        """
        self.catalog  # ensure catalog_sha is populated
        computed = run_key(
            experiment=experiment,
            params=params,
            system_params=self.params,
            catalog_sha=self.catalog_sha,
            seed=self.seed,
        )
        if self.resume not in (None, "", "auto") and (
            self.resume != computed
        ):
            raise ResumeMismatchError(self.resume, computed)
        self.run_id = computed
        if self.journal_root is not None:
            root = Path(self.journal_root)
        elif self.cache is not None:
            root = Path(self.cache.root) / "runs"
        else:
            root = default_journal_root()
        return RunJournal(computed, root=root)


@runtime_checkable
class ExperimentSpec(Protocol):
    """What an experiment implements to run through the engine.

    ``params_type`` is a frozen dataclass of everything semantic; one
    instance travels (pickled) to every worker.  ``uses_scenario``
    tells the CLI builder to expose the shared scenario argument;
    ``scenario_default`` (None = required) its default.
    """

    name: str
    help: str
    params_type: type
    uses_scenario: bool
    scenario_positional: bool
    scenario_default: "str | None"

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        """Declare the experiment-specific CLI flags."""

    def params_from_args(self, args: argparse.Namespace) -> Any:
        """Build the params dataclass from parsed CLI arguments."""

    def seeds(self, params: Any) -> Mapping[str, Any]:
        """RNG seeds to record in the run manifest."""

    def plan_tasks(self, ctx: RunContext, params: Any) -> Iterable[Any]:
        """Split the run into independent, picklable tasks.

        May return a lazy iterable — the engine pulls tasks on demand
        and only sized sources get a progress denominator.
        """

    def run_task(self, ctx: RunContext, params: Any, task: Any) -> Any:
        """Run one task (possibly in a worker process)."""

    def make_accumulator(self, ctx: RunContext, params: Any) -> Any:
        """Fresh reducer state, before any result has been absorbed.

        Must be picklable: accumulators are checkpointed to the run
        journal so ``--resume`` can skip already-absorbed tasks.
        """

    def absorb(
        self, ctx: RunContext, params: Any, acc: Any, task: Any,
        result: Any,
    ) -> Any:
        """Fold one task result into the accumulator, returning it.

        Called in strict task-index order regardless of ``--jobs``,
        so any deterministic fold produces bit-identical state on
        serial and parallel runs.
        """

    def finalize(self, ctx: RunContext, params: Any, acc: Any) -> Any:
        """Turn the fully-absorbed accumulator into the result."""

    def reduce(self, ctx: RunContext, params: Any, results: list) -> Any:
        """Combine per-task results (input order) into the result.

        The legacy batch protocol; the engine itself only drives the
        streaming triple above.  :class:`Experiment` shims this method
        into the streaming protocol, so batch-only specs keep working.
        """

    def render(self, ctx: RunContext, params: Any, reduced: Any) -> str:
        """The exact stdout payload for the CLI."""

    def digest_payloads(
        self, ctx: RunContext, params: Any, reduced: Any
    ) -> Mapping[str, str]:
        """Named texts whose SHA-256 digests go into the manifest."""


class Experiment:
    """Convenience defaults for :class:`ExperimentSpec` implementers."""

    name: str = ""
    help: str = ""
    params_type: type = object
    uses_scenario: bool = True
    #: Whether the CLI also accepts the scenario as a positional
    #: argument (False when the spec claims the positional slot).
    scenario_positional: bool = True
    scenario_default: "str | None" = None

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        pass

    def seeds(self, params: Any) -> Mapping[str, Any]:
        return {}

    def scenario_default_for(self, args: argparse.Namespace) -> "str | None":
        """The scenario default, possibly depending on other flags."""
        return self.scenario_default

    def reduce(self, ctx: RunContext, params: Any, results: list) -> Any:
        return results

    # ------------------------------------------------------------------
    # Streaming protocol, shimmed onto the batch ``reduce`` above:
    # batch-only specs accumulate a plain list and reduce it at the
    # end, which is exactly the pre-streaming engine behaviour.
    # Specs that override all three run with O(1) reducer state.
    # ------------------------------------------------------------------
    def make_accumulator(self, ctx: RunContext, params: Any) -> Any:
        return []

    def absorb(
        self, ctx: RunContext, params: Any, acc: Any, task: Any,
        result: Any,
    ) -> Any:
        acc.append(result)
        return acc

    def finalize(self, ctx: RunContext, params: Any, acc: Any) -> Any:
        return self.reduce(ctx, params, acc)


# ----------------------------------------------------------------------
# Registry
# ----------------------------------------------------------------------
_REGISTRY: dict[str, ExperimentSpec] = {}


def register_experiment(cls: type) -> type:
    """Class decorator adding one spec instance to the registry."""
    spec = cls()
    if not spec.name:
        raise ValueError(f"{cls.__name__} has no experiment name")
    _REGISTRY[spec.name] = spec
    return cls


def get_experiment(name: str) -> ExperimentSpec:
    _ensure_registered()
    try:
        return _REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown experiment {name!r}; registered: "
            f"{', '.join(sorted(_REGISTRY))}"
        ) from None


def experiment_names() -> tuple[str, ...]:
    _ensure_registered()
    return tuple(_REGISTRY)


def all_experiments() -> Iterator[ExperimentSpec]:
    """Registered specs, in registration order."""
    _ensure_registered()
    return iter(tuple(_REGISTRY.values()))


def _ensure_registered() -> None:
    """Import the experiment package so built-in specs self-register.

    Keeps the registry spawn-safe: a worker process that unpickles
    only this module still finds every built-in spec.
    """
    importlib.import_module("repro.experiments")


# ----------------------------------------------------------------------
# The generic executor
# ----------------------------------------------------------------------
def _engine_task_worker(task: Any) -> Any:
    """One task of any registered experiment, in a worker process.

    The worker rebuilds a serial :class:`RunContext` from the shipped
    payload (catalog via the pool initializer, cache via its root) and
    dispatches to the spec looked up by name — the single fan-out
    worker for every experiment kind.
    """
    payload = worker_payload()
    spec = get_experiment(payload["experiment"])
    ctx = RunContext(
        catalog=worker_catalog(),
        queries={},
        params=payload["system_params"],
        cache=PlanCache.from_root(payload["cache_root"]),
        jobs=1,
        seed=payload["seed"],
    )
    return spec.run_task(ctx, payload["params"], task)


#: Absorbed-task interval between accumulator snapshots on
#: checkpointed runs.  Small sweeps (the 22 TPC-H queries) never
#: snapshot and resume purely from per-task journal entries; long
#: generated sweeps snapshot periodically and prune the absorbed
#: per-task pickles, keeping the journal directory O(interval).
_SNAPSHOT_INTERVAL = 256


def run_experiment(
    experiment: "str | ExperimentSpec", params: Any, ctx: RunContext
) -> Any:
    """Run one experiment through the shared pipeline.

    The single programmatic surface: plan tasks, fan them out through
    the generic serial-or-process-pool executor, stream every result
    into the spec's accumulator in task-index order, finalize, and
    record seeds + result digests on the context.  Returns the
    finalized result; rendering stays separate (``spec.render``).
    Task completions are published to the global progress reporter
    (:data:`repro.obs.progress.PROGRESS`), so long sweeps show a live
    rate/ETA meter on interactive runs — a no-op whenever the
    reporter is inactive.  ``plan_tasks`` may return a lazy iterable;
    unsized sources simply run without a progress denominator.

    The context's resilience settings flow straight through: the
    retry policy and fault plan go to the executor, and when
    checkpointing/resume is on, finished tasks are journaled to the
    run's content-addressed directory and already-journaled ones are
    served from disk without re-executing.  On long checkpointed
    sweeps the accumulator itself is snapshotted every
    ``_SNAPSHOT_INTERVAL`` absorbed tasks (absorbed per-task pickles
    are pruned), so a resume replays the snapshot instead of
    unpickling every artifact.  The per-task outcome report lands on
    ``ctx.task_stats`` for the run manifest.
    """
    spec = (
        get_experiment(experiment)
        if isinstance(experiment, str)
        else experiment
    )
    ctx.record_seeds(**spec.seeds(params))
    tasks = spec.plan_tasks(ctx, params)
    try:
        total = len(tasks)  # type: ignore[arg-type]
    except TypeError:
        total = None
    payload = {
        "experiment": spec.name,
        "params": params,
        "system_params": ctx.params,
        "cache_root": ctx.cache_root(),
        "seed": ctx.seed,
    }
    journal = None
    skip_before = 0
    snapshot_acc = None
    if ctx.journals:
        journal = ctx.journal_for(spec.name, params)
        journal.write_meta(spec.name, total)
        if ctx.resume is not None:
            skip_before, snapshot_acc, snapshot_decisions = (
                journal.load_snapshot()
            )
            if DECISIONS.enabled and snapshot_decisions is not None:
                # Snapshots capture the decision log's *global* merged
                # state at the watermark (including earlier experiments
                # of the same run), so restore replaces rather than
                # merges — replayed tasks above the watermark then
                # merge their journaled deltas on top.
                DECISIONS.load_state(snapshot_decisions)
            done = journal.completed()
            logger.info(
                "resuming run %s: %d task(s) journaled, accumulator "
                "snapshot covers the first %d",
                journal.run_id[:16], len(done), skip_before,
            )
    policy = ctx.policy or RetryPolicy(seed=ctx.seed)
    # Serial runs reuse the context's catalog object directly; only a
    # real process fan-out ships the (cheaper-to-rebuild) catalog spec.
    catalog_spec = ctx.catalog_spec if ctx.jobs > 1 else ctx.catalog
    label = spec.name
    scenario_key = getattr(params, "scenario_key", None)
    if scenario_key:
        label += f" [{scenario_key}]"
    if ctx.jobs > 1:
        label += f" --jobs {ctx.jobs}"
    if skip_before > 0:
        acc = snapshot_acc
    else:
        acc = spec.make_accumulator(ctx, params)
    state = {"acc": acc, "absorbed": 0}

    def consume(index: int, task: Any, result: Any) -> None:
        state["acc"] = spec.absorb(
            ctx, params, state["acc"], task, result
        )
        state["absorbed"] += 1
        if (
            journal is not None
            and state["absorbed"] % _SNAPSHOT_INTERVAL == 0
        ):
            journal.store_snapshot(
                index + 1,
                state["acc"],
                decisions=(
                    DECISIONS.export_state()
                    if DECISIONS.enabled else None
                ),
            )
            journal.prune_tasks_below(index + 1)

    report = TaskRunReport()
    progress = PROGRESS.start(label, total)
    try:
        parallel_map(
            _engine_task_worker,
            tasks,
            jobs=ctx.jobs,
            catalog_spec=catalog_spec,
            payload=payload,
            progress=progress,
            policy=policy,
            faults=ctx.faults,
            journal=journal,
            labels=lambda index: f"{spec.name}[{index}]",
            report=report,
            consume=consume,
            skip_before=skip_before,
        )
    finally:
        progress.finish()
        ctx.task_stats = report.as_manifest()
    reduced = spec.finalize(ctx, params, state["acc"])
    for name, payload_text in spec.digest_payloads(
        ctx, params, reduced
    ).items():
        ctx.record_digest(name, payload_text)
    return reduced
