"""Checkpoint/resume journal: per-task results in a run directory.

A 20-minute sweep that dies at task 19 of 22 used to lose everything.
The journal makes completed work durable: as the engine finishes each
task it pickles the result into a *content-addressed run directory*,
and ``--resume`` replays those entries instead of re-executing the
tasks — producing digests identical to an uninterrupted run.

The run id is a SHA-256 over everything that determines the task
results (experiment name, its frozen params dataclass, the system
cost-model parameters, the catalog digest, the run seed, package and
format versions).  Content addressing is the safety property: a resume
can only ever pick up results computed under the *same* configuration,
and passing an explicit ``--resume RUN_ID`` that does not match the
current configuration is rejected rather than silently mixed.

Layout (under ``<cache-root>/runs`` by default, next to the plan
cache)::

    <root>/<run_id>/meta.json        # human-readable provenance
    <root>/<run_id>/task-<index>.pkl # one atomic pickle per task
    <root>/<run_id>/acc.pkl          # latest accumulator snapshot

The accumulator snapshot is the streaming-reducer checkpoint: it
holds the reducer state after absorbing every task below its
watermark, so a resumed run replays one pickle instead of every
per-task artifact — and the engine prunes the absorbed per-task
pickles, keeping a million-task journal directory small.  A corrupt
or missing snapshot degrades gracefully to per-task replay (or
recomputation, for pruned tasks).

Writes reuse the :mod:`~repro.optimizer.plancache` atomic-write
machinery (temp file + ``os.replace``), so a SIGKILL mid-write never
leaves a half-entry a resume would trip over; corrupt entries are
treated as unfinished tasks and recomputed.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import logging
import os
import pickle
from pathlib import Path
from typing import Any

from ..obs.metrics import METRICS
from ..optimizer.config import SystemParameters
from ..optimizer.plancache import (
    PICKLE_LOAD_ERRORS,
    atomic_write_pickle,
    default_cache_dir,
)

__all__ = ["RunJournal", "run_key"]

logger = logging.getLogger(__name__)

#: Bump when the journal payload or key material changes shape.
_FORMAT_VERSION = 1

#: Bump when the accumulator-snapshot payload changes shape.
_SNAPSHOT_VERSION = 1


def _params_material(params: Any) -> Any:
    """A JSON-able fingerprint of an experiment params object."""
    if dataclasses.is_dataclass(params) and not isinstance(params, type):
        return {
            key: repr(value)
            for key, value in sorted(
                dataclasses.asdict(params).items()
            )
        }
    return repr(params)


def run_key(
    experiment: str,
    params: Any,
    system_params: SystemParameters,
    catalog_sha: "str | None",
    seed: int = 0,
) -> str:
    """SHA-256 run id over everything that determines task results."""
    from .. import __version__

    material = json.dumps(
        {
            "format": _FORMAT_VERSION,
            "version": __version__,
            "experiment": experiment,
            "params": _params_material(params),
            "system_params": _params_material(system_params),
            "catalog": catalog_sha,
            "seed": seed,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode()).hexdigest()


def default_journal_root() -> Path:
    """``<cache dir>/runs`` — journals live next to the plan cache."""
    return Path(default_cache_dir()) / "runs"


class RunJournal:
    """The checkpoint store of one content-addressed run directory."""

    #: Sentinel distinguishing "no entry" from a journaled ``None``.
    _MISSING = object()

    def __init__(
        self, run_id: str, root: "str | os.PathLike | None" = None
    ) -> None:
        self.run_id = run_id
        self.root = (
            Path(root) if root is not None else default_journal_root()
        )
        self.dir = self.root / run_id

    def task_path(self, index: int) -> Path:
        return self.dir / f"task-{index}.pkl"

    def decisions_path(self, index: int) -> Path:
        return self.dir / f"decisions-{index}.pkl"

    def write_meta(
        self, experiment: str, n_tasks: "int | None" = None
    ) -> None:
        """Record human-readable provenance once per run directory."""
        meta = self.dir / "meta.json"
        if meta.exists():
            return
        try:
            self.dir.mkdir(parents=True, exist_ok=True)
            meta.write_text(
                json.dumps(
                    {
                        "run_id": self.run_id,
                        "experiment": experiment,
                        "n_tasks": n_tasks,
                        "journal_format": _FORMAT_VERSION,
                    },
                    indent=2,
                    sort_keys=True,
                )
                + "\n"
            )
        except OSError as exc:
            logger.warning(
                "could not write journal meta %s (%s: %s)",
                meta, type(exc).__name__, exc,
            )

    def load(self, index: int) -> tuple[bool, Any]:
        """``(True, result)`` for a journaled task, ``(False, None)``
        for an unfinished (or corrupt — recompute) one."""
        path = self.task_path(index)
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return False, None
        except PICKLE_LOAD_ERRORS as exc:
            METRICS.counter("engine.journal_corrupt").inc()
            logger.warning(
                "corrupt journal entry %s (%s: %s); re-running the task",
                path, type(exc).__name__, exc,
            )
            return False, None
        if payload is self._MISSING:  # pragma: no cover - paranoia
            return False, None
        METRICS.counter("engine.journal_hits").inc()
        return True, payload

    def store(self, index: int, result: Any) -> None:
        """Atomically journal one finished task (best effort)."""
        path = self.task_path(index)
        try:
            atomic_write_pickle(path, result)
        except (OSError, TypeError, AttributeError) as exc:
            # Unwritable filesystem or an unpicklable result must never
            # fail the experiment — the run just loses resumability.
            METRICS.counter("engine.journal_store_errors").inc()
            logger.warning(
                "could not journal task %d to %s (%s: %s)",
                index, path, type(exc).__name__, exc,
            )
            return
        METRICS.counter("engine.journal_stores").inc()

    # ------------------------------------------------------------------
    # Decision-provenance side files (``--decisions`` + checkpointing)
    # ------------------------------------------------------------------
    def store_decisions(self, index: int, delta: Any) -> None:
        """Journal one task's decision-log delta next to its result.

        Best effort, like :meth:`store` — losing a side file costs a
        resumed run its decision telemetry for that task, never the
        task result itself.
        """
        path = self.decisions_path(index)
        try:
            atomic_write_pickle(path, delta)
        except (OSError, TypeError, AttributeError) as exc:
            METRICS.counter("engine.decisions_store_errors").inc()
            logger.warning(
                "could not journal decisions for task %d to %s "
                "(%s: %s)",
                index, path, type(exc).__name__, exc,
            )

    def load_decisions(self, index: int) -> Any:
        """The journaled decision delta for a task, or ``None`` when
        absent/corrupt (replayed tasks then simply contribute no
        decision telemetry)."""
        path = self.decisions_path(index)
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except FileNotFoundError:
            return None
        except PICKLE_LOAD_ERRORS as exc:
            METRICS.counter("engine.decisions_corrupt").inc()
            logger.warning(
                "corrupt decisions entry %s (%s: %s); dropping it",
                path, type(exc).__name__, exc,
            )
            return None

    # ------------------------------------------------------------------
    # Accumulator snapshots (streaming-reducer checkpoints)
    # ------------------------------------------------------------------
    def snapshot_path(self) -> Path:
        return self.dir / "acc.pkl"

    def store_snapshot(
        self, watermark: int, acc: Any, decisions: Any = None
    ) -> None:
        """Atomically persist the reducer state below ``watermark``.

        Only the latest snapshot is kept — it subsumes every earlier
        one.  Best effort, like :meth:`store`: an unpicklable
        accumulator or a read-only filesystem costs resumability, not
        the run.  ``decisions`` optionally rides along (the decision
        log's merged state at the watermark), so snapshot-pruned
        tasks' decision telemetry survives a resume; old snapshots
        without the key load fine (``payload.get``).
        """
        payload = {
            "format": _SNAPSHOT_VERSION,
            "watermark": int(watermark),
            "acc": acc,
        }
        if decisions is not None:
            payload["decisions"] = decisions
        try:
            atomic_write_pickle(self.snapshot_path(), payload)
        except (OSError, TypeError, AttributeError) as exc:
            METRICS.counter("engine.snapshot_store_errors").inc()
            logger.warning(
                "could not snapshot accumulator at watermark %d to "
                "%s (%s: %s)",
                watermark, self.snapshot_path(),
                type(exc).__name__, exc,
            )
            return
        METRICS.counter("engine.snapshot_stores").inc()

    def load_snapshot(self) -> tuple[int, Any, Any]:
        """``(watermark, accumulator, decisions)``; ``(0, None, None)``
        when absent.

        A corrupt or format-mismatched snapshot is treated as absent
        (the run falls back to per-task replay/recomputation).  The
        third slot is the decision-log state stored alongside the
        accumulator, ``None`` for snapshots taken without
        ``--decisions``.
        """
        path = self.snapshot_path()
        try:
            with open(path, "rb") as handle:
                payload = pickle.load(handle)
        except FileNotFoundError:
            return 0, None, None
        except PICKLE_LOAD_ERRORS as exc:
            METRICS.counter("engine.snapshot_corrupt").inc()
            logger.warning(
                "corrupt accumulator snapshot %s (%s: %s); falling "
                "back to per-task replay",
                path, type(exc).__name__, exc,
            )
            return 0, None, None
        if (
            not isinstance(payload, dict)
            or payload.get("format") != _SNAPSHOT_VERSION
            or not isinstance(payload.get("watermark"), int)
            or payload["watermark"] <= 0
        ):
            METRICS.counter("engine.snapshot_corrupt").inc()
            return 0, None, None
        METRICS.counter("engine.snapshot_hits").inc()
        return (
            payload["watermark"],
            payload.get("acc"),
            payload.get("decisions"),
        )

    def prune_tasks_below(self, watermark: int) -> int:
        """Delete per-task entries a snapshot has absorbed; returns
        how many were removed (best effort).  Decision side files are
        pruned with their task — the snapshot's ``decisions`` payload
        subsumes them."""
        removed = 0
        for index in sorted(self.completed()):
            if index >= watermark:
                continue
            try:
                self.task_path(index).unlink()
                removed += 1
            except OSError:  # pragma: no cover - racing cleanup
                pass
            try:
                self.decisions_path(index).unlink()
            except OSError:
                pass
        if removed:
            METRICS.counter("engine.journal_pruned").inc(removed)
        return removed

    def completed(self) -> set[int]:
        """Indices with a journal entry on disk (corrupt ones count —
        :meth:`load` re-vets them before use)."""
        found = set()
        if not self.dir.is_dir():
            return found
        for path in self.dir.glob("task-*.pkl"):
            stem = path.stem[len("task-"):]
            if stem.isdigit():
                found.add(int(stem))
        return found
