"""Experiment runners regenerating the paper's evaluation artefacts.

Every experiment kind is an :class:`~repro.experiments.engine.ExperimentSpec`
registered with the engine (:mod:`repro.experiments.engine`), which
drives it through the shared
``plan_tasks -> run_task (serial or process pool) -> absorb -> render``
streaming pipeline; the CLI generates one subcommand per registered
spec.

* ``figure`` (:mod:`.worst_case`) — the worst-case sensitivity curves
  of Section 8.1 (Figures 5/6/7 via ``scenario``);
* ``census`` (:mod:`.usage_analysis`) — the Section 8.2
  complementarity census;
* ``robustness`` (:mod:`.robustness`) — per-parameter switch
  thresholds;
* ``expected`` (:mod:`.expected`) — Monte-Carlo expected regret;
* ``validate`` (:mod:`.validation`) — the Section 6 black-box
  algorithm validations;
* :mod:`repro.experiments.report` — text/CSV rendering.

Programmatic entry point: ``run_experiment(name, params, ctx)`` with a
:class:`~repro.experiments.engine.RunContext`; the ``run_*`` wrappers
below keep the historical one-call signatures.
"""

from .engine import (
    ExperimentSpec,
    ResumeMismatchError,
    RunContext,
    UnknownQueryError,
    all_experiments,
    experiment_names,
    get_experiment,
    register_experiment,
    run_experiment,
)
from .accumulators import (
    CountHistogram,
    DecadeHistogram,
    ReservoirSampler,
    WelfordMoments,
    stable_hash64,
)
from .journal import RunJournal, run_key
from .expected import (
    ExpectedParams,
    ExpectedRegret,
    analyze_expected_regret,
    format_expected_table,
    run_expected_regret,
)
from .parallel import TaskFailure, TaskRunReport, parallel_map
from .report import (
    figure_to_csv,
    format_census_table,
    format_figure_chart,
    format_figure_summary,
    format_figure_table,
    format_generated_census,
    format_parameter_table,
)
from .robustness import (
    ParameterRobustness,
    QueryRobustness,
    RobustnessParams,
    analyze_query_robustness,
    format_robustness_table,
    run_robustness,
)
from .scenarios import (
    DEFAULT_DELTAS,
    SCENARIO_ALIASES,
    SCENARIO_KEYS,
    Scenario,
    UnknownScenarioError,
    all_scenarios,
    resolve_scenario_key,
    scenario,
)
from .usage_analysis import (
    CensusParams,
    GeneratedCensus,
    GeneratedQuerySummary,
    QueryCensus,
    RegimeCurve,
    UsageAnalysisResult,
    analyze_generated_query,
    analyze_query_census,
    run_generated_census,
    run_usage_analysis,
)
from .validation import (
    DiscoveryValidation,
    EstimationValidation,
    ValidationParams,
    format_validation_report,
    run_validation,
    validate_discovery,
    validate_estimation,
)
from .worst_case import (
    FigureParams,
    FigureResult,
    QueryWorstCase,
    run_figure,
    run_query_worst_case,
)

__all__ = [
    "DEFAULT_DELTAS",
    "CensusParams",
    "CountHistogram",
    "DecadeHistogram",
    "DiscoveryValidation",
    "EstimationValidation",
    "ExpectedParams",
    "ExpectedRegret",
    "ExperimentSpec",
    "FigureParams",
    "FigureResult",
    "GeneratedCensus",
    "GeneratedQuerySummary",
    "ParameterRobustness",
    "QueryCensus",
    "QueryWorstCase",
    "QueryRobustness",
    "RegimeCurve",
    "ReservoirSampler",
    "ResumeMismatchError",
    "RobustnessParams",
    "RunContext",
    "RunJournal",
    "SCENARIO_ALIASES",
    "SCENARIO_KEYS",
    "Scenario",
    "TaskFailure",
    "TaskRunReport",
    "UnknownQueryError",
    "UnknownScenarioError",
    "UsageAnalysisResult",
    "ValidationParams",
    "WelfordMoments",
    "all_experiments",
    "all_scenarios",
    "analyze_expected_regret",
    "analyze_generated_query",
    "analyze_query_census",
    "analyze_query_robustness",
    "experiment_names",
    "figure_to_csv",
    "format_census_table",
    "format_expected_table",
    "format_figure_chart",
    "format_figure_summary",
    "format_figure_table",
    "format_generated_census",
    "format_parameter_table",
    "format_robustness_table",
    "format_validation_report",
    "get_experiment",
    "parallel_map",
    "register_experiment",
    "resolve_scenario_key",
    "run_expected_regret",
    "run_experiment",
    "run_figure",
    "run_generated_census",
    "run_key",
    "run_query_worst_case",
    "run_robustness",
    "run_usage_analysis",
    "run_validation",
    "scenario",
    "stable_hash64",
    "validate_discovery",
    "validate_estimation",
]
