"""Experiment runners regenerating the paper's evaluation artefacts.

* :func:`run_figure5` / :func:`run_figure6` / :func:`run_figure7` —
  the worst-case sensitivity curves of Section 8.1;
* :func:`run_usage_analysis` — the Section 8.2 complementarity census;
* :func:`validate_estimation` / :func:`validate_discovery` — the
  Section 6 black-box algorithm validations;
* :mod:`repro.experiments.report` — text/CSV rendering.
"""

from .expected import (
    ExpectedRegret,
    analyze_expected_regret,
    format_expected_table,
    run_expected_regret,
)
from .parallel import parallel_map
from .report import (
    figure_to_csv,
    format_census_table,
    format_figure_chart,
    format_figure_summary,
    format_figure_table,
    format_parameter_table,
)
from .robustness import (
    ParameterRobustness,
    QueryRobustness,
    analyze_query_robustness,
    format_robustness_table,
    run_robustness,
)
from .scenarios import (
    DEFAULT_DELTAS,
    SCENARIO_KEYS,
    Scenario,
    all_scenarios,
    scenario,
)
from .usage_analysis import (
    QueryCensus,
    UsageAnalysisResult,
    run_usage_analysis,
)
from .validation import (
    DiscoveryValidation,
    EstimationValidation,
    run_validation,
    validate_discovery,
    validate_estimation,
)
from .worst_case import (
    FigureResult,
    QueryWorstCase,
    run_figure,
    run_figure5,
    run_figure6,
    run_figure7,
    run_query_worst_case,
)

__all__ = [
    "DEFAULT_DELTAS",
    "DiscoveryValidation",
    "EstimationValidation",
    "ExpectedRegret",
    "FigureResult",
    "ParameterRobustness",
    "QueryCensus",
    "QueryWorstCase",
    "QueryRobustness",
    "SCENARIO_KEYS",
    "Scenario",
    "UsageAnalysisResult",
    "all_scenarios",
    "figure_to_csv",
    "format_census_table",
    "format_figure_chart",
    "format_figure_summary",
    "format_figure_table",
    "format_parameter_table",
    "format_robustness_table",
    "analyze_query_robustness",
    "analyze_expected_regret",
    "format_expected_table",
    "parallel_map",
    "run_figure",
    "run_figure5",
    "run_figure6",
    "run_figure7",
    "run_robustness",
    "run_expected_regret",
    "run_query_worst_case",
    "run_usage_analysis",
    "run_validation",
    "scenario",
    "validate_discovery",
    "validate_estimation",
]
