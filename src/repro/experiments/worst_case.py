"""Worst-case sensitivity experiments: Figures 5, 6 and 7.

For each query and storage scenario:

1. compute the candidate optimal plan set over the widest feasible
   region (white-box parametric DP + LP filtering);
2. identify the *initial plan* — optimal at the DB2-default cost
   vector ``C_0``;
3. sweep the error level ``delta`` and record the worst-case global
   relative cost of the initial plan over the feasible region's
   vertices (exact by Observation 2).

The per-curve growth classification (constant / intermediate /
quadratic) reproduces the paper's reading of the figures: Figure 5 is
all-constant, Figure 6 mostly quadratic, Figure 7 in between.
"""

from __future__ import annotations

import argparse
import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..catalog.statistics import Catalog
from ..core.worstcase import WorstCaseCurve, worst_case_curve
from ..obs.decisions import DECISIONS
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import DEFAULT_DELTAS, Scenario, scenario
from .sweeps import plan_index_for

__all__ = [
    "QueryWorstCase",
    "FigureResult",
    "FigureParams",
    "FigureExperiment",
    "run_query_worst_case",
    "run_figure",
]


@dataclass
class QueryWorstCase:
    """One curve of a worst-case figure."""

    query_name: str
    scenario_key: str
    curve: WorstCaseCurve
    n_candidates: int
    truncated: bool
    initial_signature: str
    resource_count: int

    @property
    def final_gtc(self) -> float:
        return self.curve.final_gtc()

    def growth_class(self) -> str:
        """Asymptotic growth of the curve: how the paper reads a line.

        Log-log slope over the last two sweep points: ``~0`` means the
        Theorem 2 constant regime (``constant``), ``~2`` the Theorem 1
        quadratic regime (``quadratic``), anything in between is
        ``intermediate`` (a knee still in progress at the largest
        delta, like queries 11/16 in Figure 6).
        """
        points = self.curve.points
        if len(points) < 2:
            return "constant"
        (d1, g1), (d2, g2) = (
            (points[-2].delta, points[-2].gtc),
            (points[-1].delta, points[-1].gtc),
        )
        if g1 <= 0 or d2 <= d1:
            return "constant"
        slope = math.log(g2 / g1) / math.log(d2 / d1)
        if slope < 0.3:
            return "constant"
        if slope > 1.5:
            return "quadratic"
        return "intermediate"


@dataclass
class FigureResult:
    """All 22 curves of one figure."""

    scenario_key: str
    figure: str
    curves: list[QueryWorstCase]
    deltas: tuple[float, ...]

    def by_query(self) -> Mapping[str, QueryWorstCase]:
        return {curve.query_name: curve for curve in self.curves}

    def growth_census(self) -> dict[str, int]:
        """Count of curves per growth class."""
        census: dict[str, int] = {}
        for curve in self.curves:
            key = curve.growth_class()
            census[key] = census.get(key, 0) + 1
        return census

    def max_final_gtc(self) -> float:
        return max(curve.final_gtc for curve in self.curves)


def run_query_worst_case(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    config: Scenario,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    cell_cap: int | None = 64,
    cache: PlanCache | None = None,
) -> QueryWorstCase:
    """Worst-case curve of one query under one storage scenario."""
    with span(
        "figure.query", query=query.name, scenario=config.key
    ) as current:
        layout = config.layout_for(query)
        widest = config.region(layout, max(deltas))
        candidates = cached_candidate_plans(
            query, catalog, params, layout, widest, cell_cap=cell_cap,
            cache=cache, scenario_key=config.key,
        )
        if not candidates.plans:
            raise RuntimeError(
                f"no candidate plans for {query.name} under {config.key}"
            )
        initial_index = candidates.initial_plan_index()
        initial = candidates.plans[initial_index]
        base_region = config.region(layout, 1.0)
        with DECISIONS.scoped(f"figure:{query.name}"):
            curve = worst_case_curve(
                initial.usage,
                candidates.usages,
                base_region,
                deltas,
                label=query.name,
                initial_plan_index=initial_index,
                index=plan_index_for(candidates),
            )
        current.set(
            candidates=len(candidates), final_gtc=curve.final_gtc()
        )
    METRICS.counter("figure.queries_total").inc()
    METRICS.histogram("figure.final_gtc").observe(curve.final_gtc())
    return QueryWorstCase(
        query_name=query.name,
        scenario_key=config.key,
        curve=curve,
        n_candidates=len(candidates),
        truncated=candidates.truncated,
        initial_signature=initial.signature,
        resource_count=config.resource_count(query),
    )


@dataclass(frozen=True)
class FigureParams:
    """Everything that determines one figure run (picklable)."""

    scenario_key: str
    deltas: tuple[float, ...] = DEFAULT_DELTAS
    cell_cap: int | None = 64
    #: Rendering choices (do not affect the computed curves).
    csv: bool = False
    chart: tuple[str, ...] = ()


@register_experiment
class FigureExperiment(Experiment):
    """Figures 5-7: one worst-case curve per query, merged per figure."""

    name = "figure"
    help = "regenerate Figure 5/6/7 worst-case curves"
    params_type = FigureParams

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--deltas", default="",
                            help="comma-separated error levels")
        parser.add_argument("--csv", action="store_true")
        parser.add_argument(
            "--chart", default="",
            help="also draw an ASCII chart of these queries, e.g. Q3,Q20",
        )

    def params_from_args(self, args: argparse.Namespace) -> FigureParams:
        deltas = DEFAULT_DELTAS
        if args.deltas:
            deltas = tuple(float(d) for d in args.deltas.split(","))
        chart = tuple(args.chart.split(",")) if args.chart else ()
        return FigureParams(
            scenario_key=args.scenario, deltas=deltas,
            csv=args.csv, chart=chart,
        )

    def plan_tasks(
        self, ctx: RunContext, params: FigureParams
    ) -> list[QuerySpec]:
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: FigureParams, task: QuerySpec
    ) -> QueryWorstCase:
        return run_query_worst_case(
            task, ctx.catalog, ctx.params, scenario(params.scenario_key),
            params.deltas, params.cell_cap, cache=ctx.cache,
        )

    def reduce(
        self, ctx: RunContext, params: FigureParams, results: list
    ) -> FigureResult:
        """Legacy batch protocol, kept for digest-parity testing."""
        return FigureResult(
            scenario_key=params.scenario_key,
            figure=scenario(params.scenario_key).figure,
            curves=results,
            deltas=tuple(params.deltas),
        )

    # -- streaming reducer: curves accrete per task, in query order --
    def make_accumulator(
        self, ctx: RunContext, params: FigureParams
    ) -> FigureResult:
        return FigureResult(
            scenario_key=params.scenario_key,
            figure=scenario(params.scenario_key).figure,
            curves=[],
            deltas=tuple(params.deltas),
        )

    def absorb(
        self, ctx: RunContext, params: FigureParams,
        acc: FigureResult, task: QuerySpec, result: QueryWorstCase,
    ) -> FigureResult:
        acc.curves.append(result)
        return acc

    def finalize(
        self, ctx: RunContext, params: FigureParams, acc: FigureResult
    ) -> FigureResult:
        return acc

    def render(
        self, ctx: RunContext, params: FigureParams, reduced: FigureResult
    ) -> str:
        from .report import (
            figure_to_csv,
            format_figure_chart,
            format_figure_summary,
            format_figure_table,
        )

        if params.csv:
            return figure_to_csv(reduced)
        parts = [
            format_figure_table(reduced),
            "",
            format_figure_summary(reduced),
        ]
        if params.chart:
            parts.extend(["", format_figure_chart(reduced, params.chart)])
        return "\n".join(parts) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: FigureParams, reduced: FigureResult
    ) -> dict[str, str]:
        from .report import figure_to_csv

        return {"figure_csv": figure_to_csv(reduced)}


def run_figure(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    cell_cap: int | None = 64,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
) -> FigureResult:
    """Regenerate one of Figures 5-7 over (by default) all 22 queries.

    A convenience wrapper over the engine: select the scenario with
    ``scenario_key`` (``shared``/``split``/``colocated``, Figures
    5/6/7 respectively).  ``jobs`` spreads queries over worker
    processes (results keep input order and are identical to the
    serial run); ``cache`` persists each query's candidate set across
    invocations.
    """
    ctx = RunContext(
        scale=scale, catalog=catalog, queries=queries,
        params=params, cache=cache, jobs=jobs,
    )
    return run_experiment(
        "figure",
        FigureParams(
            scenario_key=scenario_key, deltas=tuple(deltas),
            cell_cap=cell_cap,
        ),
        ctx,
    )
