"""Worst-case sensitivity experiments: Figures 5, 6 and 7.

For each query and storage scenario:

1. compute the candidate optimal plan set over the widest feasible
   region (white-box parametric DP + LP filtering);
2. identify the *initial plan* — optimal at the DB2-default cost
   vector ``C_0``;
3. sweep the error level ``delta`` and record the worst-case global
   relative cost of the initial plan over the feasible region's
   vertices (exact by Observation 2).

The per-curve growth classification (constant / intermediate /
quadratic) reproduces the paper's reading of the figures: Figure 5 is
all-constant, Figure 6 mostly quadratic, Figure 7 in between.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Mapping, Sequence

from ..catalog.statistics import Catalog
from ..catalog.tpch import build_tpch_catalog
from ..core.worstcase import WorstCaseCurve, worst_case_curve
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from ..workloads.tpch_queries import build_tpch_queries
from .parallel import parallel_map, worker_catalog, worker_payload
from .scenarios import DEFAULT_DELTAS, Scenario, scenario

__all__ = [
    "QueryWorstCase",
    "FigureResult",
    "run_query_worst_case",
    "run_figure",
    "run_figure5",
    "run_figure6",
    "run_figure7",
]


@dataclass
class QueryWorstCase:
    """One curve of a worst-case figure."""

    query_name: str
    scenario_key: str
    curve: WorstCaseCurve
    n_candidates: int
    truncated: bool
    initial_signature: str
    resource_count: int

    @property
    def final_gtc(self) -> float:
        return self.curve.final_gtc()

    def growth_class(self) -> str:
        """Asymptotic growth of the curve: how the paper reads a line.

        Log-log slope over the last two sweep points: ``~0`` means the
        Theorem 2 constant regime (``constant``), ``~2`` the Theorem 1
        quadratic regime (``quadratic``), anything in between is
        ``intermediate`` (a knee still in progress at the largest
        delta, like queries 11/16 in Figure 6).
        """
        points = self.curve.points
        if len(points) < 2:
            return "constant"
        (d1, g1), (d2, g2) = (
            (points[-2].delta, points[-2].gtc),
            (points[-1].delta, points[-1].gtc),
        )
        if g1 <= 0 or d2 <= d1:
            return "constant"
        slope = math.log(g2 / g1) / math.log(d2 / d1)
        if slope < 0.3:
            return "constant"
        if slope > 1.5:
            return "quadratic"
        return "intermediate"


@dataclass
class FigureResult:
    """All 22 curves of one figure."""

    scenario_key: str
    figure: str
    curves: list[QueryWorstCase]
    deltas: tuple[float, ...]

    def by_query(self) -> Mapping[str, QueryWorstCase]:
        return {curve.query_name: curve for curve in self.curves}

    def growth_census(self) -> dict[str, int]:
        """Count of curves per growth class."""
        census: dict[str, int] = {}
        for curve in self.curves:
            key = curve.growth_class()
            census[key] = census.get(key, 0) + 1
        return census

    def max_final_gtc(self) -> float:
        return max(curve.final_gtc for curve in self.curves)


def run_query_worst_case(
    query: QuerySpec,
    catalog: Catalog,
    params: SystemParameters,
    config: Scenario,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    cell_cap: int | None = 64,
    cache: PlanCache | None = None,
) -> QueryWorstCase:
    """Worst-case curve of one query under one storage scenario."""
    with span(
        "figure.query", query=query.name, scenario=config.key
    ) as current:
        layout = config.layout_for(query)
        widest = config.region(layout, max(deltas))
        candidates = cached_candidate_plans(
            query, catalog, params, layout, widest, cell_cap=cell_cap,
            cache=cache, scenario_key=config.key,
        )
        if not candidates.plans:
            raise RuntimeError(
                f"no candidate plans for {query.name} under {config.key}"
            )
        initial_index = candidates.initial_plan_index()
        initial = candidates.plans[initial_index]
        base_region = config.region(layout, 1.0)
        curve = worst_case_curve(
            initial.usage,
            candidates.usages,
            base_region,
            deltas,
            label=query.name,
            initial_plan_index=initial_index,
        )
        current.set(
            candidates=len(candidates), final_gtc=curve.final_gtc()
        )
    METRICS.counter("figure.queries_total").inc()
    METRICS.histogram("figure.final_gtc").observe(curve.final_gtc())
    return QueryWorstCase(
        query_name=query.name,
        scenario_key=config.key,
        curve=curve,
        n_candidates=len(candidates),
        truncated=candidates.truncated,
        initial_signature=initial.signature,
        resource_count=config.resource_count(query),
    )


def _curve_worker(query: QuerySpec) -> QueryWorstCase:
    """Per-query figure work, run in a (possibly forked) worker."""
    payload = worker_payload()
    cache_root = payload["cache_root"]
    cache = PlanCache(cache_root) if cache_root is not None else None
    return run_query_worst_case(
        query,
        worker_catalog(),
        payload["params"],
        scenario(payload["scenario_key"]),
        payload["deltas"],
        payload["cell_cap"],
        cache=cache,
    )


def run_figure(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    deltas: Sequence[float] = DEFAULT_DELTAS,
    cell_cap: int | None = 64,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
) -> FigureResult:
    """Regenerate one of Figures 5-7 over (by default) all 22 queries.

    ``jobs`` spreads queries over worker processes (results keep input
    order and are identical to the serial run); ``cache`` persists each
    query's candidate set across invocations.
    """
    config = scenario(scenario_key)
    catalog_spec: "Catalog | float"
    if catalog is None:
        catalog = build_tpch_catalog(scale)
        catalog_spec = float(scale)
    else:
        catalog_spec = catalog
    if queries is None:
        queries = build_tpch_queries(catalog)
    payload = {
        "scenario_key": config.key,
        "params": params,
        "deltas": tuple(deltas),
        "cell_cap": cell_cap,
        "cache_root": str(cache.root) if cache is not None else None,
    }
    curves = parallel_map(
        _curve_worker,
        queries.values(),
        jobs=jobs,
        catalog_spec=catalog_spec,
        payload=payload,
    )
    return FigureResult(
        scenario_key=scenario_key,
        figure=config.figure,
        curves=curves,
        deltas=tuple(deltas),
    )


def run_figure5(**kwargs) -> FigureResult:
    """Figure 5: all tables and indexes on the same storage device."""
    return run_figure("shared", **kwargs)


def run_figure6(**kwargs) -> FigureResult:
    """Figure 6: all tables and indexes on different storage devices."""
    return run_figure("split", **kwargs)


def run_figure7(**kwargs) -> FigureResult:
    """Figure 7: one device per table and its corresponding indexes."""
    return run_figure("colocated", **kwargs)
