"""Process-parallel execution of per-query experiment work.

The figure/expected/validation sweeps are embarrassingly parallel over
queries, but each worker needs the TPC-H catalog — a few kilobytes of
statistics that every query shares.  Rather than pickling it into every
task, :func:`parallel_map` ships a *catalog spec* (usually just the
scale factor) once per worker process through a
:class:`~concurrent.futures.ProcessPoolExecutor` initializer; the
worker builds the catalog a single time and parks it, together with an
arbitrary experiment payload, in the module-global ``_STATE``.

``jobs=1`` (the default everywhere) never spawns a process: the same
worker function runs serially in-process through the same ``_STATE``
protocol, so serial and parallel paths execute identical code and
produce identical results — ``--jobs N`` is a wall-clock knob, not a
semantics knob.  Results come back in input order (``executor.map``),
so output ordering is deterministic regardless of worker scheduling.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from ..catalog.statistics import Catalog
from ..catalog.tpch import build_tpch_catalog

__all__ = ["parallel_map", "worker_catalog", "worker_payload"]

#: Per-process experiment state: ``{"catalog": ..., "payload": ...}``.
_STATE: dict[str, Any] = {}


def _init_worker(catalog_spec: "Catalog | float",
                 payload: Mapping[str, Any]) -> None:
    """Build the catalog once for this process and park the payload."""
    if isinstance(catalog_spec, Catalog):
        catalog = catalog_spec
    else:
        catalog = build_tpch_catalog(catalog_spec)
    _STATE.clear()
    _STATE["catalog"] = catalog
    _STATE["payload"] = dict(payload)


def worker_catalog() -> Catalog:
    """The catalog this worker process was initialised with."""
    return _STATE["catalog"]


def worker_payload() -> dict[str, Any]:
    """The experiment payload this worker process was initialised with."""
    return _STATE["payload"]


def parallel_map(
    worker: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    catalog_spec: "Catalog | float" = 100.0,
    payload: "Mapping[str, Any] | None" = None,
) -> list[Any]:
    """Map ``worker`` over ``items``, optionally across processes.

    ``worker`` must be a module-level function (picklable) that reads
    the catalog and payload via :func:`worker_catalog` /
    :func:`worker_payload`.  ``catalog_spec`` is either a TPC-H scale
    factor (each worker builds its own catalog — cheap, and avoids
    pickling assumptions) or a prebuilt :class:`Catalog` for callers
    that customised statistics.
    """
    items = list(items)
    payload = payload or {}
    if jobs <= 1 or len(items) <= 1:
        _init_worker(catalog_spec, payload)
        return [worker(item) for item in items]
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=_init_worker,
        initargs=(catalog_spec, payload),
    ) as pool:
        return list(pool.map(worker, items))
