"""The resilient serial-or-process-pool executor for experiment tasks.

Every experiment sweep is embarrassingly parallel over queries, and
every one of them fans out through :func:`parallel_map` — the engine
(:mod:`repro.experiments.engine`) hands it one shared worker function
that dispatches to the registered spec, so no runner owns pool code.
Each worker needs the TPC-H catalog — a few kilobytes of statistics
that every query shares.  Rather than pickling it into every task,
:func:`parallel_map` ships a *catalog spec* (usually just the scale
factor) once per worker process through a
:class:`~concurrent.futures.ProcessPoolExecutor` initializer; the
worker builds the catalog a single time and parks it, together with an
arbitrary experiment payload, in the module-global ``_STATE``.

``jobs=1`` (the default everywhere) never spawns a process: the same
worker function runs serially in-process through the same ``_STATE``
protocol, so serial and parallel paths execute identical code and
produce identical results — ``--jobs N`` is a wall-clock knob, not a
semantics knob.  Results keep input order regardless of worker
scheduling or retries.

On top of the plain fan-out sits the resilience layer:

* a :class:`~repro.obs.faults.RetryPolicy` adds per-task retries with
  seeded exponential backoff, a per-attempt ``--task-timeout``
  (SIGALRM inside the worker, so hung tasks are interrupted rather
  than wedged), and the ``on_error`` verdict — ``abort`` fails fast
  (the historical behaviour), ``retry`` retries then aborts, ``skip``
  records the failure in a :class:`TaskRunReport` and lets the sweep
  finish with holes;
* a **dead-worker detector**: a worker that dies mid-task (injected
  ``kill`` fault, segfault, OOM) breaks the pool — the parent catches
  :class:`~concurrent.futures.process.BrokenProcessPool`, respawns the
  pool, and reschedules the in-flight tasks instead of deadlocking.
  With a task timeout set, a parent-side deadline additionally
  backstops workers too wedged to deliver their own ``SIGALRM``;
* an optional :class:`~repro.experiments.journal.RunJournal` persists
  each finished task atomically, and already-journaled tasks are
  served from disk before any worker is spawned (``--resume``);
* a :class:`~repro.obs.faults.FaultPlan` injects deterministic,
  seeded failures (raise/hang/kill) into task execution so every one
  of the paths above is testable on demand.

Observability crosses the process boundary in both directions.  On the
way out, workers inherit the parent's tracing flag and log level; on
the way back, every task ships its metric delta, span sub-tree and (under
``--profile``) folded-stack profile delta with its result, and the
parent :meth:`~repro.obs.metrics.MetricsRegistry.merge`\\ s,
:meth:`~repro.obs.trace.Tracer.graft`\\ s and
:meth:`~repro.obs.profile.SamplingProfiler.merge`\\ s them.  A ``--jobs N`` run
therefore reports the *same metric totals* and the *same span-tree
shape* as the serial run — only the timings differ
(``tests/experiments/test_parallel_obs.py``).  Only a task's
*successful* attempt contributes metrics and spans, so fault-injected
runs converge to the same task-level totals as clean ones.
"""

from __future__ import annotations

import logging
import time
from collections import deque
from concurrent.futures import (
    FIRST_COMPLETED,
    ProcessPoolExecutor,
    wait,
)
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Any, Callable, Iterable, Mapping, Sequence

from ..catalog.statistics import Catalog
from ..catalog.tpch import build_tpch_catalog
from ..obs.faults import (
    FaultPlan,
    RetryPolicy,
    TaskTimeout,
    apply_fault,
    time_limit,
)
from ..obs.decisions import DECISIONS
from ..obs.logs import configure_logging, configured_log_level
from ..obs.memprof import MEMPROF
from ..obs.metrics import METRICS
from ..obs.profile import PROFILER
from ..obs.trace import TRACER, span
from .journal import RunJournal

__all__ = [
    "TaskFailure",
    "TaskRunReport",
    "WorkerCrash",
    "parallel_map",
    "worker_catalog",
    "worker_payload",
]

logger = logging.getLogger(__name__)

#: Parent-side grace on top of ``task_timeout`` before a worker that
#: never reported back is presumed dead and the pool is respawned.
_DEADLINE_GRACE = 5.0

#: Poll interval of the parallel scheduler loop.
_POLL_SECONDS = 0.05

#: Per-process experiment state:
#: ``{"catalog": ..., "payload": ..., "worker": ..., "task_span": ...,
#: "faults": ..., "timeout": ...}``.
_STATE: dict[str, Any] = {}


class WorkerCrash(RuntimeError):
    """A worker process died mid-task (kill fault, segfault, OOM)."""


@dataclass
class TaskFailure:
    """One task that exhausted its attempts under ``on_error=skip``."""

    index: int
    label: str
    error: str
    attempts: int

    def as_manifest(self) -> dict[str, Any]:
        return {
            "label": self.label,
            "error": self.error,
            "attempts": self.attempts,
        }


@dataclass
class TaskRunReport:
    """What happened to every task of one sweep (manifest fodder)."""

    planned: int = 0
    completed: int = 0
    resumed: int = 0
    retried: int = 0
    failures: list[TaskFailure] = field(default_factory=list)

    def as_manifest(self) -> dict[str, Any]:
        return {
            "planned": self.planned,
            "completed": self.completed,
            "resumed": self.resumed,
            "retried": self.retried,
            "failed": [f.as_manifest() for f in self.failures],
        }


def _init_worker(
    catalog_spec: "Catalog | float",
    payload: Mapping[str, Any],
    worker: "Callable[[Any], Any] | None" = None,
    task_span: str = "parallel.task",
    obs_config: "Mapping[str, Any] | None" = None,
) -> None:
    """Build the catalog once for this process and park the payload."""
    if isinstance(catalog_spec, Catalog):
        catalog = catalog_spec
    else:
        catalog = build_tpch_catalog(catalog_spec)
    _STATE.clear()
    _STATE["catalog"] = catalog
    _STATE["payload"] = dict(payload)
    _STATE["worker"] = worker
    _STATE["task_span"] = task_span
    _STATE["faults"] = None
    _STATE["timeout"] = None
    if obs_config is not None:
        # Child process: mirror the parent's observability settings.
        TRACER.reset()
        TRACER.enabled = bool(obs_config.get("trace", False))
        if obs_config.get("memprof", False) and not MEMPROF.enabled:
            MEMPROF.enable()
        level = obs_config.get("log_level")
        if level is not None:
            configure_logging(level)
        profile_hz = obs_config.get("profile_hz")
        if profile_hz:
            # Child process: sample this worker's own main thread and
            # ship the folded stacks back with each task result.
            PROFILER.enable(profile_hz)
        decisions = obs_config.get("decisions")
        if decisions is not None:
            DECISIONS.configure(**decisions)
            DECISIONS.enable()
        _STATE["faults"] = obs_config.get("faults")
        _STATE["timeout"] = obs_config.get("timeout")


def worker_catalog() -> Catalog:
    """The catalog this worker process was initialised with."""
    return _STATE["catalog"]


def worker_payload() -> dict[str, Any]:
    """The experiment payload this worker process was initialised with."""
    return _STATE["payload"]


def _maybe_inject(
    faults: "FaultPlan | None",
    index: int,
    attempt: int,
    allow_kill: bool,
) -> None:
    """Carry out the (deterministic) injected fault for this attempt."""
    if faults is None:
        return
    kind = faults.decide(index, attempt)
    if kind is None:
        return
    METRICS.counter("engine.faults_injected").inc()
    logger.info(
        "injecting %s fault into task %d attempt %d", kind, index, attempt
    )
    apply_fault(kind, faults.hang_seconds, allow_kill=allow_kill)


def _instrumented_call(task: tuple[int, Any, int]):
    """One task attempt in a worker: run it, ship result + spans + metrics.

    The registry is reset per attempt so each snapshot is exactly this
    attempt's delta; the parent merges only successful deltas, which
    sums to the same totals the serial path accumulates directly.
    """
    index, item, attempt = task
    worker = _STATE["worker"]
    METRICS.reset()
    TRACER.reset()
    if PROFILER.enabled:
        PROFILER.reset()
    DECISIONS.begin_task(index)
    with span(_STATE["task_span"], index=index):
        with time_limit(_STATE.get("timeout")):
            _maybe_inject(
                _STATE.get("faults"), index, attempt, allow_kill=True
            )
            result = worker(item)
    profile = PROFILER.snapshot() if PROFILER.enabled else None
    return (
        result, TRACER.export(), METRICS.snapshot(), profile,
        DECISIONS.take_task(),
    )


@dataclass
class _TaskState:
    """Parent-side bookkeeping for one not-yet-finished task."""

    index: int
    item: Any
    label: str
    attempt: int = 0
    #: Earliest monotonic time the next attempt may be submitted
    #: (backoff); 0.0 = immediately.
    ready_at: float = 0.0
    #: Monotonic deadline of the in-flight attempt (None = no timeout).
    deadline: "float | None" = None


class _Scheduler:
    """Shared retry/skip/abort bookkeeping for both execution paths.

    With a ``consume`` callback the scheduler is a *streaming* sink:
    finished results enter a reorder buffer and are emitted to
    ``consume(index, item, result)`` in strict task-index order as the
    watermark advances — never materialised in a results dict.  Tasks
    that ultimately fail under ``on_error=skip`` become holes the
    watermark steps over.  Without ``consume`` the historical contract
    holds: results collect in input order and come back as a list.
    """

    def __init__(
        self,
        policy: RetryPolicy,
        report: TaskRunReport,
        journal: "RunJournal | None",
        progress: Any,
        consume: "Callable[[int, Any, Any], None] | None" = None,
        skip_before: int = 0,
    ) -> None:
        self.policy = policy
        self.report = report
        self.journal = journal
        self.progress = progress
        self.consume = consume
        self.results: dict[int, Any] = {}
        #: Next index to hand to ``consume`` (streaming mode only).
        self.watermark = skip_before
        self._buffer: dict[int, tuple[Any, Any, Any]] = {}
        self._holes: set[int] = set()
        #: Batch-mode decision deltas, merged in index order at the end
        #: so any ``--jobs`` value folds the sample identically.
        self._decisions: dict[int, Any] = {}

    def succeed(
        self, state: _TaskState, result: Any, decisions: Any = None
    ) -> None:
        self.report.completed += 1
        if self.journal is not None:
            self.journal.store(state.index, result)
            if decisions is not None:
                self.journal.store_decisions(state.index, decisions)
        self._deliver(state.index, state.item, result, decisions)
        if self.progress is not None:
            self.progress.advance()

    def resume(self, index: int, item: Any, result: Any) -> None:
        self.report.completed += 1
        self.report.resumed += 1
        decisions = None
        if self.journal is not None and DECISIONS.enabled:
            decisions = self.journal.load_decisions(index)
        self._deliver(index, item, result, decisions)
        if self.progress is not None:
            self.progress.advance()

    def skip_absorbed(self, index: int) -> None:
        """A task below the snapshot watermark: its result is already
        folded into the resumed accumulator, so it is counted as
        resumed without being re-read or re-absorbed."""
        self.report.completed += 1
        self.report.resumed += 1
        if self.progress is not None:
            self.progress.advance()

    def _deliver(
        self, index: int, item: Any, result: Any, decisions: Any = None
    ) -> None:
        if self.consume is None:
            self.results[index] = result
            if decisions is not None:
                self._decisions[index] = decisions
            return
        self._buffer[index] = (item, result, decisions)
        self._drain()

    def _hole(self, index: int) -> None:
        """A permanently skipped task: advance the watermark past it."""
        if self.consume is not None:
            self._holes.add(index)
            self._drain()

    def _drain(self) -> None:
        while True:
            entry = self._buffer.pop(self.watermark, None)
            if entry is not None:
                # Decision deltas merge in strict watermark order, so
                # the fold order (and the bottom-k sample) is the same
                # for serial, --jobs N and resumed runs.
                if entry[2] is not None:
                    DECISIONS.merge(entry[2])
                self.consume(self.watermark, entry[0], entry[1])
                self.watermark += 1
            elif self.watermark in self._holes:
                self._holes.discard(self.watermark)
                self.watermark += 1
            else:
                return

    def flush_decisions(self) -> None:
        """Batch mode: fold buffered decision deltas in index order."""
        for index in sorted(self._decisions):
            DECISIONS.merge(self._decisions.pop(index))

    def fail(self, state: _TaskState, exc: BaseException) -> "float | None":
        """Handle one failed attempt.

        Returns the backoff delay when the task should be retried,
        None when it was skipped, and re-raises under ``abort``.
        """
        state.attempt += 1
        if state.attempt < self.policy.max_attempts:
            self.report.retried += 1
            METRICS.counter("engine.task_retries").inc()
            delay = self.policy.delay(state.index, state.attempt)
            logger.warning(
                "task %s attempt %d/%d failed (%s: %s); retrying "
                "in %.2fs",
                state.label, state.attempt, self.policy.max_attempts,
                type(exc).__name__, exc, delay,
            )
            return delay
        if self.policy.on_error == "skip":
            METRICS.counter("engine.task_failures").inc()
            failure = TaskFailure(
                index=state.index,
                label=state.label,
                error=f"{type(exc).__name__}: {exc}",
                attempts=state.attempt,
            )
            self.report.failures.append(failure)
            logger.warning(
                "task %s failed after %d attempt(s); skipping (%s)",
                state.label, state.attempt, failure.error,
            )
            self._hole(state.index)
            if self.progress is not None:
                self.progress.advance()
            return None
        raise exc

    def ordered_results(self) -> list[Any]:
        return [self.results[i] for i in sorted(self.results)]


def _run_serial(
    worker: Callable[[Any], Any],
    states: "Iterable[_TaskState]",
    task_span: str,
    faults: "FaultPlan | None",
    sched: _Scheduler,
) -> None:
    """In-process execution with the same retry/skip/timeout semantics.

    ``kill`` faults degrade to exceptions here (killing the only
    process would end the run, not exercise recovery), and backoff
    sleeps block — both are inherent to running in-process.
    """
    policy = sched.policy
    for state in states:
        while True:
            # Route decisions into a per-task buffer so only the
            # successful attempt contributes (same contract as
            # metrics/spans) and serial runs fold deltas exactly like
            # --jobs N runs do.
            DECISIONS.begin_task(state.index)
            try:
                with span(task_span, index=state.index):
                    with time_limit(policy.task_timeout):
                        _maybe_inject(
                            faults, state.index, state.attempt,
                            allow_kill=False,
                        )
                        result = worker(state.item)
            except (KeyboardInterrupt, SystemExit):
                raise
            except Exception as exc:
                DECISIONS.take_task()  # drop the failed attempt
                delay = sched.fail(state, exc)
                if delay is None:
                    break
                time.sleep(delay)
                continue
            sched.succeed(state, result, decisions=DECISIONS.take_task())
            break


def _kill_pool(pool: ProcessPoolExecutor) -> None:
    """Tear a (possibly wedged) pool down without waiting on it."""
    processes = getattr(pool, "_processes", None) or {}
    for process in list(processes.values()):
        try:
            process.terminate()
        except (OSError, ValueError):  # pragma: no cover - racing exit
            pass
    pool.shutdown(wait=False, cancel_futures=True)


def _run_pool(
    worker: Callable[[Any], Any],
    states: "Iterable[_TaskState]",
    jobs: int,
    catalog_spec: "Catalog | float",
    payload: Mapping[str, Any],
    task_span: str,
    faults: "FaultPlan | None",
    sched: _Scheduler,
    workers: "int | None" = None,
    reorder_cap: "int | None" = None,
) -> None:
    """Process-pool execution with retries and a dead-worker detector.

    At most one task is in flight per worker, so a submitted attempt
    is running (not queued) and its parent-side deadline is
    meaningful.  A broken pool (worker died) is respawned and the
    in-flight attempts rescheduled; overdue attempts (timeout plus
    grace with no word from the worker) terminate the pool the same
    way.

    ``states`` is pulled lazily, in index order, so a lazy task source
    is never materialised.  In streaming mode ``reorder_cap`` bounds
    how far ahead of the scheduler's watermark new tasks may be
    pulled — the reorder buffer (results finished out of order but not
    yet consumable) can therefore never exceed ``reorder_cap``
    entries, which is what keeps a million-task sweep's memory flat.
    """
    policy = sched.policy
    obs_config = {
        "trace": TRACER.enabled,
        "memprof": MEMPROF.enabled,
        "log_level": configured_log_level(),
        "profile_hz": PROFILER.hz if PROFILER.enabled else None,
        "decisions": (
            {
                "sample_k": DECISIONS.sample_k,
                "epsilon": DECISIONS.epsilon,
                "seed": DECISIONS.seed,
            }
            if DECISIONS.enabled else None
        ),
        "faults": faults,
        "timeout": policy.task_timeout,
    }
    if workers is None:
        workers = jobs
    initargs = (catalog_spec, payload, worker, task_span, obs_config)

    def make_pool() -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=workers,
            initializer=_init_worker,
            initargs=initargs,
        )

    source = iter(states)
    exhausted = False
    last_pulled = -1
    pending: deque[_TaskState] = deque()
    in_flight: dict[Any, _TaskState] = {}

    def refill() -> None:
        """Pull new tasks while worker slots could use them.

        Stops at the reorder cap: a task more than ``reorder_cap``
        indices ahead of the watermark stays unpulled until the
        stream catches up.
        """
        nonlocal exhausted, last_pulled
        while (
            not exhausted
            and len(pending) + len(in_flight) < workers
        ):
            if (
                reorder_cap is not None
                and (pending or in_flight)
                and last_pulled + 1 - sched.watermark >= reorder_cap
            ):
                # Cap reached with work still outstanding; with no
                # work outstanding the stream has fully drained, so
                # pulling is always allowed (progress guarantee).
                return
            try:
                state = next(source)
            except StopIteration:
                exhausted = True
                return
            last_pulled = state.index
            pending.append(state)

    pool = make_pool()

    def reschedule(state: _TaskState, exc: BaseException) -> None:
        delay = sched.fail(state, exc)  # raises under abort
        if delay is not None:
            state.ready_at = time.monotonic() + delay
            pending.append(state)

    def crash_in_flight(message: str) -> None:
        crashed = list(in_flight.values())
        in_flight.clear()
        for state in crashed:
            reschedule(state, WorkerCrash(message))

    try:
        while True:
            refill()
            if not pending and not in_flight:
                break  # refill pulls whenever work remains
            now = time.monotonic()
            # Submit every ready task while a worker slot is free.
            submitted_any = False
            for _ in range(len(pending)):
                if len(in_flight) >= workers:
                    break
                state = pending.popleft()
                if state.ready_at > now:
                    pending.append(state)
                    continue
                try:
                    future = pool.submit(
                        _instrumented_call,
                        (state.index, state.item, state.attempt),
                    )
                except BrokenProcessPool:
                    pending.append(state)
                    crash_in_flight("worker process died (broken pool)")
                    pool = make_pool()
                    break
                if policy.task_timeout:
                    state.deadline = (
                        now + policy.task_timeout + _DEADLINE_GRACE
                    )
                in_flight[future] = state
                submitted_any = True
            if not in_flight:
                if pending and not submitted_any:
                    # Everything is backing off; sleep to the nearest
                    # ready time instead of spinning.
                    wake = min(s.ready_at for s in pending)
                    time.sleep(
                        min(max(wake - time.monotonic(), 0.0), 1.0)
                        + 0.001
                    )
                continue
            done, _ = wait(
                set(in_flight),
                timeout=_POLL_SECONDS,
                return_when=FIRST_COMPLETED,
            )
            broken = False
            for future in done:
                state = in_flight.pop(future)
                try:
                    (result, spans, snapshot, profile,
                     decisions) = future.result()
                except BrokenProcessPool:
                    reschedule(
                        state, WorkerCrash("worker process died mid-task")
                    )
                    broken = True
                except (KeyboardInterrupt, SystemExit):
                    raise
                except Exception as exc:
                    reschedule(state, exc)
                else:
                    TRACER.graft(spans)
                    METRICS.merge(snapshot)
                    PROFILER.merge(profile)
                    sched.succeed(state, result, decisions=decisions)
            if broken:
                crash_in_flight("worker process died (broken pool)")
                pool.shutdown(wait=False, cancel_futures=True)
                pool = make_pool()
                continue
            # Dead-worker backstop: in-flight attempts past their
            # deadline mean a worker too wedged to raise its own
            # SIGALRM timeout — kill the pool and reschedule.
            now = time.monotonic()
            overdue = [
                state for state in in_flight.values()
                if state.deadline is not None and now > state.deadline
            ]
            if overdue:
                METRICS.counter("engine.pool_respawns").inc()
                logger.warning(
                    "%d in-flight task(s) exceeded the task timeout "
                    "with no word from their worker; respawning the "
                    "pool", len(overdue),
                )
                _kill_pool(pool)
                stale = list(in_flight.values())
                in_flight.clear()
                for state in stale:
                    reschedule(
                        state,
                        TaskTimeout(
                            f"task exceeded --task-timeout "
                            f"{policy.task_timeout:g}s (worker "
                            "unresponsive)"
                        ),
                    )
                pool = make_pool()
    except BaseException:
        _kill_pool(pool)
        raise
    pool.shutdown()


def parallel_map(
    worker: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    catalog_spec: "Catalog | float" = 100.0,
    payload: "Mapping[str, Any] | None" = None,
    task_span: str = "parallel.task",
    progress: Any = None,
    policy: "RetryPolicy | None" = None,
    faults: "FaultPlan | None" = None,
    journal: "RunJournal | None" = None,
    labels: "Sequence[str] | Callable[[int], str] | None" = None,
    report: "TaskRunReport | None" = None,
    consume: "Callable[[int, Any, Any], None] | None" = None,
    skip_before: int = 0,
) -> list[Any]:
    """Map ``worker`` over ``items``, optionally across processes.

    ``worker`` must be a module-level function (picklable) that reads
    the catalog and payload via :func:`worker_catalog` /
    :func:`worker_payload`.  ``catalog_spec`` is either a TPC-H scale
    factor (each worker builds its own catalog — cheap, and avoids
    pickling assumptions) or a prebuilt :class:`Catalog` for callers
    that customised statistics.  ``task_span`` names the per-item span
    recorded around each task (identical for serial and parallel runs).
    ``progress`` is an optional task-completion sink (anything with an
    ``advance()`` method — normally a
    :class:`~repro.obs.progress.ProgressTask`), advanced once per
    finished item on the parent process for both execution paths.

    The resilience knobs are all optional and default to the
    historical semantics (fail fast, no faults, no checkpointing):
    ``policy`` governs retries/timeouts/skips, ``faults`` injects
    deterministic failures, ``journal`` persists finished tasks and
    serves already-journaled ones without executing them, ``labels``
    names tasks in logs and the failure report, and ``report``
    (mutated in place) receives the per-task outcome accounting.

    Streaming mode: with a ``consume`` callback, finished results are
    handed to ``consume(index, item, result)`` in strict task-index
    order (via a bounded reorder buffer) instead of being collected —
    ``items`` may then be an arbitrarily long lazy iterable, pulled on
    demand, and the return value is an empty list.  ``skip_before``
    marks a prefix of indices as already absorbed by a resumed
    accumulator snapshot: they are counted as resumed without being
    loaded or consumed.  ``labels`` may be a callable ``index ->
    label`` so lazy sources need no label list.

    Returns the successful results in input order; under
    ``on_error=skip``, ultimately-failed tasks are simply absent (the
    holes are listed in ``report.failures``).
    """
    streaming = consume is not None
    if not streaming:
        items = list(items)
    payload = payload or {}
    policy = policy or RetryPolicy()
    if report is None:
        report = TaskRunReport()
    if not streaming:
        report.planned += len(items)
    sched = _Scheduler(
        policy, report, journal, progress,
        consume=consume, skip_before=skip_before,
    )

    def label_for(index: int) -> str:
        if labels is None:
            return f"task-{index}"
        if callable(labels):
            return labels(index)
        return labels[index]

    def states() -> "Iterable[_TaskState]":
        # Serve journaled results first: a resumed task never reaches
        # a worker at all, and a task below the snapshot watermark is
        # never even loaded.
        for index, item in enumerate(items):
            if streaming:
                report.planned += 1
                if index < skip_before:
                    sched.skip_absorbed(index)
                    continue
            if journal is not None:
                hit, value = journal.load(index)
                if hit:
                    sched.resume(index, item, value)
                    continue
            yield _TaskState(
                index=index, item=item, label=label_for(index)
            )

    if not streaming:
        runnable = list(states())
        if runnable:
            if jobs <= 1 or len(runnable) <= 1:
                _init_worker(catalog_spec, payload)
                _run_serial(worker, runnable, task_span, faults, sched)
            else:
                _run_pool(
                    worker, runnable, jobs, catalog_spec, payload,
                    task_span, faults, sched,
                    workers=min(jobs, len(runnable)),
                )
        sched.flush_decisions()
        return sched.ordered_results()

    if jobs <= 1:
        _init_worker(catalog_spec, payload)
        _run_serial(worker, states(), task_span, faults, sched)
    else:
        _run_pool(
            worker, states(), jobs, catalog_spec, payload,
            task_span, faults, sched,
            workers=jobs,
            reorder_cap=max(4 * jobs, 64),
        )
    return []
