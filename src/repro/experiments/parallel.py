"""The generic serial-or-process-pool executor for experiment tasks.

Every experiment sweep is embarrassingly parallel over queries, and
every one of them fans out through :func:`parallel_map` — the engine
(:mod:`repro.experiments.engine`) hands it one shared worker function
that dispatches to the registered spec, so no runner owns pool code.
Each worker needs the TPC-H catalog — a few kilobytes of statistics
that every query shares.  Rather than pickling it into every task,
:func:`parallel_map` ships a *catalog spec* (usually just the scale
factor) once per worker process through a
:class:`~concurrent.futures.ProcessPoolExecutor` initializer; the
worker builds the catalog a single time and parks it, together with an
arbitrary experiment payload, in the module-global ``_STATE``.

``jobs=1`` (the default everywhere) never spawns a process: the same
worker function runs serially in-process through the same ``_STATE``
protocol, so serial and parallel paths execute identical code and
produce identical results — ``--jobs N`` is a wall-clock knob, not a
semantics knob.  Results come back in input order (``executor.map``),
so output ordering is deterministic regardless of worker scheduling.

Observability crosses the process boundary in both directions.  On the
way out, workers inherit the parent's tracing flag and log level; on
the way back, every task ships its metric delta and span sub-tree with
its result, and the parent :meth:`~repro.obs.metrics.MetricsRegistry.merge`\\ s
and :meth:`~repro.obs.trace.Tracer.graft`\\ s them.  A ``--jobs N`` run
therefore reports the *same metric totals* and the *same span-tree
shape* as the serial run — only the timings differ
(``tests/experiments/test_parallel_obs.py``).
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Any, Callable, Iterable, Mapping

from ..catalog.statistics import Catalog
from ..catalog.tpch import build_tpch_catalog
from ..obs.logs import configure_logging, configured_log_level
from ..obs.memprof import MEMPROF
from ..obs.metrics import METRICS
from ..obs.trace import TRACER, span

__all__ = ["parallel_map", "worker_catalog", "worker_payload"]

#: Per-process experiment state:
#: ``{"catalog": ..., "payload": ..., "worker": ..., "task_span": ...}``.
_STATE: dict[str, Any] = {}


def _init_worker(
    catalog_spec: "Catalog | float",
    payload: Mapping[str, Any],
    worker: "Callable[[Any], Any] | None" = None,
    task_span: str = "parallel.task",
    obs_config: "Mapping[str, Any] | None" = None,
) -> None:
    """Build the catalog once for this process and park the payload."""
    if isinstance(catalog_spec, Catalog):
        catalog = catalog_spec
    else:
        catalog = build_tpch_catalog(catalog_spec)
    _STATE.clear()
    _STATE["catalog"] = catalog
    _STATE["payload"] = dict(payload)
    _STATE["worker"] = worker
    _STATE["task_span"] = task_span
    if obs_config is not None:
        # Child process: mirror the parent's observability settings.
        TRACER.reset()
        TRACER.enabled = bool(obs_config.get("trace", False))
        if obs_config.get("memprof", False) and not MEMPROF.enabled:
            MEMPROF.enable()
        level = obs_config.get("log_level")
        if level is not None:
            configure_logging(level)


def worker_catalog() -> Catalog:
    """The catalog this worker process was initialised with."""
    return _STATE["catalog"]


def worker_payload() -> dict[str, Any]:
    """The experiment payload this worker process was initialised with."""
    return _STATE["payload"]


def _instrumented_call(task: tuple[int, Any]):
    """One task in a worker: run it, ship result + spans + metrics.

    The registry is reset per task so each snapshot is exactly this
    task's delta; the parent merges the deltas, which sums to the same
    totals the serial path accumulates directly.
    """
    index, item = task
    worker = _STATE["worker"]
    METRICS.reset()
    TRACER.reset()
    with span(_STATE["task_span"], index=index):
        result = worker(item)
    return result, TRACER.export(), METRICS.snapshot()


def parallel_map(
    worker: Callable[[Any], Any],
    items: Iterable[Any],
    jobs: int = 1,
    catalog_spec: "Catalog | float" = 100.0,
    payload: "Mapping[str, Any] | None" = None,
    task_span: str = "parallel.task",
    progress: Any = None,
) -> list[Any]:
    """Map ``worker`` over ``items``, optionally across processes.

    ``worker`` must be a module-level function (picklable) that reads
    the catalog and payload via :func:`worker_catalog` /
    :func:`worker_payload`.  ``catalog_spec`` is either a TPC-H scale
    factor (each worker builds its own catalog — cheap, and avoids
    pickling assumptions) or a prebuilt :class:`Catalog` for callers
    that customised statistics.  ``task_span`` names the per-item span
    recorded around each task (identical for serial and parallel runs).
    ``progress`` is an optional task-completion sink (anything with an
    ``advance()`` method — normally a
    :class:`~repro.obs.progress.ProgressTask`), advanced once per
    finished item on the parent process for both execution paths.
    """
    items = list(items)
    payload = payload or {}
    if jobs <= 1 or len(items) <= 1:
        _init_worker(catalog_spec, payload)
        results = []
        for index, item in enumerate(items):
            with span(task_span, index=index):
                results.append(worker(item))
            if progress is not None:
                progress.advance()
        return results
    obs_config = {
        "trace": TRACER.enabled,
        "memprof": MEMPROF.enabled,
        "log_level": configured_log_level(),
    }
    with ProcessPoolExecutor(
        max_workers=min(jobs, len(items)),
        initializer=_init_worker,
        initargs=(catalog_spec, payload, worker, task_span, obs_config),
    ) as pool:
        results = []
        for result, spans, snapshot in pool.map(
            _instrumented_call, enumerate(items)
        ):
            TRACER.graft(spans)
            METRICS.merge(snapshot)
            results.append(result)
            if progress is not None:
                progress.advance()
        return results
