"""The three storage scenarios of the paper's evaluation (Section 8.1).

Each scenario bundles a layout factory with the matching
variation-group structure:

* ``shared``    — Figure 5: all tables and indexes on one device; the
  three resources (CPU, ``d_s``, ``d_t``) vary independently.
* ``split``     — Figure 6: every table and every table's index group
  on its own device plus a temp device (2k+2 resources), each device's
  ``d_s``/``d_t`` locked in ratio.
* ``colocated`` — Figure 7: one device per table holding the table and
  its indexes, plus temp (k+2 resources).

The default resource costs are DB2's defaults (d_s = 24.1, d_t = 9.0,
CPU 1e-6 per instruction), modelling the administrator who never
recalibrated them — the paper's Section 8.1 setup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Sequence

from ..core.feasible import FeasibleRegion, VariationGroup
from ..optimizer.query import QuerySpec
from ..storage.layout import StorageLayout

__all__ = [
    "Scenario",
    "SCENARIO_KEYS",
    "SCENARIO_ALIASES",
    "UnknownScenarioError",
    "scenario",
    "resolve_scenario_key",
    "all_scenarios",
    "DEFAULT_DELTAS",
]

SCENARIO_KEYS = ("shared", "split", "colocated")

#: Figure-number spellings accepted wherever a scenario is named.
SCENARIO_ALIASES = {"fig5": "shared", "fig6": "split", "fig7": "colocated"}


class UnknownScenarioError(ValueError):
    """A scenario name that is neither a key nor a figure alias."""

    def __init__(self, value: str) -> None:
        choices = ", ".join(SCENARIO_KEYS + tuple(SCENARIO_ALIASES))
        super().__init__(
            f"unknown scenario {value!r}; valid choices: {choices}"
        )


def resolve_scenario_key(value: str) -> str:
    """Canonical scenario key for ``value`` (accepts fig5/fig6/fig7)."""
    key = SCENARIO_ALIASES.get(value, value)
    if key not in _SCENARIOS:
        raise UnknownScenarioError(value)
    return key

#: The delta grid swept in the worst-case experiments (log-spaced from
#: no error to the paper's 10^4 extreme).
DEFAULT_DELTAS = (
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0,
    200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0,
)


@dataclass(frozen=True)
class Scenario:
    """One storage configuration of the Section 8.1 experiments."""

    key: str
    figure: str
    title: str
    _layout_factory: Callable[[Sequence[str]], StorageLayout]
    _independent_dims: bool

    def layout_for(self, query: QuerySpec) -> StorageLayout:
        """Build the scenario's layout for one query's tables."""
        return self._layout_factory(query.table_names())

    def groups_for(
        self, layout: StorageLayout
    ) -> tuple[VariationGroup, ...]:
        """Variation groups: which costs drift independently."""
        if self._independent_dims:
            return layout.independent_groups()
        return layout.variation_groups()

    def region(self, layout: StorageLayout, delta: float) -> FeasibleRegion:
        """The feasible cost region at error level ``delta``."""
        return FeasibleRegion(
            layout.center_costs(), delta, self.groups_for(layout)
        )

    def resource_count(self, query: QuerySpec) -> int:
        """Effective resource count as the paper states it.

        3 for ``shared``; ``2k + 2`` for ``split``; ``k + 2`` for
        ``colocated`` (k = number of distinct tables).
        """
        k = len(query.table_names())
        if self.key == "shared":
            return 3
        if self.key == "split":
            return 2 * k + 2
        return k + 2


_SCENARIOS = {
    "shared": Scenario(
        key="shared",
        figure="Figure 5",
        title="All tables and indexes on the same device",
        _layout_factory=StorageLayout.shared_device,
        _independent_dims=True,
    ),
    "split": Scenario(
        key="split",
        figure="Figure 6",
        title="Each table and each index group on its own device",
        _layout_factory=StorageLayout.per_table_and_index,
        _independent_dims=False,
    ),
    "colocated": Scenario(
        key="colocated",
        figure="Figure 7",
        title="One device per table with its indexes",
        _layout_factory=StorageLayout.per_table_with_indexes,
        _independent_dims=False,
    ),
}


def scenario(key: str) -> Scenario:
    """Look up a scenario by key (``shared``/``split``/``colocated``)."""
    try:
        return _SCENARIOS[key]
    except KeyError:
        raise KeyError(
            f"unknown scenario {key!r}; expected one of {SCENARIO_KEYS}"
        ) from None


def all_scenarios() -> tuple[Scenario, ...]:
    return tuple(_SCENARIOS[key] for key in SCENARIO_KEYS)
