"""Shared cost-sweep kernels for the experiment modules.

Every experiment ultimately answers the same inner question many times:
*which candidate plan is optimal at this cost vector, and at what
cost?*  This module is the one place that question is answered, so the
figure, expected-regret and census experiments all go through the same
two code paths:

* the **dense kernel** — one ``C @ U.T`` matrix product plus a row-wise
  argmin (exact, lowest-index tie-break);
* the **plan index** — the sublinear conic point-location cascade of
  :mod:`repro.core.planindex`, used automatically once a candidate set
  is large enough for the index to activate.  Index answers are
  bit-identical to the dense argmin (ambiguous rows fall back to the
  dense kernel internally), so switching paths never changes results.

Winner *totals* are always recomputed as exact per-winner dot products
(`einsum` over the selected rows), never read out of the dense product,
so both paths report bitwise identical costs.
"""

from __future__ import annotations

import numpy as np

from ..core.feasible import FeasibleRegion
from ..core.planindex import PlanIndex, dense_owner_batch
from ..obs.decisions import DECISIONS
from ..optimizer.parametric import CandidateSet

__all__ = [
    "plan_index_for",
    "sweep_winners",
    "sweep_optimal_totals",
    "monte_carlo_shares",
]

#: Rows per Monte-Carlo chunk (bounds peak memory of the sweeps).
MC_CHUNK = 4096


def plan_index_for(candidates: CandidateSet) -> PlanIndex | None:
    """The candidate set's plan index if it is active, else ``None``.

    ``None`` means "use the dense kernel": small candidate sets never
    pay index overhead, and ``REPRO_NO_PLAN_INDEX=1`` disables the
    index everywhere at once.
    """
    index = candidates.plan_index()
    return index if index.active else None


def sweep_winners(
    matrix: np.ndarray,
    costs: np.ndarray,
    index: PlanIndex | None = None,
    reference: "int | np.ndarray | None" = None,
) -> np.ndarray:
    """Winning plan row per cost row (lowest index on ties).

    Exactly ``argmin(costs @ matrix.T, axis=1)`` on both paths; the
    index path is just sublinear in ``len(matrix)``.

    With ``--decisions`` the dense kernel is taken regardless of the
    index (margins and plane distances need every rival's total, which
    the pruning cascade never materializes) and the totals matrix is
    handed to :data:`~repro.obs.decisions.DECISIONS` for margin and
    plane-distance extraction — no second kernel pass.  ``reference``
    (the plan a non-drifted optimizer would pick) enables wrong-choice
    accounting.  Winners are bit-identical either way.
    """
    if DECISIONS.enabled:
        with np.errstate(invalid="ignore"):
            totals = costs @ matrix.T
            winners = np.argmin(totals, axis=1)
        DECISIONS.observe_batch(
            matrix, costs, totals, winners,
            reference=reference,
            path=(
                "dense" if index is None or not index.active
                else "dense_capture"
            ),
        )
        return winners
    if index is not None and index.active:
        return index.owner_batch(costs)
    return dense_owner_batch(matrix, costs)


def sweep_optimal_totals(
    matrix: np.ndarray,
    costs: np.ndarray,
    index: PlanIndex | None = None,
    reference: "int | np.ndarray | None" = None,
) -> tuple[np.ndarray, np.ndarray]:
    """``(winners, totals)`` per cost row.

    ``totals[r]`` is the exact dot product ``matrix[winners[r]] .
    costs[r]`` — not the (block-rounded) matrix-product entry — so the
    reported optimum is bitwise independent of which path answered.
    """
    winners = sweep_winners(matrix, costs, index, reference)
    totals = np.einsum(
        "rd,rd->r", costs, matrix[winners], optimize=True
    )
    return winners, totals


def monte_carlo_shares(
    matrix: np.ndarray,
    region: FeasibleRegion,
    rng: np.random.Generator,
    n_samples: int,
    index: PlanIndex | None = None,
    reference: "int | None" = None,
) -> np.ndarray:
    """Monte-Carlo share of the feasible region each plan rules.

    Log-uniform sampling per variation group (the region's natural
    measure), chunked so memory stays bounded; the shares of all plans
    sum to 1.  ``reference`` is forwarded to the decision log so
    ``--decisions`` runs can count wrong choices per probe.
    """
    if n_samples <= 0:
        raise ValueError("n_samples must be positive")
    counts = np.zeros(matrix.shape[0], dtype=np.int64)
    remaining = n_samples
    while remaining > 0:
        take = min(remaining, MC_CHUNK)
        samples = region.sample_matrix(rng, take)
        winners = sweep_winners(matrix, samples, index, reference)
        counts += np.bincount(winners, minlength=len(counts))
        remaining -= take
    return counts / n_samples
