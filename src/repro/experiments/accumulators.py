"""Streaming accumulators for reducers that never hold all results.

The streaming-reducer protocol (:mod:`repro.experiments.engine`) feeds
task results one at a time, in task-index order, into an accumulator.
For a million-query census the accumulator must be *O(1) in the number
of tasks*, picklable (it is checkpointed to the run journal), and
*deterministic*: absorbing the same results in the same order must
produce bit-identical state regardless of ``--jobs``, platform or
``PYTHONHASHSEED``.  This module supplies the three building blocks
every large sweep needs:

* :class:`WelfordMoments` — streaming mean/variance/min/max via
  Welford's update, merged across checkpoint shards with Chan's
  parallel formula;
* :class:`DecadeHistogram` — log10-bucketed counts with approximate
  quantiles, for heavy-tailed quantities (regret factors span orders
  of magnitude);
* :class:`ReservoirSampler` — a *bottom-k by seeded stable hash*
  reservoir.  Unlike classic reservoir sampling it is order-independent
  and merge-associative: the keep/drop decision of an item depends
  only on ``(seed, key)``, never on how many items came before it, so
  any split of the stream merges to the same sample.

All three support ``merge`` with associativity properties pinned by
``tests/experiments/test_prop_accumulators.py``.
"""

from __future__ import annotations

import hashlib
import math
import struct
from dataclasses import dataclass, field
from typing import Any, Iterable

__all__ = [
    "CountHistogram",
    "DecadeHistogram",
    "ReservoirSampler",
    "WelfordMoments",
    "stable_hash64",
]


def stable_hash64(seed: int, key: Any) -> int:
    """A 64-bit hash of ``(seed, key)`` stable across runs/platforms.

    Built on BLAKE2b rather than Python's ``hash()`` (which is
    randomised per process via ``PYTHONHASHSEED`` for str/bytes).
    ``key`` is hashed through its ``repr`` — fine for the ints, strs
    and small tuples reservoir keys are made of.
    """
    digest = hashlib.blake2b(
        repr(key).encode(), digest_size=8,
        salt=struct.pack("<q", seed & 0x7FFFFFFFFFFFFFFF)[:8],
    ).digest()
    return int.from_bytes(digest, "little")


@dataclass
class WelfordMoments:
    """Streaming count/mean/variance/min/max of one scalar series."""

    count: int = 0
    mean: float = 0.0
    #: Sum of squared deviations from the running mean (M2).
    m2: float = 0.0
    min: float = math.inf
    max: float = -math.inf

    def add(self, value: float) -> None:
        value = float(value)
        self.count += 1
        delta = value - self.mean
        self.mean += delta / self.count
        self.m2 += delta * (value - self.mean)
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "WelfordMoments") -> None:
        """Chan et al.'s parallel combination of two moment shards."""
        if other.count == 0:
            return
        if self.count == 0:
            self.count = other.count
            self.mean = other.mean
            self.m2 = other.m2
            self.min = other.min
            self.max = other.max
            return
        total = self.count + other.count
        delta = other.mean - self.mean
        self.m2 = (
            self.m2 + other.m2
            + delta * delta * self.count * other.count / total
        )
        self.mean += delta * other.count / total
        self.count = total
        self.min = min(self.min, other.min)
        self.max = max(self.max, other.max)

    @property
    def variance(self) -> float:
        """Population variance (0 until two values arrived)."""
        return self.m2 / self.count if self.count > 1 else 0.0

    @property
    def stddev(self) -> float:
        return math.sqrt(max(self.variance, 0.0))


@dataclass
class CountHistogram:
    """Exact counts of a small-cardinality integer quantity.

    Used for the candidate-set-size distribution: sizes are small
    integers, so exact counts are cheap and merge is plain addition.
    """

    counts: dict[int, int] = field(default_factory=dict)

    def add(self, value: int, n: int = 1) -> None:
        value = int(value)
        self.counts[value] = self.counts.get(value, 0) + n

    def merge(self, other: "CountHistogram") -> None:
        for value, n in other.counts.items():
            self.add(value, n)

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def quantile(self, q: float) -> int:
        """The smallest value whose cumulative count reaches ``q``."""
        total = self.total
        if total == 0:
            return 0
        target = q * total
        seen = 0
        for value in sorted(self.counts):
            seen += self.counts[value]
            if seen >= target:
                return value
        return max(self.counts)

    def items(self) -> list[tuple[int, int]]:
        return sorted(self.counts.items())


@dataclass
class DecadeHistogram:
    """log10-bucketed counts for heavy-tailed positive quantities.

    Bucket ``b`` holds values in ``[10^(b/bins_per_decade),
    10^((b+1)/bins_per_decade))``; non-positive and sub-``floor``
    values land in the floor bucket.  Approximate quantiles come back
    as the geometric midpoint of the selected bucket — accurate to a
    factor of ``10^(1/bins_per_decade)``, plenty for regime curves.
    """

    bins_per_decade: int = 10
    floor: float = 1e-12
    counts: dict[int, int] = field(default_factory=dict)

    def _bucket(self, value: float) -> int:
        value = float(value)
        if not value > self.floor:
            value = self.floor
        return math.floor(math.log10(value) * self.bins_per_decade)

    def add(self, value: float, n: int = 1) -> None:
        bucket = self._bucket(value)
        self.counts[bucket] = self.counts.get(bucket, 0) + n

    def add_many(self, values: Iterable[float]) -> None:
        for value in values:
            self.add(value)

    def merge(self, other: "DecadeHistogram") -> None:
        if (
            other.bins_per_decade != self.bins_per_decade
            or other.floor != self.floor
        ):
            raise ValueError(
                "cannot merge decade histograms with different "
                "bucketing"
            )
        for bucket, n in other.counts.items():
            self.counts[bucket] = self.counts.get(bucket, 0) + n

    @property
    def total(self) -> int:
        return sum(self.counts.values())

    def quantile(self, q: float) -> float:
        """Geometric midpoint of the bucket holding quantile ``q``."""
        total = self.total
        if total == 0:
            return 0.0
        target = q * total
        seen = 0
        buckets = sorted(self.counts)
        for bucket in buckets:
            seen += self.counts[bucket]
            if seen >= target:
                break
        return 10 ** ((bucket + 0.5) / self.bins_per_decade)


@dataclass
class ReservoirSampler:
    """A bottom-k sample of a keyed stream, stable under any split.

    Keeps the ``k`` items whose :func:`stable_hash64` of ``(seed,
    key)`` is smallest.  The decision for an item depends only on its
    key, so absorbing a stream in any order — or merging shards of it
    in any grouping — yields exactly the same sample.  With distinct
    keys (task indices) the result is a uniform k-subset.
    """

    k: int = 64
    seed: int = 0
    #: ``(hash, key, payload)`` triples, kept sorted ascending by hash.
    items: list[tuple[int, Any, Any]] = field(default_factory=list)

    def add(self, key: Any, payload: Any = None) -> None:
        rank = stable_hash64(self.seed, key)
        if len(self.items) >= self.k and rank >= self.items[-1][0]:
            return
        entry = (rank, key, payload)
        lo, hi = 0, len(self.items)
        while lo < hi:
            mid = (lo + hi) // 2
            if self.items[mid][0] < rank:
                lo = mid + 1
            else:
                hi = mid
        self.items.insert(lo, entry)
        del self.items[self.k:]

    def merge(self, other: "ReservoirSampler") -> None:
        if other.k != self.k or other.seed != self.seed:
            raise ValueError(
                "cannot merge reservoirs with different k or seed"
            )
        for __, key, payload in other.items:
            self.add(key, payload)

    def sample(self) -> list[tuple[Any, Any]]:
        """The sampled ``(key, payload)`` pairs, ordered by hash rank."""
        return [(key, payload) for __, key, payload in self.items]
