"""Text/CSV rendering of experiment results.

The paper presents Figures 5-7 as log-log line plots; we render the
same series as text tables and CSV (one row per query, one column per
delta), plus summary blocks stating the claims each figure supports.
"""

from __future__ import annotations

import io
from typing import Sequence

from .usage_analysis import GeneratedCensus, UsageAnalysisResult
from .worst_case import FigureResult

__all__ = [
    "format_figure_table",
    "figure_to_csv",
    "format_figure_summary",
    "format_figure_chart",
    "format_census_table",
    "format_generated_census",
    "format_parameter_table",
]


def _format_gtc(value: float) -> str:
    if value >= 1e4:
        return f"{value:.2e}"
    return f"{value:.3g}"


def format_figure_table(result: FigureResult) -> str:
    """One row per query, one worst-case GTC column per delta."""
    header = ["query"] + [f"d={delta:g}" for delta in result.deltas]
    rows = [header]
    for curve in result.curves:
        rows.append(
            [curve.query_name]
            + [_format_gtc(point.gtc) for point in curve.curve.points]
        )
    widths = [
        max(len(row[i]) for row in rows) for i in range(len(header))
    ]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("-" * len(lines[0]))
    return "\n".join(lines)


def figure_to_csv(result: FigureResult) -> str:
    """CSV form of a figure (plot-ready series)."""
    buffer = io.StringIO()
    deltas = ",".join(f"{delta:g}" for delta in result.deltas)
    buffer.write(f"query,{deltas}\n")
    for curve in result.curves:
        gtcs = ",".join(f"{point.gtc:.6g}" for point in curve.curve.points)
        buffer.write(f"{curve.query_name},{gtcs}\n")
    return buffer.getvalue()


def format_figure_summary(result: FigureResult) -> str:
    """The claims a figure supports, as the paper states them."""
    census = result.growth_census()
    lines = [
        f"{result.figure}: storage scenario '{result.scenario_key}'",
        f"  queries:                 {len(result.curves)}",
        f"  constant curves:         {census.get('constant', 0)}"
        "  (Theorem 2 regime)",
        f"  quadratic curves:        {census.get('quadratic', 0)}"
        "  (Theorem 1 regime)",
        f"  intermediate curves:     {census.get('intermediate', 0)}",
        f"  max worst-case GTC:      {_format_gtc(result.max_final_gtc())}"
        f" at delta={result.deltas[-1]:g}",
    ]
    truncated = [c.query_name for c in result.curves if c.truncated]
    if truncated:
        lines.append(
            f"  truncated candidate sets: {', '.join(truncated)} "
            "(GTC values are lower bounds there)"
        )
    worst = max(result.curves, key=lambda c: c.final_gtc)
    lines.append(
        f"  most sensitive query:    {worst.query_name} "
        f"(GTC {_format_gtc(worst.final_gtc)})"
    )
    return "\n".join(lines)


def format_figure_chart(
    result: FigureResult,
    query_names: Sequence[str] | None = None,
    height: int = 16,
    width: int = 60,
) -> str:
    """ASCII log-log chart of worst-case GTC curves.

    The terminal rendition of the paper's figures: x is log(delta), y
    is log(GTC); each selected query gets a glyph.  Intended for quick
    inspection — the CSV output feeds real plotters.
    """
    import math

    curves = result.curves
    if query_names is not None:
        wanted = set(query_names)
        curves = [c for c in curves if c.query_name in wanted]
    if not curves:
        raise ValueError("no curves selected")
    glyphs = "ox+*#@%&$"
    deltas = result.deltas
    log_x_max = math.log10(max(deltas[-1], 10.0))
    y_max = max(max(c.curve.gtcs) for c in curves)
    log_y_max = max(math.log10(max(y_max, 10.0)), 1.0)
    grid = [[" "] * width for _ in range(height)]
    for index, curve in enumerate(curves):
        glyph = glyphs[index % len(glyphs)]
        for delta, gtc in zip(curve.curve.deltas, curve.curve.gtcs):
            x_fraction = math.log10(max(delta, 1.0)) / log_x_max
            y_fraction = math.log10(max(gtc, 1.0)) / log_y_max
            col = min(width - 1, int(x_fraction * (width - 1)))
            row = min(height - 1, int(y_fraction * (height - 1)))
            grid[height - 1 - row][col] = glyph
    lines = [f"log GTC (top = {y_max:.3g})"]
    for row in grid:
        lines.append("|" + "".join(row))
    lines.append("+" + "-" * width)
    lines.append(
        f" log delta (1 .. {deltas[-1]:g})   "
        + "  ".join(
            f"{glyphs[i % len(glyphs)]}={c.query_name}"
            for i, c in enumerate(curves)
        )
    )
    return "\n".join(lines)


def format_census_table(result: UsageAnalysisResult) -> str:
    """Section 8.2 census: complementary pair statistics per query."""
    header = [
        "query", "cands", "pairs", "compl", "near",
        "table", "acc-path", "temp", "bound", "init-share",
    ]
    rows = [header]
    for row in result.rows:
        bound = (
            "inf" if row.constant_bound == float("inf")
            else _format_gtc(row.constant_bound)
        )
        share = (
            "n/a" if row.initial_share != row.initial_share
            else f"{row.initial_share * 100:.1f}%"
        )
        rows.append(
            [
                row.query_name,
                str(row.n_candidates) + ("*" if row.truncated else ""),
                str(row.census.n_pairs),
                str(row.census.n_complementary),
                str(row.census.n_near_complementary),
                str(row.class_count("table")),
                str(row.class_count("access-path")),
                str(row.class_count("temp")),
                bound,
                share,
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(header))]
    lines = []
    for index, row in enumerate(rows):
        lines.append(
            "  ".join(cell.rjust(width) for cell, width in zip(row, widths))
        )
        if index == 0:
            lines.append("-" * len(lines[0]))
    lines.append("(* = candidate set truncated at the DP cell cap)")
    return "\n".join(lines)


def format_parameter_table(rows: Sequence[tuple[str, str]]) -> str:
    """Render the Section 7.3 system parameter table."""
    name_width = max(len(name) for name, __ in rows)
    lines = [f"{'Parameter Name'.ljust(name_width)}  Value"]
    lines.append("-" * (name_width + 7))
    for name, value in rows:
        lines.append(f"{name.ljust(name_width)}  {value}")
    return "\n".join(lines)


def format_generated_census(result: GeneratedCensus) -> str:
    """The generated-census report: population stats + regime curves.

    Every number is a deterministic function of the seeded stream, so
    this text (and its manifest digest) is bit-identical across
    serial and ``--jobs N`` runs.
    """
    lines = [
        f"generated census [{result.scenario_key}] · "
        f"{result.n_queries} queries · seed {result.seed}",
        "",
        "candidate-set size distribution:",
    ]
    size_cells = [
        f"{size}:{count}" for size, count in result.sizes.items()
    ]
    lines.append("  " + ("  ".join(size_cells) if size_cells else "-"))
    lines.append(
        f"  p50={result.sizes.quantile(0.5)}  "
        f"p90={result.sizes.quantile(0.9)}  "
        f"max={result.sizes.quantile(1.0)}  "
        f"truncated={result.truncated}"
    )
    lines.append("")
    lines.append(
        "fraction of cost space where the center choice is wrong:"
    )
    lines.append(
        f"  mean={result.wrong.mean * 100:.2f}%  "
        f"max={max(result.wrong.max, 0.0) * 100:.2f}%  "
        f"contested-queries={result.contested_fraction * 100:.1f}%"
    )
    lines.append("")
    lines.append("regret regimes (stale plan vs drift level):")
    header = (
        f"  {'delta':>7}  {'mean':>7}  {'p95':>8}  {'max':>9}  "
        f"{'wrong':>6}  {'bound d^2':>9}"
    )
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for curve in result.regimes:
        lines.append(
            f"  {curve.delta:>7g}  {curve.regret.mean:>7.3f}  "
            f"{curve.regret_hist.quantile(0.95):>8.3g}  "
            f"{curve.regret.max:>9.3g}  "
            f"{curve.wrong_fraction * 100:>5.1f}%  "
            f"{curve.bound:>9g}"
        )
    if result.worst:
        lines.append("")
        lines.append("most contested queries (wrong-fraction, index):")
        lines.append(
            "  " + "  ".join(
                f"G{index}:{fraction * 100:.1f}%"
                for fraction, index in result.worst
            )
        )
    return "\n".join(lines)
