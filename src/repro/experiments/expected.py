"""Expected-case sensitivity: average regret under random drift.

The paper characterises the *worst case* (Observation 2 vertex sweeps).
A natural companion question for capacity planning: if storage costs
drift randomly — each device's multiplier log-uniform in
``[1/delta, delta]`` — what regret does the stale default-cost plan
incur *on average*, and how often is it still optimal?

This is a Monte-Carlo experiment over the same feasible regions and
candidate plan sets as the figures, so worst-case and expected-case
results are directly comparable (expected <= worst always; the gap
shows how adversarial the vertex worst case is).
"""

from __future__ import annotations

import argparse
from dataclasses import dataclass
from typing import Mapping

import numpy as np

from ..catalog.statistics import Catalog
from ..obs.decisions import DECISIONS
from ..obs.metrics import METRICS
from ..obs.trace import span
from ..optimizer.config import DEFAULT_PARAMETERS, SystemParameters
from ..optimizer.plancache import PlanCache, cached_candidate_plans
from ..optimizer.query import QuerySpec
from .engine import Experiment, RunContext, register_experiment, run_experiment
from .scenarios import Scenario, scenario
from .sweeps import MC_CHUNK, plan_index_for, sweep_optimal_totals

__all__ = [
    "ExpectedRegret",
    "ExpectedParams",
    "ExpectedExperiment",
    "run_expected_regret",
    "format_expected_table",
]


@dataclass
class ExpectedRegret:
    """Monte-Carlo regret statistics for one query."""

    query_name: str
    scenario_key: str
    delta: float
    n_samples: int
    mean_gtc: float
    median_gtc: float
    p95_gtc: float
    max_sampled_gtc: float
    #: Fraction of drift samples where the stale plan is still optimal.
    still_optimal_fraction: float
    n_candidates: int
    truncated: bool


def analyze_expected_regret(
    query: QuerySpec,
    catalog: Catalog,
    config: Scenario,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    n_samples: int = 2000,
    cell_cap: int | None = 64,
    seed: int = 0,
    cache: PlanCache | None = None,
) -> ExpectedRegret:
    """Sample log-uniform drifts and measure the stale plan's regret."""
    with span(
        "expected.query", query=query.name, scenario=config.key,
        samples=n_samples, seed=seed,
    ) as current:
        layout = config.layout_for(query)
        region = config.region(layout, delta)
        candidates = cached_candidate_plans(
            query, catalog, params, layout, region, cell_cap=cell_cap,
            cache=cache, scenario_key=config.key,
        )
        matrix = candidates.usage_matrix
        index = plan_index_for(candidates)
        initial_index = candidates.initial_plan_index()
        initial_row = matrix[initial_index]
        rng = np.random.default_rng(seed)
        gtcs = np.empty(n_samples)
        optimal_hits = 0
        position = 0
        while position < n_samples:
            take = min(n_samples - position, MC_CHUNK)
            samples = region.sample_matrix(rng, take)
            with DECISIONS.scoped(f"expected:{query.name}"):
                __, best = sweep_optimal_totals(
                    matrix, samples, index, reference=initial_index
                )
            stale = samples @ initial_row
            gtcs[position:position + take] = stale / best
            optimal_hits += int((stale <= best * (1 + 1e-9)).sum())
            position += take
        current.set(candidates=len(candidates))
    METRICS.counter("expected.samples_total").inc(n_samples)
    METRICS.histogram("expected.gtc").observe_many(gtcs)
    METRICS.histogram(f"expected.gtc[{query.name}]").observe_many(gtcs)
    return ExpectedRegret(
        query_name=query.name,
        scenario_key=config.key,
        delta=delta,
        n_samples=n_samples,
        mean_gtc=float(gtcs.mean()),
        median_gtc=float(np.median(gtcs)),
        p95_gtc=float(np.percentile(gtcs, 95)),
        max_sampled_gtc=float(gtcs.max()),
        still_optimal_fraction=optimal_hits / n_samples,
        n_candidates=len(candidates),
        truncated=candidates.truncated,
    )


@dataclass(frozen=True)
class ExpectedParams:
    """Everything that determines one expected-regret run (picklable)."""

    scenario_key: str
    delta: float = 100.0
    n_samples: int = 2000
    cell_cap: int | None = 64
    seed: int = 0


@register_experiment
class ExpectedExperiment(Experiment):
    """Monte-Carlo expected regret, one task per query."""

    name = "expected"
    help = "Monte-Carlo expected regret under random drift"
    params_type = ExpectedParams

    def add_arguments(self, parser: argparse.ArgumentParser) -> None:
        parser.add_argument("--delta", type=float, default=100.0)
        parser.add_argument("--samples", type=int, default=2000)

    def params_from_args(self, args: argparse.Namespace) -> ExpectedParams:
        return ExpectedParams(
            scenario_key=args.scenario, delta=args.delta,
            n_samples=args.samples,
        )

    def seeds(self, params: ExpectedParams) -> dict:
        return {"monte_carlo": params.seed}

    def plan_tasks(
        self, ctx: RunContext, params: ExpectedParams
    ) -> list[QuerySpec]:
        return list(ctx.queries.values())

    def run_task(
        self, ctx: RunContext, params: ExpectedParams, task: QuerySpec
    ) -> ExpectedRegret:
        return analyze_expected_regret(
            task, ctx.catalog, scenario(params.scenario_key), ctx.params,
            params.delta, params.n_samples, params.cell_cap, params.seed,
            cache=ctx.cache,
        )

    # -- streaming reducer: the result is the per-query row list ----
    def make_accumulator(
        self, ctx: RunContext, params: ExpectedParams
    ) -> list:
        return []

    def absorb(
        self, ctx: RunContext, params: ExpectedParams, acc: list,
        task: QuerySpec, result: ExpectedRegret,
    ) -> list:
        acc.append(result)
        return acc

    def finalize(
        self, ctx: RunContext, params: ExpectedParams, acc: list
    ) -> list:
        return acc

    def render(
        self, ctx: RunContext, params: ExpectedParams, reduced: list
    ) -> str:
        return format_expected_table(reduced) + "\n"

    def digest_payloads(
        self, ctx: RunContext, params: ExpectedParams, reduced: list
    ) -> dict[str, str]:
        return {"expected_table": format_expected_table(reduced)}


def run_expected_regret(
    scenario_key: str,
    catalog: Catalog | None = None,
    queries: Mapping[str, QuerySpec] | None = None,
    params: SystemParameters = DEFAULT_PARAMETERS,
    delta: float = 100.0,
    n_samples: int = 2000,
    cell_cap: int | None = 64,
    seed: int = 0,
    jobs: int = 1,
    cache: PlanCache | None = None,
    scale: float = 100.0,
) -> list[ExpectedRegret]:
    """Expected-regret analysis over a workload (engine wrapper).

    Each query's sampling uses its own ``seed``-derived generator, so
    results are independent of ``jobs`` and of query order.
    """
    ctx = RunContext(
        scale=scale, catalog=catalog, queries=queries,
        params=params, cache=cache, jobs=jobs,
    )
    return run_experiment(
        "expected",
        ExpectedParams(
            scenario_key=scenario_key, delta=delta, n_samples=n_samples,
            cell_cap=cell_cap, seed=seed,
        ),
        ctx,
    )


def format_expected_table(rows: list[ExpectedRegret]) -> str:
    """Text table of the Monte-Carlo regret statistics."""
    header = (
        f"{'query':>6}  {'mean':>8}  {'median':>8}  {'p95':>9}  "
        f"{'max':>10}  {'still-opt':>9}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row.query_name:>6}  {row.mean_gtc:8.3f}  "
            f"{row.median_gtc:8.3f}  {row.p95_gtc:9.3f}  "
            f"{row.max_sampled_gtc:10.3g}  "
            f"{row.still_optimal_fraction * 100:8.1f}%"
        )
    return "\n".join(lines)
