"""Executor correctness + cost-model validation tests.

These close the loop the paper could not: the optimizer's predicted
usage (pages, seeks, cardinalities) is checked against metered
execution on generated data.
"""

import pytest

from repro.catalog import build_tpch_catalog
from repro.dbgen import generate_tpch
from repro.executor import ColumnCondition, PlanExecutor, StorageEngine
from repro.optimizer import (
    DEFAULT_PARAMETERS,
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
    optimize_scalar,
)
from repro.optimizer.plans import (
    HashJoinNode,
    IndexProbeNode,
    IndexScanNode,
    NestedLoopJoinNode,
    TableScanNode,
)
from repro.storage import ObjectKey, StorageLayout

SF = 0.01


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(SF)


@pytest.fixture(scope="module")
def data():
    return generate_tpch(SF, seed=3)


def _engine(data, catalog, pool=200_000):
    return StorageEngine(data, catalog, bufferpool_pages=pool)


def _lp_query():
    """LINEITEM-PART with a one-month shipdate window (Q14 shape)."""
    return QuerySpec(
        name="q14ish",
        tables=(TableRef("L", "LINEITEM"), TableRef("P", "PART")),
        joins=(JoinPredicate("L", "L_PARTKEY", "P", "P_PARTKEY"),),
        predicates=(LocalPredicate("L", 30 / 2526, "L_SHIPDATE"),),
    )


_L_CONDITIONS = {
    "L": [ColumnCondition("L", "L_SHIPDATE", "between", (100, 129))]
}


class TestScanCorrectness:
    def test_table_scan_reads_every_page_once(self, data, catalog):
        engine = _engine(data, catalog)
        query = QuerySpec("scan", (TableRef("P", "PART"),))
        executor = PlanExecutor(engine, catalog, query)
        result = executor.run(TableScanNode("P", "PART"))
        assert result.rows == data.row_count("PART")
        key = ObjectKey.table("PART")
        assert result.io.pages(key) == engine.n_pages("PART")
        # One initial seek, everything else sequential.
        assert result.io.seeks(key) <= 1

    def test_scan_filters_rows(self, data, catalog):
        engine = _engine(data, catalog)
        query = QuerySpec(
            "scanf",
            (TableRef("P", "PART"),),
            predicates=(LocalPredicate("P", 0.1, "P_SIZE"),),
        )
        conditions = {"P": [ColumnCondition("P", "P_SIZE", "<=", 5)]}
        executor = PlanExecutor(engine, catalog, query, conditions)
        result = executor.run(TableScanNode("P", "PART"))
        truth = int((data.column("PART", "P_SIZE") <= 5).sum())
        assert result.rows == truth

    def test_index_scan_matches_table_scan_semantics(self, data, catalog):
        query = QuerySpec(
            "ix",
            (TableRef("L", "LINEITEM"),),
            predicates=(LocalPredicate("L", 0.01, "L_SHIPDATE"),),
        )
        engine_a = _engine(data, catalog)
        scan = PlanExecutor(
            engine_a, catalog, query, _L_CONDITIONS
        ).run(TableScanNode("L", "LINEITEM"))
        engine_b = _engine(data, catalog)
        index = PlanExecutor(
            engine_b, catalog, query, _L_CONDITIONS
        ).run(
            IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE")
        )
        assert index.rows == scan.rows
        assert set(
            index.relation.columns["L"].tolist()
        ) == set(scan.relation.columns["L"].tolist())

    def test_index_only_scan_reads_no_data_pages(self, data, catalog):
        query = QuerySpec(
            "ixo",
            (TableRef("L", "LINEITEM"),),
            predicates=(LocalPredicate("L", 0.01, "L_SHIPDATE"),),
        )
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query, _L_CONDITIONS)
        result = executor.run(
            IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE", True)
        )
        assert result.io.pages(ObjectKey.table("LINEITEM")) == 0
        assert result.io.pages(ObjectKey.index("LINEITEM")) > 0


class TestJoinCorrectness:
    def _truth(self, data):
        ship = data.column("LINEITEM", "L_SHIPDATE")
        mask = (ship >= 100) & (ship <= 129)
        return int(mask.sum())  # FK join to PART preserves count

    def test_hash_join_count(self, data, catalog):
        query = _lp_query()
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query, _L_CONDITIONS)
        plan = HashJoinNode(
            TableScanNode("L", "LINEITEM"), TableScanNode("P", "PART")
        )
        assert executor.run(plan).rows == self._truth(data)

    def test_index_nested_loop_count_matches_hash_join(
        self, data, catalog
    ):
        query = _lp_query()
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query, _L_CONDITIONS)
        plan = NestedLoopJoinNode(
            IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE"),
            IndexProbeNode("P", "PART", "P_PK", "P_PARTKEY"),
        )
        assert executor.run(plan).rows == self._truth(data)

    def test_rescan_join_semantics(self, data, catalog):
        query = QuerySpec(
            "resc",
            (TableRef("S", "SUPPLIER"), TableRef("N", "NATION")),
            joins=(
                JoinPredicate("S", "S_NATIONKEY", "N", "N_NATIONKEY"),
            ),
        )
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query)
        plan = NestedLoopJoinNode(
            TableScanNode("S", "SUPPLIER"), TableScanNode("N", "NATION")
        )
        result = executor.run(plan)
        assert result.rows == data.row_count("SUPPLIER")
        # NATION fits in one page: the rescans hit the buffer pool.
        assert result.io.pages(ObjectKey.table("NATION")) == 1


class TestCostModelValidation:
    """Optimizer estimates vs measured execution (the repro's LSQ/EX2
    style sanity anchor)."""

    def test_cardinality_estimate_close(self, data, catalog):
        query = _lp_query()
        layout = StorageLayout.shared_device(query.table_names())
        plan = optimize_scalar(
            query, catalog, DEFAULT_PARAMETERS, layout,
            layout.center_costs(),
        )
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query, _L_CONDITIONS)
        result = executor.run(plan.node)
        assert result.rows == pytest.approx(plan.rows, rel=0.25)

    def test_table_scan_pages_match_estimate(self, data, catalog):
        """The cost model's page count equals the metered scan."""
        from repro.optimizer.operators import CostModel

        costs = CostModel(catalog, DEFAULT_PARAMETERS)
        estimate = costs.table_scan("LINEITEM", 0, 1.0)
        est_pages = estimate.account.io[ObjectKey.table("LINEITEM")][1]
        engine = _engine(data, catalog)
        query = QuerySpec("scan", (TableRef("L", "LINEITEM"),))
        result = PlanExecutor(engine, catalog, query).run(
            TableScanNode("L", "LINEITEM")
        )
        measured = result.io.pages(ObjectKey.table("LINEITEM"))
        assert measured == pytest.approx(est_pages, rel=0.05)

    def test_probe_io_within_factor_of_estimate(self, data, catalog):
        """INL-join index probe I/O within a small factor of the
        model's prediction (directional validation)."""
        from repro.optimizer.operators import CostModel

        query = _lp_query()
        engine = _engine(data, catalog)
        executor = PlanExecutor(engine, catalog, query, _L_CONDITIONS)
        plan = NestedLoopJoinNode(
            IndexScanNode("L", "LINEITEM", "L_SD", "L_SHIPDATE"),
            IndexProbeNode("P", "PART", "P_PK", "P_PARTKEY"),
        )
        result = executor.run(plan)
        ship = data.column("LINEITEM", "L_SHIPDATE")
        n_probes = int(((ship >= 100) & (ship <= 129)).sum())
        costs = CostModel(catalog, DEFAULT_PARAMETERS)
        account = costs.index_probes("PART", "P_PK", n_probes, 1.0)
        predicted = account.io[ObjectKey.table("PART")][1]
        measured = result.io.pages(ObjectKey.table("PART"))
        assert measured <= predicted * 3
        assert measured >= predicted / 3


def test_unknown_node_type_rejected(data, catalog):
    engine = _engine(data, catalog)
    query = QuerySpec("x", (TableRef("P", "PART"),))
    executor = PlanExecutor(engine, catalog, query)

    class FakeNode:
        pass

    with pytest.raises(TypeError):
        executor._eval(FakeNode())  # noqa: SLF001 - deliberate
