"""Tests for the CLOCK buffer pool."""

import pytest

from repro.executor.bufferpool import BufferPool


def test_miss_then_hit():
    pool = BufferPool(4)
    assert not pool.access(("t", 0))
    assert pool.access(("t", 0))
    assert pool.hits == 1
    assert pool.misses == 1


def test_capacity_validation():
    with pytest.raises(ValueError):
        BufferPool(0)


def test_eviction_when_full():
    pool = BufferPool(2)
    pool.access(("t", 0))
    pool.access(("t", 1))
    pool.access(("t", 2))  # evicts something
    assert len(pool) == 2
    resident = sum(pool.contains(("t", p)) for p in (0, 1, 2))
    assert resident == 2


def test_clock_second_chance():
    pool = BufferPool(2)
    pool.access(("t", 0))
    pool.access(("t", 1))
    # Miss: both bits get cleared during the sweep, page 0 (at the
    # hand) is evicted, page 2 loads with its bit set.
    pool.access(("t", 2))
    assert pool.contains(("t", 2)) and pool.contains(("t", 1))
    # Re-reference page 2; page 1's bit stays clear.
    pool.access(("t", 2))
    # Next miss must evict the unreferenced page 1 and spare page 2 —
    # the second chance.
    pool.access(("t", 3))
    assert pool.contains(("t", 2))
    assert pool.contains(("t", 3))
    assert not pool.contains(("t", 1))


def test_working_set_smaller_than_pool_always_hits():
    pool = BufferPool(10)
    for _ in range(5):
        for page in range(8):
            pool.access(("t", page))
    assert pool.misses == 8
    assert pool.hits == 4 * 8
    assert pool.hit_rate == pytest.approx(32 / 40)


def test_sequential_flood_evicts_cleanly():
    pool = BufferPool(4)
    for page in range(100):
        assert not pool.access(("t", page))
    assert len(pool) == 4


def test_reset_stats():
    pool = BufferPool(2)
    pool.access(("t", 0))
    pool.reset_stats()
    assert pool.hits == 0 and pool.misses == 0
    assert pool.hit_rate == 0.0


def test_distinct_objects_do_not_collide():
    pool = BufferPool(4)
    pool.access(("a", 0))
    assert not pool.access(("b", 0))
    assert pool.contains(("a", 0)) and pool.contains(("b", 0))
