"""Execute complex (multi-join, sort, aggregate) optimizer plans.

Runs optimizer-chosen plans for a Q3-shaped query end to end on
generated data and cross-checks semantics: every physical plan for the
same logical query must produce the same result cardinality.
"""

import numpy as np
import pytest

from repro.catalog import build_tpch_catalog
from repro.dbgen import generate_tpch
from repro.executor import ColumnCondition, PlanExecutor, StorageEngine
from repro.optimizer import (
    DEFAULT_PARAMETERS,
    JoinPredicate,
    LocalPredicate,
    QuerySpec,
    TableRef,
    enumerate_root_plans,
    optimize_scalar,
)
from repro.storage import StorageLayout

SF = 0.005


@pytest.fixture(scope="module")
def catalog():
    return build_tpch_catalog(SF)


@pytest.fixture(scope="module")
def data():
    return generate_tpch(SF, seed=21)


@pytest.fixture(scope="module")
def query():
    """Q3 shape with executable predicate equivalents."""
    return QuerySpec(
        name="q3ish",
        tables=(
            TableRef("C", "CUSTOMER"),
            TableRef("O", "ORDERS"),
            TableRef("L", "LINEITEM"),
        ),
        joins=(
            JoinPredicate("C", "C_CUSTKEY", "O", "O_CUSTKEY"),
            JoinPredicate("O", "O_ORDERKEY", "L", "L_ORDERKEY"),
        ),
        predicates=(
            LocalPredicate("C", 0.2, "C_MKTSEGMENT"),
            LocalPredicate("O", 1170 / 2406, "O_ORDERDATE"),
            # L_QUANTITY is uniform on 1..50 and independent of the
            # order date (unlike L_SHIPDATE, which dbgen derives from
            # it): quantity <= 25 keeps exactly half the lines.
            LocalPredicate("L", 0.5, "L_QUANTITY"),
        ),
        group_by=(("O", "O_ORDERKEY"),),
        order_by=(("O", "O_ORDERDATE"),),
    )


CONDITIONS = {
    "C": [ColumnCondition("C", "C_MKTSEGMENT", "=", 0)],
    "O": [ColumnCondition("O", "O_ORDERDATE", "<", 1170)],
    "L": [ColumnCondition("L", "L_QUANTITY", "<=", 25)],
}


def _truth(data):
    """Reference result computed directly with numpy."""
    customers = data.column("CUSTOMER", "C_CUSTKEY")[
        data.column("CUSTOMER", "C_MKTSEGMENT") == 0
    ]
    order_mask = (data.column("ORDERS", "O_ORDERDATE") < 1170) & np.isin(
        data.column("ORDERS", "O_CUSTKEY"), customers
    )
    orderkeys = data.column("ORDERS", "O_ORDERKEY")[order_mask]
    line_mask = (data.column("LINEITEM", "L_QUANTITY") <= 25) & np.isin(
        data.column("LINEITEM", "L_ORDERKEY"), orderkeys
    )
    groups = np.unique(
        data.column("LINEITEM", "L_ORDERKEY")[line_mask]
    )
    return int(line_mask.sum()), len(groups)


def test_default_plan_executes_correctly(catalog, data, query):
    layout = StorageLayout.shared_device(query.table_names())
    plan = optimize_scalar(
        query, catalog, DEFAULT_PARAMETERS, layout, layout.center_costs()
    )
    engine = StorageEngine(data, catalog, bufferpool_pages=300_000)
    result = PlanExecutor(engine, catalog, query, CONDITIONS).run(plan.node)
    assert result.rows == _truth(data)[1]


def test_all_candidate_plans_agree_on_semantics(catalog, data, query):
    """Every physical plan in the Pareto set computes the same answer —
    the executor-level equivalence check."""
    layout = StorageLayout.shared_device(query.table_names())
    plans, __ = enumerate_root_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, cell_cap=16
    )
    truth = _truth(data)[1]
    executed = 0
    for plan in plans[:6]:
        engine = StorageEngine(data, catalog, bufferpool_pages=300_000)
        result = PlanExecutor(
            engine, catalog, query, CONDITIONS
        ).run(plan.node)
        assert result.rows == truth, plan.signature
        executed += 1
    assert executed >= 2


def test_cardinality_estimate_in_right_ballpark(catalog, data, query):
    from repro.optimizer.selectivity import CardinalityModel

    model = CardinalityModel(query, catalog)
    estimate = model.output_rows()
    truth = _truth(data)[1]
    assert truth > 0
    # Selectivity independence + date approximations: within ~2.5x.
    assert truth / 2.5 <= estimate <= truth * 2.5
