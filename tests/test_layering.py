"""Import-layering contract: core -> optimizer -> experiments -> cli.

An AST-based stand-in for import-linter (no third-party dependency):
every intra-package import in ``src/repro`` must point *strictly
downward* in the layer ranking below.  A back-edge — e.g. the obs
layer importing from experiments, or optimizer importing cli — fails
with the offending file and import named.
"""

import ast
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

#: Layer rank per top-level package (or top-level module) of ``repro``.
#: An importer may only import from strictly lower-ranked layers (or
#: from inside its own package).  Rank ties are allowed only for
#: packages with no edges between them.
LAYER_RANK = {
    "obs": 0,
    "catalog": 0,
    "core": 1,
    "dbgen": 1,
    "storage": 2,
    "optimizer": 3,
    "sql": 4,
    "workloads": 4,
    "executor": 4,
    "experiments": 5,
    "serve": 6,
    "cli": 7,
    "__main__": 8,
}


def _layer_of(path: Path) -> str:
    """The repro-relative top package (or module stem) of a file."""
    relative = path.relative_to(SRC)
    if len(relative.parts) == 1:
        return relative.stem  # cli.py, __main__.py, __init__.py
    return relative.parts[0]


def _module_package(path: Path) -> list[str]:
    """The package a file's relative imports resolve against.

    ``repro/a/b.py`` lives in package ``repro.a``; ``repro/a/__init__.py``
    *is* package ``repro.a`` — same formula either way.
    """
    relative = path.relative_to(SRC)
    return ["repro", *relative.parts[:-1]]


def _imported_repro_modules(path: Path) -> list[str]:
    """Absolute ``repro.*`` module names imported anywhere in a file."""
    tree = ast.parse(path.read_text(), filename=str(path))
    package = _module_package(path)
    found = []
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.split(".")[0] == "repro":
                    found.append(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level == 0:
                if node.module and node.module.split(".")[0] == "repro":
                    found.append(node.module)
                continue
            base = package[: len(package) - (node.level - 1)]
            module = ".".join(base + ([node.module] if node.module else []))
            if module.split(".")[0] == "repro":
                found.append(module)
    return found


def _target_layer(module: str) -> str:
    parts = module.split(".")
    return parts[1] if len(parts) > 1 else ""


def test_every_layer_is_ranked():
    for path in sorted(SRC.rglob("*.py")):
        layer = _layer_of(path)
        if layer in ("__init__",):
            continue
        assert layer in LAYER_RANK, (
            f"{path} introduces unranked layer {layer!r}; "
            "add it to LAYER_RANK with a deliberate position"
        )


def test_no_upward_or_sideways_imports():
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        source_layer = _layer_of(path)
        # repro/__init__.py is the package root: it may see everything.
        if source_layer == "__init__":
            continue
        source_rank = LAYER_RANK[source_layer]
        for module in _imported_repro_modules(path):
            target_layer = _target_layer(module)
            if not target_layer or target_layer == "__init__":
                continue  # "from .. import __version__" etc.
            if target_layer == source_layer:
                continue  # intra-package imports are free
            target_rank = LAYER_RANK.get(target_layer)
            if target_rank is None:
                violations.append(
                    f"{path.relative_to(SRC)}: imports unranked "
                    f"layer {target_layer!r} ({module})"
                )
            elif target_rank >= source_rank:
                violations.append(
                    f"{path.relative_to(SRC)} (layer {source_layer}, "
                    f"rank {source_rank}) imports {module} (layer "
                    f"{target_layer}, rank {target_rank}) — back-edge"
                )
    assert not violations, "\n".join(violations)


def test_headline_chain_is_ordered():
    """The README's headline layering, spelled out explicitly."""
    chain = ["core", "optimizer", "experiments", "cli"]
    ranks = [LAYER_RANK[layer] for layer in chain]
    assert ranks == sorted(ranks)
    assert len(set(ranks)) == len(ranks)


def test_planindex_stays_in_core():
    """The plan-location index is core geometry: it lives in the core
    layer and may depend only on core itself and the obs toolkit (its
    scipy kd-tree is optional and gated, never a hard import)."""
    path = SRC / "core" / "planindex.py"
    assert path.exists(), "core/planindex.py moved — update the contract"
    for module in _imported_repro_modules(path):
        target = _target_layer(module)
        assert target in ("", "core", "obs", "__init__"), (
            f"core/planindex.py imports {module} — the index must not "
            "reach above the core layer"
        )
    source = path.read_text()
    assert "from scipy" not in source.replace(
        "    from scipy", ""
    ), "scipy must stay an optional (try/except, indented) import"


def test_obs_package_is_complete_and_bottom_ranked():
    """The observability toolkit lives at rank 0: anything may import
    it, it may import nothing above itself.  Pin its module roster so a
    new obs module is placed (and checked) deliberately."""
    modules = sorted(
        path.stem
        for path in (SRC / "obs").glob("*.py")
        if path.stem != "__init__"
    )
    assert modules == [
        "bench", "decisions", "export", "faults", "history", "logs",
        "manifest", "memprof", "metrics", "profile", "progress",
        "report", "timeseries", "trace",
    ]
    assert LAYER_RANK["obs"] == 0
    # No obs module may import another repro layer at all.
    for path in sorted((SRC / "obs").glob("*.py")):
        for module in _imported_repro_modules(path):
            target = _target_layer(module)
            assert target in ("", "obs", "__init__"), (
                f"obs/{path.name} imports {module} — the obs layer "
                "must stay dependency-free"
            )
