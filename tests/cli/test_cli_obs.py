"""CLI observability: manifests, metrics dumps, cache summaries, and
the ``repro report`` renderer."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, validate_manifest

FIGURE = [
    "figure", "shared", "--queries", "Q1", "--deltas", "2", "--csv",
]


def _manifest(path="run-manifest.json"):
    data = json.loads(Path(path).read_text())
    assert validate_manifest(data) == []
    return data


def test_figure_writes_valid_manifest(capsys):
    assert main(FIGURE) == 0
    manifest = _manifest()
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["command"] == "figure"
    assert manifest["config"]["queries"] == "Q1"
    assert manifest["catalog_digest"]
    assert "figure_csv" in manifest["result_digests"]
    assert manifest["metrics"]["counters"]["figure.queries_total"] == 1
    # No --trace: the span tree is omitted.
    assert manifest["trace"] is None
    assert manifest["timing"]["wall_seconds"] > 0


def test_trace_flag_records_span_tree(capsys):
    assert main(FIGURE + ["--trace"]) == 0
    trace = _manifest()["trace"]
    assert trace[0]["name"] == "cli.figure"
    names = {trace[0]["name"]}
    stack = list(trace[0]["children"])
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node["children"])
    assert {"parallel.task", "figure.query", "plancache.get"} <= names


def test_manifest_path_and_no_manifest_flags(tmp_path):
    target = tmp_path / "custom.json"
    assert main(FIGURE + ["--manifest", str(target)]) == 0
    assert target.exists()
    assert not Path("run-manifest.json").exists()

    target.unlink()
    assert main(FIGURE + ["--no-manifest"]) == 0
    assert not Path("run-manifest.json").exists()
    assert not target.exists()


def test_metrics_out_dumps_snapshot(tmp_path):
    out = tmp_path / "metrics.json"
    assert main(FIGURE + ["--metrics-out", str(out)]) == 0
    snapshot = json.loads(out.read_text())
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert snapshot["counters"]["figure.queries_total"] == 1


def test_cache_summary_on_stderr_not_stdout(capsys):
    main(FIGURE)
    cold = capsys.readouterr()
    assert "cache:" not in cold.out
    assert "misses" in cold.err
    main(FIGURE)
    warm = capsys.readouterr()
    assert "1 hits" in warm.err
    # --no-cache runs stay silent.
    main(FIGURE + ["--no-cache"])
    assert "cache:" not in capsys.readouterr().err


def test_identical_runs_have_identical_digests():
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    first, second = _manifest("a.json"), _manifest("b.json")
    assert first["result_digests"] == second["result_digests"]
    assert (
        first["metrics"]["counters"]["figure.queries_total"]
        == second["metrics"]["counters"]["figure.queries_total"]
    )


def test_report_renders_manifest(capsys):
    main(FIGURE + ["--trace"])
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "repro figure" in out
    assert "result digests:" in out
    assert "cli.figure" in out
    assert "figure.queries_total" in out
    assert "plan cache:" in out


def test_report_compares_two_manifests(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    capsys.readouterr()
    assert main(["report", "a.json", "b.json"]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out


def test_report_rejects_invalid_manifest(capsys):
    Path("bad.json").write_text(json.dumps({"schema_version": 1}))
    assert main(["report", "bad.json"]) == 1
    assert "invalid manifest" in capsys.readouterr().err


def test_report_missing_file_is_a_clean_error():
    with pytest.raises(SystemExit):
        main(["report", "no-such-file.json"])


def test_report_writes_no_manifest_itself(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    Path("run-manifest.json").unlink(missing_ok=True)
    main(["report", "a.json"])
    assert not Path("run-manifest.json").exists()
