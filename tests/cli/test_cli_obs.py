"""CLI observability: manifests, metrics dumps, cache summaries, and
the ``repro report`` renderer."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.obs import SCHEMA_VERSION, validate_manifest

FIGURE = [
    "figure", "shared", "--queries", "Q1", "--deltas", "2", "--csv",
]


def _manifest(path="run-manifest.json"):
    data = json.loads(Path(path).read_text())
    assert validate_manifest(data) == []
    return data


def test_figure_writes_valid_manifest(capsys):
    assert main(FIGURE) == 0
    manifest = _manifest()
    assert manifest["schema_version"] == SCHEMA_VERSION
    assert manifest["command"] == "figure"
    assert manifest["config"]["queries"] == "Q1"
    assert manifest["catalog_digest"]
    assert "figure_csv" in manifest["result_digests"]
    assert manifest["metrics"]["counters"]["figure.queries_total"] == 1
    # No --trace: the span tree is omitted.
    assert manifest["trace"] is None
    assert manifest["timing"]["wall_seconds"] > 0


def test_trace_flag_records_span_tree(capsys):
    assert main(FIGURE + ["--trace"]) == 0
    trace = _manifest()["trace"]
    assert trace[0]["name"] == "cli.figure"
    names = {trace[0]["name"]}
    stack = list(trace[0]["children"])
    while stack:
        node = stack.pop()
        names.add(node["name"])
        stack.extend(node["children"])
    assert {"parallel.task", "figure.query", "plancache.get"} <= names


def test_manifest_path_and_no_manifest_flags(tmp_path):
    target = tmp_path / "custom.json"
    assert main(FIGURE + ["--manifest", str(target)]) == 0
    assert target.exists()
    assert not Path("run-manifest.json").exists()

    target.unlink()
    assert main(FIGURE + ["--no-manifest"]) == 0
    assert not Path("run-manifest.json").exists()
    assert not target.exists()


def test_metrics_out_dumps_snapshot(tmp_path):
    out = tmp_path / "metrics.json"
    assert main(FIGURE + ["--metrics-out", str(out)]) == 0
    snapshot = json.loads(out.read_text())
    assert set(snapshot) == {"counters", "gauges", "histograms"}
    assert snapshot["counters"]["figure.queries_total"] == 1


def test_cache_summary_on_stderr_not_stdout(capsys):
    main(FIGURE)
    cold = capsys.readouterr()
    assert "cache:" not in cold.out
    assert "misses" in cold.err
    main(FIGURE)
    warm = capsys.readouterr()
    assert "1 hits" in warm.err
    # --no-cache runs stay silent.
    main(FIGURE + ["--no-cache"])
    assert "cache:" not in capsys.readouterr().err


def test_identical_runs_have_identical_digests():
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    first, second = _manifest("a.json"), _manifest("b.json")
    assert first["result_digests"] == second["result_digests"]
    assert (
        first["metrics"]["counters"]["figure.queries_total"]
        == second["metrics"]["counters"]["figure.queries_total"]
    )


def test_report_renders_manifest(capsys):
    main(FIGURE + ["--trace"])
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "repro figure" in out
    assert "result digests:" in out
    assert "cli.figure" in out
    assert "figure.queries_total" in out
    assert "plan cache:" in out


def test_report_compares_two_manifests(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    capsys.readouterr()
    assert main(["report", "a.json", "b.json"]) == 0
    out = capsys.readouterr().out
    assert "IDENTICAL" in out


def test_report_rejects_invalid_manifest(capsys):
    Path("bad.json").write_text(json.dumps({"schema_version": 1}))
    assert main(["report", "bad.json"]) == 1
    assert "invalid manifest" in capsys.readouterr().err


def test_report_missing_file_is_a_clean_error():
    with pytest.raises(SystemExit):
        main(["report", "no-such-file.json"])


def test_report_writes_no_manifest_itself(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    Path("run-manifest.json").unlink(missing_ok=True)
    main(["report", "a.json"])
    assert not Path("run-manifest.json").exists()


# ----------------------------------------------------------------------
# Trace Event export (--trace-out, report --export-trace)
# ----------------------------------------------------------------------
def test_trace_out_round_trips_manifest_phase_set(capsys):
    """The acceptance scenario: ``figure fig5 --trace --trace-out``
    yields a schema-valid Trace Event file whose phase set matches the
    manifest span tree, worker sub-trees included (``--jobs 2``)."""
    from repro.obs import (
        event_names,
        span_names,
        validate_trace_events,
    )

    assert main([
        "figure", "fig5", "--queries", "Q1,Q6", "--deltas", "2",
        "--csv", "--jobs", "2", "--trace", "--trace-out", "t.json",
    ]) == 0
    data = json.loads(Path("t.json").read_text())
    assert isinstance(data, list)
    assert validate_trace_events(data) == []
    trace = _manifest()["trace"]
    assert event_names(data) == span_names(trace)
    assert {"cli.figure", "parallel.task", "figure.query"} <= (
        event_names(data)
    )
    # Two worker tasks render on two distinct non-main tracks.
    task_tids = {
        e["tid"] for e in data
        if e.get("ph") == "X" and e["name"] == "parallel.task"
    }
    assert task_tids == {1, 2}


def test_trace_out_implies_trace(capsys):
    assert main(FIGURE + ["--trace-out", "t.json"]) == 0
    assert _manifest()["trace"] is not None
    assert Path("t.json").exists()


def test_report_export_trace(capsys):
    from repro.obs import validate_trace_events

    main(FIGURE + ["--trace"])
    capsys.readouterr()
    assert main([
        "report", "run-manifest.json", "--export-trace", "out.json",
    ]) == 0
    assert "trace events to out.json" in capsys.readouterr().out
    data = json.loads(Path("out.json").read_text())
    assert validate_trace_events(data) == []


def test_report_export_trace_without_span_tree_fails(capsys):
    main(FIGURE)  # no --trace
    capsys.readouterr()
    assert main([
        "report", "run-manifest.json", "--export-trace", "out.json",
    ]) == 1
    assert "rerun the command with --trace" in capsys.readouterr().err
    assert not Path("out.json").exists()


def test_report_export_trace_rejects_two_manifests(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    with pytest.raises(SystemExit):
        main(["report", "a.json", "b.json", "--export-trace", "o.json"])


# ----------------------------------------------------------------------
# Memory profiling (--memprof)
# ----------------------------------------------------------------------
def test_memprof_stamps_spans_and_report_renders_columns(capsys):
    assert main(FIGURE + ["--memprof"]) == 0
    trace = _manifest()["trace"]  # --memprof implies --trace
    root_attrs = trace[0]["attrs"]
    assert "mem_traced_peak_kb" in root_attrs
    assert "mem_rss_kb" in root_attrs
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "rss" in out and "py-peak" in out


def test_without_memprof_spans_carry_no_memory_attrs(capsys):
    assert main(FIGURE + ["--trace"]) == 0
    trace = _manifest()["trace"]
    assert "mem_traced_peak_kb" not in trace[0]["attrs"]


# ----------------------------------------------------------------------
# Live progress (--progress / --no-progress)
# ----------------------------------------------------------------------
def test_progress_flag_forces_meter_onto_stderr(capsys):
    assert main(FIGURE + ["--progress"]) == 0
    err = capsys.readouterr().err
    assert "1/1 tasks" in err
    assert "eta" in err


def test_progress_meter_silent_by_default_when_piped(capsys):
    assert main(FIGURE) == 0
    assert "tasks/s" not in capsys.readouterr().err
    assert main(FIGURE + ["--no-progress"]) == 0
    assert "tasks/s" not in capsys.readouterr().err


def test_progress_never_touches_stdout(capsys):
    assert main(FIGURE + ["--progress"]) == 0
    out = capsys.readouterr().out
    assert "tasks/s" not in out


# ----------------------------------------------------------------------
# repro bench
# ----------------------------------------------------------------------
def _bench_record(path, median):
    from repro.obs import build_bench_record, write_bench_record

    record = build_bench_record(
        "demo",
        {"test_sweep": {
            "median_seconds": median,
            "iqr_seconds": 0.01,
            "rounds": 3,
            "mean_seconds": median,
            "min_seconds": median * 0.9,
            "max_seconds": median * 1.1,
        }},
    )
    return write_bench_record(record, path)


def test_bench_renders_single_record(capsys):
    _bench_record("bench.json", 1.0)
    assert main(["bench", "bench.json"]) == 0
    out = capsys.readouterr().out
    assert "demo" in out
    assert "test_sweep" in out


def test_bench_self_comparison_exits_zero(capsys):
    _bench_record("bench.json", 1.0)
    assert main([
        "bench", "bench.json", "--compare", "bench.json",
    ]) == 0
    assert "OK" in capsys.readouterr().out


def test_bench_twofold_slowdown_exits_nonzero(capsys):
    _bench_record("base.json", 1.0)
    _bench_record("slow.json", 2.0)
    assert main([
        "bench", "slow.json", "--compare", "base.json",
    ]) == 1
    assert "REGRESSION" in capsys.readouterr().out


def test_bench_threshold_and_advisory_flags(capsys):
    _bench_record("base.json", 1.0)
    _bench_record("slow.json", 1.25)
    # 25% is within a 30% threshold…
    assert main([
        "bench", "slow.json", "--compare", "base.json",
        "--threshold", "0.3",
    ]) == 0
    # …but --advisory downgrades even a true regression to exit 0.
    assert main([
        "bench", "slow.json", "--compare", "base.json", "--advisory",
    ]) == 0
    assert "advisory mode" in capsys.readouterr().err


def test_bench_rejects_invalid_record(capsys):
    Path("bad.json").write_text(json.dumps({"benchmark": "x"}))
    with pytest.raises(SystemExit):
        main(["bench", "bad.json"])
    _bench_record("good.json", 1.0)
    with pytest.raises(SystemExit):
        main(["bench", "good.json", "--compare", "bad.json"])


def test_bench_writes_no_manifest(capsys):
    _bench_record("bench.json", 1.0)
    assert main(["bench", "bench.json"]) == 0
    assert not Path("run-manifest.json").exists()


# ----------------------------------------------------------------------
# Sampling profiler (--profile / --profile-out / --profile-hz)
# ----------------------------------------------------------------------
def test_profile_writes_speedscope_and_folded(capsys):
    from repro.obs import validate_speedscope

    assert main(FIGURE + ["--profile", "--profile-hz", "997"]) == 0
    err = capsys.readouterr().err
    assert "profile:" in err
    assert "speedscope.app" in err
    doc = json.loads(Path("profile.speedscope.json").read_text())
    assert validate_speedscope(doc) == []
    folded = Path("profile.folded.txt").read_text().splitlines()
    assert folded
    assert all(" " in line for line in folded)
    profile = _manifest()["profile"]
    assert profile is not None
    assert profile["hz"] == 997
    assert profile["samples"] > 0
    assert profile["top"]


def test_profile_out_implies_profile(tmp_path):
    target = tmp_path / "deep" / "p.speedscope.json"
    target.parent.mkdir()
    assert main(FIGURE + [
        "--profile-out", str(target), "--profile-hz", "997",
    ]) == 0
    assert target.exists()
    assert (tmp_path / "deep" / "p.folded.txt").exists()
    assert not Path("profile.speedscope.json").exists()


def test_profile_off_by_default(capsys):
    from repro.obs import PROFILER

    assert main(FIGURE) == 0
    assert _manifest()["profile"] is None
    assert not Path("profile.speedscope.json").exists()
    assert PROFILER.thread is None
    assert "profile:" not in capsys.readouterr().err


def test_profile_does_not_change_results(capsys):
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + [
        "--profile", "--profile-hz", "997", "--manifest", "b.json",
    ])
    plain, profiled = _manifest("a.json"), _manifest("b.json")
    assert profiled["result_digests"] == plain["result_digests"]


def test_profile_rejects_bad_hz():
    with pytest.raises(SystemExit):
        main(FIGURE + ["--profile", "--profile-hz", "0"])


# ----------------------------------------------------------------------
# Metric time series (--timeseries / --timeseries-interval)
# ----------------------------------------------------------------------
def test_timeseries_block_and_counter_tracks(capsys):
    from repro.obs import validate_trace_events

    assert main(FIGURE + [
        "--timeseries", "--timeseries-interval", "0.01",
        "--trace-out", "t.json",
    ]) == 0
    block = _manifest()["timeseries"]
    assert block is not None
    assert block["samples"] > 0
    assert block["interval_seconds"] == 0.01
    assert "figure.queries_total" in block["counters"]
    events = json.loads(Path("t.json").read_text())
    assert validate_trace_events(events) == []
    counter_names = {
        e["name"] for e in events if e.get("ph") == "C"
    }
    assert "figure.queries_total" in counter_names


def test_timeseries_off_by_default():
    assert main(FIGURE) == 0
    assert _manifest()["timeseries"] is None


def test_timeseries_rejects_bad_interval():
    with pytest.raises(SystemExit):
        main(FIGURE + ["--timeseries", "--timeseries-interval", "0"])


# ----------------------------------------------------------------------
# Perf history (--append-history) and the trend gate (bench trend)
# ----------------------------------------------------------------------
def _append_bench_history(median, hist="hist.jsonl"):
    _bench_record("record.json", median)
    assert main([
        "bench", "record.json", "--append-history", "--history", hist,
    ]) == 0


def test_bench_append_history_writes_entries(capsys):
    from repro.obs import load_history

    _append_bench_history(1.0)
    assert "history: appended 1 series point(s)" in (
        capsys.readouterr().err
    )
    (entry,) = load_history("hist.jsonl")
    assert entry["series"] == "bench:demo/test_sweep"
    assert entry["value_seconds"] == 1.0
    assert entry["source"] == "record.json"


def test_bench_trend_flat_history_is_ok(capsys):
    for median in (1.0, 1.01, 0.99, 1.0):
        _append_bench_history(median)
    capsys.readouterr()
    assert main(["bench", "trend", "--history", "hist.jsonl"]) == 0
    out = capsys.readouterr().out
    assert "bench:demo/test_sweep" in out
    assert "verdict: OK" in out


def test_bench_trend_flags_injected_regression(capsys):
    for median in (1.0, 1.01, 0.99, 2.0):
        _append_bench_history(median)
    capsys.readouterr()
    assert main(["bench", "trend", "--history", "hist.jsonl"]) == 1
    out = capsys.readouterr().out
    assert "verdict: REGRESSION" in out
    assert "2.00x" in out
    # --advisory downgrades the same verdict to exit 0.
    assert main([
        "bench", "trend", "--history", "hist.jsonl", "--advisory",
    ]) == 0
    assert "advisory mode" in capsys.readouterr().err


def test_bench_trend_series_filter_and_window(capsys):
    for median in (1.0, 1.0, 1.0, 2.0):
        _append_bench_history(median)
    capsys.readouterr()
    assert main([
        "bench", "trend", "--history", "hist.jsonl",
        "--series", "demo", "--window", "3",
    ]) == 1
    with pytest.raises(SystemExit):
        main([
            "bench", "trend", "--history", "hist.jsonl",
            "--series", "no-such-series",
        ])


def test_bench_trend_without_history_is_a_usage_error():
    with pytest.raises(SystemExit):
        main(["bench", "trend", "--history", "absent.jsonl"])


def test_report_append_history_records_phase_series(capsys):
    from repro.obs import load_history

    main(FIGURE + ["--trace"])
    capsys.readouterr()
    assert main([
        "report", "run-manifest.json", "--append-history",
        "--history", "hist.jsonl",
    ]) == 0
    assert "history: appended" in capsys.readouterr().err
    series = {e["series"] for e in load_history("hist.jsonl")}
    assert "manifest:figure/total" in series
    assert any(s.startswith("manifest:figure/") for s in series)


def test_report_append_history_rejects_two_manifests():
    main(FIGURE + ["--manifest", "a.json"])
    main(FIGURE + ["--manifest", "b.json"])
    with pytest.raises(SystemExit):
        main([
            "report", "a.json", "b.json", "--append-history",
            "--history", "hist.jsonl",
        ])


def test_bench_compare_verdict_names_provenance(capsys):
    _bench_record("base.json", 1.0)
    _bench_record("cur.json", 1.0)
    assert main([
        "bench", "cur.json", "--compare", "base.json",
    ]) == 0
    verdict = [
        line for line in capsys.readouterr().out.splitlines()
        if "OK" in line
    ]
    assert verdict
    assert any("git " in line for line in verdict)
    assert any("catalog " in line for line in verdict)


# ----------------------------------------------------------------------
# Plan-index reporting (summary line + dense-fallback epilogue)
# ----------------------------------------------------------------------
def test_report_plan_index_summary_zero_fallbacks(
    monkeypatch, capsys
):
    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "1")
    assert main(FIGURE) == 0
    # No fallbacks: the stderr epilogue stays silent.
    assert "fell back" not in capsys.readouterr().err
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "plan index:" in out
    assert "0 dense fallbacks (0.0%)" in out


def test_report_plan_index_fallbacks_warn_and_render(
    monkeypatch, capsys
):
    from repro.core import planindex

    monkeypatch.setenv("REPRO_PLAN_INDEX_MIN_PLANS", "1")
    original = planindex.PlanIndex._lookup_chunk

    def leaky(self, costs, out):
        original(self, costs, out)
        # Every probe reports a reason-coded dense fallback.
        return {"near_tie": len(costs), "invalid_probe": 0,
                "weak_certificate": 0}

    monkeypatch.setattr(planindex.PlanIndex, "_lookup_chunk", leaky)
    assert main(FIGURE) == 0
    err = capsys.readouterr().err
    assert "fell back to the dense kernel" in err
    assert "near-tie" in err  # the reason-coded breakdown
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "plan index:" in out
    assert "dense fallbacks" in out
    assert "0 dense fallbacks" not in out
    assert "fallback reasons: near-tie" in out


def test_report_without_plan_index_has_no_summary(capsys):
    assert main(FIGURE + ["--no-plan-index"]) == 0
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    assert "plan index:" not in capsys.readouterr().out
