import pytest


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI artefacts (cache, run manifests) out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))
    monkeypatch.chdir(tmp_path)
