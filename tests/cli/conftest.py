import pytest

from repro.obs import MEMPROF, PROGRESS


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI artefacts (cache, run manifests) out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))
    monkeypatch.chdir(tmp_path)


@pytest.fixture(autouse=True)
def _reset_obs_globals():
    """CLI runs mutate process-global observability state; restore it."""
    yield
    MEMPROF.disable()
    PROGRESS.configure(mode="auto", log_level="warning", stream=None)
