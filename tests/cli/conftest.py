import pytest

from repro.obs import DECISIONS, MEMPROF, PROFILER, PROGRESS, TIMESERIES


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep CLI artefacts (cache, manifests, history) out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))
    monkeypatch.setenv("REPRO_HISTORY_DIR", str(tmp_path / "history"))
    monkeypatch.chdir(tmp_path)


@pytest.fixture(autouse=True)
def _reset_obs_globals():
    """CLI runs mutate process-global observability state; restore it."""
    yield
    MEMPROF.disable()
    PROFILER.disable()
    PROFILER.reset()
    TIMESERIES.stop()
    TIMESERIES.reset()
    DECISIONS.disable()
    DECISIONS.reset()
    PROGRESS.configure(mode="auto", log_level="warning", stream=None)
