import pytest


@pytest.fixture(autouse=True)
def _isolated_cache(tmp_path, monkeypatch):
    """Keep the CLI's default candidate-set cache out of the repo."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "plan-cache"))
