"""The ``repro serve`` / ``repro loadgen`` subcommand shims."""

import json

import pytest

from repro.cli import build_parser, main


def _usage_error_line(capsys, argv):
    with pytest.raises(SystemExit) as excinfo:
        main(argv)
    assert excinfo.value.code == 2
    return capsys.readouterr().err.strip().splitlines()[-1]


def test_serve_parser_defaults():
    args = build_parser().parse_args(["serve"])
    assert args.host == "127.0.0.1"
    assert args.port == 8787
    assert args.workers == 1
    assert args.batch_window == 0.002
    assert args.max_batch == 1024
    assert args.quant_digits == 9
    assert args.warm_scenario == "split"
    assert args.reload_interval == 5.0


def test_loadgen_parser_defaults():
    args = build_parser().parse_args(["loadgen"])
    assert args.qps == 200.0
    assert args.duration == 5.0
    assert args.requests is None
    assert args.seed == 0
    assert args.queries == "Q1,Q6,Q14"
    assert args.connections == 16
    assert args.bench_out == "BENCH_serve.json"
    assert args.p99_gate is None


@pytest.mark.parametrize(
    "argv, fragment",
    [
        (["serve", "--workers", "0"], "--workers"),
        (["serve", "--port", "-1"], "--port"),
        (["serve", "--batch-window", "0"], "--batch-window"),
        (["serve", "--max-batch", "0"], "--max-batch"),
        (["serve", "--quant-digits", "0"], "--quant-digits"),
        (["serve", "--warm-scenario", "bogus"], "scenario"),
        (["loadgen", "--qps", "0"], "--qps"),
        (["loadgen", "--connections", "0"], "--connections"),
        (["loadgen", "--requests", "0"], "--requests"),
        (["loadgen", "--queries", ""], "--queries"),
        (["loadgen", "--scenario", "bogus"], "scenario"),
        (["loadgen", "--url", "not-a-url"], "--url"),
    ],
)
def test_usage_errors(capsys, argv, fragment):
    assert fragment in _usage_error_line(capsys, argv)


def test_loadgen_self_serve_end_to_end(capsys, tmp_path):
    bench_out = tmp_path / "BENCH_serve.json"
    code = main(
        [
            "loadgen", "--self-serve",
            "--queries", "Q6",
            "--qps", "400",
            "--requests", "12",
            "--seed", "5",
            "--connections", "4",
            "--verify-offline",
            "--p99-gate", "5.0",
            "--bench-out", str(bench_out),
            "--no-history",
        ]
    )
    captured = capsys.readouterr()
    assert code == 0
    assert "digest parity OK" in captured.out
    assert "p99 gate: OK" in captured.out
    record = json.loads(bench_out.read_text())
    assert record["benchmark"] == "serve"
    assert record["extras"]["requests"] == 12


def test_loadgen_decides_exactly_what_explain_prints(capsys):
    """The decision fields a loadgen probe receives must reproduce in
    the offline ``repro explain`` transcript for the same probe."""
    from repro.serve import CandidateStore, build_requests, decide_one

    store = CandidateStore(cache=None)
    (request,) = build_requests(
        store, ["Q6"], "split", count=1, seed=9, quant_digits=9
    )
    response = decide_one(
        store.entry("Q6", "split"), request["cost"]
    )

    code = main(
        [
            "explain", "Q6",
            "--scenario", "split",
            "--cost-vector",
            ",".join(repr(value) for value in request["cost"]),
        ]
    )
    assert code == 0
    transcript = capsys.readouterr().out
    assert (
        f"winner:    plan {response['winner']} "
        f"{response['winner_signature']}" in transcript
    )
    assert f"(total {response['winner_total']:.6g})" in transcript
    assert f"margin:    {response['margin']:.6g}" in transcript
    assert (
        f"normalized distance {response['plane_distance']:.6g}"
        in transcript
    )


def test_loadgen_honours_no_cache_and_cache_dir(tmp_path, capsys):
    cache_dir = tmp_path / "explicit-cache"
    code = main(
        [
            "loadgen", "--self-serve",
            "--queries", "Q6",
            "--qps", "400",
            "--requests", "4",
            "--warmup", "0",
            "--bench-out", "",
            "--no-history",
            "--cache-dir", str(cache_dir),
        ]
    )
    assert code == 0
    assert list(cache_dir.rglob("*")), "cache dir never written"

    capsys.readouterr()
    code = main(
        [
            "loadgen", "--self-serve",
            "--queries", "Q6",
            "--qps", "400",
            "--requests", "4",
            "--warmup", "0",
            "--bench-out", "",
            "--no-history",
            "--no-cache",
        ]
    )
    assert code == 0


def test_serve_help_lists_the_serving_flags(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["serve", "--help"])
    assert excinfo.value.code == 0
    text = capsys.readouterr().out
    for flag in (
        "--warm", "--batch-window", "--max-batch", "--workers",
        "--catalog", "--reload-interval", "--quant-digits",
        "--no-cache", "--cache-dir",
    ):
        assert flag in text


def test_top_level_help_names_the_decide_endpoint(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["--help"])
    assert excinfo.value.code == 0
    text = capsys.readouterr().out
    assert "/v1/decide" in text
    assert "loadgen" in text
