"""CLI resilience flags: fault injection, on-task-error, checkpoint,
resume, and their usage-error paths.

The autouse fixtures isolate the cache (and thus the journal root,
which lives under it) per test.
"""

import json
from pathlib import Path

import pytest

from repro.cli import main

FIGURE = [
    "figure", "shared", "--queries", "Q1", "--deltas", "2", "--csv",
]

#: At seed 9, task 0's first attempt of a raise:0.3 plan is injected
#: and its second attempt is clean — one retry recovers the run.
RAISY = ["--seed", "9", "--inject-faults", "raise:0.3"]


def _manifest(path="run-manifest.json"):
    return json.loads(Path(path).read_text())


def test_bad_fault_spec_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(FIGURE + ["--inject-faults", "bogus:0.5"])
    assert excinfo.value.code == 2
    err = capsys.readouterr().err
    assert "bad fault entry" in err and "raise, hang, kill" in err


def test_bad_on_task_error_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(FIGURE + ["--on-task-error", "explode"])
    assert excinfo.value.code == 2


def test_repro_faults_env_fallback(capsys, monkeypatch):
    monkeypatch.setenv("REPRO_FAULTS", "bogus:0.5")
    with pytest.raises(SystemExit) as excinfo:
        main(FIGURE)
    assert excinfo.value.code == 2
    assert "bad fault entry" in capsys.readouterr().err


def test_injected_fault_aborts_by_default(capsys):
    with pytest.raises(Exception, match="injected task exception"):
        main(FIGURE + RAISY)


def test_injected_fault_retry_recovers_with_digest_parity(capsys):
    assert main(FIGURE + ["--manifest", "clean.json"]) == 0
    clean_out = capsys.readouterr().out
    assert main(
        FIGURE + RAISY
        + ["--on-task-error", "retry", "--retries", "3",
           "--manifest", "faulted.json"]
    ) == 0
    faulted_out = capsys.readouterr().out
    assert faulted_out == clean_out
    clean, faulted = _manifest("clean.json"), _manifest("faulted.json")
    assert faulted["result_digests"] == clean["result_digests"]
    assert faulted["tasks"]["retried"] == 1
    counters = faulted["metrics"]["counters"]
    assert counters["engine.task_retries"] == 1
    assert counters["engine.faults_injected"] >= 1


def test_skip_mode_records_holes_and_warns(capsys):
    assert main(
        FIGURE + RAISY
        + ["--on-task-error", "skip", "--retries", "0"]
    ) == 0
    err = capsys.readouterr().err
    assert "1 task(s) failed and were skipped" in err
    manifest = _manifest()
    assert manifest["tasks"]["planned"] == 1
    assert manifest["tasks"]["completed"] == 0
    failed = manifest["tasks"]["failed"]
    assert len(failed) == 1
    assert failed[0]["label"] == "figure[0]"
    assert "InjectedFault" in failed[0]["error"]
    assert manifest["metrics"]["counters"]["engine.task_failures"] == 1


def test_checkpoint_then_resume_digest_parity(capsys):
    assert main(
        FIGURE + ["--checkpoint", "--manifest", "first.json"]
    ) == 0
    err = capsys.readouterr().err
    assert "checkpoint: run" in err and "--resume" in err
    assert main(
        FIGURE + ["--resume", "--manifest", "second.json"]
    ) == 0
    first, second = _manifest("first.json"), _manifest("second.json")
    assert second["result_digests"] == first["result_digests"]
    assert second["tasks"]["resumed"] == 1
    assert (
        second["metrics"]["counters"]["engine.journal_hits"] == 1
    )


def test_resume_mismatch_exits_2(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(FIGURE + ["--resume", "0123456789abcdef"])
    assert excinfo.value.code == 2
    assert "content-addressed" in capsys.readouterr().err


def test_journal_lands_under_the_cache_dir(tmp_path, capsys):
    assert main(
        FIGURE + ["--checkpoint", "--cache-dir", str(tmp_path / "c")]
    ) == 0
    runs = list((tmp_path / "c" / "runs").iterdir())
    assert len(runs) == 1
    assert (runs[0] / "meta.json").exists()
    assert (runs[0] / "task-0.pkl").exists()
    meta = json.loads((runs[0] / "meta.json").read_text())
    assert meta["experiment"] == "figure" and meta["n_tasks"] == 1


def test_report_renders_failed_tasks(capsys):
    assert main(
        FIGURE + RAISY
        + ["--on-task-error", "skip", "--retries", "0"]
    ) == 0
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "0/1 completed" in out
    assert "FAILED figure[0]" in out
