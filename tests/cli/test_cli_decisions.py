"""The ``--decisions`` CLI surface and the ``repro explain``
subcommand: manifest block, JSONL export, trace instant events,
digest/stdout parity with undecorated runs, and the explain transcript
checked against the brute-force oracle."""

import json
from pathlib import Path

import numpy as np
import pytest

from repro.cli import main
from repro.obs import validate_manifest
from repro.obs.decisions import explain_probe, validate_decision_records

# Q14 keeps multiple candidate plans alive under ``shared``, so
# margins/decades are populated (Q6 collapses to one plan there).
FIGURE = [
    "figure", "shared", "--queries", "Q14", "--deltas", "2,10", "--csv",
]


def _manifest(path="run-manifest.json"):
    data = json.loads(Path(path).read_text())
    assert validate_manifest(data) == []
    return data


def test_decisions_block_jsonl_and_instant_events(capsys):
    assert main(FIGURE + [
        "--decisions", "--decisions-out", "d.jsonl",
        "--trace", "--trace-out", "t.json",
    ]) == 0
    err = capsys.readouterr().err
    assert "probes observed" in err
    assert "fragility: wrong-choice fraction by margin decade:" in err

    block = _manifest()["decisions"]
    assert block is not None
    assert block["probes"] > 0
    assert block["sampled"] == len(block["records"])
    assert set(block["fallback_reasons"]) == {
        "near_tie", "invalid_probe", "weak_certificate",
    }
    assert "figure:Q14" in block["contexts"]

    lines = Path("d.jsonl").read_text().splitlines()
    assert len(lines) == block["sampled"]
    assert validate_decision_records(lines) == []

    events = json.loads(Path("t.json").read_text())
    instants = [e for e in events if e.get("ph") == "i"]
    assert len(instants) == block["sampled"]
    assert all(e["name"].startswith("decision:") for e in instants)


def test_without_flag_block_is_null_and_nothing_written(capsys):
    assert main(FIGURE) == 0
    manifest = _manifest()
    assert manifest["decisions"] is None
    assert not Path("d.jsonl").exists()
    assert "probes observed" not in capsys.readouterr().err


def test_decorated_run_keeps_stdout_and_digests_identical(capsys):
    assert main(FIGURE) == 0
    plain_out = capsys.readouterr().out
    plain_digests = _manifest()["result_digests"]
    assert main(FIGURE + ["--decisions"]) == 0
    decorated_out = capsys.readouterr().out
    assert decorated_out == plain_out
    assert _manifest()["result_digests"] == plain_digests


def test_sample_and_out_flags_imply_decisions(capsys):
    assert main(FIGURE + ["--decisions-sample", "3"]) == 0
    capsys.readouterr()
    block = _manifest()["decisions"]
    assert block["sample_k"] == 3
    assert block["sampled"] <= 3

    assert main(FIGURE + ["--decisions-out", "via-out.jsonl"]) == 0
    capsys.readouterr()
    assert _manifest()["decisions"] is not None
    assert Path("via-out.jsonl").exists()


def test_negative_sample_is_a_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(FIGURE + ["--decisions-sample", "-1"])
    assert excinfo.value.code == 2


def test_report_renders_fragility_table(capsys):
    assert main(FIGURE + ["--decisions"]) == 0
    capsys.readouterr()
    assert main(["report", "run-manifest.json"]) == 0
    out = capsys.readouterr().out
    assert "decisions:" in out
    assert "fragility by context" in out
    assert "figure:Q14" in out
    assert "wrong-choice fraction by margin decade:" in out


def test_report_diff_notes_block_absent_in_older_schema(capsys):
    assert main(FIGURE + ["--decisions"]) == 0
    capsys.readouterr()
    new = json.loads(Path("run-manifest.json").read_text())
    Path("new.json").write_text(json.dumps(new))
    old = dict(new)
    old["schema_version"] = 2
    for field in ("profile", "timeseries", "decisions"):
        old.pop(field, None)
    Path("old.json").write_text(json.dumps(old))
    assert main(["report", "new.json", "old.json"]) == 0
    out = capsys.readouterr().out
    assert (
        "note: decisions block absent in older schema "
        "(v2 predates v4)"
    ) in out


# ----------------------------------------------------------------------
# repro explain
# ----------------------------------------------------------------------
def test_explain_matches_brute_force_oracle(capsys):
    from repro.catalog import build_tpch_catalog
    from repro.experiments import scenario
    from repro.optimizer.config import DEFAULT_PARAMETERS
    from repro.optimizer.plancache import cached_candidate_plans
    from repro.workloads import build_tpch_queries

    # Q6's split space is 4-dimensional: cpu, dev.table.LINEITEM,
    # dev.index.LINEITEM, dev.temp.
    cost_vector = "0.5,1.5,2.5,0.75"
    assert main([
        "explain", "Q6", "--scenario", "split",
        "--cost-vector", cost_vector,
    ]) == 0
    out = capsys.readouterr().out

    # Rebuild the identical candidate set and compute the oracle.
    catalog = build_tpch_catalog(100)
    query = build_tpch_queries(catalog)["Q6"]
    config = scenario("split")
    layout = config.layout_for(query)
    region = config.region(layout, 100.0)
    candidates = cached_candidate_plans(
        query, catalog, DEFAULT_PARAMETERS, layout, region,
        cell_cap=64, scenario_key="split",
    )
    cost = np.array([float(v) for v in cost_vector.split(",")])
    matrix = candidates.usage_matrix
    dense_winner = int(np.argmin(cost @ matrix.T))
    info = explain_probe(matrix, cost)

    assert info["winner"] == dense_winner
    assert f"winner:    plan {info['winner']}" in out
    assert f"runner-up: plan {info['runner_up']}" in out
    assert f"margin:    {info['margin']:.6g} (relative)" in out
    assert (
        f"vs plan {info['nearest_rival']} at normalized distance "
        f"{info['plane_distance']:.6g}"
    ) in out
    assert f"candidates: {info['candidates']} plan(s)" in out


def test_explain_generated_defaults_to_colocated(capsys):
    assert main(["explain", "--generated", "3:1"]) == 0
    out = capsys.readouterr().out
    assert "decision provenance: G1 [colocated]" in out
    assert "winner:    plan" in out
    assert "lookup path:" in out


def test_explain_usage_errors(capsys):
    for argv in (
        ["explain"],                                   # no query
        ["explain", "Q1", "--generated", "0:0"],       # both forms
        ["explain", "--generated", "nope"],            # bad format
        ["explain", "--generated", "1:-2"],            # negative index
        ["explain", "Q1", "--cost-vector", "1,2"],     # wrong dimension
        ["explain", "Q1", "--cost-vector", "a,b"],     # non-numeric
    ):
        with pytest.raises(SystemExit) as excinfo:
            main(argv)
        assert excinfo.value.code == 2
        capsys.readouterr()


def test_explain_unknown_query_is_usage_error(capsys):
    with pytest.raises(SystemExit) as excinfo:
        main(["explain", "Q999"])
    assert excinfo.value.code == 2
